//! Anchor crate for the workspace-spanning integration tests in the
//! repository-root `tests/` directory.
