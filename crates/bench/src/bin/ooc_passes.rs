//! **OOC-PASSES** — the paper's §2 out-of-core motivation, measured.
//!
//! "The size of this hash table is proportional to the number of records at
//! the current node. … If the hash table does not fit in the memory, then
//! multiple passes need to be done over the entire data requiring
//! additional expensive disk I/O."
//!
//! This harness runs the disk-resident serial SPRINT (`diskio::induce_ooc`)
//! under shrinking hash-table budgets and reports read volume, read passes,
//! and staging counts. Expected shape: I/O grows roughly linearly as the
//! budget shrinks below the root size — the cost ScalParC's distributed
//! node table eliminates by giving each of p processors an N/p slice.
//!
//! Run: `cargo run --release -p scalparc-bench --bin ooc_passes`

use diskio::{induce_ooc, IoStats, OocConfig};
use dtree::sprint::{self, SprintConfig};
use scalparc_bench::{fmt_mb, print_row, BenchOpts};

fn main() {
    let opts = BenchOpts::from_args();
    // Modest N: the point is the budget/N ratio, not absolute size.
    let n = opts.scale.dataset_sizes()[0] / 5; // 10k at default scale
    let data = opts.dataset(n);
    let reference = sprint::induce(&data, &SprintConfig::default());

    println!("# Out-of-core SPRINT: disk I/O vs hash-table memory budget (N = {n})");
    print_row(&[
        "budget".into(),
        "budget/N".into(),
        "read MB".into(),
        "written MB".into(),
        "passes".into(),
        "staged".into(),
        "stages".into(),
    ]);

    let budgets = [n * 2, n / 2, n / 4, n / 8, n / 16];
    let mut reads = Vec::new();
    for (i, &budget) in budgets.iter().enumerate() {
        let stats = IoStats::new();
        let cfg = OocConfig {
            dir: std::env::temp_dir().join(format!("scalparc-ooc-bench-{i}")),
            ..OocConfig::with_budget(budget)
        };
        let (tree, counters) = induce_ooc(&data, &cfg, &stats);
        assert_eq!(tree, reference, "budget must not change the tree");
        reads.push(stats.bytes_read());
        print_row(&[
            budget.to_string(),
            format!("{:.3}", budget as f64 / n as f64),
            fmt_mb(stats.bytes_read()),
            fmt_mb(stats.bytes_written()),
            stats.read_passes().to_string(),
            counters.staged_nodes.to_string(),
            counters.stages.to_string(),
        ]);
        let _ = std::fs::remove_dir_all(&cfg.dir);
    }

    println!();
    let blowup = *reads.last().unwrap() as f64 / reads[0] as f64;
    println!("# read-volume blow-up from in-core (budget 2N) to budget N/16: {blowup:.1}x —");
    println!("# the 'additional expensive disk I/O' the distributed node table avoids.");
}
