//! **ABL-BLOCK** — ablation of blocked node-table updates (paper §3.3.2/§4).
//!
//! "There is a possibility … that some processors might send more than
//! O(N/p) updates to the node table. … The memory scalability is still
//! ensured in ScalParC in such cases, by dividing the updates being sent
//! into blocks of N/p."
//!
//! This harness drives the distributed hash table directly with a
//! pathologically skewed update pattern — one rank originates *all* N
//! updates — and compares peak communication-buffer memory with and without
//! blocking. Expected shape: unblocked peaks at O(N) on the skewed rank;
//! blocked caps at O(N/p) per round regardless of skew.
//!
//! Run: `cargo run --release -p scalparc-bench --bin ablation_blocked_updates`

use dhash::DistTable;
use mpsim::{MachineCfg, TimingMode};
use scalparc_bench::{fmt_mb, print_row, BenchOpts};

fn run(n: u64, p: usize, blocked: bool) -> (u64, u64) {
    let cfg = MachineCfg {
        procs: p,
        cost: mpsim::CostModel::t3d(),
        timing: TimingMode::Free,
        compute_tokens: 0,
        replay: None,
        trace: None,
        fault: None,
    };
    let result = mpsim::run(&cfg, |comm| {
        let mut table = DistTable::<u8>::new(comm, n);
        // Pathological skew: rank 0 sends every update.
        let updates: Vec<(u64, u8)> = if comm.rank() == 0 {
            (0..n).map(|k| (k, (k % 4) as u8)).collect()
        } else {
            Vec::new()
        };
        if blocked {
            let round = (n as usize).div_ceil(comm.size()).max(1);
            table.update_blocked(comm, &updates, round);
        } else {
            table.update(comm, &updates);
        }
        // Everyone verifies a sample round-trips.
        let probe: Vec<u64> = (0..n).step_by((n as usize / 64).max(1)).collect();
        let got = table.inquire(comm, &probe);
        for (k, v) in probe.iter().zip(got) {
            assert_eq!(v, Some((k % 4) as u8));
        }
        comm.tracker().peak()
    });
    let peak = *result.outputs.iter().max().unwrap();
    (peak, result.stats.time_ns())
}

fn main() {
    let opts = BenchOpts::from_args();
    let n = opts.scale.dataset_sizes()[1] as u64; // 1.6M / scale
    let procs = opts.scale.procs();

    println!("# Blocked vs unblocked node-table updates under pathological skew");
    println!("# (rank 0 sends all {n} updates; peak tracked bytes on the worst rank)");
    print_row(&[
        "p".into(),
        "unblocked".into(),
        "blocked".into(),
        "ratio".into(),
        "cap=N/p?".into(),
    ]);
    for &p in procs.iter().filter(|&&p| p > 1) {
        let (peak_u, _) = run(n, p, false);
        let (peak_b, _) = run(n, p, true);
        let ratio = peak_u as f64 / peak_b as f64;
        // The blocked peak should be within a small factor of the table
        // block itself (table slots + one round of buffers).
        let block_bytes = (n / p as u64) * 10;
        print_row(&[
            p.to_string(),
            fmt_mb(peak_u),
            fmt_mb(peak_b),
            format!("{ratio:.2}"),
            (peak_b <= 4 * block_bytes).to_string(),
        ]);
    }
    println!();
    println!("# expected: unblocked grows ~O(N) on the skewed rank; blocked stays ~O(N/p),");
    println!("# so the ratio widens linearly with p — the paper's memory-scalability fix.");
}
