//! **FOREST** — distributed random-forest induction and serving over the
//! simulated machine: the two curves a forest engine owes its users, plus
//! the determinism contract that makes the scheduler trustworthy.
//!
//! * **Layout identity** — the same seeds must induce the byte-identical
//!   forest (via `model_io::forest_to_text`) whether the machine runs
//!   serial, data-parallel, tree-parallel, or the hybrid round-robin
//!   layout. Asserted before anything is measured.
//! * **Accuracy vs tree count** — bagged majority voting on a noisy Quest
//!   training set, evaluated on a clean held-out test set, against the
//!   single-tree baseline.
//! * **Train time vs processors** — measured simulated time of a fixed
//!   forest as p grows, under the scaled T3D cost model; the scheduler
//!   moves from data-parallel to tree-parallel as p crosses the tree count.
//! * **Serving parity** — the distributed `FlatForest` scoring pass must
//!   reproduce the serial confusion matrix exactly, at every p.
//! * **Per-tree attribution** — a traced run shows each tree's simulated
//!   time and communication (every induction span rides in a `("tree", t)`
//!   obs phase).
//!
//! Run: `cargo run --release -p scalparc-bench --bin forest
//!       [--full|--quick] [--func F1..F10] [--seed <u64>] [--json BENCH_forest.json]`

use datagen::{generate, GenConfig, Profile};
use dtree::flat_forest::{FlatForest, VoteReduce};
use dtree::model_io;
use mpsim::obs::Json;
use mpsim::{CostModel, MachineCfg, TimingMode};
use scalparc::forest::{train_forest, ForestConfig, ForestSchedule};
use scalparc::ParConfig;
use scalparc_bench::{fmt_mb, print_row, BenchOpts, Scale, T3D_CPU_FACTOR};
use serve::score_forest_distributed;

/// Training-set noise: bagging only has something to average away when the
/// labels are imperfect (the paper's Quest generator is noiseless, where a
/// single tree is already near-perfect).
const TRAIN_NOISE: f64 = 0.08;

fn measured_par(p: usize) -> ParConfig {
    ParConfig {
        cost: CostModel::t3d_scaled(T3D_CPU_FACTOR),
        timing: TimingMode::Measured,
        ..ParConfig::new(p)
    }
}

fn main() {
    let opts = BenchOpts::from_args();
    let (n_train, n_test, tree_counts, procs): (usize, usize, Vec<usize>, Vec<usize>) =
        match opts.scale {
            Scale::Quick => (1_500, 1_500, vec![1, 2, 4, 8], vec![1, 2, 4, 8]),
            Scale::Default => (6_000, 6_000, vec![1, 2, 4, 8, 16], vec![1, 2, 4, 8, 16]),
            Scale::Full => (
                25_000,
                25_000,
                vec![1, 2, 4, 8, 16, 32],
                vec![1, 2, 4, 8, 16, 32],
            ),
        };
    let train = generate(&GenConfig {
        n: n_train,
        func: opts.func,
        noise: TRAIN_NOISE,
        seed: opts.seed,
        profile: Profile::Paper7,
    });
    let test = generate(&GenConfig {
        n: n_test,
        func: opts.func,
        noise: 0.0,
        seed: opts.seed ^ 0x5EED_7E57,
        profile: Profile::Paper7,
    });
    let base = ForestConfig {
        bootstrap: 1.0,
        feature_frac: 0.8,
        seed: opts.seed,
        ..ForestConfig::default()
    };

    println!("# FOREST: bagged ScalParC forests — induction scheduling and FlatForest serving");
    println!(
        "# workload: Quest {:?}, {} train records ({}% label noise), {} clean test records, seed {}",
        opts.func,
        n_train,
        (TRAIN_NOISE * 100.0) as u32,
        n_test,
        opts.seed
    );
    println!();

    // Determinism first: the same seeds must give the byte-identical forest
    // under every scheduling layout. `forest_to_text` covers structure,
    // thresholds (exact hex IEEE-754), histograms, and schema.
    let idcfg = ForestConfig { n_trees: 4, ..base };
    let reference = train_forest(
        &train,
        &ForestConfig {
            schedule: ForestSchedule::Serial,
            ..idcfg
        },
        &ParConfig::new(1),
    );
    let want = model_io::forest_to_text(&reference.trees);
    let layouts = [
        (ForestSchedule::DataParallel, 4usize),
        (ForestSchedule::TreeParallel, 8),
        (ForestSchedule::TreeParallel, 3), // hybrid: 4 trees on 3 groups
        (ForestSchedule::Auto, 6),
    ];
    for (schedule, p) in layouts {
        let got = train_forest(
            &train,
            &ForestConfig { schedule, ..idcfg },
            &ParConfig::new(p),
        );
        assert_eq!(
            model_io::forest_to_text(&got.trees),
            want,
            "forest diverged under {schedule:?} at p={p}"
        );
    }
    println!(
        "# identity: {}-tree forest byte-identical across serial, data-parallel, tree-parallel, and hybrid layouts",
        idcfg.n_trees
    );
    println!();

    // Curve 1: accuracy vs tree count (bagged majority vote on held-out
    // clean data, single tree = the first row).
    println!("# accuracy vs tree count (majority vote, clean held-out test set)");
    print_row(&["trees".into(), "train acc".into(), "test acc".into()]);
    let mut acc_rows: Vec<(usize, f64, f64)> = Vec::new();
    for &k in &tree_counts {
        let cfg = ForestConfig { n_trees: k, ..base };
        let r = train_forest(&train, &cfg, &ParConfig::new(k.min(8)));
        let flat = FlatForest::compile(&r.trees, VoteReduce::Majority);
        let (acc_train, acc_test) = (flat.accuracy(&train), flat.accuracy(&test));
        print_row(&[
            k.to_string(),
            format!("{acc_train:.4}"),
            format!("{acc_test:.4}"),
        ]);
        acc_rows.push((k, acc_train, acc_test));
    }
    let single = acc_rows[0].2;
    let best = acc_rows
        .iter()
        .map(|r| r.2)
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        best > 0.5,
        "forest should beat a coin on held-out Quest data: {best}"
    );
    println!("# single tree {single:.4} → best forest {best:.4} on the clean test set");
    println!();

    // Curve 2: train time vs processors at a fixed tree count, measured
    // under the scaled T3D cost model. The Auto schedule flips from
    // data-parallel to tree-parallel once p reaches the tree count.
    let k_fixed = *tree_counts.last().unwrap().min(&8);
    println!("# train time vs processors ({k_fixed} trees, measured, scaled-T3D cost model)");
    print_row(&[
        "p".into(),
        "layout".into(),
        "time_s".into(),
        "MB sent".into(),
        "MB/proc".into(),
    ]);
    let mut time_rows: Vec<(usize, String, f64, u64, u64)> = Vec::new();
    for &p in &procs {
        let cfg = ForestConfig {
            n_trees: k_fixed,
            ..base
        };
        let r = train_forest(&train, &cfg, &measured_par(p));
        let label = r.plan.label();
        let (t, sent, mem) = (
            r.train_time_s(),
            r.total_bytes_sent(),
            r.peak_mem_per_proc(),
        );
        print_row(&[
            p.to_string(),
            label.clone(),
            format!("{t:.4}"),
            fmt_mb(sent),
            fmt_mb(mem),
        ]);
        time_rows.push((p, label, t, sent, mem));
    }
    println!();

    // Per-tree attribution: a traced run carries every induction span
    // inside a ("tree", t) phase, so profile-style rollups can split time
    // by tree. Shown here from the per-tree machine stats directly.
    let traced = train_forest(
        &train,
        &ForestConfig { n_trees: 4, ..base },
        &ParConfig {
            cost: CostModel::t3d_scaled(T3D_CPU_FACTOR),
            timing: TimingMode::Measured,
            ..ParConfig::new(4).traced()
        },
    );
    println!("# per-tree breakdown (traced, tree-parallel at p=4)");
    print_row(&[
        "tree".into(),
        "group".into(),
        "procs".into(),
        "nodes".into(),
        "levels".into(),
        "time_s".into(),
    ]);
    for s in &traced.per_tree {
        print_row(&[
            s.tree.to_string(),
            s.group.to_string(),
            s.procs.to_string(),
            s.nodes.to_string(),
            s.levels.to_string(),
            format!("{:.4}", s.run.time_ns() as f64 / 1e9),
        ]);
        // The obs contract: every rank of every tree's machine wraps its
        // whole induction in a ("tree", t) span.
        let traces = s.run.traces().expect("traced run");
        for trace in traces {
            assert!(
                trace
                    .spans
                    .iter()
                    .any(|sp| sp.name == "tree" && sp.level == s.tree as u32),
                "tree {} left no (tree, {}) span",
                s.tree,
                s.tree
            );
        }
    }
    println!();

    // Serving parity: distributed FlatForest scoring must reproduce the
    // serial confusion matrix exactly at every p.
    let forest8 = train_forest(
        &train,
        &ForestConfig {
            n_trees: k_fixed,
            ..base
        },
        &ParConfig::new(4),
    );
    let flat = FlatForest::compile(&forest8.trees, VoteReduce::Majority);
    let serial_conf = {
        let classes = test.schema.num_classes as usize;
        let mut preds = vec![0u8; test.len()];
        flat.predict_batch(&test, &mut preds);
        let mut m = vec![0u64; classes * classes];
        for (t, p) in test.labels.iter().zip(&preds) {
            m[*t as usize * classes + *p as usize] += 1;
        }
        m
    };
    for p in [1usize, 4, 16] {
        let d = score_forest_distributed(
            &forest8.trees,
            VoteReduce::Majority,
            &test,
            &MachineCfg::new(p),
        );
        let classes = test.schema.num_classes as usize;
        let got: Vec<u64> = (0..classes)
            .flat_map(|r| (0..classes).map(move |c| (r, c)))
            .map(|(r, c)| d.confusion.get(r, c))
            .collect();
        assert_eq!(got, serial_conf, "distributed confusion diverged at p={p}");
    }
    println!("# serving: distributed FlatForest confusion == serial at p in {{1, 4, 16}}");
    println!();
    println!(
        "# headline: {k_fixed} trees on {} processors in {:.4} simulated seconds ({}), test accuracy {best:.4} vs single tree {single:.4}",
        time_rows.last().unwrap().0,
        time_rows.last().unwrap().2,
        time_rows.last().unwrap().1,
    );

    let mut doc = opts.metrics_doc("forest");
    doc.config("n_train", Json::U64(n_train as u64));
    doc.config("n_test", Json::U64(n_test as u64));
    doc.config("train_noise", Json::F64(TRAIN_NOISE));
    doc.config("bootstrap", Json::F64(base.bootstrap));
    doc.config("feature_frac", Json::F64(base.feature_frac));
    doc.detail("layouts_identical", Json::Bool(true));
    doc.detail("dist_confusion_matches_serial", Json::Bool(true));
    doc.detail("single_tree_test_accuracy", Json::F64(single));
    doc.detail("best_forest_test_accuracy", Json::F64(best));
    for (k, acc_train, acc_test) in &acc_rows {
        doc.row(vec![
            ("curve", Json::str("accuracy_vs_trees")),
            ("trees", Json::U64(*k as u64)),
            ("train_accuracy", Json::F64(*acc_train)),
            ("test_accuracy", Json::F64(*acc_test)),
        ]);
    }
    for (p, layout, t, sent, mem) in &time_rows {
        doc.row(vec![
            ("curve", Json::str("time_vs_procs")),
            ("procs", Json::U64(*p as u64)),
            ("layout", Json::str(layout.as_str())),
            ("trees", Json::U64(k_fixed as u64)),
            ("train_time_s", Json::F64(*t)),
            ("bytes_sent", Json::U64(*sent)),
            ("mem_per_proc", Json::U64(*mem)),
        ]);
    }
    opts.write_metrics(&doc);
    if let Some(path) = &opts.json {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("re-reading {}: {e}", path.display()));
        let rows = mpsim::obs::metrics::validate_metrics(&text)
            .unwrap_or_else(|e| panic!("{} failed schema validation: {e}", path.display()));
        println!("# metrics validated: scalparc-metrics/v1, {rows} rows");
    }
}
