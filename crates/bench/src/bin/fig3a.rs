//! **FIG3A** — reproduce Figure 3(a): ScalParC parallel runtime vs number
//! of processors, one series per training-set size.
//!
//! The paper plots parallel runtime (seconds, Cray T3D) for training sets of
//! 0.8M–6.4M records on 2–128 processors and highlights that 6.4M records
//! classify in well under two minutes on 128 processors. Shapes to check:
//!
//! * runtime falls steadily with p for every N (runtime scalability);
//! * relative speedups improve for larger N (computation/communication
//!   ratio grows with problem size);
//! * returns diminish at high p for small N (overheads dominate).
//!
//! Run: `cargo run --release -p scalparc-bench --bin fig3a [--full|--quick]`

use mpsim::obs::Json;
use scalparc::Algorithm;
use scalparc_bench::{fmt_mb, print_row, BenchOpts};

fn main() {
    let opts = BenchOpts::from_args();
    let procs = opts.scale.procs();
    let sizes = opts.scale.dataset_sizes();

    println!("# Figure 3(a): parallel runtime (simulated seconds) vs processors");
    println!(
        "# workload: Quest {:?}, 7 attributes, 2 classes, seed {}",
        opts.func, opts.seed
    );
    let mut header = vec!["N \\ p".to_string()];
    header.extend(procs.iter().map(|p| p.to_string()));
    print_row(&header);

    let mut tables = Vec::new();
    for &n in &sizes {
        let data = opts.dataset(n);
        let cells = scalparc_bench::sweep(&data, &procs, Algorithm::ScalParc);
        let mut row = vec![opts.scale.size_label(n)];
        row.extend(cells.iter().map(|c| format!("{:.3}", c.time_s)));
        print_row(&row);
        tables.push((n, cells));
    }

    println!();
    println!("# Speedup relative to p=1 (same-size serial run)");
    let mut header = vec!["N \\ p".to_string()];
    header.extend(procs.iter().map(|p| p.to_string()));
    print_row(&header);
    for (n, cells) in &tables {
        let t1 = cells[0].time_s;
        let mut row = vec![opts.scale.size_label(*n)];
        row.extend(cells.iter().map(|c| format!("{:.2}", t1 / c.time_s)));
        print_row(&row);
    }

    // The paper's headline: the largest dataset on the largest machine.
    if let Some((n, cells)) = tables.last() {
        let last = cells.last().unwrap();
        println!();
        println!(
            "# headline: {} records classified in {:.3} simulated seconds on {} processors",
            opts.scale.size_label(*n),
            last.time_s,
            last.procs
        );
        println!(
            "#           per-processor comm volume {} MB, peak memory {} MB",
            fmt_mb(last.comm_per_proc),
            fmt_mb(last.mem_per_proc)
        );
    }

    let mut doc = opts.metrics_doc("fig3a");
    for (n, cells) in &tables {
        let t1 = cells[0].time_s;
        for c in cells {
            doc.row(vec![
                ("n", Json::U64(*n as u64)),
                ("procs", Json::U64(c.procs as u64)),
                ("time_s", Json::F64(c.time_s)),
                ("speedup_vs_p1", Json::F64(t1 / c.time_s)),
                ("mem_per_proc", Json::U64(c.mem_per_proc)),
                ("comm_per_proc", Json::U64(c.comm_per_proc)),
            ]);
        }
    }
    opts.write_metrics(&doc);
}
