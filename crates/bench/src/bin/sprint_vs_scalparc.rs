//! **CMP-SPRINT** — ScalParC vs the parallel SPRINT formulation (paper §2,
//! §3.2).
//!
//! The paper argues analytically that parallel SPRINT's splitting phase —
//! which gathers the whole record-to-child hash table onto *every*
//! processor — has per-processor communication overhead O(N) and memory
//! O(N), whereas ScalParC's distributed node table is O(N/p) in both. This
//! harness measures the claim: for a fixed N, sweep p and report per-
//! processor communication volume, peak memory, and simulated runtime for
//! both formulations. Expected shapes:
//!
//! * ScalParC's per-processor comm volume and memory fall ~1/p;
//! * SPRINT's flatten out at the O(N) replication floor;
//! * the runtime gap widens with p.
//!
//! Run: `cargo run --release -p scalparc-bench --bin sprint_vs_scalparc`

use mpsim::obs::Json;
use scalparc::Algorithm;
use scalparc_bench::{fmt_mb, print_row, BenchOpts};

fn main() {
    let opts = BenchOpts::from_args();
    let procs = opts.scale.procs();
    // One dataset: the second-largest size keeps --full runs tractable.
    let sizes = opts.scale.dataset_sizes();
    let n = sizes[sizes.len() - 2];
    let data = opts.dataset(n);

    println!(
        "# ScalParC vs parallel SPRINT at N = {} (Quest {:?})",
        opts.scale.size_label(n),
        opts.func
    );
    print_row(&[
        "p".into(),
        "scal t(s)".into(),
        "spr t(s)".into(),
        "scal MB/p".into(),
        "spr MB/p".into(),
        "scal comm".into(),
        "spr comm".into(),
    ]);

    let mut rows = Vec::new();
    for &p in &procs {
        let scal = scalparc_bench::run_measured(&data, p, Algorithm::ScalParc);
        let spr = scalparc_bench::run_measured(&data, p, Algorithm::SprintReplicated);
        assert_eq!(scal.tree, spr.tree, "formulations must agree on the tree");
        print_row(&[
            p.to_string(),
            format!("{:.3}", scal.stats.time_s()),
            format!("{:.3}", spr.stats.time_s()),
            fmt_mb(scal.stats.peak_mem_per_proc()),
            fmt_mb(spr.stats.peak_mem_per_proc()),
            fmt_mb(scal.stats.max_comm_volume_per_proc()),
            fmt_mb(spr.stats.max_comm_volume_per_proc()),
        ]);
        rows.push((p, scal.stats, spr.stats));
    }

    let mut doc = opts.metrics_doc("sprint_vs_scalparc");
    doc.config("n", Json::U64(n as u64));
    for (p, scal, spr) in &rows {
        doc.row(vec![
            ("procs", Json::U64(*p as u64)),
            ("scalparc_time_s", Json::F64(scal.time_s())),
            ("sprint_time_s", Json::F64(spr.time_s())),
            ("scalparc_mem_per_proc", Json::U64(scal.peak_mem_per_proc())),
            ("sprint_mem_per_proc", Json::U64(spr.peak_mem_per_proc())),
            (
                "scalparc_comm_per_proc",
                Json::U64(scal.max_comm_volume_per_proc()),
            ),
            (
                "sprint_comm_per_proc",
                Json::U64(spr.max_comm_volume_per_proc()),
            ),
        ]);
    }
    opts.write_metrics(&doc);

    println!();
    // Communication baselines start at the first parallel row (p = 1 has
    // no communication at all).
    let rows: Vec<_> = rows.into_iter().filter(|(p, _, _)| *p > 1).collect();
    if rows.len() >= 3 {
        let (p0, s0, r0) = &rows[0];
        let (pl, sl, rl) = &rows[rows.len() - 1];
        let scal_mem_ratio = s0.peak_mem_per_proc() as f64 / sl.peak_mem_per_proc() as f64;
        let spr_mem_ratio = r0.peak_mem_per_proc() as f64 / rl.peak_mem_per_proc() as f64;
        println!(
            "# memory p={p0} -> p={pl}: ScalParC shrinks {scal_mem_ratio:.1}x, \
             SPRINT only {spr_mem_ratio:.1}x (replication floor)"
        );
        let scal_comm_ratio =
            s0.max_comm_volume_per_proc() as f64 / sl.max_comm_volume_per_proc() as f64;
        let spr_comm_ratio =
            r0.max_comm_volume_per_proc() as f64 / rl.max_comm_volume_per_proc() as f64;
        println!(
            "# comm volume p={p0} -> p={pl}: ScalParC shrinks {scal_comm_ratio:.1}x, \
             SPRINT only {spr_comm_ratio:.1}x"
        );
        println!(
            "# verdict: {}",
            if scal_mem_ratio > 2.0 * spr_mem_ratio && scal_comm_ratio > 2.0 * spr_comm_ratio {
                "ScalParC scalable, replicated SPRINT not — matches the paper"
            } else {
                "UNEXPECTED — check the configuration"
            }
        );
    }
}
