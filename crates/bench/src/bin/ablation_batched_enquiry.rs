//! **ABL-BATCH** — per-attribute vs batched node-table enquiries.
//!
//! The paper performs PerformSplitII "one attribute at a time" (§4) and
//! defers communication optimizations to its technical report. Batching all
//! non-splitting attributes into a single two-step exchange per level is
//! the obvious such optimization: identical results, `2` all-to-all steps
//! per level instead of `2·n_attrs`. This ablation measures the latency
//! saving as p grows (the all-to-all α·p term is paid per step).
//!
//! Run: `cargo run --release -p scalparc-bench --bin ablation_batched_enquiry`

use mpsim::{CostModel, TimingMode};
use scalparc::{induce_measured, ParConfig};
use scalparc_bench::{print_row, BenchOpts, T3D_CPU_FACTOR};

fn main() {
    let opts = BenchOpts::from_args();
    let n = opts.scale.dataset_sizes()[0];
    let data = opts.dataset(n);

    println!(
        "# Per-attribute (paper §4) vs batched node-table enquiries, N = {}",
        opts.scale.size_label(n)
    );
    print_row(&[
        "p".into(),
        "paper t(s)".into(),
        "batch t(s)".into(),
        "saving %".into(),
        "msgs/rank".into(),
        "batched".into(),
    ]);

    for &p in &opts.scale.procs() {
        let mut cfg = ParConfig {
            procs: p,
            cost: CostModel::t3d_scaled(T3D_CPU_FACTOR),
            timing: TimingMode::Measured,
            trace: None,
            induce: Default::default(),
        };
        let plain = induce_measured(&data, &cfg, 2);
        cfg.induce.batched_enquiry = true;
        let batched = induce_measured(&data, &cfg, 2);
        assert_eq!(
            plain.tree, batched.tree,
            "batching must not change the tree"
        );
        let (tp, tb) = (plain.stats.time_s(), batched.stats.time_s());
        print_row(&[
            p.to_string(),
            format!("{tp:.4}"),
            format!("{tb:.4}"),
            format!("{:.1}", (tp - tb) / tp * 100.0),
            plain.stats.ranks[0].msgs_sent.to_string(),
            batched.stats.ranks[0].msgs_sent.to_string(),
        ]);
    }
    println!();
    println!("# expected: identical trees, fewer collective rounds, and a latency");
    println!("# saving that grows with p (each all-to-all costs α·p to start).");
}
