//! **PROFILE** — per-phase breakdown of Quest induction across machine
//! sizes, in the style of the paper's Figure 3 discussion (§5): where does
//! the simulated time go as p grows?
//!
//! Runs traced, measured inductions for every processor count in the sweep
//! and prints one row per p with the inclusive simulated time of each
//! top-level phase (setup, presort, and the four per-level phases summed
//! over levels), taking the maximum over ranks — the honest completion-time
//! attribution for a bulk-synchronous program.
//!
//! Exact accounting is asserted on **every** run: per rank, the exclusive
//! per-phase rollups (plus the `(untracked)` residue) must sum to that
//! rank's `RankStats` totals field for field, and the p×p communication
//! matrix's row sums must equal the rank's `bytes_sent`/`bytes_recv`
//! counters. Not approximately — exactly.
//!
//! Artifacts:
//!
//! * `--trace <path>` — Chrome `trace_event` JSON of the `--trace-p` run
//!   (default p=4), loadable in Perfetto / `chrome://tracing`;
//! * `--metrics <path>` — `scalparc-metrics/v1` document with one row per
//!   (p, phase) plus the communication matrix of the traced run;
//! * `--check` — re-read and validate both artifacts (well-formed JSON,
//!   schema tag, monotone non-overlapping spans) and fail loudly otherwise.
//!
//! Run: `cargo run --release -p scalparc-bench --bin profile -- \
//!          [--quick|--full] [--n <records>] [--procs 1,4,16] \
//!          [--trace t.json] [--metrics m.json] [--trace-p 4] [--check]`

use std::collections::BTreeMap;
use std::path::PathBuf;

use datagen::{generate, ClassFunc, GenConfig, Profile};
use mpsim::obs::{self, Json};
use mpsim::TimingMode;
use scalparc::{induce, ParConfig, ParResult};
use scalparc_bench::{print_row, Scale, T3D_CPU_FACTOR};

struct Opts {
    scale: Scale,
    func: ClassFunc,
    seed: u64,
    n: Option<usize>,
    procs: Option<Vec<usize>>,
    trace: Option<PathBuf>,
    metrics: Option<PathBuf>,
    trace_p: usize,
    check: bool,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        scale: Scale::Default,
        func: ClassFunc::F2,
        seed: 42,
        n: None,
        procs: None,
        trace: None,
        metrics: None,
        trace_p: 4,
        check: false,
    };
    let mut args = std::env::args().skip(1);
    let need = |what: &str, v: Option<String>| v.unwrap_or_else(|| panic!("{what} needs a value"));
    while let Some(a) = args.next() {
        match a.as_str() {
            "--full" => opts.scale = Scale::Full,
            "--quick" => opts.scale = Scale::Quick,
            "--func" => {
                let f = need("--func", args.next());
                opts.func = ClassFunc::parse(&f)
                    .unwrap_or_else(|| panic!("unknown function {f:?} (want F1..F10)"));
            }
            "--seed" => {
                opts.seed = need("--seed", args.next())
                    .parse()
                    .expect("--seed wants a u64")
            }
            "--n" => opts.n = Some(need("--n", args.next()).parse().expect("--n wants a usize")),
            "--procs" => {
                opts.procs = Some(
                    need("--procs", args.next())
                        .split(',')
                        .map(|p| p.trim().parse().expect("--procs wants p1,p2,..."))
                        .collect(),
                );
            }
            "--trace" => opts.trace = Some(need("--trace", args.next()).into()),
            "--metrics" => opts.metrics = Some(need("--metrics", args.next()).into()),
            "--trace-p" => {
                opts.trace_p = need("--trace-p", args.next())
                    .parse()
                    .expect("--trace-p wants a usize");
            }
            "--check" => opts.check = true,
            other => panic!(
                "unknown flag {other:?} (known: --full --quick --func --seed \
                 --n --procs --trace --metrics --trace-p --check)"
            ),
        }
    }
    opts
}

/// Assert the recorder's exact-accounting contract on one traced run.
///
/// Per rank: the exclusive `(phase, level)` rollups plus the untracked
/// residue sum to the rank's `RankStats` totals, field for field (the
/// rollup itself panics if spans over-attribute any counter); and the
/// communication matrix's row sums equal the byte counters.
fn assert_exact_accounting(r: &ParResult) -> Vec<obs::RankRollup> {
    let traces = r.stats.traces().expect("run was traced");
    let matrix = obs::CommMatrix::from_traces(&traces);
    let mut rollups = Vec::with_capacity(traces.len());
    for (rank, (trace, stats)) in traces.iter().zip(&r.stats.ranks).enumerate() {
        let totals = stats.totals();
        let rollup = obs::rollup_rank(trace, &totals);
        let sum = rollup.sum();
        assert_eq!(sum.compute_ns, totals.compute_ns, "rank {rank} compute_ns");
        assert_eq!(sum.comm_ns, totals.comm_ns, "rank {rank} comm_ns");
        assert_eq!(sum.bytes_sent, totals.bytes_sent, "rank {rank} bytes_sent");
        assert_eq!(sum.bytes_recv, totals.bytes_recv, "rank {rank} bytes_recv");
        assert_eq!(
            matrix.sent_total(rank),
            stats.bytes_sent,
            "rank {rank} comm-matrix sent row"
        );
        assert_eq!(
            matrix.recv_total(rank),
            stats.bytes_recv,
            "rank {rank} comm-matrix recv row"
        );
        assert_eq!(trace.dropped_spans, 0, "rank {rank} dropped spans");
        assert_eq!(trace.unclosed_spans, 0, "rank {rank} unclosed spans");
        rollups.push(rollup);
    }
    rollups
}

/// Max-over-ranks inclusive time (compute + comm, ns) of every depth-0
/// phase, summed over levels, in first-appearance order.
fn phase_times(r: &ParResult) -> Vec<(&'static str, u64)> {
    let traces = r.stats.traces().expect("run was traced");
    let mut order: Vec<&'static str> = Vec::new();
    let mut per_rank: Vec<BTreeMap<&'static str, u64>> = Vec::new();
    for trace in &traces {
        let mut mine: BTreeMap<&'static str, u64> = BTreeMap::new();
        for span in trace.spans.iter().filter(|s| s.depth == 0) {
            if !order.contains(&span.name) {
                order.push(span.name);
            }
            *mine.entry(span.name).or_default() += span.incl.compute_ns + span.incl.comm_ns;
        }
        per_rank.push(mine);
    }
    order
        .into_iter()
        .map(|name| {
            let worst = per_rank
                .iter()
                .map(|m| m.get(name).copied().unwrap_or(0))
                .max()
                .unwrap_or(0);
            (name, worst)
        })
        .collect()
}

fn main() {
    let opts = parse_args();
    let n = opts.n.unwrap_or_else(|| opts.scale.dataset_sizes()[0]);
    let procs = opts.procs.clone().unwrap_or_else(|| opts.scale.procs());
    let data = generate(&GenConfig {
        n,
        func: opts.func,
        noise: 0.0,
        seed: opts.seed,
        profile: Profile::Paper7,
    });

    println!("# Per-phase breakdown (max-over-ranks inclusive simulated ms)");
    println!(
        "# workload: Quest {:?}, N = {n}, seed {}; exact accounting asserted per rank",
        opts.func, opts.seed
    );

    let mut doc = obs::MetricsDoc::new("profile");
    doc.config("n", Json::U64(n as u64));
    doc.config("func", Json::str(format!("{:?}", opts.func)));
    doc.config("seed", Json::U64(opts.seed));

    let mut header_done = false;
    let mut traced_run: Option<(usize, ParResult)> = None;
    for &p in &procs {
        let cfg = ParConfig {
            cost: mpsim::CostModel::t3d_scaled(T3D_CPU_FACTOR),
            timing: TimingMode::Measured,
            ..ParConfig::new(p)
        }
        .traced();
        let r = induce(&data, &cfg);
        let rollups = assert_exact_accounting(&r);
        let phases = phase_times(&r);

        if !header_done {
            let mut header = vec!["p".to_string(), "total".to_string()];
            header.extend(phases.iter().map(|(name, _)| name.to_string()));
            print_row(&header);
            header_done = true;
        }
        let mut row = vec![p.to_string(), format!("{:.3}", r.stats.time_s() * 1e3)];
        row.extend(
            phases
                .iter()
                .map(|(_, ns)| format!("{:.3}", *ns as f64 / 1e6)),
        );
        print_row(&row);

        for rollup in &rollups {
            for phase in &rollup.phases {
                doc.row(vec![
                    ("procs", Json::U64(p as u64)),
                    ("rank", Json::U64(rollup.rank as u64)),
                    ("phase", Json::str(phase.name)),
                    ("level", Json::U64(phase.level as u64)),
                    ("calls", Json::U64(phase.calls)),
                    ("compute_ns", Json::U64(phase.totals.compute_ns)),
                    ("comm_ns", Json::U64(phase.totals.comm_ns)),
                    ("bytes_sent", Json::U64(phase.totals.bytes_sent)),
                    ("bytes_recv", Json::U64(phase.totals.bytes_recv)),
                ]);
            }
        }

        if p == opts.trace_p || (traced_run.is_none() && p == *procs.last().unwrap()) {
            traced_run = Some((p, r));
        }
    }

    let (traced_p, traced) = traced_run.expect("at least one processor count");
    let traces = traced.stats.traces().expect("run was traced");
    let matrix = obs::CommMatrix::from_traces(&traces);
    doc.detail("comm_matrix_p", Json::U64(traced_p as u64));
    doc.detail("comm_matrix", matrix.to_json());

    if let Some(path) = &opts.metrics {
        doc.write(path)
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("# metrics written to {}", path.display());
    }
    if let Some(path) = &opts.trace {
        let text = obs::chrome_trace(&traces);
        std::fs::write(path, &text).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!(
            "# chrome trace (p={traced_p}) written to {} — open in Perfetto",
            path.display()
        );
    }

    if opts.check {
        if let Some(path) = &opts.metrics {
            let text = std::fs::read_to_string(path).expect("re-reading metrics");
            let rows = obs::metrics::validate_metrics(&text)
                .unwrap_or_else(|e| panic!("metrics file invalid: {e}"));
            println!("# check: metrics OK ({rows} rows)");
        }
        if let Some(path) = &opts.trace {
            let text = std::fs::read_to_string(path).expect("re-reading trace");
            let events = obs::validate_chrome_trace(&text)
                .unwrap_or_else(|e| panic!("chrome trace invalid: {e}"));
            println!("# check: chrome trace OK ({events} events)");
        }
        println!("# check: exact per-rank accounting held for all runs");
    }
}
