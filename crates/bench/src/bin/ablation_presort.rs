//! **ABL-PRESORT** — the presort ablation (paper §1/§2).
//!
//! "The classifiers such as CART and C4.5 perform sorting at every node of
//! the decision tree, which makes them very expensive for large datasets
//! … The approach taken by SLIQ and SPRINT sorts the continuous attributes
//! only once in the beginning."
//!
//! This harness compares serial SPRINT (presort once, split sorted lists)
//! against the CART-style re-sorter on the same data. Both produce the
//! identical tree; the difference is pure sorting work, so the headline
//! column is **sort-work ratio** (elements pushed through per-node sorts vs
//! the one-time presort) — it grows with tree depth. Wall time is reported
//! too, but note the modern cost balance differs from 1996: SPRINT's
//! in-memory hash-probe splitting is itself expensive, while the paper's
//! setting had out-of-core sorts whose cost dwarfed everything (see the
//! `ooc_passes` harness for that regime).
//!
//! Run: `cargo run --release -p scalparc-bench --bin ablation_presort`

use std::time::Instant;

use dtree::cart::{self, CartConfig};
use dtree::sprint::{self, SprintConfig};
use scalparc_bench::{print_row, BenchOpts};

fn main() {
    let opts = BenchOpts::from_args();
    let sizes = opts.scale.dataset_sizes();

    println!("# Serial SPRINT (presort once) vs CART-style per-node re-sorting");
    print_row(&[
        "N".into(),
        "noise".into(),
        "depth".into(),
        "sort-ratio".into(),
        "resorted".into(),
        "presorted".into(),
        "sprint(s)".into(),
        "cart(s)".into(),
    ]);

    let noises = [0.0, 0.10];
    for &n in &sizes {
        for &noise in &noises {
            // The largest sizes are quadratic-ish for CART; cap the ablation.
            if n > 1_000_000 {
                println!("# (skipping N={n}: CART-style baseline becomes impractical — the point)");
                continue;
            }
            let data = datagen::generate(&datagen::GenConfig {
                n,
                func: opts.func,
                noise,
                seed: opts.seed,
                profile: datagen::Profile::Paper7,
            });
            let cont_attrs = data.schema.continuous_attrs().len();

            let t0 = Instant::now();
            let (tree_s, _) = sprint::induce_with_stats(&data, &SprintConfig::default());
            let sprint_t = t0.elapsed().as_secs_f64();

            let t0 = Instant::now();
            let (tree_c, stats_c) = cart::induce_with_stats(&data, &CartConfig::default());
            let cart_t = t0.elapsed().as_secs_f64();

            assert_eq!(tree_s, tree_c, "both classifiers must induce the same tree");

            let presorted = (cont_attrs * n) as u64;
            print_row(&[
                opts.scale.size_label(n),
                format!("{noise:.2}"),
                tree_s.depth().to_string(),
                format!("{:.1}", stats_c.sorted_elements as f64 / presorted as f64),
                stats_c.sorted_elements.to_string(),
                presorted.to_string(),
                format!("{sprint_t:.3}"),
                format!("{cart_t:.3}"),
            ]);
        }
    }
    println!();
    println!("# 'resorted' = elements passed through per-node sorts (CART-style);");
    println!("# 'presorted' = elements sorted once by SPRINT's presort. The ratio");
    println!("# grows with tree depth — with noise (deep trees) re-sorting does an");
    println!("# order of magnitude more sorting work, and in the paper's out-of-core");
    println!("# regime every one of those elements costs disk I/O.");
}
