//! **CHAOS-FOREST** — fault injection, per-tree checkpointing, tree
//! rescheduling, and degraded-quorum serving for the forest engine.
//!
//! The bin runs four scenario families and asserts, on every single run,
//! that faults cost simulated time but never correctness:
//!
//! 1. **Crash grid** — for every processor count in the sweep, a crash is
//!    injected at every `(group × tree level)` cell of the fault-free
//!    baseline, under both recovery policies:
//!    [`ForestRecoveryPolicy::RetryInPlace`] (restore the dead group's
//!    newest per-tree checkpoint and re-run on the same machine) and
//!    [`ForestRecoveryPolicy::Reschedule`] (declare the group dead and
//!    re-plan its remaining trees onto survivors). Every recovered forest
//!    must be **byte-identical** (via `model_io::forest_to_text`) to the
//!    fault-free baseline — per-tree-index bagging seeds make a rescheduled
//!    tree the exact twin of its fault-free sibling, whatever machine
//!    finishes it.
//! 2. **Degraded-quorum curve** — a 16-tree bagged forest is compiled and
//!    served with `k = 0..=8` member trees masked out
//!    ([`FlatForest::with_missing`]); held-out accuracy per `k` is reported
//!    and gated (bounded loss vs the full forest, always better than a
//!    coin), and the quorum floor is exercised: below `quorum_min` the
//!    forest reports `below_quorum` and the serving harness turns
//!    `Degraded`.
//! 3. **Damaged container** — one tree section of a saved forest container
//!    is bit-flipped; [`load_forest`] must isolate the hit tree (typed
//!    per-tree verdicts), and the surviving subset must serve — including
//!    through [`score_forest_distributed_partial`] where replica ranks
//!    hold different partial forests.
//! 4. **Wasted-work accounting** — per-cell recovery rollups (attempts,
//!    re-executed levels, wasted simulated time/bytes, reschedule events)
//!    from the per-tree [`RecoveryReport`]s, plus the strict-freeness
//!    check: recovery with an empty [`ForestFaultPlan`] and no checkpoint
//!    context charges the **exact** fault-free cost (equal simulated
//!    clocks and byte counters).
//!
//! Artifacts:
//!
//! * `--metrics <path>` — `scalparc-metrics/v1` rows: one per crash-grid
//!   cell, one per quorum-curve point, one per damaged-container verdict;
//! * `--check` — re-validate the metrics file and fail loudly otherwise;
//! * `--smoke` — fixed tiny configuration (p=4, one crash per policy,
//!   determinism + empty-plan cost parity); exits nonzero on any
//!   violation. CI runs this.
//!
//! Run: `cargo run --release -p scalparc-bench --bin chaos_forest -- \
//!          [--quick|--full] [--func F1..F10] [--seed <u64>] [--n <records>] \
//!          [--procs 2,4,8] [--metrics m.json] [--check] [--smoke]`

use std::path::PathBuf;

use datagen::{generate, ClassFunc, GenConfig, Profile};
use dtree::flat_forest::{FlatForest, VoteReduce};
use dtree::model_io;
use mpsim::obs::{self, Json};
use mpsim::{CostModel, CrashPoint, FaultPlan, MachineCfg};
use scalparc::forest::{
    self, train_forest, train_forest_with_recovery, ForestCheckpointCtx, ForestConfig,
    ForestFaultPlan, ForestRecoveryPolicy, ForestResult, TreeVerdict,
};
use scalparc::ParConfig;
use scalparc_bench::{print_row, Scale, T3D_CPU_FACTOR};
use serve::{score_forest_distributed, score_forest_distributed_partial};

/// Training-set label noise for the quorum curve: bagging only has
/// something to average away when the labels are imperfect.
const TRAIN_NOISE: f64 = 0.08;

/// Maximum held-out accuracy a 16-tree forest may lose when half its
/// members go missing. Majority voting over the surviving 8 bagged trees
/// stays close to the full vote; the gate catches a serving path that
/// silently mis-weights or drops the wrong trees.
const QUORUM_LOSS_BOUND: f64 = 0.08;

struct Opts {
    scale: Scale,
    func: ClassFunc,
    seed: u64,
    n: Option<usize>,
    procs: Option<Vec<usize>>,
    metrics: Option<PathBuf>,
    check: bool,
    smoke: bool,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        scale: Scale::Default,
        func: ClassFunc::F2,
        seed: 42,
        n: None,
        procs: None,
        metrics: None,
        check: false,
        smoke: false,
    };
    let mut args = std::env::args().skip(1);
    let need = |what: &str, v: Option<String>| v.unwrap_or_else(|| panic!("{what} needs a value"));
    while let Some(a) = args.next() {
        match a.as_str() {
            "--full" => opts.scale = Scale::Full,
            "--quick" => opts.scale = Scale::Quick,
            "--func" => {
                let f = need("--func", args.next());
                opts.func = ClassFunc::parse(&f)
                    .unwrap_or_else(|| panic!("unknown function {f:?} (want F1..F10)"));
            }
            "--seed" => {
                opts.seed = need("--seed", args.next())
                    .parse()
                    .expect("--seed wants a u64")
            }
            "--n" => opts.n = Some(need("--n", args.next()).parse().expect("--n wants a usize")),
            "--procs" => {
                opts.procs = Some(
                    need("--procs", args.next())
                        .split(',')
                        .map(|p| p.trim().parse().expect("--procs wants p1,p2,..."))
                        .collect(),
                );
            }
            "--metrics" => opts.metrics = Some(need("--metrics", args.next()).into()),
            "--check" => opts.check = true,
            "--smoke" => opts.smoke = true,
            other => panic!(
                "unknown flag {other:?} (known: --full --quick --func --seed --n \
                 --procs --metrics --check --smoke)"
            ),
        }
    }
    opts
}

fn chaos_cfg(p: usize) -> ParConfig {
    ParConfig {
        cost: CostModel::t3d_scaled(T3D_CPU_FACTOR),
        ..ParConfig::new(p)
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "scalparc-chaos-forest-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn pct(over: u64, base: u64) -> f64 {
    if base == 0 {
        0.0
    } else {
        (over as f64 - base as f64) / base as f64 * 100.0
    }
}

fn policy_name(policy: ForestRecoveryPolicy) -> &'static str {
    match policy {
        ForestRecoveryPolicy::RetryInPlace => "retry_in_place",
        ForestRecoveryPolicy::Reschedule => "reschedule",
    }
}

fn assert_forest_matches(got: &ForestResult, want_text: &str, what: &str) {
    let text = model_io::forest_to_text(&got.trees);
    assert!(
        text == want_text,
        "{what}: recovered forest differs from the fault-free baseline"
    );
}

fn main() {
    let opts = parse_args();
    if opts.smoke {
        smoke(&opts);
        return;
    }

    let (n, n_trees, procs) = match opts.scale {
        Scale::Quick => (1_500, 3usize, vec![2usize, 4]),
        Scale::Default => (3_000, 4, vec![2, 4, 8]),
        Scale::Full => (8_000, 8, vec![2, 4, 8, 16]),
    };
    let n = opts.n.unwrap_or(n);
    let procs = opts.procs.clone().unwrap_or(procs);

    let data = generate(&GenConfig {
        n,
        func: opts.func,
        noise: 0.0,
        seed: opts.seed,
        profile: Profile::Paper7,
    });
    let fcfg = ForestConfig {
        n_trees,
        bootstrap: 1.0,
        feature_frac: 0.8,
        seed: opts.seed,
        ..ForestConfig::default()
    };

    println!("# CHAOS-FOREST: fault-tolerant forest induction and degraded-quorum serving");
    println!(
        "# workload: Quest {:?}, {n} records, {n_trees} trees, seed {}, procs {:?}",
        opts.func, opts.seed, procs
    );
    println!();

    let mut doc = obs::MetricsDoc::new("chaos-forest");
    doc.config("n", Json::U64(n as u64));
    doc.config("func", Json::str(format!("{:?}", opts.func)));
    doc.config("seed", Json::U64(opts.seed));
    doc.config("n_trees", Json::U64(n_trees as u64));
    doc.config(
        "procs",
        Json::Arr(procs.iter().map(|&p| Json::U64(p as u64)).collect()),
    );
    doc.config("cost_model", Json::str("t3d_scaled"));

    // ---- Scenario 1 + 4: crash grid with recovery rollups. ------------
    let policies = [
        ForestRecoveryPolicy::RetryInPlace,
        ForestRecoveryPolicy::Reschedule,
    ];
    let mut run_id = 0u64;
    let ckpt_root = tmp_dir("grid");
    let mut grid_cells = 0u64;
    for &p in &procs {
        let par = chaos_cfg(p);
        let baseline = train_forest(&data, &fcfg, &par);
        let base_text = model_io::forest_to_text(&baseline.trees);
        let base_ns = baseline.train_time_ns();
        let groups = baseline.plan.groups.len();

        // Strict freeness: the recovery driver with nothing installed and
        // no checkpoint context must charge the exact fault-free cost.
        let idle = train_forest_with_recovery(
            &data,
            &fcfg,
            &par,
            &ForestFaultPlan::new(),
            None,
            ForestRecoveryPolicy::RetryInPlace,
        );
        assert_forest_matches(&idle.result, &base_text, "uninstalled fault layer");
        assert_eq!(
            idle.result.train_time_ns(),
            base_ns,
            "empty fault plan must charge the exact baseline clock at p={p}"
        );
        assert_eq!(
            idle.result.total_bytes_sent(),
            baseline.total_bytes_sent(),
            "empty fault plan must charge the exact baseline bytes at p={p}"
        );
        assert_eq!(idle.report.crashes, 0);

        println!(
            "# p={p}: {} ({groups} groups), baseline {:.3} ms — crash grid over every (group x level) x policy",
            baseline.plan.label(),
            base_ns as f64 / 1e6
        );
        print_row(&[
            "group".into(),
            "level".into(),
            "policy".into(),
            "time_ms".into(),
            "overhead%".into(),
            "attempts".into(),
            "reexec_lvls".into(),
            "resched".into(),
        ]);

        for gi in 0..groups {
            // Crash levels span the first tree the group trains: the crash
            // fires during that tree, and deeper cells than its depth would
            // never trigger.
            let first_tree = baseline.plan.groups[gi].trees[0];
            let levels = baseline.per_tree[first_tree].levels;
            let victim_rank = baseline.plan.groups[gi].procs - 1;
            for level in 0..levels {
                for policy in policies {
                    let faults = ForestFaultPlan::new().with_group(
                        gi,
                        FaultPlan::new().with_crash(victim_rank, CrashPoint::Level(level)),
                    );
                    run_id += 1;
                    let ckpt = ForestCheckpointCtx::new(&ckpt_root, run_id);
                    let out = train_forest_with_recovery(
                        &data,
                        &fcfg,
                        &par,
                        &faults,
                        Some(&ckpt),
                        policy,
                    );
                    assert_forest_matches(
                        &out.result,
                        &base_text,
                        &format!("p={p} group={gi} level={level} policy={policy:?}"),
                    );
                    assert_eq!(
                        out.report.crashes, 1,
                        "exactly one injected crash must fire"
                    );
                    match policy {
                        ForestRecoveryPolicy::RetryInPlace => {
                            assert!(out.report.rescheduled.is_empty());
                            assert!(out.report.dead_groups.is_empty());
                        }
                        ForestRecoveryPolicy::Reschedule => {
                            if groups > 1 {
                                assert_eq!(out.report.dead_groups, vec![gi]);
                                assert!(
                                    !out.report.rescheduled.is_empty(),
                                    "a dead group's trees must move to survivors"
                                );
                            }
                        }
                    }
                    let t = out.result.train_time_ns();
                    print_row(&[
                        gi.to_string(),
                        level.to_string(),
                        policy_name(policy).into(),
                        format!("{:.3}", t as f64 / 1e6),
                        format!("{:.1}", pct(t, base_ns)),
                        out.report.attempts.to_string(),
                        out.report.reexecuted_levels.to_string(),
                        out.report.rescheduled.len().to_string(),
                    ]);
                    doc.row(vec![
                        ("scenario", Json::str("crash_grid")),
                        ("procs", Json::U64(p as u64)),
                        ("group", Json::U64(gi as u64)),
                        ("crash_level", Json::U64(level as u64)),
                        ("policy", Json::str(policy_name(policy))),
                        ("baseline_ns", Json::U64(base_ns)),
                        ("time_ns", Json::U64(t)),
                        ("recovery_overhead_pct", Json::F64(pct(t, base_ns))),
                        ("attempts", Json::U64(out.report.attempts as u64)),
                        ("crashes", Json::U64(out.report.crashes as u64)),
                        (
                            "reexecuted_levels",
                            Json::U64(out.report.reexecuted_levels as u64),
                        ),
                        ("wasted_time_ns", Json::U64(out.report.wasted_time_ns)),
                        ("wasted_bytes", Json::U64(out.report.wasted_bytes)),
                        (
                            "rescheduled_trees",
                            Json::U64(out.report.rescheduled.len() as u64),
                        ),
                        (
                            "generations_walked",
                            Json::U64(out.report.generations_walked as u64),
                        ),
                    ]);
                    grid_cells += 1;
                }
            }
        }
        println!();
    }
    let _ = std::fs::remove_dir_all(&ckpt_root);
    println!(
        "# crash grid: {grid_cells} cells, every recovered forest byte-identical to its baseline"
    );
    doc.detail("crash_grid_cells", Json::U64(grid_cells));
    doc.detail("crash_grid_all_identical", Json::Bool(true));
    println!();

    // ---- Scenario 2: accuracy vs missing trees (degraded quorum). -----
    let n_serve_trees = 16usize;
    let max_missing = 8usize;
    let quorum_min = n_serve_trees - max_missing; // 8: the 9th loss turns Degraded
    let train = generate(&GenConfig {
        n,
        func: opts.func,
        noise: TRAIN_NOISE,
        seed: opts.seed,
        profile: Profile::Paper7,
    });
    let test = generate(&GenConfig {
        n,
        func: opts.func,
        noise: 0.0,
        seed: opts.seed ^ 0x5EED_7E57,
        profile: Profile::Paper7,
    });
    let serve_forest = train_forest(
        &train,
        &ForestConfig {
            n_trees: n_serve_trees,
            bootstrap: 1.0,
            feature_frac: 0.8,
            seed: opts.seed,
            ..ForestConfig::default()
        },
        &chaos_cfg(8),
    );
    let full = FlatForest::compile(&serve_forest.trees, VoteReduce::Majority)
        .with_planned(n_serve_trees)
        .with_quorum_min(quorum_min);
    let acc_full = full.accuracy(&test);
    println!(
        "# degraded serving: {n_serve_trees}-tree forest, quorum_min={quorum_min}, accuracy vs missing trees"
    );
    print_row(&[
        "missing".into(),
        "serving".into(),
        "test acc".into(),
        "below_quorum".into(),
    ]);
    for k in 0..=max_missing {
        // Knock out trees deterministically from the front: tree i is
        // missing iff i < k.
        let mask: Vec<bool> = (0..n_serve_trees).map(|i| i < k).collect();
        let degraded = full.with_missing(&mask);
        let acc = degraded.accuracy(&test);
        assert_eq!(degraded.n_trees(), n_serve_trees - k);
        assert_eq!(degraded.planned(), n_serve_trees);
        assert_eq!(degraded.missing(), k);
        assert!(
            !degraded.below_quorum(),
            "k={k} missing of {n_serve_trees} must stay at or above quorum {quorum_min}"
        );
        assert!(
            acc >= acc_full - QUORUM_LOSS_BOUND,
            "losing {k} of {n_serve_trees} trees cost more than {QUORUM_LOSS_BOUND} accuracy: \
             {acc:.4} vs full {acc_full:.4}"
        );
        assert!(
            acc > 0.5,
            "a degraded forest must still beat a coin: {acc:.4}"
        );

        // Distributed serving with the same mask on every replica must
        // reproduce the serial degraded confusion matrix.
        if k == max_missing {
            let p = 4;
            let masks = vec![mask.clone(); p];
            let d = score_forest_distributed_partial(
                &serve_forest.trees,
                VoteReduce::Majority,
                &test,
                &MachineCfg::new(p),
                &masks,
            );
            assert!(
                (d.accuracy - acc).abs() < 1e-12,
                "distributed partial scoring diverged from serial with_missing"
            );
            println!("# distributed partial replicas (p={p}, {k} missing) reproduce the serial degraded vote");
        }
        print_row(&[
            k.to_string(),
            format!("{}/{}", n_serve_trees - k, n_serve_trees),
            format!("{acc:.4}"),
            degraded.below_quorum().to_string(),
        ]);
        doc.row(vec![
            ("scenario", Json::str("accuracy_vs_missing")),
            ("planned_trees", Json::U64(n_serve_trees as u64)),
            ("missing", Json::U64(k as u64)),
            ("quorum_min", Json::U64(quorum_min as u64)),
            ("test_accuracy", Json::F64(acc)),
            ("below_quorum", Json::Bool(false)),
        ]);
    }
    // One more loss crosses the floor: still votes, but flags Degraded.
    let mask: Vec<bool> = (0..n_serve_trees).map(|i| i <= max_missing).collect();
    let under = full.with_missing(&mask);
    assert!(
        under.below_quorum(),
        "{} survivors must sit below quorum {quorum_min}",
        under.n_trees()
    );
    println!(
        "# quorum floor: {} of {n_serve_trees} trees -> below_quorum (serving harness reports Degraded)",
        under.n_trees()
    );
    doc.detail("quorum_floor_detected", Json::Bool(true));
    doc.detail("full_forest_test_accuracy", Json::F64(acc_full));
    println!();

    // ---- Scenario 3: damaged container, typed verdicts, partial load. --
    let io_root = tmp_dir("io");
    std::fs::create_dir_all(&io_root).expect("creating container dir");
    let path = io_root.join("forest.bin");
    forest::save_forest(&serve_forest.trees, &path).expect("saving forest");
    let victim = n_serve_trees / 2;
    forest::damage_tree_section(&path, victim).expect("damaging tree section");
    let verdict = forest::load_forest(&path).expect("damaged container still walks");
    assert_eq!(verdict.planned, n_serve_trees);
    assert_eq!(verdict.n_ok(), n_serve_trees - 1);
    assert!(
        matches!(verdict.trees[victim], TreeVerdict::Corrupt(_)),
        "the bit-flipped tree must read back Corrupt"
    );
    let survivors = verdict.surviving();
    let served = FlatForest::compile(&survivors, VoteReduce::Majority)
        .with_planned(verdict.planned)
        .with_quorum_min(quorum_min);
    let acc_partial = served.accuracy(&test);
    assert!(!served.below_quorum());
    assert!(acc_partial >= acc_full - QUORUM_LOSS_BOUND);
    // Replica ranks holding different partial forests: rank `victim % p`
    // lost the damaged tree, the others load clean.
    let p = 4;
    let masks: Vec<Vec<bool>> = (0..p)
        .map(|r| {
            if r == victim % p {
                verdict.missing_mask()
            } else {
                vec![]
            }
        })
        .collect();
    let het = score_forest_distributed_partial(
        &serve_forest.trees,
        VoteReduce::Majority,
        &test,
        &MachineCfg::new(p),
        &masks,
    );
    println!(
        "# damaged container: tree {victim} Corrupt, {} of {n_serve_trees} load Ok, survivors serve at {acc_partial:.4} \
         (heterogeneous replicas: {:.4})",
        verdict.n_ok(),
        het.accuracy
    );
    doc.row(vec![
        ("scenario", Json::str("damaged_container")),
        ("planned_trees", Json::U64(n_serve_trees as u64)),
        ("damaged_tree", Json::U64(victim as u64)),
        ("trees_ok", Json::U64(verdict.n_ok() as u64)),
        ("survivor_accuracy", Json::F64(acc_partial)),
        ("heterogeneous_replica_accuracy", Json::F64(het.accuracy)),
    ]);
    let _ = std::fs::remove_dir_all(&io_root);
    println!();

    println!(
        "# headline: {grid_cells} crash cells recovered byte-identical; half-missing forest serves at \
         {:.4} vs {acc_full:.4} full",
        full.with_missing(&(0..n_serve_trees).map(|i| i < max_missing).collect::<Vec<_>>())
            .accuracy(&test)
    );

    if let Some(path) = &opts.metrics {
        doc.write(path)
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("# metrics written to {}", path.display());
    }
    if opts.check {
        if let Some(path) = &opts.metrics {
            let text = std::fs::read_to_string(path).expect("re-reading metrics");
            let rows = obs::metrics::validate_metrics(&text)
                .unwrap_or_else(|e| panic!("metrics file invalid: {e}"));
            println!("# check: metrics OK ({rows} rows)");
        }
        println!("# check: every recovered forest reproduced the baseline bytes");
    }
}

/// Fixed tiny configuration for CI: p=4, one crash per recovery policy,
/// full byte-identity, determinism, and strict-freeness assertions.
/// Panics (nonzero exit) on any violation.
fn smoke(opts: &Opts) {
    let p = 4;
    let n = opts.n.unwrap_or(2_000);
    let data = generate(&GenConfig {
        n,
        func: ClassFunc::F2,
        noise: 0.0,
        seed: opts.seed,
        profile: Profile::Paper7,
    });
    let fcfg = ForestConfig {
        n_trees: 2,
        bootstrap: 1.0,
        feature_frac: 0.8,
        seed: opts.seed,
        ..ForestConfig::default()
    };
    let par = chaos_cfg(p);

    // Fault-free baseline: 2 trees on 4 ranks = 2 groups x 2 ranks.
    let baseline = train_forest(&data, &fcfg, &par);
    let base_text = model_io::forest_to_text(&baseline.trees);
    assert_eq!(baseline.plan.groups.len(), 2);
    let crash_level = baseline.per_tree[1].levels / 2;
    assert!(
        baseline.per_tree[1].levels >= 2,
        "smoke workload too shallow to crash mid-tree"
    );

    // Strict freeness: empty plan, no checkpoints — exact baseline cost.
    let idle = train_forest_with_recovery(
        &data,
        &fcfg,
        &par,
        &ForestFaultPlan::new(),
        None,
        ForestRecoveryPolicy::RetryInPlace,
    );
    assert_forest_matches(&idle.result, &base_text, "smoke idle recovery");
    assert_eq!(idle.result.train_time_ns(), baseline.train_time_ns());
    assert_eq!(idle.result.total_bytes_sent(), baseline.total_bytes_sent());
    assert_eq!(idle.report.attempts, fcfg.n_trees as u32);
    assert_eq!(idle.report.crashes, 0);

    // Crash group 1's rank 1 mid-tree; recover in place; byte-identity and
    // run-to-run determinism.
    let faults = ForestFaultPlan::new().with_group(
        1,
        FaultPlan::new().with_crash(1, CrashPoint::Level(crash_level)),
    );
    let run_once = |tag: &str, policy: ForestRecoveryPolicy| {
        let root = tmp_dir(tag);
        let ckpt = ForestCheckpointCtx::new(&root, 1);
        let out = train_forest_with_recovery(&data, &fcfg, &par, &faults, Some(&ckpt), policy);
        let _ = std::fs::remove_dir_all(&root);
        out
    };
    let rec1 = run_once("smoke-1", ForestRecoveryPolicy::RetryInPlace);
    let rec2 = run_once("smoke-2", ForestRecoveryPolicy::RetryInPlace);
    assert_forest_matches(&rec1.result, &base_text, "smoke retry-in-place (run 1)");
    assert_forest_matches(&rec2.result, &base_text, "smoke retry-in-place (run 2)");
    assert_eq!(rec1.report.attempts, 3, "two trees plus one retry");
    assert_eq!(rec1.report.crashes, 1);
    assert!(rec1.report.reexecuted_levels >= 1);
    assert!(rec1.report.rescheduled.is_empty());
    assert_eq!(rec1.result.train_time_ns(), rec2.result.train_time_ns());
    assert_eq!(rec1.report.attempts, rec2.report.attempts);
    assert_eq!(rec1.report.reexecuted_levels, rec2.report.reexecuted_levels);
    assert_eq!(rec1.report.wasted_bytes, rec2.report.wasted_bytes);
    assert_eq!(rec1.report.wasted_time_ns, rec2.report.wasted_time_ns);

    // Same crash under Reschedule: group 1 dies, its tree moves to group 0,
    // and the rescheduled tree is still the byte-identical twin.
    let res = run_once("smoke-3", ForestRecoveryPolicy::Reschedule);
    assert_forest_matches(&res.result, &base_text, "smoke reschedule");
    assert_eq!(res.report.dead_groups, vec![1]);
    assert!(!res.report.rescheduled.is_empty());
    assert_eq!(res.result.per_tree[1].rescheduled_from, Some(1));

    // Damaged container: the hit tree isolates, the survivor serves.
    let root = tmp_dir("smoke-io");
    std::fs::create_dir_all(&root).expect("creating container dir");
    let path = root.join("forest.bin");
    forest::save_forest(&baseline.trees, &path).expect("saving forest");
    forest::damage_tree_section(&path, 0).expect("damaging tree 0");
    let verdict = forest::load_forest(&path).expect("damaged container still walks");
    assert!(matches!(verdict.trees[0], TreeVerdict::Corrupt(_)));
    assert!(verdict.trees[1].is_ok());
    assert_eq!(verdict.n_ok(), 1);
    let _ = std::fs::remove_dir_all(&root);

    // Distributed full-forest scoring still agrees with itself under a
    // partial call carrying empty masks (the no-damage fast path).
    let full = score_forest_distributed(
        &baseline.trees,
        VoteReduce::Majority,
        &data,
        &MachineCfg::new(p),
    );
    let partial = score_forest_distributed_partial(
        &baseline.trees,
        VoteReduce::Majority,
        &data,
        &MachineCfg::new(p),
        &vec![vec![]; p],
    );
    assert!((full.accuracy - partial.accuracy).abs() < 1e-12);

    println!(
        "# chaos-forest smoke OK: p={p}, n={n}, crash at level {crash_level} recovered under both \
         policies, byte-identical forests, empty-plan cost parity, damaged container isolated"
    );
}
