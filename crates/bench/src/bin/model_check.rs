//! **MODEL-CHECK** — validate the closed-form runtime model against the
//! simulator.
//!
//! The paper's scalability argument is analytical: per level, computation
//! divides by p while communication overhead stays O(N/p) per processor.
//! `scalparc::analysis::AnalyticModel` turns that argument into a formula
//! (serial compute / p + closed-form per-level communication from the cost
//! model and the level trace). This harness fits the single free parameter
//! (serial compute, from the p = 1 run) and compares prediction with
//! measurement across the sweep. Agreement within tens of percent means the
//! measured Figure 3(a) shapes really are produced by the mechanism the
//! paper describes, not by simulator artifacts; the residual is load
//! imbalance, which the closed form cannot see.
//!
//! Run: `cargo run --release -p scalparc-bench --bin model_check`

use mpsim::CostModel;
use scalparc::analysis::AnalyticModel;
use scalparc::Algorithm;
use scalparc_bench::{print_row, BenchOpts, T3D_CPU_FACTOR};

fn main() {
    let opts = BenchOpts::from_args();
    let sizes = opts.scale.dataset_sizes();
    let n = sizes[1]; // second-smallest keeps the run quick
    let data = opts.dataset(n);
    let procs: Vec<usize> = opts.scale.procs();

    // Fit: serial compute from the p = 1 run (which also yields the trace).
    let serial = scalparc_bench::run_measured(&data, 1, Algorithm::ScalParc);
    let model = AnalyticModel {
        serial_compute_ns: serial.stats.ranks[0].compute_ns,
        cost: CostModel::t3d_scaled(T3D_CPU_FACTOR),
    };

    println!(
        "# Closed-form model vs simulator at N = {} (fit: serial compute {:.3}s)",
        opts.scale.size_label(n),
        serial.stats.ranks[0].compute_ns as f64 / 1e9
    );
    print_row(&[
        "p".into(),
        "measured".into(),
        "predicted".into(),
        "err %".into(),
    ]);
    let mut errs = Vec::new();
    for &p in &procs {
        let measured = if p == 1 {
            serial.stats.time_s()
        } else {
            scalparc_bench::run_measured(&data, p, Algorithm::ScalParc)
                .stats
                .time_s()
        };
        let predicted = model.predict_s(&serial.trace, &data.schema, n as u64, p);
        let err = (predicted - measured) / measured * 100.0;
        errs.push(err.abs());
        print_row(&[
            p.to_string(),
            format!("{measured:.4}"),
            format!("{predicted:.4}"),
            format!("{err:+.1}"),
        ]);
    }
    println!();
    let mean = errs.iter().sum::<f64>() / errs.len() as f64;
    println!("# mean |error| {mean:.1}% — the residual is per-rank load imbalance");
    println!("# (the model assumes perfect division of compute), plus measurement noise.");
}
