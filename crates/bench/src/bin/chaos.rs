//! **CHAOS** — deterministic fault injection, checkpoint/restart, and
//! recovery overhead across machine sizes.
//!
//! For every processor count in the sweep this bin runs:
//!
//! 1. a **fault-free baseline** (no checkpoints) — the reference tree and
//!    simulated completion time;
//! 2. a **checkpointed fault-free run** — the steady-state checkpoint tax
//!    (per-level snapshot I/O charged analytically to the virtual clock);
//! 3. a **crash + recovery** run — one rank dies at the middle tree level,
//!    the recovery driver restores the newest complete checkpoint and
//!    re-runs induction; overhead is the aborted attempt's simulated time
//!    plus the checkpoint tax of the retry;
//! 4. a **message-fault sweep** — drop/corrupt faults at the given rates
//!    (per-mille per collective), absorbed by detect-and-retransmit inside
//!    the collectives.
//!
//! Every faulted or recovered run must induce a tree **byte-identical**
//! (via `model_io` text serialization) to the baseline — asserted on every
//! run, every p, every rate. Faults cost time, never correctness.
//!
//! Artifacts:
//!
//! * `--metrics <path>` — `scalparc-metrics/v1` rows per (p, scenario):
//!   recovery overhead %, re-executed levels, bytes re-communicated,
//!   retransmit counts;
//! * `--trace <path>` — Chrome `trace_event` JSON of a traced faulted run
//!   at `--trace-p`, with fault events on their own per-rank track
//!   (thread name `faults`);
//! * `--check` — re-validate both artifacts and fail loudly otherwise;
//! * `--smoke` — fixed tiny configuration (p=4, one injected crash),
//!   asserting recovery equivalence and run-to-run determinism; exits
//!   nonzero on any violation. CI runs this.
//!
//! Elastic-recovery modes (run instead of the main sweep; CI's
//! `rescale-smoke` step drives both):
//!
//! * `--rescale` — restore-grid: checkpoints written at each `p` of the
//!   sweep are restored and completed at every other `p'`, asserting the
//!   final tree matches the fault-free baseline; plus a crash-then-shrink
//!   run under `RecoveryPolicy::Shrink`. Rows report `redistribution_bytes`
//!   (the surplus restore I/O of re-blocking) per (write-p, restore-p').
//! * `--storage-faults` — silent checkpoint corruption: a bit-flipped
//!   newest generation must be skipped (restore lands one generation
//!   back), and an all-corrupt directory must fall back to a clean fresh
//!   start. Rows report `generations_walked`.
//!
//! Run: `cargo run --release -p scalparc-bench --bin chaos -- \
//!          [--quick|--full] [--n <records>] [--procs 2,4,8] \
//!          [--rates 0,10,50] [--metrics m.json] [--trace t.json] \
//!          [--trace-p 4] [--check] [--smoke] [--rescale] [--storage-faults]`

use std::path::PathBuf;
use std::sync::Arc;

use datagen::{generate, ClassFunc, GenConfig, Profile};
use dtree::model_io;
use dtree::Dataset;
use mpsim::obs::{self, Json};
use mpsim::{CostModel, CrashPoint, FaultKind, FaultPlan, StorageFaultKind};
use scalparc::{
    checkpoint, induce, induce_with_recovery, induce_with_recovery_policy, try_induce,
    CheckpointCtx, ParConfig, ParResult, RecoveryPolicy, RecoveryResult,
};
use scalparc_bench::{print_row, Scale, T3D_CPU_FACTOR};

/// Collective-sequence horizon for random message-fault plans: far beyond
/// any induction in this sweep, so the whole run is exposed to the rate.
const FAULT_HORIZON: u64 = 10_000;

struct Opts {
    scale: Scale,
    func: ClassFunc,
    seed: u64,
    n: Option<usize>,
    procs: Option<Vec<usize>>,
    rates: Vec<u64>,
    metrics: Option<PathBuf>,
    trace: Option<PathBuf>,
    trace_p: usize,
    check: bool,
    smoke: bool,
    rescale: bool,
    storage_faults: bool,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        scale: Scale::Default,
        func: ClassFunc::F2,
        seed: 42,
        n: None,
        procs: None,
        rates: vec![0, 10, 50],
        metrics: None,
        trace: None,
        trace_p: 4,
        check: false,
        smoke: false,
        rescale: false,
        storage_faults: false,
    };
    let mut args = std::env::args().skip(1);
    let need = |what: &str, v: Option<String>| v.unwrap_or_else(|| panic!("{what} needs a value"));
    while let Some(a) = args.next() {
        match a.as_str() {
            "--full" => opts.scale = Scale::Full,
            "--quick" => opts.scale = Scale::Quick,
            "--func" => {
                let f = need("--func", args.next());
                opts.func = ClassFunc::parse(&f)
                    .unwrap_or_else(|| panic!("unknown function {f:?} (want F1..F10)"));
            }
            "--seed" => {
                opts.seed = need("--seed", args.next())
                    .parse()
                    .expect("--seed wants a u64")
            }
            "--n" => opts.n = Some(need("--n", args.next()).parse().expect("--n wants a usize")),
            "--procs" => {
                opts.procs = Some(
                    need("--procs", args.next())
                        .split(',')
                        .map(|p| p.trim().parse().expect("--procs wants p1,p2,..."))
                        .collect(),
                );
            }
            "--rates" => {
                opts.rates = need("--rates", args.next())
                    .split(',')
                    .map(|r| {
                        r.trim()
                            .parse()
                            .expect("--rates wants r1,r2,... (per-mille)")
                    })
                    .collect();
            }
            "--metrics" => opts.metrics = Some(need("--metrics", args.next()).into()),
            "--trace" => opts.trace = Some(need("--trace", args.next()).into()),
            "--trace-p" => {
                opts.trace_p = need("--trace-p", args.next())
                    .parse()
                    .expect("--trace-p wants a usize");
            }
            "--check" => opts.check = true,
            "--smoke" => opts.smoke = true,
            "--rescale" => opts.rescale = true,
            "--storage-faults" => opts.storage_faults = true,
            other => panic!(
                "unknown flag {other:?} (known: --full --quick --func --seed --n \
                 --procs --rates --metrics --trace --trace-p --check --smoke \
                 --rescale --storage-faults)"
            ),
        }
    }
    opts
}

fn chaos_cfg(p: usize) -> ParConfig {
    ParConfig {
        cost: CostModel::t3d_scaled(T3D_CPU_FACTOR),
        ..ParConfig::new(p)
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scalparc-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn pct(over: u64, base: u64) -> f64 {
    if base == 0 {
        0.0
    } else {
        (over as f64 - base as f64) / base as f64 * 100.0
    }
}

/// A crash at the middle level of the baseline tree, on the last rank.
fn mid_crash_plan(p: usize, baseline_levels: u32) -> FaultPlan {
    FaultPlan::new().with_crash(p - 1, CrashPoint::Level(baseline_levels / 2))
}

fn assert_tree_matches(run: &ParResult, want_text: &str, what: &str) {
    let got = model_io::to_text(&run.tree);
    assert!(
        got == want_text,
        "{what}: induced tree differs from the fault-free baseline"
    );
}

fn main() {
    let opts = parse_args();
    if opts.smoke {
        smoke(&opts);
        return;
    }
    if opts.rescale || opts.storage_faults {
        elastic(&opts);
        return;
    }

    let n = opts.n.unwrap_or_else(|| opts.scale.dataset_sizes()[0]);
    let procs = opts.procs.clone().unwrap_or_else(|| {
        opts.scale
            .procs()
            .into_iter()
            .filter(|&p| (2..=16).contains(&p))
            .collect()
    });
    let data = generate(&GenConfig {
        n,
        func: opts.func,
        noise: 0.0,
        seed: opts.seed,
        profile: Profile::Paper7,
    });

    println!("# Fault injection & recovery (simulated T3D cost model)");
    println!(
        "# workload: Quest {:?}, N = {n}, seed {}; every faulted run must \
         reproduce the baseline tree byte-for-byte",
        opts.func, opts.seed
    );

    let mut doc = obs::MetricsDoc::new("chaos");
    doc.config("n", Json::U64(n as u64));
    doc.config("func", Json::str(format!("{:?}", opts.func)));
    doc.config("seed", Json::U64(opts.seed));
    doc.config(
        "rates_permille",
        Json::Arr(opts.rates.iter().map(|&r| Json::U64(r)).collect()),
    );

    print_row(&[
        "p".into(),
        "scenario".into(),
        "time_ms".into(),
        "overhead%".into(),
        "relevels".into(),
        "retx".into(),
        "resent".into(),
        "wasted".into(),
    ]);

    for &p in &procs {
        let cfg = chaos_cfg(p);
        let baseline = induce(&data, &cfg);
        let base_text = model_io::to_text(&baseline.tree);
        let base_ns = baseline.stats.time_ns();
        print_row(&[
            p.to_string(),
            "baseline".into(),
            format!("{:.3}", base_ns as f64 / 1e6),
            "-".into(),
            "-".into(),
            "0".into(),
            "0".into(),
            "0".into(),
        ]);

        // Steady-state checkpoint tax, no faults.
        let ckpt_dir = tmp_dir(&format!("ckpt-p{p}"));
        let ckpt_run = try_induce(&data, &cfg, None, Some(&CheckpointCtx::new(&ckpt_dir)))
            .expect("no fault plan, no crash");
        assert_tree_matches(&ckpt_run, &base_text, "checkpointed run");
        let ckpt_ns = ckpt_run.stats.time_ns();
        let ckpt_overhead = pct(ckpt_ns, base_ns);
        print_row(&[
            p.to_string(),
            "ckpt".into(),
            format!("{:.3}", ckpt_ns as f64 / 1e6),
            format!("{ckpt_overhead:.1}"),
            "-".into(),
            "0".into(),
            "0".into(),
            "0".into(),
        ]);

        // One crash at the middle level, then recovery from the newest
        // complete checkpoint.
        let rec_dir = tmp_dir(&format!("rec-p{p}"));
        let plan = mid_crash_plan(p, baseline.levels);
        let rec: RecoveryResult = induce_with_recovery(&data, &cfg, Some(Arc::new(plan)), &rec_dir);
        assert_tree_matches(&rec.result, &base_text, "recovered run");
        let rec_total_ns = rec.report.wasted_time_ns + rec.result.stats.time_ns();
        let rec_overhead = pct(rec_total_ns, base_ns);
        print_row(&[
            p.to_string(),
            "crash+rec".into(),
            format!("{:.3}", rec_total_ns as f64 / 1e6),
            format!("{rec_overhead:.1}"),
            rec.report.reexecuted_levels.to_string(),
            "0".into(),
            "0".into(),
            rec.report.wasted_bytes.to_string(),
        ]);
        doc.row(vec![
            ("procs", Json::U64(p as u64)),
            ("scenario", Json::str("crash_recovery")),
            ("rate_permille", Json::U64(0)),
            ("baseline_ns", Json::U64(base_ns)),
            ("time_ns", Json::U64(rec_total_ns)),
            ("ckpt_overhead_pct", Json::F64(ckpt_overhead)),
            ("recovery_overhead_pct", Json::F64(rec_overhead)),
            ("attempts", Json::U64(rec.report.attempts as u64)),
            (
                "reexecuted_levels",
                Json::U64(rec.report.reexecuted_levels as u64),
            ),
            ("bytes_recommunicated", Json::U64(rec.report.wasted_bytes)),
            ("retransmits", Json::U64(0)),
            ("resent_bytes", Json::U64(0)),
        ]);
        let _ = std::fs::remove_dir_all(&ckpt_dir);
        let _ = std::fs::remove_dir_all(&rec_dir);

        // Message-fault sweep: drop/corrupt at the given rates, absorbed by
        // detect-and-retransmit; no checkpoints needed.
        for &rate in &opts.rates {
            let plan = FaultPlan::random_comm(opts.seed ^ rate, rate, FAULT_HORIZON);
            let run = try_induce(&data, &cfg, Some(Arc::new(plan)), None)
                .expect("message faults never crash the run");
            assert_tree_matches(&run, &base_text, "message-faulted run");
            let t = run.stats.time_ns();
            let retx = run.stats.total_retransmits();
            let resent = run.stats.total_resent_bytes();
            print_row(&[
                p.to_string(),
                format!("msg@{rate}permille"),
                format!("{:.3}", t as f64 / 1e6),
                format!("{:.1}", pct(t, base_ns)),
                "-".into(),
                retx.to_string(),
                resent.to_string(),
                "0".into(),
            ]);
            doc.row(vec![
                ("procs", Json::U64(p as u64)),
                ("scenario", Json::str("message_faults")),
                ("rate_permille", Json::U64(rate)),
                ("baseline_ns", Json::U64(base_ns)),
                ("time_ns", Json::U64(t)),
                ("ckpt_overhead_pct", Json::F64(0.0)),
                ("recovery_overhead_pct", Json::F64(pct(t, base_ns))),
                ("attempts", Json::U64(1)),
                ("reexecuted_levels", Json::U64(0)),
                ("bytes_recommunicated", Json::U64(0)),
                ("retransmits", Json::U64(retx)),
                ("resent_bytes", Json::U64(resent)),
            ]);
        }
    }

    // Traced faulted run: fault events land on their own Chrome-trace track
    // (thread name "faults") next to the phase and collective lanes.
    if opts.trace.is_some() || opts.check {
        let p = opts.trace_p;
        let cfg = chaos_cfg(p).traced();
        let plan = FaultPlan::new()
            .with_comm_fault(5, FaultKind::Drop)
            .with_comm_fault(9, FaultKind::Corrupt)
            .with_straggler(p - 1, 3, 12, 2_500);
        let run = try_induce(&data, &cfg, Some(Arc::new(plan)), None)
            .expect("message faults never crash the run");
        let traces = run.stats.traces().expect("run was traced");
        let fault_events: usize = traces.iter().map(|t| t.faults.len()).sum();
        assert!(
            fault_events > 0,
            "traced faulted run recorded no fault events"
        );
        doc.detail("trace_p", Json::U64(p as u64));
        doc.detail("trace_fault_events", Json::U64(fault_events as u64));
        if let Some(path) = &opts.trace {
            let text = obs::chrome_trace(&traces);
            std::fs::write(path, &text)
                .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
            println!(
                "# chrome trace (p={p}, {fault_events} fault events) written to {}",
                path.display()
            );
        }
    }

    if let Some(path) = &opts.metrics {
        doc.write(path)
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("# metrics written to {}", path.display());
    }

    if opts.check {
        if let Some(path) = &opts.metrics {
            let text = std::fs::read_to_string(path).expect("re-reading metrics");
            let rows = obs::metrics::validate_metrics(&text)
                .unwrap_or_else(|e| panic!("metrics file invalid: {e}"));
            println!("# check: metrics OK ({rows} rows)");
        }
        if let Some(path) = &opts.trace {
            let text = std::fs::read_to_string(path).expect("re-reading trace");
            let events = obs::validate_chrome_trace(&text)
                .unwrap_or_else(|e| panic!("chrome trace invalid: {e}"));
            assert!(
                text.contains("\"faults\""),
                "chrome trace is missing the fault track"
            );
            println!("# check: chrome trace OK ({events} events, fault track present)");
        }
        println!("# check: every faulted run reproduced the baseline tree");
    }
}

/// Fixed tiny configuration for CI: p=4, one injected crash, full
/// recovery-equivalence and determinism assertions. Panics (nonzero exit)
/// on any violation.
fn smoke(opts: &Opts) {
    let p = 4;
    let n = opts.n.unwrap_or(2_000);
    let data = generate(&GenConfig {
        n,
        func: ClassFunc::F2,
        noise: 0.0,
        seed: opts.seed,
        profile: Profile::Paper7,
    });
    let cfg = chaos_cfg(p);

    let baseline = induce(&data, &cfg);
    let base_text = model_io::to_text(&baseline.tree);
    assert!(
        baseline.levels >= 2,
        "smoke workload too shallow to crash mid-tree"
    );

    // Crash rank 1 at the middle level; recover; the tree must be
    // byte-identical and the report deterministic across repeats.
    let plan = FaultPlan::new().with_crash(1, CrashPoint::Level(baseline.levels / 2));
    let run_once = |tag: &str| {
        let dir = tmp_dir(tag);
        let rec = induce_with_recovery(&data, &cfg, Some(Arc::new(plan.clone())), &dir);
        let _ = std::fs::remove_dir_all(&dir);
        rec
    };
    let rec1 = run_once("smoke-1");
    let rec2 = run_once("smoke-2");

    assert_tree_matches(&rec1.result, &base_text, "smoke recovery (run 1)");
    assert_tree_matches(&rec2.result, &base_text, "smoke recovery (run 2)");
    assert_eq!(rec1.report.attempts, 2, "exactly one crash, one retry");
    assert_eq!(rec1.report.crashes.len(), 1);
    assert_eq!(rec1.report.crashes[0].rank, 1);
    assert!(rec1.report.reexecuted_levels >= 1);
    // Determinism: identical simulated clocks and identical accounting,
    // run to run.
    assert_eq!(
        rec1.result.stats.time_ns(),
        rec2.result.stats.time_ns(),
        "recovered runs must replay to identical simulated clocks"
    );
    assert_eq!(rec1.report.attempts, rec2.report.attempts);
    assert_eq!(rec1.report.reexecuted_levels, rec2.report.reexecuted_levels);
    assert_eq!(rec1.report.wasted_bytes, rec2.report.wasted_bytes);
    assert_eq!(rec1.report.wasted_time_ns, rec2.report.wasted_time_ns);

    // Message faults: absorbed, tree unchanged, retransmits visible.
    let msg_plan = FaultPlan::random_comm(opts.seed, 50, FAULT_HORIZON);
    let msg_run = try_induce(&data, &cfg, Some(Arc::new(msg_plan)), None)
        .expect("message faults never crash the run");
    assert_tree_matches(&msg_run, &base_text, "smoke message faults");
    assert!(
        msg_run.stats.total_retransmits() > 0,
        "rate 50permille hit nothing"
    );
    assert!(
        msg_run.stats.time_ns() > baseline.stats.time_ns(),
        "retransmits must cost simulated time"
    );

    // Disabled fault layer: an installed-but-empty plan charges the exact
    // baseline costs.
    let idle = try_induce(&data, &cfg, Some(Arc::new(FaultPlan::new())), None).unwrap();
    assert_tree_matches(&idle, &base_text, "smoke empty plan");
    assert_eq!(
        idle.stats.time_ns(),
        baseline.stats.time_ns(),
        "an empty fault plan must be cost-free"
    );

    println!(
        "CHAOS-SMOKE OK: p={p} n={n} | crash at level {} recovered in {} attempts, \
         {} levels re-executed, {} bytes re-communicated | {} retransmits absorbed",
        rec1.report.crashes[0].level,
        rec1.report.attempts,
        rec1.report.reexecuted_levels,
        rec1.report.wasted_bytes,
        msg_run.stats.total_retransmits(),
    );
}

/// Leave a checkpoint directory holding every generation of a `p`-rank run
/// up to (and including) `upto_level`, by crashing a checkpointed run just
/// after that level's commit. Returns the crash-verified level count.
fn write_generations(data: &Dataset, p: usize, upto_level: u32, dir: &PathBuf) {
    let plan = FaultPlan::new().with_crash(0, CrashPoint::Level(upto_level));
    let err = try_induce(
        data,
        &chaos_cfg(p),
        Some(Arc::new(plan)),
        Some(&CheckpointCtx::new(dir)),
    )
    .expect_err("the writer run is supposed to crash");
    assert_eq!(err.signal.level, upto_level);
}

/// `--rescale` / `--storage-faults`: the elastic-recovery sweeps. Runs
/// instead of the main chaos sweep; every restored or shrunk run must
/// reproduce the fault-free baseline tree byte-for-byte.
fn elastic(opts: &Opts) {
    let n = opts.n.unwrap_or(2_000);
    let procs = opts.procs.clone().unwrap_or_else(|| vec![2, 4, 8]);
    let data = generate(&GenConfig {
        n,
        func: opts.func,
        noise: 0.0,
        seed: opts.seed,
        profile: Profile::Paper7,
    });
    // Tree shape is geometry-independent (asserted per restore below), so
    // one baseline text serves every p'.
    let baseline = induce(&data, &chaos_cfg(procs[0]));
    let base_text = model_io::to_text(&baseline.tree);
    assert!(
        baseline.levels >= 3,
        "elastic workload too shallow to be interesting"
    );
    let mid = baseline.levels / 2;

    let mut doc = obs::MetricsDoc::new("chaos-elastic");
    doc.config("n", Json::U64(n as u64));
    doc.config("func", Json::str(format!("{:?}", opts.func)));
    doc.config("seed", Json::U64(opts.seed));

    if opts.rescale {
        println!("# Rescale-on-restore grid: write at p, complete at p'");
        print_row(&[
            "write_p".into(),
            "restore_p".into(),
            "resumed_lvl".into(),
            "redist_bytes".into(),
            "time_ms".into(),
        ]);
        for &p in &procs {
            for &p2 in &procs {
                let dir = tmp_dir(&format!("rescale-{p}-{p2}"));
                write_generations(&data, p, mid, &dir);
                let gen_bytes = checkpoint::generation_payload_bytes(&dir, mid, p)
                    .expect("writer left an intact newest generation");
                let redistribution = if p2 == p {
                    0
                } else {
                    gen_bytes * (p2 as u64 - 1)
                };
                let run = try_induce(&data, &chaos_cfg(p2), None, Some(&CheckpointCtx::new(&dir)))
                    .expect("no fault plan, no crash");
                let _ = std::fs::remove_dir_all(&dir);
                assert_tree_matches(&run, &base_text, "rescaled restore");
                print_row(&[
                    p.to_string(),
                    p2.to_string(),
                    mid.to_string(),
                    redistribution.to_string(),
                    format!("{:.3}", run.stats.time_ns() as f64 / 1e6),
                ]);
                doc.row(vec![
                    ("scenario", Json::str("rescale_restore")),
                    ("write_procs", Json::U64(p as u64)),
                    ("restore_procs", Json::U64(p2 as u64)),
                    ("resumed_level", Json::U64(mid as u64)),
                    ("redistribution_bytes", Json::U64(redistribution)),
                    ("generations_walked", Json::U64(0)),
                    ("time_ns", Json::U64(run.stats.time_ns())),
                ]);
            }
        }

        // Crash-then-shrink: the largest p loses one rank per crash and
        // finishes on the survivors.
        let p = *procs.iter().max().unwrap();
        if p >= 2 {
            let plan = FaultPlan::new()
                .with_crash(p - 1, CrashPoint::Level(mid))
                .with_crash(0, CrashPoint::Level(mid + 1));
            let dir = tmp_dir(&format!("shrink-{p}"));
            let rec = induce_with_recovery_policy(
                &data,
                &chaos_cfg(p),
                Some(Arc::new(plan)),
                &CheckpointCtx::new(&dir),
                RecoveryPolicy::Shrink { min_procs: 1 },
            );
            let _ = std::fs::remove_dir_all(&dir);
            assert_tree_matches(&rec.result, &base_text, "shrink recovery");
            assert_eq!(rec.report.final_procs as usize, p - 2);
            assert!(rec.report.redistribution_bytes > 0);
            println!(
                "# shrink: p={p} survived {} crashes, finished on {} ranks, \
                 {} redistribution bytes",
                rec.report.crashes.len(),
                rec.report.final_procs,
                rec.report.redistribution_bytes
            );
            doc.row(vec![
                ("scenario", Json::str("shrink_recovery")),
                ("write_procs", Json::U64(p as u64)),
                ("restore_procs", Json::U64(rec.report.final_procs as u64)),
                (
                    "resumed_level",
                    Json::U64(rec.report.crashes[0].resumed_from.unwrap_or(0) as u64),
                ),
                (
                    "redistribution_bytes",
                    Json::U64(rec.report.redistribution_bytes),
                ),
                (
                    "generations_walked",
                    Json::U64(rec.report.generations_walked as u64),
                ),
                (
                    "time_ns",
                    Json::U64(rec.report.wasted_time_ns + rec.result.stats.time_ns()),
                ),
            ]);
        }
    }

    if opts.storage_faults {
        println!("# Storage faults: corrupt generations are walked past, never fatal");
        for &p in &procs {
            // Bit-flip the newest generation (the level-`mid` commit is
            // checkpoint sequence mid+1): restore must land on `mid - 1`.
            let plan = FaultPlan::new()
                .with_crash(0, CrashPoint::Level(mid))
                .with_storage_fault(p - 1, u64::from(mid) + 1, StorageFaultKind::BitFlip);
            let dir = tmp_dir(&format!("storage-walk-{p}"));
            let rec = induce_with_recovery(&data, &chaos_cfg(p), Some(Arc::new(plan)), &dir);
            let _ = std::fs::remove_dir_all(&dir);
            assert_tree_matches(&rec.result, &base_text, "storage-fault walk");
            assert_eq!(rec.report.crashes[0].resumed_from, Some(mid - 1));
            assert_eq!(rec.report.generations_walked, 1);
            println!(
                "# p={p}: bit-flipped generation {mid} skipped, resumed from {}",
                mid - 1
            );
            doc.row(vec![
                ("scenario", Json::str("storage_fault_walk")),
                ("write_procs", Json::U64(p as u64)),
                ("restore_procs", Json::U64(p as u64)),
                ("resumed_level", Json::U64((mid - 1) as u64)),
                ("redistribution_bytes", Json::U64(0)),
                (
                    "generations_walked",
                    Json::U64(rec.report.generations_walked as u64),
                ),
                (
                    "time_ns",
                    Json::U64(rec.report.wasted_time_ns + rec.result.stats.time_ns()),
                ),
            ]);

            // Every generation's rank-0 file torn: nothing intact remains,
            // so the retry is a clean fresh start — never a panic.
            let mut plan = FaultPlan::new().with_crash(0, CrashPoint::Level(mid));
            for seq in 1..=u64::from(mid) + 1 {
                plan = plan.with_storage_fault(0, seq, StorageFaultKind::TornWrite);
            }
            let dir = tmp_dir(&format!("storage-fresh-{p}"));
            let rec = induce_with_recovery(&data, &chaos_cfg(p), Some(Arc::new(plan)), &dir);
            let _ = std::fs::remove_dir_all(&dir);
            assert_tree_matches(&rec.result, &base_text, "storage-fault fresh start");
            assert_eq!(rec.report.crashes[0].resumed_from, None);
            println!("# p={p}: all generations corrupt, clean fresh start");
            doc.row(vec![
                ("scenario", Json::str("storage_fault_fresh_start")),
                ("write_procs", Json::U64(p as u64)),
                ("restore_procs", Json::U64(p as u64)),
                ("resumed_level", Json::U64(0)),
                ("redistribution_bytes", Json::U64(0)),
                ("generations_walked", Json::U64(0)),
                (
                    "time_ns",
                    Json::U64(rec.report.wasted_time_ns + rec.result.stats.time_ns()),
                ),
            ]);
        }

        // A traced storage-fault run records `ckpt_*` events, which the
        // Chrome export places on their own "storage faults" track.
        let p = procs[0];
        let plan = FaultPlan::new()
            .with_crash(0, CrashPoint::Level(mid))
            .with_storage_fault(0, u64::from(mid) + 1, StorageFaultKind::BitFlip);
        let dir = tmp_dir("storage-traced");
        let err = try_induce(
            &data,
            &chaos_cfg(p).traced(),
            Some(Arc::new(plan)),
            Some(&CheckpointCtx::new(&dir)),
        )
        .expect_err("the traced writer run is supposed to crash");
        let _ = std::fs::remove_dir_all(&dir);
        let traces = err.stats.traces().expect("run was traced");
        let storage_events: usize = traces
            .iter()
            .flat_map(|t| &t.faults)
            .filter(|f| f.kind.starts_with("ckpt_"))
            .count();
        assert!(storage_events > 0, "no storage-fault events recorded");
        let text = obs::chrome_trace(&traces);
        assert!(
            text.contains("\"storage faults\""),
            "chrome trace is missing the storage-fault track"
        );
        if let Some(path) = &opts.trace {
            std::fs::write(path, &text)
                .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
            println!("# chrome trace (p={p}) written to {}", path.display());
        }
        doc.detail(
            "storage_fault_trace_events",
            Json::U64(storage_events as u64),
        );
        println!("# traced: {storage_events} storage-fault events on their own track");
    }

    if let Some(path) = &opts.metrics {
        doc.write(path)
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("# metrics written to {}", path.display());
    }
    if opts.check {
        if let Some(path) = &opts.metrics {
            let text = std::fs::read_to_string(path).expect("re-reading metrics");
            let rows = obs::metrics::validate_metrics(&text)
                .unwrap_or_else(|e| panic!("metrics file invalid: {e}"));
            println!("# check: metrics OK ({rows} rows)");
        }
        // The trace artifact only exists when the storage-fault mode ran
        // its traced scenario.
        if let (Some(path), true) = (&opts.trace, opts.storage_faults) {
            let text = std::fs::read_to_string(path).expect("re-reading trace");
            let events = obs::validate_chrome_trace(&text)
                .unwrap_or_else(|e| panic!("chrome trace invalid: {e}"));
            assert!(
                text.contains("\"storage faults\""),
                "chrome trace is missing the storage-fault track"
            );
            println!("# check: chrome trace OK ({events} events, storage-fault track present)");
        }
        println!("# check: every restored run reproduced the baseline tree");
    }
    println!("CHAOS-ELASTIC OK");
}
