//! **LEVEL-PROFILE** — per-level behaviour of the induction (paper §3):
//! "the serial runtime is O(N) for a majority of levels, when large
//! datasets are being classified" and "the number of nodes will be large at
//! the levels much deeper in tree" (the reason for per-level rather than
//! per-node communication).
//!
//! Prints, per level: active nodes, splits, records covered — showing the
//! O(N)-records upper region and the many-tiny-nodes deep region that
//! motivate the per-level batching design.
//!
//! Run: `cargo run --release -p scalparc-bench --bin level_profile`

use mpsim::obs::Json;
use scalparc::{induce, ParConfig};
use scalparc_bench::{print_row, BenchOpts};

fn main() {
    let opts = BenchOpts::from_args();
    let n = opts.scale.dataset_sizes()[0];
    let data = opts.dataset(n);
    let r = induce(&data, &ParConfig::new(8));

    println!(
        "# Per-level profile, N = {} (Quest {:?}), {} levels, {} nodes total",
        opts.scale.size_label(n),
        opts.func,
        r.levels,
        r.tree.nodes.len()
    );
    print_row(&[
        "level".into(),
        "active".into(),
        "splits".into(),
        "records".into(),
        "rec %".into(),
    ]);
    for (l, info) in r.trace.iter().enumerate() {
        print_row(&[
            l.to_string(),
            info.active_nodes.to_string(),
            info.splits.to_string(),
            info.records.to_string(),
            format!("{:.1}", info.records as f64 / n as f64 * 100.0),
        ]);
    }

    // The paper's two structural claims, checked on the trace.
    let majority_full = r
        .trace
        .iter()
        .take_while(|l| l.records as f64 > 0.5 * n as f64)
        .count();
    let peak_nodes = r.trace.iter().map(|l| l.active_nodes).max().unwrap_or(0);
    println!();
    println!(
        "# first {majority_full} levels cover >50% of all records (the O(N)-per-level region);"
    );
    println!(
        "# peak simultaneous nodes {peak_nodes} — why per-level batching beats per-node rounds."
    );

    let mut doc = opts.metrics_doc("level_profile");
    doc.config("n", Json::U64(n as u64));
    for (l, info) in r.trace.iter().enumerate() {
        doc.row(vec![
            ("level", Json::U64(l as u64)),
            ("active_nodes", Json::U64(info.active_nodes as u64)),
            ("splits", Json::U64(info.splits as u64)),
            ("records", Json::U64(info.records)),
        ]);
    }
    doc.detail("majority_full_levels", Json::U64(majority_full as u64));
    doc.detail("peak_active_nodes", Json::U64(peak_nodes as u64));
    opts.write_metrics(&doc);
}
