//! **SCALE** — paper scale and beyond: out-of-core induction at the
//! training-set sizes of Figure 3 (0.8M–6.4M records with `--full`).
//!
//! Three claims are exercised in one sweep:
//!
//! * **Runtime curves (fig3a shape)** — out-of-core ScalParC runtime vs
//!   processors, one series per N, with the `ooc_io` spill time charged by
//!   the same bytes→ns model as checkpoint I/O;
//! * **Memory scalability beyond RAM (fig3b shape and further)** — the
//!   per-rank resident peak stays far below the attribute-list bytes of the
//!   dataset: lists live on disk and stream through O(chunk) buffers, so
//!   the 6.4M-record run fits a per-rank budget a fraction of the data;
//! * **Packed records shrink the wire** — the presort of the 10-byte packed
//!   entries moves measurably fewer bytes per processor than the same sort
//!   over the naturally-padded 12-byte layout (the ablation sorts both
//!   through the same simulated machine and compares per-rank volume).
//!
//! Every rank generates its own `⌈N/p⌉` fragment with the index-addressable
//! [`StreamingGen`], so the driver never materializes all N records; the
//! out-of-core tree is asserted byte-identical to the in-core tree at the
//! smallest size of the sweep.
//!
//! Run: `cargo run --release -p scalparc-bench --bin scale
//!       [--full|--quick] [--json BENCH_scale.json]`

use datagen::{GenConfig, Profile, StreamingGen};
use dtree::list::{ContEntry, PACKED_ENTRY_BYTES};
use mpsim::obs::Json;
use mpsim::{CostModel, MachineCfg, TimingMode};
use scalparc::ooc::OocOptions;
use scalparc_bench::{fmt_mb, print_row, BenchOpts, Scale, T3D_CPU_FACTOR};

/// Attribute-list bytes of the whole training set under the packed layout
/// (7 attributes × 10 bytes per record) — the floor an in-core run's
/// resident lists would need across the machine.
fn list_bytes(n: usize) -> u64 {
    (n * 7 * PACKED_ENTRY_BYTES) as u64
}

struct ScaleCell {
    procs: usize,
    time_s: f64,
    mem_per_proc: u64,
    comm_per_proc: u64,
}

fn gen_config(opts: &BenchOpts, n: usize) -> GenConfig {
    GenConfig {
        n,
        func: opts.func,
        noise: 0.0,
        seed: opts.seed,
        profile: Profile::Paper7,
    }
}

fn machine(p: usize) -> MachineCfg {
    MachineCfg {
        procs: p,
        cost: CostModel::t3d_scaled(T3D_CPU_FACTOR),
        timing: TimingMode::Measured,
        compute_tokens: 0,
        replay: None,
        trace: None,
        fault: None,
    }
}

/// One out-of-core induction: every rank streams its own generated block
/// into its disk store and induces with O(chunk) resident list memory.
fn run_ooc(opts: &BenchOpts, n: usize, p: usize, chunk: usize) -> (dtree::DecisionTree, ScaleCell) {
    let gen = StreamingGen::new(gen_config(opts, n));
    let block = n.div_ceil(p).max(1);
    let ooc = OocOptions {
        chunk,
        dir: std::env::temp_dir().join(format!("scalparc-scale-{}-{n}-{p}", std::process::id())),
    };
    let induce_cfg = scalparc::InduceConfig::default();
    let result = mpsim::run(&machine(p), |comm| {
        let lo = (comm.rank() * block).min(n);
        let hi = ((comm.rank() + 1) * block).min(n);
        let local = gen.block(lo, hi);
        scalparc::induce_on_comm_ooc(comm, local, lo as u32, n as u64, &induce_cfg, &ooc)
    });
    std::fs::remove_dir_all(&ooc.dir).ok();
    let mut outputs = result.outputs;
    let (tree, _) = outputs.swap_remove(0);
    let cell = ScaleCell {
        procs: p,
        time_s: result.stats.time_s(),
        mem_per_proc: result.stats.peak_mem_per_proc(),
        comm_per_proc: result.stats.max_comm_volume_per_proc(),
    };
    (tree, cell)
}

/// Presort communication ablation: sample-sort `n` continuous entries
/// through the simulated machine in the given record layout and report the
/// per-processor communication volume.
fn presort_volume<T, C>(
    gen: &StreamingGen,
    n: usize,
    p: usize,
    make: impl Fn(f32, u32) -> T + Sync,
    cmp: C,
) -> u64
where
    T: Clone + Copy + Send + Sync + 'static,
    C: Fn(&T, &T) -> std::cmp::Ordering + Copy + Send + Sync + 'static,
{
    let block = n.div_ceil(p).max(1);
    let make = &make;
    let result = mpsim::run(&machine(p), |comm| {
        let lo = (comm.rank() * block).min(n);
        let hi = ((comm.rank() + 1) * block).min(n);
        let entries: Vec<T> = (lo..hi)
            .map(|i| {
                let (r, _) = gen.record(i);
                make(r.salary, i as u32)
            })
            .collect();
        sortp::sample_sort(comm, entries, cmp).len()
    });
    result.stats.max_comm_volume_per_proc()
}

fn main() {
    let opts = BenchOpts::from_args();
    let sizes = opts.scale.dataset_sizes();
    // Out-of-core runs pay real disk traffic per (size, p) cell; the sweep
    // uses the paper's lower processor counts where the curve shape lives.
    let procs: Vec<usize> = match opts.scale {
        Scale::Quick => vec![1, 2, 4],
        _ => vec![2, 4, 8, 16],
    };
    let chunk = match opts.scale {
        Scale::Quick => 4_096,
        Scale::Default => 16_384,
        Scale::Full => 65_536,
    };

    println!("# SCALE: out-of-core ScalParC, runtime and resident memory vs processors");
    println!(
        "# workload: Quest {:?}, 7 attributes, 2 classes, seed {}; chunk {} records",
        opts.func, opts.seed, chunk
    );

    // Tree identity: the out-of-core and in-core paths must induce the
    // same tree. Checked at the smallest size (the in-core side must fit).
    let n0 = sizes[0];
    let p0 = procs[0];
    // Same virtual dataset as the out-of-core run (the streaming and the
    // sequential generators draw different streams by construction).
    let data0 = StreamingGen::new(gen_config(&opts, n0)).block(0, n0);
    let in_core = scalparc::induce(&data0, &scalparc::ParConfig::new(p0));
    let (ooc_tree, _) = run_ooc(&opts, n0, p0, chunk);
    assert_eq!(
        ooc_tree, in_core.tree,
        "out-of-core tree diverged from in-core at n={n0} p={p0}"
    );
    drop(data0);
    println!("# identity: out-of-core tree == in-core tree at N={n0}, p={p0}");
    println!();

    println!("# fig3a shape: out-of-core runtime (simulated seconds) vs processors");
    let mut header = vec!["N \\ p".to_string()];
    header.extend(procs.iter().map(|p| p.to_string()));
    print_row(&header);

    let mut tables: Vec<(usize, Vec<ScaleCell>)> = Vec::new();
    for &n in &sizes {
        let cells: Vec<ScaleCell> = procs
            .iter()
            .map(|&p| run_ooc(&opts, n, p, chunk).1)
            .collect();
        let mut row = vec![opts.scale.size_label(n)];
        row.extend(cells.iter().map(|c| format!("{:.3}", c.time_s)));
        print_row(&row);
        tables.push((n, cells));
    }

    println!();
    println!("# fig3b shape: peak resident memory per processor (MB) vs processors");
    println!("# (dataset column = attribute-list bytes the in-core run would hold)");
    let mut header = vec!["N \\ p".to_string()];
    header.extend(procs.iter().map(|p| p.to_string()));
    header.push("dataset".to_string());
    print_row(&header);
    for (n, cells) in &tables {
        let mut row = vec![opts.scale.size_label(*n)];
        row.extend(cells.iter().map(|c| fmt_mb(c.mem_per_proc)));
        row.push(fmt_mb(list_bytes(*n)));
        print_row(&row);
    }

    // The out-of-core budget claim: at every cell the per-rank resident
    // peak must stay below the dataset's attribute-list footprint.
    for (n, cells) in &tables {
        for c in cells {
            assert!(
                c.mem_per_proc < list_bytes(*n),
                "resident {} >= dataset lists {} at n={n} p={}",
                c.mem_per_proc,
                list_bytes(*n),
                c.procs
            );
        }
    }

    // Packed-vs-padded presort ablation at the second-smallest size.
    #[derive(Clone, Copy)]
    #[repr(C)]
    struct PaddedEntry {
        value: f32,
        rid: u32,
        class: u32, // u16 class padded to the natural 12-byte layout
    }
    let na = sizes[1.min(sizes.len() - 1)];
    let pa = *procs.last().unwrap();
    let gen = StreamingGen::new(gen_config(&opts, na));
    let packed = presort_volume(
        &gen,
        na,
        pa,
        |value, rid| ContEntry {
            value,
            rid,
            class: 0,
        },
        |a: &ContEntry, b: &ContEntry| {
            let (av, bv, ar, br) = (a.value, b.value, a.rid, b.rid);
            av.total_cmp(&bv).then(ar.cmp(&br))
        },
    );
    let padded = presort_volume(
        &gen,
        na,
        pa,
        |value, rid| PaddedEntry {
            value,
            rid,
            class: 0,
        },
        |a: &PaddedEntry, b: &PaddedEntry| a.value.total_cmp(&b.value).then(a.rid.cmp(&b.rid)),
    );
    println!();
    println!(
        "# presort comm ablation at N={na}, p={pa}: packed {} MB/proc vs padded {} MB/proc ({:.1}% saved)",
        fmt_mb(packed),
        fmt_mb(padded),
        100.0 * (1.0 - packed as f64 / padded as f64)
    );
    assert!(
        packed < padded,
        "packed presort must move fewer bytes: {packed} vs {padded}"
    );

    // Headline: the largest dataset on the largest machine of this sweep.
    if let Some((n, cells)) = tables.last() {
        let last = cells.last().unwrap();
        println!();
        println!(
            "# headline: {} records, out of core, in {:.3} simulated seconds on {} processors",
            opts.scale.size_label(*n),
            last.time_s,
            last.procs
        );
        println!(
            "#           resident {} MB/proc vs {} MB of attribute lists ({:.1}x smaller)",
            fmt_mb(last.mem_per_proc),
            fmt_mb(list_bytes(*n)),
            list_bytes(*n) as f64 / last.mem_per_proc as f64
        );
    }

    let mut doc = opts.metrics_doc("scale");
    doc.config("chunk", Json::U64(chunk as u64));
    doc.detail("identity_checked_n", Json::U64(n0 as u64));
    doc.detail("identity_checked_procs", Json::U64(p0 as u64));
    doc.detail("trees_identical", Json::Bool(true));
    doc.detail("presort_packed_bytes_per_proc", Json::U64(packed));
    doc.detail("presort_padded_bytes_per_proc", Json::U64(padded));
    for (n, cells) in &tables {
        for c in cells {
            doc.row(vec![
                ("n", Json::U64(*n as u64)),
                ("procs", Json::U64(c.procs as u64)),
                ("time_s", Json::F64(c.time_s)),
                ("mem_per_proc", Json::U64(c.mem_per_proc)),
                ("comm_per_proc", Json::U64(c.comm_per_proc)),
                ("dataset_list_bytes", Json::U64(list_bytes(*n))),
                (
                    "resident_fraction",
                    Json::F64(c.mem_per_proc as f64 / list_bytes(*n) as f64),
                ),
            ]);
        }
    }
    opts.write_metrics(&doc);
}
