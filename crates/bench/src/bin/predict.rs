//! **PREDICT** — score a trained model through the serving engine.
//!
//! Trains a tree on Quest data (label noise grows realistically large
//! trees), optionally round-trips it through `model_io`, then scores a
//! held-out dataset four ways and reports throughput for each:
//!
//! 1. per-record `DecisionTree::predict` (the pointer-chasing oracle);
//! 2. `FlatTree::predict_batch` (the compiled level-synchronous kernel);
//! 3. the concurrent harness (`serve::Server`) at each `--threads` count;
//! 4. optionally (`--dist p`) the distributed scorer, which reports
//!    simulated time and per-rank communication like an induction sweep.
//!
//! The binary asserts that every path reproduces the oracle's predictions
//! and that the harness reports nonzero throughput, so it doubles as the
//! CI serving smoke test.
//!
//! Run: `cargo run --release -p scalparc-bench --bin predict -- \
//!       [--n N] [--noise F] [--batch B] [--threads 1,4,8] [--dist P] \
//!       [--model PATH] [--func F1..F10] [--seed S] [--quick]`

use std::sync::Arc;
use std::time::Instant;

use datagen::{generate, ClassFunc, GenConfig, Profile};
use dtree::flat::FlatTree;
use dtree::sprint::{self, SprintConfig};
use dtree::{model_io, Dataset, DecisionTree};
use mpsim::{CostModel, MachineCfg};
use scalparc_bench::T3D_CPU_FACTOR;
use serve::{score_distributed, Request, ServeConfig, Server};

struct Opts {
    n: usize,
    noise: f64,
    batch: usize,
    threads: Vec<usize>,
    dist: usize,
    model: Option<String>,
    func: ClassFunc,
    seed: u64,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        n: 100_000,
        noise: 0.10,
        batch: 4096,
        threads: vec![1, 4, 8],
        dist: 0,
        model: None,
        func: ClassFunc::F2,
        seed: 42,
    };
    let mut args = std::env::args().skip(1);
    let next = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next()
            .unwrap_or_else(|| panic!("{flag} needs a value"))
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.n = 20_000,
            "--n" => opts.n = next(&mut args, "--n").parse().expect("--n wants a usize"),
            "--noise" => {
                opts.noise = next(&mut args, "--noise")
                    .parse()
                    .expect("--noise wants a float")
            }
            "--batch" => {
                opts.batch = next(&mut args, "--batch")
                    .parse()
                    .expect("--batch wants a usize")
            }
            "--threads" => {
                opts.threads = next(&mut args, "--threads")
                    .split(',')
                    .map(|t| t.parse().expect("--threads wants usizes"))
                    .collect()
            }
            "--dist" => {
                opts.dist = next(&mut args, "--dist")
                    .parse()
                    .expect("--dist wants a usize")
            }
            "--model" => opts.model = Some(next(&mut args, "--model")),
            "--func" => {
                let f = next(&mut args, "--func");
                opts.func = ClassFunc::parse(&f)
                    .unwrap_or_else(|| panic!("unknown function {f:?} (want F1..F10)"));
            }
            "--seed" => {
                opts.seed = next(&mut args, "--seed")
                    .parse()
                    .expect("--seed wants a u64")
            }
            other => panic!(
                "unknown flag {other:?} (known: --quick --n --noise --batch --threads --dist --model --func --seed)"
            ),
        }
    }
    opts
}

/// Best-of-`reps` wall time of `f`, in seconds.
fn time_min<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn score_per_record(tree: &DecisionTree, data: &Dataset, out: &mut [u8]) {
    for (rid, slot) in out.iter_mut().enumerate() {
        *slot = tree.predict(data, rid);
    }
}

fn main() {
    let opts = parse_opts();
    let train = generate(&GenConfig {
        n: opts.n,
        func: opts.func,
        noise: opts.noise,
        seed: opts.seed,
        profile: Profile::Paper7,
    });
    let mut tree = sprint::induce(&train, &SprintConfig::default());

    // Optional persistence round trip: the served model is the reloaded one.
    if let Some(path) = &opts.model {
        let path = std::path::Path::new(path);
        model_io::save(&tree, path).expect("save model");
        let back = model_io::load(path).expect("reload model");
        assert_eq!(back, tree, "model round trip changed the tree");
        tree = back;
        println!("# model round-tripped through {}", path.display());
    }

    let data = Arc::new(generate(&GenConfig {
        n: opts.n,
        func: opts.func,
        noise: 0.0,
        seed: opts.seed ^ 0x5EED,
        profile: Profile::Paper7,
    }));
    let flat = FlatTree::compile(&tree);
    println!(
        "# tree: {} nodes ({} leaves, depth {}), flat form {} bytes; scoring {} records",
        tree.nodes.len(),
        tree.num_leaves(),
        tree.depth(),
        flat.heap_bytes(),
        data.len()
    );

    let n = data.len();
    let reps = 3;
    let mut oracle = vec![0u8; n];
    let t_record = time_min(reps, || score_per_record(&tree, &data, &mut oracle));
    let mut batch_out = vec![0u8; n];
    let t_batch = time_min(reps, || flat.predict_batch(&data, &mut batch_out));
    assert_eq!(batch_out, oracle, "batch kernel diverged from the oracle");

    let record_rps = n as f64 / t_record;
    let batch_rps = n as f64 / t_batch;
    println!("per-record predict : {record_rps:>12.0} records/s");
    println!(
        "predict_batch      : {batch_rps:>12.0} records/s  ({:.2}x single-thread)",
        batch_rps / record_rps
    );

    for &workers in &opts.threads {
        let server = Server::start(
            flat.clone(),
            ServeConfig {
                workers,
                queue_depth: n / opts.batch + 2,
                ..ServeConfig::default()
            },
        );
        let rxs: Vec<_> = (0..n)
            .step_by(opts.batch)
            .map(|lo| {
                let hi = (lo + opts.batch).min(n);
                server
                    .submit(Request {
                        data: Arc::clone(&data),
                        lo,
                        hi,
                    })
                    .expect("queue sized for the sweep")
            })
            .collect();
        let mut served = vec![0u8; n];
        for rx in rxs {
            let resp = rx.recv().unwrap();
            served[resp.lo..resp.hi].copy_from_slice(&resp.predictions);
        }
        let report = server.shutdown();
        assert_eq!(served, oracle, "harness diverged from the oracle");
        assert!(
            report.records_per_sec > 0.0,
            "harness reported zero throughput"
        );
        println!(
            "harness {workers:>2} thread{} : {:>12.0} records/s  (batch {}, {})",
            if workers == 1 { " " } else { "s" },
            report.records_per_sec,
            opts.batch,
            report
        );
    }

    if opts.dist > 0 {
        let cfg = MachineCfg {
            cost: CostModel::t3d_scaled(T3D_CPU_FACTOR),
            ..MachineCfg::new(opts.dist)
        };
        let d = score_distributed(&tree, &data, &cfg);
        assert_eq!(d.confusion.total(), n as u64);
        println!(
            "distributed p={:<3}  : simulated {:.6}s, {} bytes sent total, accuracy {:.4}",
            opts.dist,
            d.stats.time_s(),
            d.stats.total_bytes_sent(),
            d.accuracy
        );
    }
}
