//! **ABL-SUBSET** — the paper's footnote extension: binary subset splits
//! for categorical attributes ("It is also possible to form two partitions
//! for a categorical attribute each characterized by a subset of values in
//! its domain", §2).
//!
//! This ablation compares per-value m-way splitting (the paper's default)
//! against binary subsetting on the elevel-driven concepts F3/F4 and on the
//! Full9 schema (with the 20-way `car` attribute, where subsetting's greedy
//! search matters): tree size, depth, training accuracy, holdout accuracy.
//!
//! Run: `cargo run --release -p scalparc-bench --bin ablation_subset_splits`

use datagen::{generate, ClassFunc, GenConfig, Profile};
use dtree::eval::train_test_split;
use dtree::sprint::{self, SprintConfig};
use dtree::{CatSplitMode, SplitOptions};
use scalparc::{induce, ParConfig};
use scalparc_bench::print_row;

fn main() {
    let n = 20_000;
    println!("# Per-value (m-way) vs binary-subset categorical splits, N = {n}");
    print_row(&[
        "func".into(),
        "schema".into(),
        "mode".into(),
        "nodes".into(),
        "depth".into(),
        "train".into(),
        "holdout".into(),
    ]);

    for (func, profile, label) in [
        (ClassFunc::F3, Profile::Paper7, "paper7"),
        (ClassFunc::F4, Profile::Paper7, "paper7"),
        (ClassFunc::F3, Profile::Full9, "full9"),
    ] {
        let data = generate(&GenConfig {
            n,
            func,
            noise: 0.05,
            seed: 17,
            profile,
        });
        let (train, test) = train_test_split(&data, 0.3, 5);
        for mode in [CatSplitMode::PerValue, CatSplitMode::BinarySubset] {
            let opts = SplitOptions {
                cat_mode: mode,
                ..SplitOptions::default()
            };
            let tree = sprint::induce(
                &train,
                &SprintConfig {
                    split: opts,
                    ..SprintConfig::default()
                },
            );
            // Cross-check: the parallel classifier agrees in this mode too.
            let mut cfg = ParConfig::new(4);
            cfg.induce.split = opts;
            assert_eq!(induce(&train, &cfg).tree, tree);
            print_row(&[
                format!("{func:?}"),
                label.into(),
                format!("{mode:?}"),
                tree.nodes.len().to_string(),
                tree.depth().to_string(),
                format!("{:.4}", tree.accuracy(&train)),
                format!("{:.4}", tree.accuracy(&test)),
            ]);
        }
    }
    println!();
    println!("# Subset splits produce binary trees (deeper, fewer wasted empty");
    println!("# children); per-value splits fan out by domain cardinality.");
}
