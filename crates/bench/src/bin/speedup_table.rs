//! **TXT-SPD** — the relative-speedup numbers quoted in the paper's §5 text.
//!
//! The paper reports *relative* speedups between machine sizes (digits are
//! OCR-damaged in our source; the canonical claims are of the form):
//!
//! * for 1.6M records, the relative speedup from 8 to 32 processors and
//!   from 4 to 128 processors (decreasing efficiency at fixed N);
//! * going from 4 to 128 processors, the relative speedup for 6.4M records
//!   exceeds that for 1.6M records (efficiency improves with N).
//!
//! The check here is the *ordering*: relative speedup at a fixed processor
//! jump must increase with training-set size, and every jump must yield a
//! real speedup (> 1).
//!
//! Run: `cargo run --release -p scalparc-bench --bin speedup_table`

use mpsim::obs::Json;
use scalparc::Algorithm;
use scalparc_bench::{print_row, BenchOpts};

fn main() {
    let opts = BenchOpts::from_args();
    let procs = opts.scale.procs();
    let sizes = opts.scale.dataset_sizes();

    // The processor jumps quoted in the text (clamped to the sweep).
    let jumps: Vec<(usize, usize)> = [(8, 32), (4, 128), (4, 32)]
        .into_iter()
        .filter(|(a, b)| procs.contains(a) && procs.contains(b))
        .collect();

    println!("# Relative speedups between machine sizes (paper §5 in-text numbers)");
    let mut header = vec!["N".to_string()];
    header.extend(jumps.iter().map(|(a, b)| format!("{a}->{b}")));
    header.push("ideal".to_string());
    print_row(&header);

    let mut per_jump: Vec<Vec<f64>> = vec![Vec::new(); jumps.len()];
    for &n in &sizes {
        let data = opts.dataset(n);
        let cells = scalparc_bench::sweep(&data, &procs, Algorithm::ScalParc);
        let time_at = |p: usize| {
            cells
                .iter()
                .find(|c| c.procs == p)
                .map(|c| c.time_s)
                .unwrap()
        };
        let mut row = vec![opts.scale.size_label(n)];
        for (j, (a, b)) in jumps.iter().enumerate() {
            let s = time_at(*a) / time_at(*b);
            per_jump[j].push(s);
            row.push(format!("{s:.2}"));
        }
        row.push(
            jumps
                .iter()
                .map(|(a, b)| format!("{}x", b / a))
                .collect::<Vec<_>>()
                .join("/"),
        );
        print_row(&row);
    }

    println!();
    for (j, (a, b)) in jumps.iter().enumerate() {
        let s = &per_jump[j];
        let monotone = s.windows(2).all(|w| w[1] >= w[0] * 0.98);
        println!(
            "# jump {a}->{b}: speedups {:?} — larger N gives better relative speedup: {}",
            s.iter().map(|x| format!("{x:.2}")).collect::<Vec<_>>(),
            if monotone {
                "YES (matches paper)"
            } else {
                "NO"
            }
        );
    }

    let mut doc = opts.metrics_doc("speedup_table");
    for (i, &n) in sizes.iter().enumerate() {
        let speedups: Vec<(String, Json)> = jumps
            .iter()
            .enumerate()
            .map(|(j, (a, b))| (format!("{a}->{b}"), Json::F64(per_jump[j][i])))
            .collect();
        doc.row(vec![
            ("n", Json::U64(n as u64)),
            ("relative_speedups", Json::Obj(speedups)),
        ]);
    }
    opts.write_metrics(&doc);
}
