//! **STREAM** — streaming induction under concept drift with generational
//! hot-swap: the evidence that the stream subsystem trains, reacts, and
//! swaps correctly.
//!
//! * **Cross-p determinism** — replaying the same drift stream and seeds
//!   yields the byte-identical generation sequence (`model_io` tree text)
//!   and confusion matrices at p ∈ {1, 4, 8}. Asserted before anything is
//!   measured.
//! * **Accuracy over time** — prequential (test-then-train) accuracy per
//!   ingested block, under abrupt, gradual, and recurring concept drift;
//!   after each drift the re-trained generations recover to within 2% of
//!   pre-drift accuracy (asserted).
//! * **Generation cadence** — commits per run, split count/drift triggers,
//!   per-generation training-window accuracy.
//! * **Live hot-swap under load** — the threaded runner
//!   (`stream::run_live`) retrains and publishes while a traffic thread
//!   keeps scoring: zero dropped requests, every response named by a
//!   committed generation, wall-clock swap (publish) latency p50/p99.
//! * **Observability** — a traced in-machine run carries `ingest`,
//!   `reeval`, and `swap` spans on every rank (asserted).
//!
//! Run: `cargo run --release -p scalparc-bench --bin stream
//!       [--full|--quick] [--func F1..F10] [--seed <u64>] [--json BENCH_stream.json]`

use datagen::{ClassFunc, DriftKind, GenConfig, Profile};
use mpsim::obs::Json;
use scalparc::stream::{run_stream, BlockSource, StreamConfig, StreamReport, Trigger};
use scalparc::ParConfig;
use scalparc_bench::{print_row, BenchOpts, Scale};
use stream::{quest_sketch, run_live, DriftSource, LiveConfig};

/// Geometry of one streaming workload at a given benchmark scale.
struct Geometry {
    total: usize,
    block: usize,
    window: usize,
    reeval: usize,
}

fn geometry(scale: Scale) -> Geometry {
    match scale {
        Scale::Quick => Geometry {
            total: 6_000,
            block: 250,
            window: 1_500,
            reeval: 1_500,
        },
        Scale::Default => Geometry {
            total: 20_000,
            block: 500,
            window: 4_000,
            reeval: 2_000,
        },
        Scale::Full => Geometry {
            total: 80_000,
            block: 1_000,
            window: 8_000,
            reeval: 4_000,
        },
    }
}

fn stream_cfg(geo: &Geometry, source: &DriftSource) -> StreamConfig {
    StreamConfig {
        block_records: geo.block,
        window_records: geo.window,
        reeval_records: geo.reeval,
        // Tight enough that a model limping on a mixed straddle-the-flip
        // window keeps re-triggering until its window is purely post-flip.
        drift_error: Some(0.15),
        min_epoch_records: (geo.block / 2).max(1) as u64,
        sketch: quest_sketch(&source.schema(), 32),
        keep_generations: None,
        induce: Default::default(),
    }
}

/// Prequential accuracy over the scored points with `upto` in `(lo, hi]`.
fn window_accuracy(report: &StreamReport, lo: u64, hi: u64) -> Option<f64> {
    let (mut rec, mut err) = (0u64, 0u64);
    for p in &report.points {
        if p.generation.is_some() && p.upto > lo && p.upto <= hi {
            rec += p.records;
            err += p.errors;
        }
    }
    (rec > 0).then(|| 1.0 - err as f64 / rec as f64)
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn main() {
    let opts = BenchOpts::from_args();
    let geo = geometry(opts.scale);
    let base_func = opts.func;
    // The drifted-to concept must differ from the base one.
    let alt_func = if base_func == ClassFunc::F1 {
        ClassFunc::F3
    } else {
        ClassFunc::F1
    };
    let gen_cfg = GenConfig {
        n: geo.total,
        func: base_func,
        noise: 0.0,
        seed: opts.seed,
        profile: Profile::Paper7,
    };
    let n = geo.total;
    let kinds: Vec<(&str, DriftKind, u64)> = vec![
        ("stable", DriftKind::Stable, n as u64),
        (
            "abrupt",
            DriftKind::Abrupt {
                at: n / 2,
                to: alt_func,
            },
            (n / 2) as u64,
        ),
        (
            "gradual",
            DriftKind::Gradual {
                start: 3 * n / 8,
                end: 5 * n / 8,
                to: alt_func,
            },
            (3 * n / 8) as u64,
        ),
        (
            "recurring",
            DriftKind::Recurring {
                period: n / 3,
                alt: alt_func,
            },
            (n / 3) as u64,
        ),
    ];

    println!("# STREAM: streaming induction under concept drift with generational hot-swap");
    println!(
        "# workload: Quest {:?} -> {:?} drift, {} records, blocks of {}, window {}, re-eval every {} (drift trigger at 15% prequential error), seed {}",
        base_func, alt_func, n, geo.block, geo.window, geo.reeval, opts.seed
    );
    println!();

    // Determinism first: the same drift stream and seeds must produce the
    // byte-identical generation sequence — ids, triggers, windows, tree
    // bytes, confusion matrices — and the identical prequential log at
    // every rank count.
    let det_source = DriftSource::new(
        gen_cfg,
        DriftKind::Abrupt {
            at: n / 2,
            to: alt_func,
        },
    );
    let det_cfg = stream_cfg(&geo, &det_source);
    let reference = run_stream(&det_source, &ParConfig::new(1), &det_cfg, None).report;
    for p in [4usize, 8] {
        let got = run_stream(&det_source, &ParConfig::new(p), &det_cfg, None).report;
        assert_eq!(
            got.commits.len(),
            reference.commits.len(),
            "commit cadence diverged at p={p}"
        );
        for (a, b) in got.commits.iter().zip(&reference.commits) {
            assert_eq!(
                a.tree_text, b.tree_text,
                "gen {} tree at p={p}",
                a.generation
            );
            assert_eq!(
                a.confusion, b.confusion,
                "gen {} confusion at p={p}",
                a.generation
            );
            assert_eq!(
                (a.trigger, a.window_lo, a.window_hi),
                (b.trigger, b.window_lo, b.window_hi),
                "gen {} trigger/window at p={p}",
                a.generation
            );
        }
        assert_eq!(got.points, reference.points, "prequential log at p={p}");
    }
    println!(
        "# identity: {} generations byte-identical (trees + confusions + prequential log) at p in {{1, 4, 8}}",
        reference.commits.len()
    );
    println!();

    // Observability: every rank of a traced run wraps the pipeline in
    // ingest/reeval/swap spans.
    let traced = run_stream(&det_source, &ParConfig::new(4).traced(), &det_cfg, None);
    for rank in &traced.stats.ranks {
        let trace = rank.trace.as_ref().expect("traced run");
        for phase in ["ingest", "reeval", "swap"] {
            assert!(
                trace.spans.iter().any(|s| s.name == phase),
                "rank {} left no {phase} span",
                trace.rank
            );
        }
    }
    println!("# observability: ingest/reeval/swap spans present on every rank (traced at p=4)");
    println!();

    // Accuracy over time per drift kind: prequential accuracy before the
    // drift vs after the last post-drift swap. The streaming contract:
    // post-swap accuracy recovers to within 2% of pre-drift accuracy.
    let mut doc = opts.metrics_doc("stream");
    println!("# drift response (in-machine pipeline, p=4)");
    print_row(&[
        "kind".into(),
        "gens".into(),
        "count".into(),
        "drift".into(),
        "pre acc".into(),
        "post acc".into(),
    ]);
    let mut kind_rows: Vec<(&str, usize, usize, usize, f64, f64)> = Vec::new();
    let mut reports: Vec<(&str, StreamReport)> = Vec::new();
    for (name, kind, drift_at) in &kinds {
        let source = DriftSource::new(gen_cfg, *kind);
        let cfg = stream_cfg(&geo, &source);
        let report = run_stream(&source, &ParConfig::new(4), &cfg, None).report;
        // Blocks before the first commit are unscored; if the drift lands
        // that early, extend by one re-eval stretch to get a baseline.
        let pre = window_accuracy(&report, 0, *drift_at)
            .or_else(|| window_accuracy(&report, 0, *drift_at + geo.reeval as u64))
            .expect("pre-drift blocks scored");
        // Post-swap: holdout accuracy of the final committed generation on
        // the stream tail (the last re-eval stretch, drift-stable for every
        // schedule here). Prequential accounting would charge blocks
        // mis-scored by the *pre*-swap model between drift and re-train —
        // that is detection latency, not recovery — and a generation
        // committed on the final block never serves at all.
        let final_tree = dtree::model_io::from_text(
            &report
                .commits
                .last()
                .expect("at least one commit")
                .tree_text,
        )
        .expect("committed tree decodes");
        let post = final_tree.accuracy(&source.block(n - geo.reeval, n));
        let count_trig = report
            .commits
            .iter()
            .filter(|c| c.trigger == Trigger::Count)
            .count();
        let drift_trig = report.commits.len() - count_trig;
        print_row(&[
            (*name).into(),
            report.commits.len().to_string(),
            count_trig.to_string(),
            drift_trig.to_string(),
            format!("{pre:.4}"),
            format!("{post:.4}"),
        ]);
        assert!(
            post >= pre - 0.02,
            "{name}: post-swap accuracy {post:.4} fell more than 2% below pre-drift {pre:.4}"
        );
        if !matches!(kind, DriftKind::Stable) {
            assert!(
                drift_trig > 0 || report.commits.iter().any(|c| c.window_hi > *drift_at),
                "{name}: no re-evaluation reacted to the drift"
            );
        }
        kind_rows.push((
            name,
            report.commits.len(),
            count_trig,
            drift_trig,
            pre,
            post,
        ));
        reports.push((name, report));
    }
    println!();

    // Per-block accuracy trace of the abrupt run — the accuracy-over-time
    // curve, with commit marks.
    let abrupt = &reports.iter().find(|(k, _)| *k == "abrupt").unwrap().1;
    println!(
        "# accuracy over time (abrupt flip at record {}, p=4)",
        n / 2
    );
    print_row(&[
        "upto".into(),
        "gen".into(),
        "block acc".into(),
        "commit".into(),
    ]);
    for pt in &abrupt.points {
        if pt.records == 0 {
            continue;
        }
        let acc = 1.0 - pt.errors as f64 / pt.records as f64;
        let commit = abrupt
            .commits
            .iter()
            .find(|c| c.window_hi == pt.upto)
            .map(|c| {
                format!(
                    "g{}:{}",
                    c.generation,
                    match c.trigger {
                        Trigger::Count => "count",
                        Trigger::Drift => "drift",
                    }
                )
            })
            .unwrap_or_default();
        print_row(&[
            pt.upto.to_string(),
            pt.generation.map(|g| g.to_string()).unwrap_or_default(),
            format!("{acc:.4}"),
            commit,
        ]);
    }
    println!();

    // Live hot-swap under sustained scoring traffic: the threaded runner
    // must drop nothing, answer every request from a committed generation,
    // and swap in microseconds.
    let live_source = DriftSource::new(
        gen_cfg,
        DriftKind::Abrupt {
            at: n / 2,
            to: alt_func,
        },
    );
    let live_cfg = stream_cfg(&geo, &live_source);
    let runner = LiveConfig {
        induce_procs: 4,
        ..LiveConfig::default()
    };
    let live = run_live(&live_source, &live_cfg, &runner);
    assert_eq!(live.response_failures, 0, "hot-swap dropped requests");
    let committed: Vec<u64> = live.swaps.iter().map(|s| s.generation).collect();
    assert!(
        live.generations_observed
            .iter()
            .all(|g| committed.contains(g)),
        "a response named an uncommitted generation"
    );
    let mut windows_ok = true;
    let mut last = 0u64;
    for w in &live.serve.generations {
        windows_ok &= w.generation >= last;
        last = w.generation;
    }
    assert!(windows_ok, "serve windows regressed in generation");
    let mut publish: Vec<u64> = live.swaps.iter().skip(1).map(|s| s.publish_ns).collect();
    publish.sort_unstable();
    let mut retrain: Vec<u64> = live.swaps.iter().skip(1).map(|s| s.retrain_ns).collect();
    retrain.sort_unstable();
    let (pub_p50, pub_p99) = (percentile(&publish, 0.5), percentile(&publish, 0.99));
    let (ret_p50, ret_p99) = (percentile(&retrain, 0.5), percentile(&retrain, 0.99));
    println!("# live hot-swap under load (threaded runner, induce at p=4)");
    print_row(&["".into(), "p50".into(), "p99".into()]);
    print_row(&[
        "swap µs".into(),
        format!("{:.1}", pub_p50 as f64 / 1e3),
        format!("{:.1}", pub_p99 as f64 / 1e3),
    ]);
    print_row(&[
        "retrain ms".into(),
        format!("{:.1}", ret_p50 as f64 / 1e6),
        format!("{:.1}", ret_p99 as f64 / 1e6),
    ]);
    println!(
        "# {} swaps, {} scoring responses over {} generation window(s), 0 dropped; queue high-water {}/{}",
        live.swaps.len().saturating_sub(1),
        live.responses,
        live.serve.generations.len(),
        live.queue_high_water,
        runner.queue_blocks
    );
    println!("# {}", live.serve);
    println!();
    println!(
        "# headline: {} generations over {} records; drift recovery within 2% on every schedule; swap p99 {:.1}µs under load",
        reference.commits.len(),
        n,
        pub_p99 as f64 / 1e3
    );

    doc.config("total_records", Json::U64(n as u64));
    doc.config("block_records", Json::U64(geo.block as u64));
    doc.config("window_records", Json::U64(geo.window as u64));
    doc.config("reeval_records", Json::U64(geo.reeval as u64));
    doc.config("drift_error", Json::F64(0.15));
    doc.config("alt_func", Json::str(format!("{alt_func:?}")));
    doc.detail("identical_across_p", Json::Bool(true));
    doc.detail("phases_traced", Json::Bool(true));
    doc.detail("live_dropped_requests", Json::U64(0));
    doc.detail(
        "live_swaps",
        Json::U64(live.swaps.len().saturating_sub(1) as u64),
    );
    doc.detail("live_responses", Json::U64(live.responses));
    doc.detail("swap_publish_p50_ns", Json::U64(pub_p50));
    doc.detail("swap_publish_p99_ns", Json::U64(pub_p99));
    doc.detail("swap_retrain_p50_ns", Json::U64(ret_p50));
    doc.detail("swap_retrain_p99_ns", Json::U64(ret_p99));
    for (name, gens, count_trig, drift_trig, pre, post) in &kind_rows {
        doc.row(vec![
            ("curve", Json::str("drift_response")),
            ("kind", Json::str(*name)),
            ("generations", Json::U64(*gens as u64)),
            ("count_triggers", Json::U64(*count_trig as u64)),
            ("drift_triggers", Json::U64(*drift_trig as u64)),
            ("pre_drift_accuracy", Json::F64(*pre)),
            ("post_swap_accuracy", Json::F64(*post)),
        ]);
    }
    for (name, report) in &reports {
        for pt in &report.points {
            if pt.records == 0 {
                continue;
            }
            doc.row(vec![
                ("curve", Json::str("accuracy_over_time")),
                ("kind", Json::str(*name)),
                ("upto", Json::U64(pt.upto)),
                (
                    "generation",
                    Json::U64(pt.generation.expect("scored points have a generation")),
                ),
                ("records", Json::U64(pt.records)),
                ("errors", Json::U64(pt.errors)),
                (
                    "accuracy",
                    Json::F64(1.0 - pt.errors as f64 / pt.records as f64),
                ),
            ]);
        }
        for c in &report.commits {
            doc.row(vec![
                ("curve", Json::str("commits")),
                ("kind", Json::str(*name)),
                ("generation", Json::U64(c.generation)),
                (
                    "trigger",
                    Json::str(match c.trigger {
                        Trigger::Count => "count",
                        Trigger::Drift => "drift",
                    }),
                ),
                ("window_lo", Json::U64(c.window_lo)),
                ("window_hi", Json::U64(c.window_hi)),
                ("window_accuracy", Json::F64(c.accuracy)),
            ]);
        }
    }
    opts.write_metrics(&doc);
    if let Some(path) = &opts.json {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("re-reading {}: {e}", path.display()));
        let rows = mpsim::obs::metrics::validate_metrics(&text)
            .unwrap_or_else(|e| panic!("{} failed schema validation: {e}", path.display()));
        println!("# metrics validated: scalparc-metrics/v1, {rows} rows");
    }
}
