//! **ACC** — correctness report: tree equivalence across processor counts
//! and classification accuracy on the Quest concepts.
//!
//! The paper's formulation computes exactly the splits the serial algorithm
//! would; this report verifies it end to end and records the learnability
//! of each Quest function (noiseless data should be ~100% recoverable by a
//! gini tree; noisy data should approach the noise ceiling on a holdout).
//!
//! Run: `cargo run --release -p scalparc-bench --bin accuracy_report`

use datagen::{generate, ClassFunc, GenConfig, Profile};
use dtree::eval::train_test_split;
use dtree::prune::reduced_error_prune;
use dtree::sprint::{self, SprintConfig};
use scalparc::{induce, ParConfig};
use scalparc_bench::print_row;

fn main() {
    let n = 20_000;
    println!("# Tree equivalence and accuracy per Quest function (N = {n})");
    print_row(&[
        "func".into(),
        "nodes".into(),
        "depth".into(),
        "train acc".into(),
        "p-match".into(),
        "noisy hold".into(),
        "pruned".into(),
    ]);

    for func in ClassFunc::ALL {
        let data = generate(&GenConfig {
            n,
            func,
            noise: 0.0,
            seed: 7,
            profile: Profile::Paper7,
        });
        let serial = sprint::induce(&data, &SprintConfig::default());
        let mut all_match = true;
        for p in [2usize, 4, 16] {
            let par = induce(&data, &ParConfig::new(p));
            if par.tree != serial {
                all_match = false;
            }
        }

        // Noisy generalization: 10% label noise, holdout + pruning.
        let noisy = generate(&GenConfig {
            n,
            func,
            noise: 0.10,
            seed: 8,
            profile: Profile::Paper7,
        });
        let (train, rest) = train_test_split(&noisy, 0.4, 99);
        let (valid, test) = train_test_split(&rest, 0.5, 100);
        let overfit = sprint::induce(&train, &SprintConfig::default());
        let pruned = reduced_error_prune(&overfit, &valid);

        print_row(&[
            format!("{func:?}"),
            serial.nodes.len().to_string(),
            serial.depth().to_string(),
            format!("{:.4}", serial.accuracy(&data)),
            all_match.to_string(),
            format!("{:.4}", overfit.accuracy(&test)),
            format!("{:.4}", pruned.accuracy(&test)),
        ]);
    }
    println!();
    println!("# p-match: ScalParC trees at p∈{{2,4,16}} identical to serial SPRINT.");
    println!("# noisy hold / pruned: holdout accuracy before/after reduced-error");
    println!("# pruning on 10%-noise data (ceiling 0.90).");
}
