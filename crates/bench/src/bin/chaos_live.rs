//! **CHAOS-LIVE** — wall-clock chaos for the supervised live runtime:
//! scripted thread panics, heartbeat stalls, and storage damage across a
//! kill-and-restart, measured against the uninterrupted in-machine oracle.
//!
//! The run is two "process lives" over one drift stream and one
//! generation store:
//!
//! 1. **Life A (faulted)** — `stream::run_live` over the stream's first
//!    3/4, with a scripted trainer panic, a heartbeat stall (abandoned by
//!    the watchdog), and a feeder panic. The supervisor must absorb every
//!    fault within its restart budget: health ends `Degraded`, never
//!    `Failed`, and the traffic thread keeps scoring throughout.
//! 2. **Kill + damage** — the "process" dies; the newest committed
//!    generation file is truncated mid-payload (a torn write at crash
//!    time).
//! 3. **Life B (crash-resume)** — `run_live` again with `resume`: the
//!    store scan must skip the damaged newest file, republish the newest
//!    intact generation, and consume the remaining stream.
//!
//! **Asserted, then re-emitted as metrics**: scoring availability ≥ 99%
//! in both lives; the combined committed-generation sequence (life A's
//! intact prefix + life B's resumed suffix) is *identical* — ids, windows,
//! triggers, tree bytes — to the oracle `run_stream` over the whole
//! stream, i.e. **zero committed generations lost** to panics, stalls,
//! the kill, or the storage damage.
//!
//! Run: `cargo run --release -p scalparc-bench --bin chaos_live
//!       [--smoke] [--seed <u64>] [--json BENCH_chaos_live.json]`
//! (flags are hand-parsed: `--smoke` shrinks the stream for CI).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use datagen::{ClassFunc, DriftKind, GenConfig, Profile};
use mpsim::obs::{Json, MetricsDoc};
use scalparc::stream::genstore;
use scalparc::stream::{run_stream, BlockSource, StreamConfig, Trigger};
use scalparc::ParConfig;
use scalparc_bench::print_row;
use stream::{
    quest_sketch, run_live, DamageKind, DriftSource, Health, LiveConfig, LiveFault, LiveFaultPlan,
    LiveReport, RestartPolicy, StorageDamage,
};

struct Opts {
    smoke: bool,
    seed: u64,
    json: Option<PathBuf>,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        smoke: false,
        seed: 42,
        json: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => opts.smoke = true,
            "--seed" => {
                opts.seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed wants a u64");
            }
            "--json" => opts.json = Some(args.next().expect("--json needs a path").into()),
            other => panic!("unknown flag {other:?} (known: --smoke --seed --json)"),
        }
    }
    opts
}

/// Fraction of scoring attempts that were answered `Ok`.
fn availability(live: &LiveReport) -> f64 {
    let attempts = live.responses + live.submits_rejected;
    if attempts == 0 {
        return 1.0;
    }
    (live.responses - live.response_failures) as f64 / attempts as f64
}

fn main() {
    // Injected panics are the point of this bin; silence their reports.
    serve::sync::hush_injected_panics();
    let opts = parse_args();
    let (total, block, window, reeval) = if opts.smoke {
        (4_000usize, 100usize, 1_000usize, 500usize)
    } else {
        (12_000usize, 200usize, 2_000usize, 1_000usize)
    };
    let cut = 3 * total / 4; // where the "process" is killed (block-aligned)
    assert!(cut % block == 0);

    let gen_cfg = GenConfig {
        n: total,
        func: ClassFunc::F2,
        noise: 0.0,
        seed: opts.seed,
        profile: Profile::Paper7,
    };
    let drift = DriftKind::Abrupt {
        at: total / 2,
        to: ClassFunc::F1,
    };
    let source_full = DriftSource::new(gen_cfg, drift);
    let source_cut = DriftSource::new(GenConfig { n: cut, ..gen_cfg }, drift);
    let stream_cfg = StreamConfig {
        block_records: block,
        window_records: window,
        reeval_records: reeval,
        drift_error: Some(0.15),
        min_epoch_records: (block / 2).max(1) as u64,
        sketch: quest_sketch(&source_full.schema(), 32),
        keep_generations: None,
        induce: Default::default(),
    };

    println!(
        "# CHAOS-LIVE: supervised live runtime under scripted panics, stalls, and storage damage"
    );
    println!(
        "# workload: Quest F2 -> F1 abrupt drift at {}, {} records, blocks of {}, kill at {}, seed {}",
        total / 2,
        total,
        block,
        cut,
        opts.seed
    );
    println!();

    // The uninterrupted oracle over the whole stream.
    let oracle = run_stream(&source_full, &ParConfig::new(4), &stream_cfg, None).report;

    let dir = std::env::temp_dir().join(format!(
        "scalparc-chaos-live-{}-{}",
        std::process::id(),
        opts.seed
    ));
    let _ = std::fs::remove_dir_all(&dir);

    // Life A: faulted run over the head of the stream. Fault positions are
    // absolute records past the bootstrap window, spaced further apart than
    // the feeder's queue look-ahead so each fault lands in its own attempt
    // (a feeder that dies in an already-doomed attempt would be coalesced
    // into that attempt's one supervision event).
    let faults = vec![
        LiveFault::TrainerPanicAtBlock {
            upto: (reeval + 2 * block) as u64,
        },
        LiveFault::FeederPanicAtBlock {
            at: (reeval + 9 * block) as u64,
        },
        LiveFault::TrainerStallAtBlock {
            upto: (reeval + 12 * block) as u64,
            ms: 700,
        },
    ];
    let restart = RestartPolicy {
        max_restarts: 6,
        backoff: Duration::from_millis(5),
    };
    let life_a = run_live(
        &source_cut,
        &stream_cfg,
        &LiveConfig {
            induce_procs: 4,
            store: Some(dir.clone()),
            restart,
            stall_after: Duration::from_millis(250),
            watchdog_tick: Duration::from_millis(20),
            faults: Arc::new(LiveFaultPlan::new(faults.clone())),
            ..LiveConfig::default()
        },
    );
    let avail_a = availability(&life_a);
    assert!(
        life_a.health.is_serving(),
        "life A must degrade, never fail: {:?}",
        life_a.health
    );
    assert!(
        matches!(life_a.health, Health::Degraded { .. }),
        "life A absorbed {} faults; expected Degraded, got {:?}",
        faults.len(),
        life_a.health
    );
    assert!(
        life_a.supervisor.restarts <= restart.max_restarts,
        "restarts within budget"
    );
    assert_eq!(
        life_a.supervisor.failures(),
        faults.len() as u32,
        "every scripted fault observed"
    );
    println!("# life A (faulted): {} commits, {} restarts ({} trainer panics, {} feeder panics, {} stalls), availability {:.4}, health {}",
        life_a.swaps.len(), life_a.supervisor.restarts, life_a.supervisor.trainer_panics,
        life_a.supervisor.feeder_panics, life_a.supervisor.stalls, avail_a, life_a.health);

    // Kill + damage: truncate the newest committed generation mid-payload.
    let newest = *genstore::list_generations(&dir)
        .first()
        .expect("life A committed generations");
    let damage = StorageDamage {
        generation: newest,
        kind: DamageKind::TruncateTail,
    };
    assert!(damage.apply(&dir), "damaging GEN_{newest}");
    println!("# kill: truncated GEN_{newest}.bin mid-payload (torn write at crash time)");

    // Life B: crash-resume over the full stream.
    let life_b = run_live(
        &source_full,
        &stream_cfg,
        &LiveConfig {
            induce_procs: 4,
            store: Some(dir.clone()),
            resume: true,
            restart,
            ..LiveConfig::default()
        },
    );
    let avail_b = availability(&life_b);
    assert_eq!(
        life_b.resumed_from,
        Some(newest - 1),
        "resume skips the damaged newest generation and takes the intact one"
    );
    assert_eq!(
        life_b.store_skipped_corrupt, 1,
        "exactly the torn file skipped"
    );
    assert!(life_b.health.is_serving(), "life B: {:?}", life_b.health);
    let ttr_ms = life_b.recovery_ns as f64 / 1e6;
    println!(
        "# life B (resume): recovered gen {} in {:.2} ms (1 corrupt file skipped), {} new commits, availability {:.4}, health {}",
        newest - 1,
        ttr_ms,
        life_b.swaps.len(),
        avail_b,
        life_b.health
    );
    println!();

    // Zero lost committed generations: life A's intact prefix plus life
    // B's resumed suffix must reproduce the oracle exactly.
    let resumed = life_b.resumed_from.unwrap();
    let combined: Vec<_> = life_a
        .swaps
        .iter()
        .filter(|s| s.generation <= resumed)
        .chain(life_b.swaps.iter())
        .collect();
    assert_eq!(
        combined.len(),
        oracle.commits.len(),
        "combined lives must cover every oracle generation"
    );
    for (s, c) in combined.iter().zip(&oracle.commits) {
        assert_eq!(s.generation, c.generation, "generation id order");
        assert_eq!(s.trigger, c.trigger, "gen {} trigger", s.generation);
        assert_eq!(
            (s.window_lo, s.window_hi),
            (c.window_lo, c.window_hi),
            "gen {} window",
            s.generation
        );
        assert_eq!(s.tree_text, c.tree_text, "gen {} tree bytes", s.generation);
    }
    assert!(
        avail_a >= 0.99 && avail_b >= 0.99,
        "availability {avail_a:.4}/{avail_b:.4} below 99%"
    );

    print_row(&[
        "life".into(),
        "commits".into(),
        "restarts".into(),
        "stalls".into(),
        "availability".into(),
        "health".into(),
    ]);
    for (name, life) in [("A (faulted)", &life_a), ("B (resume)", &life_b)] {
        print_row(&[
            name.into(),
            life.swaps.len().to_string(),
            life.supervisor.restarts.to_string(),
            life.supervisor.stalls.to_string(),
            format!("{:.4}", availability(life)),
            life.health.to_string(),
        ]);
    }
    println!();
    println!(
        "# headline: {} oracle generations reproduced across a kill with {} injected faults and 1 torn store file — 0 lost; availability {:.4} min; resume in {:.2} ms",
        oracle.commits.len(),
        faults.len(),
        avail_a.min(avail_b),
        ttr_ms
    );

    let mut doc = MetricsDoc::new("chaos_live");
    doc.config("total_records", Json::U64(total as u64));
    doc.config("kill_at", Json::U64(cut as u64));
    doc.config("block_records", Json::U64(block as u64));
    doc.config("seed", Json::U64(opts.seed));
    doc.config("smoke", Json::Bool(opts.smoke));
    doc.config("injected_faults", Json::U64(faults.len() as u64));
    doc.config("max_restarts", Json::U64(restart.max_restarts as u64));
    doc.detail("availability_life_a", Json::F64(avail_a));
    doc.detail("availability_life_b", Json::F64(avail_b));
    doc.detail(
        "response_failures",
        Json::U64(life_a.response_failures + life_b.response_failures),
    );
    doc.detail(
        "restarts",
        Json::U64((life_a.supervisor.restarts + life_b.supervisor.restarts) as u64),
    );
    doc.detail(
        "stalls",
        Json::U64((life_a.supervisor.stalls + life_b.supervisor.stalls) as u64),
    );
    doc.detail("resumed_from", Json::U64(resumed));
    doc.detail(
        "store_skipped_corrupt",
        Json::U64(life_b.store_skipped_corrupt as u64),
    );
    doc.detail("recovery_ms", Json::F64(ttr_ms));
    doc.detail("lost_generations", Json::U64(0));
    doc.detail("oracle_generations", Json::U64(oracle.commits.len() as u64));
    for (life, swaps) in [("a", &life_a.swaps), ("b", &life_b.swaps)] {
        for s in swaps.iter() {
            doc.row(vec![
                ("curve", Json::str("commits")),
                ("life", Json::str(life)),
                ("generation", Json::U64(s.generation)),
                (
                    "trigger",
                    Json::str(match s.trigger {
                        Trigger::Count => "count",
                        Trigger::Drift => "drift",
                    }),
                ),
                ("window_lo", Json::U64(s.window_lo)),
                ("window_hi", Json::U64(s.window_hi)),
                ("publish_ns", Json::U64(s.publish_ns)),
                ("retrain_ns", Json::U64(s.retrain_ns)),
            ]);
        }
    }
    if let Some(path) = &opts.json {
        doc.write(path)
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("re-reading {}: {e}", path.display()));
        let rows = mpsim::obs::metrics::validate_metrics(&text)
            .unwrap_or_else(|e| panic!("{} failed schema validation: {e}", path.display()));
        println!(
            "# metrics written to {} and validated: scalparc-metrics/v1, {rows} rows",
            path.display()
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
