//! **FIG3B** — reproduce Figure 3(b): memory required per processor vs
//! number of processors, one series per training-set size.
//!
//! Shapes to check (paper §5): "for smaller number of processors, the
//! memory required drops by almost a perfect factor of two when the number
//! of processors is doubled. Sizes of some of the buffers required for the
//! collective communication operations increase with the increasing number
//! of processors. Hence, for larger number of processors, we see a deviation
//! from the ideal trend."
//!
//! Run: `cargo run --release -p scalparc-bench --bin fig3b [--full|--quick]`

use mpsim::obs::Json;
use scalparc::Algorithm;
use scalparc_bench::{print_row, BenchOpts};

fn main() {
    let opts = BenchOpts::from_args();
    let procs = opts.scale.procs();
    let sizes = opts.scale.dataset_sizes();

    println!("# Figure 3(b): peak memory per processor (MB) vs processors");
    println!(
        "# workload: Quest {:?}, 7 attributes, 2 classes, seed {}",
        opts.func, opts.seed
    );
    let mut header = vec!["N \\ p".to_string()];
    header.extend(procs.iter().map(|p| p.to_string()));
    print_row(&header);

    let mut tables = Vec::new();
    for &n in &sizes {
        let data = opts.dataset(n);
        let cells = scalparc_bench::sweep(&data, &procs, Algorithm::ScalParc);
        let mut row = vec![opts.scale.size_label(n)];
        row.extend(
            cells
                .iter()
                .map(|c| format!("{:.3}", c.mem_per_proc as f64 / 1e6)),
        );
        print_row(&row);
        tables.push((n, cells));
    }

    println!();
    println!("# Halving factor when doubling p (ideal = 2.00; the paper reports");
    println!("# ~1.94 at small p decaying towards 1 as collective buffers grow)");
    let mut header = vec!["N \\ p".to_string()];
    header.extend(procs.windows(2).map(|w| format!("{}->{}", w[0], w[1])));
    print_row(&header);
    for (n, cells) in &tables {
        let mut row = vec![opts.scale.size_label(*n)];
        row.extend(
            cells
                .windows(2)
                .map(|w| format!("{:.2}", w[0].mem_per_proc as f64 / w[1].mem_per_proc as f64)),
        );
        print_row(&row);
    }

    println!();
    println!("# Per-category peaks at the largest machine (largest N):");
    let mut doc = opts.metrics_doc("fig3b");
    if let Some((_, cells)) = tables.last() {
        let last = cells.last().unwrap();
        let worst = last.stats.ranks.iter().max_by_key(|r| r.peak_mem).unwrap();
        let mut cats = Vec::new();
        for (cat, usage) in &worst.mem_categories {
            println!("#   {:>16}: {:.3} MB peak", cat, usage.peak as f64 / 1e6);
            cats.push((cat.to_string(), Json::U64(usage.peak)));
        }
        doc.detail("category_peaks_largest_run", Json::Obj(cats));
    }

    for (n, cells) in &tables {
        for c in cells {
            doc.row(vec![
                ("n", Json::U64(*n as u64)),
                ("procs", Json::U64(c.procs as u64)),
                ("mem_per_proc", Json::U64(c.mem_per_proc)),
                ("comm_per_proc", Json::U64(c.comm_per_proc)),
            ]);
        }
    }
    opts.write_metrics(&doc);
}
