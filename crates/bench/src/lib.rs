//! Shared harness for the paper-reproduction benchmarks.
//!
//! Every binary in this crate regenerates one artifact of the paper's
//! evaluation section (see `DESIGN.md` §4 for the experiment index). The
//! binaries accept:
//!
//! * `--full` — run at the paper's scale (0.8M–6.4M records). The default
//!   is 1/16 scale (50k–400k), which preserves every curve shape while
//!   finishing in minutes on a laptop;
//! * `--quick` — 1/64 scale smoke run;
//! * `--func F1..F10` — classification function (default F2);
//! * `--seed <u64>` — dataset seed;
//! * `--json <path>` — also write the bin's table as a
//!   `scalparc-metrics/v1` document (the one JSON emitter shared by every
//!   bin; see `obs::metrics`).

use std::path::PathBuf;

use datagen::{generate, ClassFunc, GenConfig, Profile};
use dtree::data::Dataset;
use mpsim::obs::{Json, MetricsDoc};
use mpsim::{CostModel, RunStats, TimingMode};
use scalparc::{induce_measured, Algorithm, InduceConfig, ParConfig, ParResult};

/// Scale of a benchmark sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// 1/64 of the paper's sizes — seconds.
    Quick,
    /// 1/16 of the paper's sizes — minutes (default).
    Default,
    /// The paper's sizes (0.8M–6.4M records) — hours on a small host.
    Full,
}

impl Scale {
    /// The four training-set sizes of Figure 3, at this scale.
    pub fn dataset_sizes(&self) -> Vec<usize> {
        let paper = [800_000usize, 1_600_000, 3_200_000, 6_400_000];
        let div = match self {
            Scale::Quick => 64,
            Scale::Default => 16,
            Scale::Full => 1,
        };
        paper.iter().map(|n| n / div).collect()
    }

    /// Human-readable label of a size.
    pub fn size_label(&self, n: usize) -> String {
        match self {
            Scale::Full => format!("{:.1}m", n as f64 / 1e6),
            _ => format!("{}k", n / 1000),
        }
    }

    /// Processor counts of the paper's sweep.
    pub fn procs(&self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![1, 2, 4, 8, 16],
            _ => vec![1, 2, 4, 8, 16, 32, 64, 128],
        }
    }
}

/// Parsed command-line options shared by the benchmark binaries.
#[derive(Clone, Debug)]
pub struct BenchOpts {
    /// Sweep scale.
    pub scale: Scale,
    /// Classification function.
    pub func: ClassFunc,
    /// Dataset seed.
    pub seed: u64,
    /// Where to write the machine-readable metrics document, if anywhere.
    pub json: Option<PathBuf>,
}

impl BenchOpts {
    /// Parse `std::env::args` (panics with usage on unknown flags).
    pub fn from_args() -> Self {
        let mut opts = BenchOpts {
            scale: Scale::Default,
            func: ClassFunc::F2,
            seed: 42,
            json: None,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--full" => opts.scale = Scale::Full,
                "--quick" => opts.scale = Scale::Quick,
                "--func" => {
                    let f = args.next().expect("--func needs a value");
                    opts.func = ClassFunc::parse(&f)
                        .unwrap_or_else(|| panic!("unknown function {f:?} (want F1..F10)"));
                }
                "--seed" => {
                    opts.seed = args
                        .next()
                        .expect("--seed needs a value")
                        .parse()
                        .expect("--seed wants a u64");
                }
                "--json" => opts.json = Some(args.next().expect("--json needs a path").into()),
                other => {
                    panic!("unknown flag {other:?} (known: --full --quick --func --seed --json)")
                }
            }
        }
        opts
    }

    /// Start a metrics document stamped with this run's shared parameters.
    pub fn metrics_doc(&self, bench: &str) -> MetricsDoc {
        let mut doc = MetricsDoc::new(bench);
        doc.config(
            "scale",
            Json::str(match self.scale {
                Scale::Quick => "quick",
                Scale::Default => "default",
                Scale::Full => "full",
            }),
        );
        doc.config("func", Json::str(format!("{:?}", self.func)));
        doc.config("seed", Json::U64(self.seed));
        doc
    }

    /// Write `doc` to the `--json` path, if one was given.
    pub fn write_metrics(&self, doc: &MetricsDoc) {
        if let Some(path) = &self.json {
            doc.write(path)
                .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
            println!("# metrics written to {}", path.display());
        }
    }

    /// Generate the benchmark dataset for `n` records.
    pub fn dataset(&self, n: usize) -> Dataset {
        generate(&GenConfig {
            n,
            func: self.func,
            noise: 0.0,
            seed: self.seed,
            profile: Profile::Paper7,
        })
    }
}

/// One sweep cell: measured induction at (N, p).
pub struct Cell {
    /// Virtual processors.
    pub procs: usize,
    /// Parallel runtime (simulated seconds).
    pub time_s: f64,
    /// Peak memory per processor, bytes.
    pub mem_per_proc: u64,
    /// Per-processor communication volume (max over ranks), bytes.
    pub comm_per_proc: u64,
    /// Full machine stats for further digging.
    pub stats: RunStats,
}

/// Host-CPU-to-Alpha-EV4 speed factor used to rescale the T3D cost model
/// (see [`CostModel::t3d_scaled`]): compute runs on a modern core, so the
/// communication constants are divided by the same factor to preserve the
/// paper's computation-to-communication ratio.
pub const T3D_CPU_FACTOR: f64 = 64.0;

/// Run a measured, noise-filtered induction of `data` on `p` virtual
/// processors under the scaled T3D cost model (see
/// [`scalparc::induce_measured`] for the filtering mechanism).
pub fn run_measured(data: &Dataset, p: usize, algorithm: Algorithm) -> ParResult {
    let cfg = ParConfig {
        procs: p,
        cost: CostModel::t3d_scaled(T3D_CPU_FACTOR),
        timing: TimingMode::Measured,
        trace: None,
        induce: InduceConfig {
            algorithm,
            ..Default::default()
        },
    };
    induce_measured(data, &cfg, 2)
}

/// Sweep `p` over `procs` for one dataset, taking the best of `reps`
/// repetitions per cell (wall-clock measurement of short compute segments
/// is noisy; the minimum is the standard de-noised estimate).
pub fn sweep_reps(data: &Dataset, procs: &[usize], algorithm: Algorithm, reps: usize) -> Vec<Cell> {
    assert!(reps >= 1);
    procs
        .iter()
        .map(|&p| {
            let mut best: Option<Cell> = None;
            for _ in 0..reps {
                let r = run_measured(data, p, algorithm);
                let cell = Cell {
                    procs: p,
                    time_s: r.stats.time_s(),
                    mem_per_proc: r.stats.peak_mem_per_proc(),
                    comm_per_proc: r.stats.max_comm_volume_per_proc(),
                    stats: r.stats,
                };
                if best.as_ref().is_none_or(|b| cell.time_s < b.time_s) {
                    best = Some(cell);
                }
            }
            best.unwrap()
        })
        .collect()
}

/// [`sweep_reps`] with the default repetition count (the denoised
/// measurement inside [`run_measured`] already filters host noise, so one
/// repetition suffices).
pub fn sweep(data: &Dataset, procs: &[usize], algorithm: Algorithm) -> Vec<Cell> {
    sweep_reps(data, procs, algorithm, 1)
}

/// Format bytes in millions (matches the paper's "million bytes" axis).
pub fn fmt_mb(bytes: u64) -> String {
    format!("{:.3}", bytes as f64 / 1e6)
}

/// Print a row of right-aligned columns of width 10.
pub fn print_row(cells: &[String]) {
    let row: Vec<String> = cells.iter().map(|c| format!("{c:>10}")).collect();
    println!("{}", row.join(" "));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_consistent() {
        assert_eq!(Scale::Full.dataset_sizes()[3], 6_400_000);
        assert_eq!(Scale::Default.dataset_sizes()[0], 50_000);
        assert_eq!(Scale::Quick.dataset_sizes()[0], 12_500);
        assert!(Scale::Default.procs().contains(&128));
    }

    #[test]
    fn sweep_runs_and_produces_sane_cells() {
        let opts = BenchOpts {
            scale: Scale::Quick,
            func: ClassFunc::F1,
            seed: 1,
            json: None,
        };
        let data = opts.dataset(2_000);
        let cells = sweep(&data, &[1, 2], Algorithm::ScalParc);
        assert_eq!(cells.len(), 2);
        assert!(cells.iter().all(|c| c.time_s > 0.0));
        assert!(cells[1].mem_per_proc < cells[0].mem_per_proc);
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_mb(2_000_000), "2.000");
    }
}
