//! Criterion benchmarks for the serving path: per-record oracle descent vs
//! the flat batched kernel at several batch sizes, and the concurrent
//! harness at 1/4/8 workers.
//!
//! Like `micro.rs` these measure host wall time. The tree is induced on
//! noisy Quest data so it is large enough (thousands of nodes) that the
//! pointer-chasing baseline pays for its cache misses — the regime the
//! flat layout exists for.
//!
//! Run with `cargo bench -p scalparc-bench --bench serve`
//! (or `-- --test` for a single unmeasured smoke pass).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use datagen::{generate, ClassFunc, GenConfig, Profile};
use dtree::flat::FlatTree;
use dtree::sprint::{self, SprintConfig};
use dtree::{Dataset, DecisionTree};
use serve::{Request, ServeConfig, Server};

fn fixture(n: usize) -> (DecisionTree, Arc<Dataset>) {
    let train = generate(&GenConfig {
        n,
        func: ClassFunc::F2,
        noise: 0.10,
        seed: 42,
        profile: Profile::Paper7,
    });
    let tree = sprint::induce(&train, &SprintConfig::default());
    let data = Arc::new(generate(&GenConfig {
        n,
        func: ClassFunc::F2,
        noise: 0.0,
        seed: 42 ^ 0x5EED,
        profile: Profile::Paper7,
    }));
    (tree, data)
}

fn bench_predict_kernels(c: &mut Criterion) {
    let (tree, data) = fixture(50_000);
    let flat = FlatTree::compile(&tree);

    let mut g = c.benchmark_group("serve_kernel");
    g.sample_size(10);
    for &batch in &[1_024usize, 16_384] {
        g.throughput(Throughput::Elements(batch as u64));
        g.bench_with_input(BenchmarkId::new("per_record", batch), &batch, |b, &n| {
            b.iter(|| {
                let mut out = vec![0u8; n];
                for (rid, slot) in out.iter_mut().enumerate() {
                    *slot = tree.predict(&data, rid);
                }
                out
            })
        });
        g.bench_with_input(BenchmarkId::new("predict_batch", batch), &batch, |b, &n| {
            b.iter(|| {
                let mut out = vec![0u8; n];
                flat.predict_range(&data, 0, n, &mut out);
                out
            })
        });
    }
    g.finish();
}

fn bench_harness(c: &mut Criterion) {
    let (tree, data) = fixture(50_000);
    let flat = FlatTree::compile(&tree);
    let batch = 4_096usize;

    let mut g = c.benchmark_group("serve_harness");
    g.sample_size(10);
    g.throughput(Throughput::Elements(data.len() as u64));
    for &workers in &[1usize, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("score_50k", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let server = Server::start(
                        flat.clone(),
                        ServeConfig {
                            workers,
                            queue_depth: data.len() / batch + 2,
                            ..ServeConfig::default()
                        },
                    );
                    let rxs: Vec<_> = (0..data.len())
                        .step_by(batch)
                        .map(|lo| {
                            server
                                .submit(Request {
                                    data: Arc::clone(&data),
                                    lo,
                                    hi: (lo + batch).min(data.len()),
                                })
                                .expect("queue sized for the sweep")
                        })
                        .collect();
                    let total: usize = rxs
                        .iter()
                        .map(|rx| rx.recv().unwrap().predictions.len())
                        .sum();
                    server.shutdown();
                    total
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_predict_kernels, bench_harness);
criterion_main!(benches);
