//! Criterion micro-benchmarks for the performance-critical building blocks:
//! the gini split-point scan, the parallel sample sort, the all-to-all
//! personalized exchange, the distributed node table, and end-to-end
//! induction at small scale.
//!
//! These measure **host wall time of running the simulation** — how fast
//! this library executes — not simulated parallel time. Simulating more
//! virtual processors costs more host time (more threads, more collective
//! bookkeeping) even though the *simulated* runtime shrinks; the figure
//! harnesses (`--bin fig3a` etc.) are the ones that report simulated time.
//!
//! Run with `cargo bench -p scalparc-bench`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use datagen::{generate, GenConfig};
use dhash::DistTable;
use dtree::cart::{self, CartConfig};
use dtree::gini::ContinuousScan;
use dtree::sprint::{self, SprintConfig};
use mpsim::{run_simple, MachineCfg};
use scalparc::{induce, ParConfig};

fn bench_gini_scan(c: &mut Criterion) {
    let n = 100_000u32;
    let mut entries: Vec<(f32, u8)> = (0..n)
        .map(|i| {
            let v = (i.wrapping_mul(2654435761) % 1_000_003) as f32;
            (v, (i % 2) as u8)
        })
        .collect();
    entries.sort_by(|a, b| a.0.total_cmp(&b.0));
    let total = vec![n as u64 / 2, n as u64 / 2];

    let mut g = c.benchmark_group("gini_scan");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("continuous_scan_100k", |b| {
        b.iter(|| {
            let mut scan = ContinuousScan::fresh(total.clone());
            for &(v, cl) in &entries {
                scan.push(v, cl);
            }
            scan.best()
        })
    });
    // Same scan over the packed 10-byte records via the run-chunked kernel
    // (boundary work only at value changes, per-class tallies inside runs) —
    // the shape the out-of-core chunks stream through.
    let packed: Vec<dtree::list::ContEntry> = entries
        .iter()
        .enumerate()
        .map(|(i, &(value, class))| dtree::list::ContEntry {
            value,
            rid: i as u32,
            class: class as u16,
        })
        .collect();
    g.bench_function("scan_packed_100k", |b| {
        b.iter(|| {
            let mut scan = ContinuousScan::fresh(total.clone());
            scan.scan_packed(&packed);
            scan.best()
        })
    });
    g.finish();
}

fn bench_sample_sort(c: &mut Criterion) {
    let mut g = c.benchmark_group("sample_sort");
    g.sample_size(10);
    for &p in &[1usize, 4] {
        g.bench_with_input(BenchmarkId::new("sort_100k_total", p), &p, |b, &p| {
            b.iter(|| {
                run_simple(p, |comm| {
                    let n = 100_000 / comm.size();
                    let local: Vec<u32> = (0..n)
                        .map(|i| {
                            ((i + comm.rank() * n) as u32).wrapping_mul(2654435761) % 1_000_003
                        })
                        .collect();
                    sortp::sample_sort(comm, local, |a, b| a.cmp(b)).len()
                })
            })
        });
    }
    g.finish();
}

fn bench_alltoallv(c: &mut Criterion) {
    let mut g = c.benchmark_group("alltoallv");
    g.sample_size(10);
    let p = 8usize;
    let per_dest = 4_000usize;
    g.throughput(Throughput::Elements((p * p * per_dest) as u64));
    g.bench_function("8ranks_4k_each", |b| {
        b.iter(|| {
            let cfg = MachineCfg::new(p);
            mpsim::run(&cfg, |comm| {
                let bufs: Vec<Vec<u64>> = (0..p).map(|d| vec![d as u64; per_dest]).collect();
                comm.alltoallv(bufs).len()
            })
            .outputs
        })
    });
    g.finish();
}

fn bench_alltoallv_flat(c: &mut Criterion) {
    let mut g = c.benchmark_group("alltoallv_flat");
    g.sample_size(10);
    let p = 8usize;
    let per_dest = 4_000usize;
    g.throughput(Throughput::Elements((p * p * per_dest) as u64));
    // Same logical exchange as `alltoallv/8ranks_4k_each`, through the flat
    // counts/displacements API: one contiguous send buffer per rank, one
    // contiguous receive buffer, no per-destination vectors.
    g.bench_function("8ranks_4k_each", |b| {
        b.iter(|| {
            let cfg = MachineCfg::new(p);
            mpsim::run(&cfg, |comm| {
                let counts = vec![per_dest; p];
                let send: Vec<u64> = (0..p)
                    .flat_map(|d| std::iter::repeat_n(d as u64, per_dest))
                    .collect();
                comm.alltoallv_flat(send, &counts).0.len()
            })
            .outputs
        })
    });
    // Steady-state variant: warm receive buffers reused across rounds, the
    // shape the induction hot loop actually runs.
    g.bench_function("8ranks_4k_each_warm", |b| {
        b.iter(|| {
            let cfg = MachineCfg::new(p);
            mpsim::run(&cfg, |comm| {
                let counts = vec![per_dest; p];
                let send: Vec<u64> = (0..p)
                    .flat_map(|d| std::iter::repeat_n(d as u64, per_dest))
                    .collect();
                let mut recv = Vec::new();
                let mut recv_counts = Vec::new();
                for _ in 0..4 {
                    comm.alltoallv_flat_into(&send, &counts, &mut recv, &mut recv_counts);
                }
                recv.len()
            })
            .outputs
        })
    });
    g.finish();
}

fn bench_partition(c: &mut Criterion) {
    use dtree::list::{AttrList, ContEntry};
    use dtree::tree::SplitTest;
    use scalparc::phases::{
        split_by_children, split_by_children_ref, split_directly, split_directly_ref,
    };

    let n = 100_000usize;
    let list = AttrList::Continuous(
        (0..n)
            .map(|i| ContEntry {
                value: (i % 97) as f32,
                rid: i as u32,
                class: (i % 2) as u16,
            })
            .collect(),
    );
    let children: Vec<u8> = (0..n).map(|i| u8::from((i * 7) % 3 != 0)).collect();
    let test = SplitTest::Continuous {
        attr: 0,
        threshold: 48.0,
    };

    let mut g = c.benchmark_group("partition");
    g.throughput(Throughput::Elements(n as u64));
    let mut counts = Vec::new();
    g.bench_function("split_by_children_100k", |b| {
        b.iter(|| split_by_children(list.clone(), 2, &children, &mut counts).len())
    });
    let mut counts2 = Vec::new();
    g.bench_function("split_directly_100k", |b| {
        b.iter(|| split_directly(list.clone(), &test, 2, &mut counts2).len())
    });
    // Reference partitions (per-record Vec::push into per-child buffers) —
    // the baseline the count-pass + cursor-scatter kernels are measured
    // against; kept benchable so regressions in either side are visible.
    let mut counts3 = Vec::new();
    g.bench_function("split_by_children_ref_100k", |b| {
        b.iter(|| split_by_children_ref(list.clone(), 2, &children, &mut counts3).len())
    });
    let mut counts4 = Vec::new();
    g.bench_function("split_directly_ref_100k", |b| {
        b.iter(|| split_directly_ref(list.clone(), &test, 2, &mut counts4).len())
    });
    g.finish();
}

fn bench_dist_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("dist_table");
    g.sample_size(10);
    let n = 50_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("update_inquire_50k_p4", |b| {
        b.iter(|| {
            run_simple(4, |comm| {
                let mut t = DistTable::<u8>::new(comm, n);
                let mine: Vec<(u64, u8)> = (0..n)
                    .filter(|k| *k as usize % 4 == comm.rank())
                    .map(|k| (k, (k % 3) as u8))
                    .collect();
                t.update(comm, &mine);
                let keys: Vec<u64> = (comm.rank() as u64..n).step_by(4).collect();
                t.inquire(comm, &keys).len()
            })
        })
    });
    g.finish();
}

fn bench_induction(c: &mut Criterion) {
    let data = generate(&GenConfig::paper(10_000, 42));
    let mut g = c.benchmark_group("induction_10k");
    g.sample_size(10);
    g.bench_function("serial_sprint", |b| {
        b.iter(|| sprint::induce(&data, &SprintConfig::default()).nodes.len())
    });
    g.bench_function("cart_resort", |b| {
        b.iter(|| cart::induce(&data, &CartConfig::default()).nodes.len())
    });
    for &p in &[1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("scalparc", p), &p, |b, &p| {
            b.iter(|| induce(&data, &ParConfig::new(p)).tree.nodes.len())
        });
    }
    g.bench_function("sprint_replicated_p4", |b| {
        b.iter(|| {
            induce(&data, &ParConfig::new(4).sprint_baseline())
                .tree
                .nodes
                .len()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_gini_scan,
    bench_sample_sort,
    bench_alltoallv,
    bench_alltoallv_flat,
    bench_partition,
    bench_dist_table,
    bench_induction
);
criterion_main!(benches);
