//! Bounded, backpressured ingest queue between the stream feeder and the
//! trainer.
//!
//! A fixed-capacity MPSC channel built on `Mutex` + two `Condvar`s:
//! [`IngestQueue::push`] **blocks** when the queue is full (backpressure —
//! a slow trainer throttles the feeder instead of buffering unboundedly),
//! and [`IngestQueue::pop`] blocks until an item arrives or the queue is
//! closed and drained. Closing is one-way and idempotent: producers see
//! `push` fail, consumers drain whatever is left and then get `None`.
//! FIFO order is preserved, so blocks leave in arrival order — the
//! property the sliding-window eviction in the trainer relies on.
//!
//! The queue is **panic-proof**: every acquisition goes through the
//! poison-recovering helpers in [`serve::sync`], so a feeder or trainer
//! that dies while holding the lock leaves a queue the surviving (or
//! restarted) side can still push to, pop from, and close.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use serve::sync;

/// Why a non-blocking push did not enqueue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryPushError {
    /// The queue is at capacity; a blocking [`IngestQueue::push`] would
    /// wait here.
    Full,
    /// The queue is closed; no push will ever succeed again.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    pushed: u64,
    high_water: usize,
}

/// The bounded ingest channel; see the module docs.
pub struct IngestQueue<T> {
    inner: Mutex<Inner<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> IngestQueue<T> {
    /// An empty queue holding at most `capacity` items (at least 1).
    pub fn new(capacity: usize) -> IngestQueue<T> {
        IngestQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
                pushed: 0,
                high_water: 0,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue `item`, blocking while the queue is full. Returns `false`
    /// (with the item dropped) iff the queue was closed.
    pub fn push(&self, item: T) -> bool {
        let mut g = sync::lock(&self.inner);
        loop {
            if g.closed {
                return false;
            }
            if g.items.len() < self.capacity {
                g.items.push_back(item);
                g.pushed += 1;
                g.high_water = g.high_water.max(g.items.len());
                drop(g);
                self.not_empty.notify_one();
                return true;
            }
            g = sync::wait(&self.not_full, g);
        }
    }

    /// Enqueue without blocking.
    pub fn try_push(&self, item: T) -> Result<(), TryPushError> {
        let mut g = sync::lock(&self.inner);
        if g.closed {
            return Err(TryPushError::Closed);
        }
        if g.items.len() >= self.capacity {
            return Err(TryPushError::Full);
        }
        g.items.push_back(item);
        g.pushed += 1;
        g.high_water = g.high_water.max(g.items.len());
        drop(g);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeue the oldest item, blocking while the queue is empty and
    /// open. `None` means closed *and* drained — the stream is over.
    pub fn pop(&self) -> Option<T> {
        let mut g = sync::lock(&self.inner);
        loop {
            if let Some(item) = g.items.pop_front() {
                drop(g);
                self.not_full.notify_one();
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = sync::wait(&self.not_empty, g);
        }
    }

    /// Close the queue: future pushes fail, pops drain the remainder and
    /// then return `None`. Idempotent; wakes every waiter.
    pub fn close(&self) {
        sync::lock(&self.inner).closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        sync::lock(&self.inner).items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum items the queue can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items ever pushed successfully.
    pub fn pushed(&self) -> u64 {
        sync::lock(&self.inner).pushed
    }

    /// Largest queue length observed — how close the feeder came to the
    /// backpressure ceiling.
    pub fn high_water(&self) -> usize {
        sync::lock(&self.inner).high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_order_and_counters() {
        let q = IngestQueue::new(8);
        for i in 0..5 {
            q.push(i).then_some(()).unwrap();
        }
        assert_eq!(q.len(), 5);
        assert_eq!(q.pushed(), 5);
        assert_eq!(q.high_water(), 5);
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn try_push_reports_full_then_closed() {
        let q = IngestQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(TryPushError::Full));
        q.close();
        assert_eq!(q.try_push(3), Err(TryPushError::Closed));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None, "closed and drained");
    }

    #[test]
    fn full_queue_blocks_the_producer_until_a_pop() {
        let q = Arc::new(IngestQueue::new(1));
        q.push(0u32);
        let unblocked = Arc::new(AtomicBool::new(false));
        let producer = {
            let q = Arc::clone(&q);
            let unblocked = Arc::clone(&unblocked);
            std::thread::spawn(move || {
                assert!(q.push(1)); // blocks: capacity 1, one item queued
                unblocked.store(true, Ordering::SeqCst);
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        assert!(
            !unblocked.load(Ordering::SeqCst),
            "push must backpressure while full"
        );
        assert_eq!(q.pop(), Some(0));
        producer.join().unwrap();
        assert!(unblocked.load(Ordering::SeqCst));
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn close_wakes_a_blocked_consumer() {
        let q: Arc<IngestQueue<u32>> = Arc::new(IngestQueue::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(Duration::from_millis(10));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn poisoned_queue_still_pushes_pops_and_closes() {
        sync::hush_injected_panics();
        let q = Arc::new(IngestQueue::new(4));
        q.push(1u32);
        // A client dies while holding the queue's lock: the mutex is
        // poisoned, the queued items untouched.
        {
            let q = Arc::clone(&q);
            let _ = std::thread::spawn(move || {
                let _g = q.inner.lock().unwrap();
                panic!("[injected] queue client dies mid-critical-section");
            })
            .join();
        }
        assert!(q.inner.is_poisoned());
        assert!(q.push(2), "push survives the poisoned holder");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.len(), 0);
        q.close();
        assert_eq!(q.pop(), None, "close still drains and terminates");
    }

    #[test]
    fn close_fails_blocked_producers() {
        let q = Arc::new(IngestQueue::new(1));
        q.push(7u32);
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(8))
        };
        std::thread::sleep(Duration::from_millis(10));
        q.close();
        assert!(!producer.join().unwrap(), "push on a closed queue fails");
        // The already-queued item still drains.
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
    }
}
