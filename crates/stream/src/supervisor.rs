//! Supervision primitives for the live runtime: heartbeats, stall
//! detection, and a bounded restart policy feeding a health state machine.
//!
//! The live runner ([`crate::live::run_live`]) runs its trainer and feeder
//! as *supervised attempts*: each attempt's thread body is wrapped in
//! `catch_unwind`, beats a [`Heartbeat`] as it makes progress, and reports
//! its outcome to a control loop. The control loop drives a [`Watchdog`]
//! (a thread that stops beating for longer than the stall threshold is as
//! dead as one that panicked) and a [`Supervisor`] that decides, per
//! failure, whether to restart — with exponential backoff, up to
//! [`RestartPolicy::max_restarts`] — or to give up and declare the runtime
//! [`Health::Failed`].
//!
//! The state machine is deliberately one-way per run: `Healthy` until the
//! first failure, `Degraded` while restarts hold the system up, `Failed`
//! when the budget is exhausted. A run that ends `Degraded` kept every
//! guarantee (serving answered, commits stayed lossless); `Failed` means
//! the stream was abandoned before exhaustion.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

pub use serve::Health;

/// Which supervised thread a failure belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Component {
    /// The trainer: pops blocks, maintains the window, commits/publishes.
    Trainer,
    /// The feeder: materializes stream blocks into the ingest queue.
    Feeder,
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Component::Trainer => write!(f, "trainer"),
            Component::Feeder => write!(f, "feeder"),
        }
    }
}

/// How a supervised attempt failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// The thread body panicked (caught at the attempt boundary).
    Panic,
    /// The thread stopped heartbeating past the stall threshold and was
    /// abandoned by the watchdog.
    Stall,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureKind::Panic => write!(f, "panic"),
            FailureKind::Stall => write!(f, "stall"),
        }
    }
}

/// A monotone progress counter a supervised thread bumps as it works.
/// The watchdog samples it; a counter that stops changing is a stall.
#[derive(Debug, Default)]
pub struct Heartbeat {
    beats: AtomicU64,
}

impl Heartbeat {
    /// A heartbeat that has never beaten.
    pub fn new() -> Heartbeat {
        Heartbeat::default()
    }

    /// Record one unit of progress.
    pub fn beat(&self) {
        self.beats.fetch_add(1, Ordering::Relaxed);
    }

    /// Total beats so far (sampled by the watchdog).
    pub fn count(&self) -> u64 {
        self.beats.load(Ordering::Relaxed)
    }
}

/// Stall detector over one [`Heartbeat`]: remembers when the beat count
/// last changed and trips once it has been flat for `stall_after`.
#[derive(Debug)]
pub struct Watchdog {
    stall_after: Duration,
    last_count: u64,
    last_change: Instant,
}

impl Watchdog {
    /// A watchdog considering a heartbeat flat for `stall_after` stalled.
    /// The clock starts now, so a thread that never beats at all also
    /// trips after `stall_after`.
    pub fn new(stall_after: Duration) -> Watchdog {
        Watchdog {
            stall_after,
            last_count: 0,
            last_change: Instant::now(),
        }
    }

    /// Feed the current beat count; returns `true` once the count has not
    /// advanced for at least the stall threshold.
    pub fn check(&mut self, count: u64) -> bool {
        if count != self.last_count {
            self.last_count = count;
            self.last_change = Instant::now();
            return false;
        }
        self.last_change.elapsed() >= self.stall_after
    }
}

/// Bounded-restart policy: how many failures the supervisor absorbs, and
/// the backoff before each restart (doubling per consecutive failure).
#[derive(Clone, Copy, Debug)]
pub struct RestartPolicy {
    /// Failures absorbed before the supervisor gives up (`Failed`). A
    /// policy of 3 allows up to 4 attempts in total.
    pub max_restarts: u32,
    /// Backoff before the first restart; doubles per subsequent restart.
    pub backoff: Duration,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        RestartPolicy {
            max_restarts: 3,
            backoff: Duration::from_millis(10),
        }
    }
}

/// One supervision decision, kept for the report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SupervisionEvent {
    /// Which thread failed.
    pub component: Component,
    /// How it failed.
    pub kind: FailureKind,
    /// Whether the supervisor restarted (`true`) or gave up (`false`).
    pub restarted: bool,
    /// Backoff slept before the restart (zero when `restarted` is false).
    pub backoff: Duration,
}

/// What the supervisor did over one run.
#[derive(Clone, Debug, Default)]
pub struct SupervisorReport {
    /// Restarts performed (failures absorbed).
    pub restarts: u32,
    /// Trainer panics observed.
    pub trainer_panics: u32,
    /// Feeder panics observed.
    pub feeder_panics: u32,
    /// Stalls detected (and abandoned) by the watchdog.
    pub stalls: u32,
    /// Every decision, in order.
    pub events: Vec<SupervisionEvent>,
}

impl SupervisorReport {
    /// Total failures observed (panics plus stalls).
    pub fn failures(&self) -> u32 {
        self.trainer_panics + self.feeder_panics + self.stalls
    }
}

/// The restart decision-maker; see the module docs for the state machine.
#[derive(Debug)]
pub struct Supervisor {
    policy: RestartPolicy,
    report: SupervisorReport,
    exhausted: bool,
}

impl Supervisor {
    /// A fresh supervisor with `policy`'s budget unspent.
    pub fn new(policy: RestartPolicy) -> Supervisor {
        Supervisor {
            policy,
            report: SupervisorReport::default(),
            exhausted: false,
        }
    }

    /// Record a failure and decide: `Some(backoff)` means restart after
    /// sleeping `backoff`; `None` means the budget is exhausted and the
    /// run must end `Failed`.
    pub fn on_failure(&mut self, component: Component, kind: FailureKind) -> Option<Duration> {
        match kind {
            FailureKind::Panic => match component {
                Component::Trainer => self.report.trainer_panics += 1,
                Component::Feeder => self.report.feeder_panics += 1,
            },
            FailureKind::Stall => self.report.stalls += 1,
        }
        if self.report.restarts >= self.policy.max_restarts {
            self.exhausted = true;
            self.report.events.push(SupervisionEvent {
                component,
                kind,
                restarted: false,
                backoff: Duration::ZERO,
            });
            return None;
        }
        let backoff = self
            .policy
            .backoff
            .saturating_mul(1u32 << self.report.restarts.min(16));
        self.report.restarts += 1;
        self.report.events.push(SupervisionEvent {
            component,
            kind,
            restarted: true,
            backoff,
        });
        Some(backoff)
    }

    /// Current health: `Healthy` with no failures, `Degraded` while
    /// restarts absorb them, `Failed` once the budget is exhausted.
    pub fn health(&self) -> Health {
        if self.exhausted {
            Health::Failed
        } else if self.report.failures() > 0 {
            Health::Degraded {
                reason: format!(
                    "{} failure(s) absorbed by {} restart(s)",
                    self.report.failures(),
                    self.report.restarts
                ),
            }
        } else {
            Health::Healthy
        }
    }

    /// The decision log so far.
    pub fn report(&self) -> &SupervisorReport {
        &self.report
    }

    /// Consume the supervisor into its final report.
    pub fn into_report(self) -> SupervisorReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watchdog_trips_only_on_a_flat_heartbeat() {
        let hb = Heartbeat::new();
        let mut wd = Watchdog::new(Duration::from_millis(30));
        assert!(!wd.check(hb.count()), "fresh heartbeat is not stalled");
        for _ in 0..3 {
            std::thread::sleep(Duration::from_millis(15));
            hb.beat();
            assert!(!wd.check(hb.count()), "advancing heartbeat never stalls");
        }
        std::thread::sleep(Duration::from_millis(40));
        assert!(wd.check(hb.count()), "flat past the threshold: stalled");
    }

    #[test]
    fn supervisor_backs_off_exponentially_then_exhausts() {
        let mut sup = Supervisor::new(RestartPolicy {
            max_restarts: 3,
            backoff: Duration::from_millis(10),
        });
        assert_eq!(sup.health(), Health::Healthy);
        assert_eq!(
            sup.on_failure(Component::Trainer, FailureKind::Panic),
            Some(Duration::from_millis(10))
        );
        assert_eq!(
            sup.on_failure(Component::Trainer, FailureKind::Stall),
            Some(Duration::from_millis(20))
        );
        assert_eq!(
            sup.on_failure(Component::Feeder, FailureKind::Panic),
            Some(Duration::from_millis(40))
        );
        assert!(matches!(sup.health(), Health::Degraded { .. }));
        assert!(sup.health().is_serving());
        assert_eq!(sup.on_failure(Component::Trainer, FailureKind::Panic), None);
        assert_eq!(sup.health(), Health::Failed);
        let report = sup.into_report();
        assert_eq!(report.restarts, 3);
        assert_eq!(report.trainer_panics, 2);
        assert_eq!(report.feeder_panics, 1);
        assert_eq!(report.stalls, 1);
        assert_eq!(report.events.len(), 4);
        assert!(!report.events.last().unwrap().restarted);
    }
}
