//! The live streaming runner: real threads, a backpressured ingest queue,
//! and generational hot-swap into a running [`serve::Server`] — under
//! supervision.
//!
//! Where [`scalparc::stream::run_stream`] executes the whole pipeline
//! inside one simulated machine (deterministic clock, collective-lockstep
//! triggers), [`run_live`] runs it as an actual concurrent system:
//!
//! * a **feeder** thread materializes stream blocks and pushes them into a
//!   bounded [`IngestQueue`] (a slow trainer backpressures the feeder);
//! * the **trainer** pops blocks, maintains the sliding window and the
//!   prequential drift statistics, and on each trigger re-induces over the
//!   window (on a simulated `induce_procs`-rank machine), commits the
//!   generation to the store, and publishes it into the server's
//!   [`serve::ModelSlot`] — measuring the wall-clock swap;
//! * a **traffic** thread keeps sustained scoring load on the server the
//!   whole time, so swaps happen under fire and the per-generation serve
//!   windows in the final [`StatsReport`] show who answered what.
//!
//! **Equivalence guarantee**: the trainer applies the *same* window,
//! trigger, and induction logic as the in-machine pipeline, so with the
//! same [`StreamConfig`] (and `reeval_records` a multiple of
//! `block_records`) the sequence of committed generations — ids, windows,
//! triggers, and tree bytes — is identical to [`run_stream`]'s, and the
//! prequential block log matches point for point. The live layer adds
//! concurrency and wall-clock measurements, never different models.
//!
//! # Supervision
//!
//! The trainer and feeder run as **supervised attempts** under a control
//! loop (the calling thread): each attempt's body is wrapped in
//! `catch_unwind`, the trainer beats a [`Heartbeat`] per popped block, and
//! a [`Watchdog`] declares an attempt stalled when the heartbeat stays
//! flat past [`LiveConfig::stall_after`]. On a panic or stall the
//! [`Supervisor`] restarts the pair — exponential backoff, bounded by
//! [`LiveConfig::restart`] — and the trainer resumes from the **last
//! committed generation**: the shared state only ever advances at commit
//! boundaries, so a restarted attempt rebuilds its window from the stream
//! itself (`[window_hi − window_records, window_hi)`) and re-ingests from
//! `window_hi`. Because eviction and the prequential statistics are reset
//! at every commit in the uninterrupted run too, an in-process restart
//! reproduces the *identical* commit sequence and block log — panics cost
//! wall-clock, never models. A stalled attempt cannot be killed, so it is
//! *abandoned*: its epoch token is invalidated (stale attempts check the
//! token before touching shared state or committing) and its queue closed
//! so both threads wind down. Serving continues throughout — the traffic
//! thread never stops, and the [`serve::ModelSlot`] keeps answering on the
//! last published generation while the trainer is down.
//!
//! # Crash-resume
//!
//! With [`LiveConfig::resume`] set and a store configured, `run_live`
//! starts by scanning the generation store ([`genstore::scan`]): the
//! newest *intact* generation is republished through the slot and the
//! stream is consumed from its `window_hi` onward, committing `gen + 1`
//! next. Corrupt or torn newest files are skipped (and counted), never
//! trusted. A crash in the commit→publish gap is healed by determinism:
//! the restarted trainer re-induces the same window and re-commits the
//! byte-identical file, so the store never loses a committed generation.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use dtree::data::Dataset;
use dtree::flat::FlatTree;
use dtree::model_io;
use scalparc::stream::accum::LeafStats;
use scalparc::stream::genstore::{self, GenMeta, StoreVerdict};
use scalparc::stream::{BlockPoint, BlockSource, StreamConfig, Trigger};
use scalparc::{induce, ParConfig};
use serve::sync;
use serve::{Health, Request, ResponseStatus, ServeConfig, ServeModel, Server, StatsReport};

use crate::fault::LiveFaultPlan;
use crate::queue::IngestQueue;
use crate::supervisor::{
    Component, FailureKind, Heartbeat, RestartPolicy, Supervisor, SupervisorReport, Watchdog,
};

/// Configuration of the live runner (the streaming logic itself is the
/// shared [`StreamConfig`]).
#[derive(Clone, Debug)]
pub struct LiveConfig {
    /// Ingest-queue capacity in blocks; the feeder backpressures here.
    pub queue_blocks: usize,
    /// Simulated rank count of each re-induction.
    pub induce_procs: usize,
    /// Serving-harness configuration.
    pub serve: ServeConfig,
    /// Records per scoring request issued by the traffic thread.
    pub score_chunk: usize,
    /// Generation-store directory (`None` = in-memory only).
    pub store: Option<PathBuf>,
    /// Scan the store on start and resume from the newest intact
    /// generation instead of bootstrapping from the stream head.
    pub resume: bool,
    /// Restart budget and backoff for supervised trainer/feeder attempts.
    pub restart: RestartPolicy,
    /// Flat-heartbeat span after which the watchdog declares the trainer
    /// stalled and abandons the attempt. Keep well above the slowest
    /// re-induction (the trainer does not beat mid-induction).
    pub stall_after: Duration,
    /// Watchdog sampling period.
    pub watchdog_tick: Duration,
    /// Scripted chaos faults (default: none).
    pub faults: Arc<LiveFaultPlan>,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            queue_blocks: 4,
            induce_procs: 4,
            serve: ServeConfig::default(),
            score_chunk: 256,
            store: None,
            resume: false,
            restart: RestartPolicy::default(),
            stall_after: Duration::from_secs(2),
            watchdog_tick: Duration::from_millis(25),
            faults: Arc::new(LiveFaultPlan::none()),
        }
    }
}

/// One hot-swap the live trainer performed.
#[derive(Clone, Debug)]
pub struct SwapEvent {
    /// Generation id committed and published.
    pub generation: u64,
    /// What fired the re-evaluation (`Count` for the bootstrap).
    pub trigger: Trigger,
    /// First global record of the training window.
    pub window_lo: u64,
    /// One past the last global record of the training window.
    pub window_hi: u64,
    /// The committed tree in canonical `model_io` text form — byte-equal
    /// to the in-machine pipeline's commit for the same window.
    pub tree_text: String,
    /// Wall-clock nanoseconds of the [`serve::ModelSlot`] publish itself —
    /// the serving-visible swap latency.
    pub publish_ns: u64,
    /// Wall-clock nanoseconds from trigger decision to published model
    /// (induction + commit + publish).
    pub retrain_ns: u64,
    /// Committed payload bytes (0 without a store).
    pub payload_bytes: u64,
}

/// Everything one [`run_live`] call produced.
#[derive(Debug)]
pub struct LiveReport {
    /// Hot-swaps in commit order (the bootstrap generation 0 included when
    /// not resuming).
    pub swaps: Vec<SwapEvent>,
    /// Prequential per-block log, identical in content to the in-machine
    /// pipeline's [`scalparc::stream::StreamReport::points`].
    pub points: Vec<BlockPoint>,
    /// The serving harness's final report (per-generation windows and
    /// serve-side health included).
    pub serve: StatsReport,
    /// Scoring responses the traffic thread collected.
    pub responses: u64,
    /// Responses that were not `Ok` (0 in a fault-free run — hot-swap
    /// drops nothing).
    pub response_failures: u64,
    /// Submissions the traffic thread had rejected (backpressure/shed).
    pub submits_rejected: u64,
    /// Distinct generation ids observed in scoring responses, ascending.
    pub generations_observed: Vec<u64>,
    /// Largest ingest-queue depth observed (backpressure headroom),
    /// maximized across attempts.
    pub queue_high_water: usize,
    /// What the supervisor did: restarts, panics, stalls, decisions.
    pub supervisor: SupervisorReport,
    /// Combined liveness verdict of the run (worst of the supervisor's
    /// and the serving harness's health).
    pub health: Health,
    /// Generation the run resumed from (`None` = fresh bootstrap).
    pub resumed_from: Option<u64>,
    /// Corrupt/torn store files skipped while recovering (resume only).
    pub store_skipped_corrupt: u32,
    /// Retention-gc removals that failed and were skipped (files kept).
    pub retention_skips: u32,
    /// Wall-clock nanoseconds from entry to the recovered model being
    /// ready to serve (0 unless the run resumed from the store).
    pub recovery_ns: u64,
}

/// One retained window run: a contiguous stretch of global records.
struct Run {
    global_lo: u64,
    data: Dataset,
}

/// State that only ever advances at commit boundaries — everything a
/// restarted trainer attempt needs to resume exactly.
struct Committed {
    current: FlatTree,
    next_gen: u64,
    last_commit_upto: u64,
    swaps: Vec<SwapEvent>,
    points: Vec<BlockPoint>,
    retention_skips: u32,
}

/// How one supervised trainer attempt ended (panics are caught outside).
enum AttemptEnd {
    /// Queue closed and drained; `feeder_ok` says whether the feeder
    /// finished the stream cleanly (false = it panicked mid-stream).
    Done { feeder_ok: bool },
    /// The attempt noticed its epoch token was invalidated (the watchdog
    /// abandoned it) and backed out without touching shared state.
    Abandoned,
}

/// Train one generation over `window`, commit it, and publish it into the
/// server. Returns the swap event. Publishing is idempotent
/// (`publish_if_newer`), so a stale abandoned attempt racing a restarted
/// one cannot move the slot backwards.
#[allow(clippy::too_many_arguments)]
fn commit_and_publish(
    server: &Server,
    cfg: &LiveConfig,
    generation: u64,
    trigger: Trigger,
    window_lo: u64,
    window_hi: u64,
    window: &Dataset,
    triggered_at: Instant,
) -> (FlatTree, SwapEvent) {
    let result = induce(window, &ParConfig::new(cfg.induce_procs.max(1)));
    let flat = FlatTree::compile(&result.tree);
    let mut payload_bytes = 0;
    if let Some(dir) = &cfg.store {
        let meta = GenMeta {
            generation,
            window_lo,
            window_hi,
        };
        payload_bytes = genstore::commit(dir, meta, &result.tree).expect("generation commit");
    }
    // The torn window: committed to the store, not yet published. A crash
    // here is healed on restart by re-inducing the same window and
    // re-committing the byte-identical file.
    if cfg.faults.trainer_panic_after_commit(generation) {
        panic!("[injected] trainer panic in the commit/publish gap (gen {generation})");
    }
    let publish_start = Instant::now();
    server
        .slot()
        .publish_if_newer(generation, ServeModel::Tree(flat.clone()));
    let publish_ns = publish_start.elapsed().as_nanos() as u64;
    let event = SwapEvent {
        generation,
        trigger,
        window_lo,
        window_hi,
        tree_text: model_io::to_text(&result.tree),
        publish_ns,
        retrain_ns: triggered_at.elapsed().as_nanos() as u64,
        payload_bytes,
    };
    (flat, event)
}

/// Run the live streaming system over `source` until the stream is
/// exhausted: bootstrap (or crash-resume) a first generation, then ingest,
/// retrain, and hot-swap under sustained scoring traffic, supervising the
/// trainer and feeder throughout. See the module docs for the thread
/// layout, the equivalence guarantee, and the supervision story.
pub fn run_live(source: &dyn BlockSource, stream: &StreamConfig, cfg: &LiveConfig) -> LiveReport {
    assert!(stream.block_records >= 1);
    assert!(
        stream.reeval_records.is_multiple_of(stream.block_records),
        "live/in-machine equivalence needs reeval_records aligned to blocks"
    );
    let start = Instant::now();
    let total = source.total();
    let schema = source.schema();

    let mut swaps0 = Vec::new();
    let mut points0: Vec<BlockPoint> = Vec::new();
    let mut resumed_from = None;
    let mut store_skipped_corrupt = 0u32;

    // Crash-resume: the newest intact committed generation, if asked for
    // and available, replaces the bootstrap induction entirely.
    let mut recovered: Option<(FlatTree, u64, u64)> = None;
    if cfg.resume {
        if let Some(dir) = &cfg.store {
            match genstore::scan(dir) {
                StoreVerdict::Usable {
                    meta,
                    tree,
                    skipped_corrupt,
                } => {
                    store_skipped_corrupt = skipped_corrupt;
                    resumed_from = Some(meta.generation);
                    recovered = Some((FlatTree::compile(&tree), meta.generation, meta.window_hi));
                }
                StoreVerdict::Empty => {}
                StoreVerdict::AllCorrupt { generations } => {
                    // Nothing trustworthy on disk: fall back to a fresh
                    // bootstrap, but report what was skipped.
                    store_skipped_corrupt = generations;
                }
            }
        }
    }

    let (boot_flat, cur_gen, start_upto) = match recovered {
        Some(r) => r,
        None => {
            // Bootstrap generation 0 — the model the server opens with —
            // trained on the first `reeval_records` of the stream, exactly
            // the window the in-machine pipeline's first count trigger
            // uses. Its publish is the slot construction itself
            // (publish_ns = 0 by definition).
            let boot_hi = stream.reeval_records.min(total).max(1);
            let boot_start = Instant::now();
            let boot_data = source.block(0, boot_hi);
            let result = induce(&boot_data, &ParConfig::new(cfg.induce_procs.max(1)));
            let flat = FlatTree::compile(&result.tree);
            let mut payload_bytes = 0;
            if let Some(dir) = &cfg.store {
                payload_bytes = genstore::commit(
                    dir,
                    GenMeta {
                        generation: 0,
                        window_lo: 0,
                        window_hi: boot_hi as u64,
                    },
                    &result.tree,
                )
                .expect("bootstrap commit");
            }
            swaps0.push(SwapEvent {
                generation: 0,
                trigger: Trigger::Count,
                window_lo: 0,
                window_hi: boot_hi as u64,
                tree_text: model_io::to_text(&result.tree),
                publish_ns: 0,
                retrain_ns: boot_start.elapsed().as_nanos() as u64,
                payload_bytes,
            });
            // Prequential log of the bootstrap range: ingested before any
            // model existed, so unscored.
            let mut blo = 0usize;
            while blo < boot_hi {
                let bhi = (blo + stream.block_records).min(boot_hi);
                points0.push(BlockPoint {
                    upto: bhi as u64,
                    generation: None,
                    records: 0,
                    errors: 0,
                });
                blo = bhi;
            }
            (flat, 0, boot_hi as u64)
        }
    };
    let recovery_ns = if resumed_from.is_some() {
        start.elapsed().as_nanos() as u64
    } else {
        0
    };

    let server = Server::start_slot(
        serve::ModelSlot::new(cur_gen, ServeModel::Tree(boot_flat.clone())),
        cfg.serve,
    );
    let state = Mutex::new(Committed {
        current: boot_flat,
        next_gen: cur_gen + 1,
        last_commit_upto: start_upto,
        swaps: swaps0,
        points: points0,
        retention_skips: 0,
    });

    let mut supervisor = Supervisor::new(cfg.restart);
    let trainer_beat = Heartbeat::new();
    let attempt_epoch = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    // Fixed scoring set for the traffic thread: the head of the stream,
    // shared by every request.
    let score_data = Arc::new(source.block(0, total.min(4 * cfg.score_chunk.max(1))));

    // One supervised feeder attempt: materialize `[from, total)` into the
    // queue, then close it. A panic (injected or real) still closes the
    // queue — the trainer sees a short stream and reports the feeder.
    let feeder_attempt =
        |queue: Arc<IngestQueue<(u64, Dataset)>>, from: u64, clean: Arc<AtomicBool>| {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let mut lo = from as usize;
                while lo < total {
                    let hi = (lo + stream.block_records).min(total);
                    if cfg.faults.feeder_panic_at(lo as u64) {
                        panic!("[injected] feeder panic at record {lo}");
                    }
                    if !queue.push((lo as u64, source.block(lo, hi))) {
                        return false; // queue closed under us: attempt abandoned
                    }
                    lo = hi;
                }
                true
            }));
            if let Ok(true) = outcome {
                // Before close, so a trainer that drains to `None` reads it.
                clean.store(true, Ordering::SeqCst);
            }
            queue.close();
        };

    // One supervised trainer attempt: resume from the committed state,
    // rebuild the window from the stream, ingest until the queue ends.
    // Shared state advances only at commit boundaries, under the epoch
    // token, so an abandoned or panicked attempt leaves it exactly at the
    // last commit.
    let trainer_attempt = |token: u64,
                           queue: Arc<IngestQueue<(u64, Dataset)>>,
                           feeder_clean: Arc<AtomicBool>|
     -> AttemptEnd {
        let (mut current, mut next_gen, mut last_commit_upto) = {
            let s = sync::lock(&state);
            (s.current.clone(), s.next_gen, s.last_commit_upto)
        };
        // Rebuild the retained window: exactly the post-commit content
        // `[window_hi − window_records, window_hi)` of the uninterrupted
        // run (eviction trims both to the same range before the next
        // trigger can fire).
        let mut window: VecDeque<Run> = VecDeque::new();
        let win_lo0 = last_commit_upto.saturating_sub(stream.window_records as u64);
        if last_commit_upto > win_lo0 {
            window.push_back(Run {
                global_lo: win_lo0,
                data: source.block(win_lo0 as usize, last_commit_upto as usize),
            });
        }
        let mut local_points: Vec<BlockPoint> = Vec::new();
        let mut leaf = LeafStats::new(&current);
        let mut scratch: Vec<u32> = Vec::new();
        let mut epoch_scored = 0u64;
        let mut epoch_errors = 0u64;
        while let Some((lo, data)) = queue.pop() {
            if attempt_epoch.load(Ordering::SeqCst) != token {
                return AttemptEnd::Abandoned;
            }
            trainer_beat.beat();
            let upto = lo + data.len() as u64;
            if let Some(hang) = cfg.faults.trainer_stall_at(upto) {
                // An injected hang: no heartbeats until it ends, so the
                // watchdog declares the attempt stalled and abandons it.
                std::thread::sleep(hang);
            }
            if cfg.faults.trainer_panic_at(upto) {
                panic!("[injected] trainer panic at record {upto}");
            }
            let before = leaf.errors;
            leaf.update(&current, &data, &mut scratch);
            let scored = data.len() as u64;
            let errors = leaf.errors - before;
            epoch_scored += scored;
            epoch_errors += errors;
            local_points.push(BlockPoint {
                upto,
                generation: Some(next_gen - 1),
                records: scored,
                errors,
            });
            window.push_back(Run {
                global_lo: lo,
                data,
            });
            let win_lo = upto.saturating_sub(stream.window_records as u64);
            while let Some(front) = window.front_mut() {
                let run_hi = front.global_lo + front.data.len() as u64;
                if run_hi <= win_lo {
                    window.pop_front();
                } else if front.global_lo < win_lo {
                    let cut = (win_lo - front.global_lo) as usize;
                    front.data = front.data.slice(cut, front.data.len());
                    front.global_lo = win_lo;
                    break;
                } else {
                    break;
                }
            }

            let count_fire = upto - last_commit_upto >= stream.reeval_records as u64;
            let drift_fire = stream.drift_error.is_some_and(|thr| {
                epoch_scored >= stream.min_epoch_records.max(1)
                    && epoch_errors as f64 / epoch_scored as f64 > thr
            });
            if !(count_fire || drift_fire) {
                continue;
            }
            let trigger = if drift_fire {
                Trigger::Drift
            } else {
                Trigger::Count
            };
            if attempt_epoch.load(Ordering::SeqCst) != token {
                return AttemptEnd::Abandoned;
            }
            let triggered_at = Instant::now();
            let parts: Vec<&Dataset> = window.iter().map(|r| &r.data).collect();
            let window_data = scalparc::stream::rows::concat(&schema, &parts);
            let (flat, event) = commit_and_publish(
                &server,
                cfg,
                next_gen,
                trigger,
                win_lo,
                upto,
                &window_data,
                triggered_at,
            );
            let mut skips = 0u32;
            if let (Some(dir), Some(keep)) = (&cfg.store, stream.keep_generations) {
                skips = genstore::gc(dir, next_gen, keep).skipped;
            }
            {
                // The commit boundary: everything a resume needs moves
                // together, and only for the live (non-abandoned) attempt.
                let mut s = sync::lock(&state);
                if attempt_epoch.load(Ordering::SeqCst) != token {
                    return AttemptEnd::Abandoned;
                }
                s.points.append(&mut local_points);
                s.swaps.push(event);
                s.current = flat.clone();
                s.next_gen = next_gen + 1;
                s.last_commit_upto = upto;
                s.retention_skips += skips;
            }
            trainer_beat.beat();
            current = flat;
            leaf = LeafStats::new(&current);
            epoch_scored = 0;
            epoch_errors = 0;
            last_commit_upto = upto;
            next_gen += 1;
        }
        let feeder_ok = feeder_clean.load(Ordering::SeqCst);
        if feeder_ok {
            // Stream truly exhausted: flush the trailing (uncommitted)
            // block log. On a feeder failure the restarted attempt
            // re-scores these blocks instead.
            let mut s = sync::lock(&state);
            if attempt_epoch.load(Ordering::SeqCst) == token {
                s.points.append(&mut local_points);
            }
        }
        AttemptEnd::Done { feeder_ok }
    };

    let (traffic_out, queue_high_water) = std::thread::scope(|scope| {
        // Traffic: sustained scoring load across every attempt and restart
        // — serving availability is measured here, not per attempt.
        let traffic = scope.spawn(|| {
            let mut responses = 0u64;
            let mut failures = 0u64;
            let mut rejected = 0u64;
            let mut gens: Vec<u64> = Vec::new();
            let chunk = cfg.score_chunk.max(1).min(score_data.len().max(1));
            let mut at = 0usize;
            while !done.load(Ordering::Relaxed) {
                let lo = at % score_data.len().max(1);
                let hi = (lo + chunk).min(score_data.len());
                at = hi % score_data.len().max(1);
                match server.score_blocking(Request {
                    data: Arc::clone(&score_data),
                    lo,
                    hi,
                }) {
                    Ok(resp) => {
                        responses += 1;
                        if resp.status != ResponseStatus::Ok {
                            failures += 1;
                        }
                        if !gens.contains(&resp.generation) {
                            gens.push(resp.generation);
                        }
                    }
                    Err(_) => {
                        // Shed by backpressure or shutdown: back off.
                        rejected += 1;
                        std::thread::yield_now();
                    }
                }
            }
            gens.sort_unstable();
            (responses, failures, rejected, gens)
        });

        // The control loop: start attempts, watch the heartbeat, restart
        // on failure within the budget.
        let (tx, rx) = mpsc::channel::<(u64, Result<AttemptEnd, ()>)>();
        let mut queue_high_water = 0usize;
        loop {
            let token = attempt_epoch.fetch_add(1, Ordering::SeqCst) + 1;
            let queue: Arc<IngestQueue<(u64, Dataset)>> =
                Arc::new(IngestQueue::new(cfg.queue_blocks));
            let feeder_clean = Arc::new(AtomicBool::new(false));
            let feed_from = sync::lock(&state).last_commit_upto;
            {
                let queue = Arc::clone(&queue);
                let clean = Arc::clone(&feeder_clean);
                let feeder_attempt = &feeder_attempt;
                scope.spawn(move || feeder_attempt(queue, feed_from, clean));
            }
            {
                let queue = Arc::clone(&queue);
                let clean = Arc::clone(&feeder_clean);
                let trainer_attempt = &trainer_attempt;
                let tx = tx.clone();
                scope.spawn(move || {
                    let out =
                        catch_unwind(AssertUnwindSafe(|| trainer_attempt(token, queue, clean)));
                    let _ = tx.send((token, out.map_err(|_| ())));
                });
            }
            let mut watchdog = Watchdog::new(cfg.stall_after);
            let outcome = loop {
                match rx.recv_timeout(cfg.watchdog_tick) {
                    Ok((t, out)) if t == token => break Some(out),
                    Ok(_) => continue, // a stale abandoned attempt reporting late
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        if watchdog.check(trainer_beat.count()) {
                            break None;
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        unreachable!("control keeps a sender alive")
                    }
                }
            };
            queue_high_water = queue_high_water.max(queue.high_water());
            let failure = match outcome {
                Some(Ok(AttemptEnd::Done { feeder_ok: true })) => None,
                Some(Ok(AttemptEnd::Done { feeder_ok: false })) => {
                    Some((Component::Feeder, FailureKind::Panic))
                }
                // An Abandoned end can only carry a stale token (the
                // watchdog advanced the epoch before abandoning), so a
                // same-token one is treated as a trainer failure.
                Some(Ok(AttemptEnd::Abandoned)) => Some((Component::Trainer, FailureKind::Panic)),
                Some(Err(())) => Some((Component::Trainer, FailureKind::Panic)),
                None => {
                    // Stalled: invalidate the attempt's token so it backs
                    // out of any future shared-state touch, and close its
                    // queue so both threads wind down.
                    attempt_epoch.fetch_add(1, Ordering::SeqCst);
                    Some((Component::Trainer, FailureKind::Stall))
                }
            };
            match failure {
                None => break,
                Some((component, kind)) => {
                    // Unblock a feeder parked on a full queue.
                    queue.close();
                    match supervisor.on_failure(component, kind) {
                        Some(backoff) => std::thread::sleep(backoff),
                        None => break, // budget exhausted: Failed
                    }
                }
            }
        }
        done.store(true, Ordering::Relaxed);
        (traffic.join().expect("traffic thread"), queue_high_water)
    });
    let (responses, response_failures, submits_rejected, generations_observed) = traffic_out;
    let supervisor_health = supervisor.health();
    let serve_report = server.shutdown();
    let health = match (&supervisor_health, &serve_report.health) {
        (Health::Failed, _) | (_, Health::Failed) => Health::Failed,
        (Health::Degraded { .. }, _) => supervisor_health.clone(),
        (_, Health::Degraded { .. }) => serve_report.health.clone(),
        _ => Health::Healthy,
    };
    let state = state.into_inner().unwrap_or_else(|p| p.into_inner());
    LiveReport {
        swaps: state.swaps,
        points: state.points,
        serve: serve_report,
        responses,
        response_failures,
        submits_rejected,
        generations_observed,
        queue_high_water,
        supervisor: supervisor.into_report(),
        health,
        resumed_from,
        store_skipped_corrupt,
        retention_skips: state.retention_skips,
        recovery_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{DriftKind, GenConfig};
    use scalparc::stream::run_stream;

    use crate::fault::LiveFault;
    use crate::source::quest_sketch;
    use crate::source::DriftSource;

    fn small_cfg(schema: &dtree::data::Schema) -> StreamConfig {
        StreamConfig {
            block_records: 100,
            window_records: 800,
            reeval_records: 400,
            drift_error: Some(0.25),
            min_epoch_records: 100,
            sketch: quest_sketch(schema, 16),
            keep_generations: None,
            induce: Default::default(),
        }
    }

    fn drift_source(n: usize, seed: u64) -> DriftSource {
        DriftSource::new(
            GenConfig::paper(n, seed),
            DriftKind::Abrupt {
                at: 800,
                to: datagen::ClassFunc::F1,
            },
        )
    }

    fn assert_same_commits(live: &LiveReport, sim: &scalparc::stream::StreamReport) {
        assert_eq!(live.swaps.len(), sim.commits.len());
        for (s, c) in live.swaps.iter().zip(&sim.commits) {
            assert_eq!(s.generation, c.generation);
            assert_eq!(s.trigger, c.trigger);
            assert_eq!((s.window_lo, s.window_hi), (c.window_lo, c.window_hi));
            assert_eq!(s.tree_text, c.tree_text, "gen {}", s.generation);
        }
    }

    #[test]
    fn live_run_matches_the_in_machine_pipeline() {
        let source = drift_source(1_600, 91);
        let stream_cfg = small_cfg(&source.schema());
        let live = run_live(
            &source,
            &stream_cfg,
            &LiveConfig {
                induce_procs: 2,
                ..LiveConfig::default()
            },
        );
        let sim = run_stream(&source, &ParConfig::new(2), &stream_cfg, None).report;

        // Same generation sequence: ids, windows, triggers, tree bytes.
        assert_same_commits(&live, &sim);
        // Same prequential log, point for point.
        assert_eq!(live.points, sim.points);
        // Zero dropped requests under the swaps.
        assert_eq!(live.response_failures, 0);
        assert!(live.responses > 0, "traffic ran");
        // Every observed generation is a committed one.
        let committed: Vec<u64> = live.swaps.iter().map(|s| s.generation).collect();
        assert!(live
            .generations_observed
            .iter()
            .all(|g| committed.contains(g)));
        // The serve windows account for every completed request.
        let win_requests: u64 = live.serve.generations.iter().map(|w| w.requests).sum();
        assert_eq!(win_requests, live.serve.requests);
        // Clean run: nothing supervised had to act.
        assert_eq!(live.supervisor.failures(), 0);
        assert_eq!(live.health, Health::Healthy);
        assert_eq!(live.resumed_from, None);
    }

    #[test]
    fn trainer_panic_restarts_and_still_matches_the_oracle() {
        sync::hush_injected_panics();
        let source = drift_source(1_600, 91);
        let stream_cfg = small_cfg(&source.schema());
        let live = run_live(
            &source,
            &stream_cfg,
            &LiveConfig {
                induce_procs: 2,
                faults: Arc::new(LiveFaultPlan::new(vec![LiveFault::TrainerPanicAtBlock {
                    upto: 900,
                }])),
                ..LiveConfig::default()
            },
        );
        let sim = run_stream(&source, &ParConfig::new(2), &stream_cfg, None).report;
        // The restarted trainer resumed from the last commit and re-scored
        // the gap, so the commit sequence AND the block log are identical
        // to the uninterrupted oracle.
        assert_same_commits(&live, &sim);
        assert_eq!(live.points, sim.points);
        assert_eq!(live.supervisor.trainer_panics, 1);
        assert_eq!(live.supervisor.restarts, 1);
        assert!(matches!(live.health, Health::Degraded { .. }));
        assert!(live.health.is_serving());
    }

    #[test]
    fn feeder_panic_restarts_and_still_matches_the_oracle() {
        sync::hush_injected_panics();
        let source = drift_source(1_600, 91);
        let stream_cfg = small_cfg(&source.schema());
        let live = run_live(
            &source,
            &stream_cfg,
            &LiveConfig {
                induce_procs: 2,
                faults: Arc::new(LiveFaultPlan::new(vec![LiveFault::FeederPanicAtBlock {
                    at: 1_000,
                }])),
                ..LiveConfig::default()
            },
        );
        let sim = run_stream(&source, &ParConfig::new(2), &stream_cfg, None).report;
        assert_same_commits(&live, &sim);
        assert_eq!(live.points, sim.points);
        assert_eq!(live.supervisor.feeder_panics, 1);
        assert_eq!(live.supervisor.restarts, 1);
        assert!(matches!(live.health, Health::Degraded { .. }));
    }

    #[test]
    fn stalled_trainer_is_abandoned_and_the_restart_matches_the_oracle() {
        sync::hush_injected_panics();
        let source = drift_source(1_600, 91);
        let stream_cfg = small_cfg(&source.schema());
        let live = run_live(
            &source,
            &stream_cfg,
            &LiveConfig {
                induce_procs: 2,
                // Wide enough that a debug-build re-induction on a loaded
                // host never reads as a stall; the injected stall dwarfs it.
                stall_after: Duration::from_millis(500),
                watchdog_tick: Duration::from_millis(25),
                faults: Arc::new(LiveFaultPlan::new(vec![LiveFault::TrainerStallAtBlock {
                    upto: 900,
                    ms: 2_000,
                }])),
                ..LiveConfig::default()
            },
        );
        let sim = run_stream(&source, &ParConfig::new(2), &stream_cfg, None).report;
        assert_same_commits(&live, &sim);
        assert_eq!(live.supervisor.stalls, 1);
        assert!(live.supervisor.restarts >= 1);
        assert!(matches!(live.health, Health::Degraded { .. }));
    }

    #[test]
    fn exhausted_restart_budget_fails_but_serving_answered_throughout() {
        sync::hush_injected_panics();
        let source = drift_source(1_600, 91);
        let stream_cfg = small_cfg(&source.schema());
        let live = run_live(
            &source,
            &stream_cfg,
            &LiveConfig {
                induce_procs: 1,
                restart: RestartPolicy {
                    max_restarts: 1,
                    backoff: Duration::from_millis(1),
                },
                faults: Arc::new(LiveFaultPlan::new(vec![
                    LiveFault::TrainerPanicAtBlock { upto: 500 },
                    LiveFault::TrainerPanicAtBlock { upto: 500 },
                ])),
                ..LiveConfig::default()
            },
        );
        assert_eq!(live.health, Health::Failed);
        assert!(!live.health.is_serving());
        assert_eq!(live.supervisor.trainer_panics, 2);
        assert_eq!(live.supervisor.restarts, 1);
        // The model slot kept answering while the trainer burned out.
        assert!(live.responses > 0);
        assert_eq!(live.response_failures, 0);
    }

    #[test]
    fn torn_commit_publish_gap_is_healed_on_restart() {
        sync::hush_injected_panics();
        let source = drift_source(1_600, 91);
        let stream_cfg = small_cfg(&source.schema());
        let dir = std::env::temp_dir().join(format!("scalparc-live-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let live = run_live(
            &source,
            &stream_cfg,
            &LiveConfig {
                induce_procs: 2,
                store: Some(dir.clone()),
                faults: Arc::new(LiveFaultPlan::new(vec![
                    LiveFault::TrainerPanicAfterCommit { generation: 2 },
                ])),
                ..LiveConfig::default()
            },
        );
        let sim = run_stream(&source, &ParConfig::new(2), &stream_cfg, None).report;
        // The re-commit of generation 2 overwrote the torn commit with
        // identical bytes: no generation lost, sequence identical.
        assert_same_commits(&live, &sim);
        assert_eq!(live.supervisor.trainer_panics, 1);
        let gens = genstore::list_generations(&dir);
        assert_eq!(gens.len(), live.swaps.len());
        match genstore::scan(&dir) {
            StoreVerdict::Usable {
                meta,
                skipped_corrupt,
                ..
            } => {
                assert_eq!(meta.generation, live.swaps.last().unwrap().generation);
                assert_eq!(skipped_corrupt, 0, "no torn file left behind");
            }
            v => panic!("store must be usable after healing, got {v:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_receives_every_generation() {
        let source = DriftSource::new(GenConfig::paper(900, 93), DriftKind::Stable);
        let stream_cfg = small_cfg(&source.schema());
        let dir = std::env::temp_dir().join(format!("scalparc-live-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let live = run_live(
            &source,
            &stream_cfg,
            &LiveConfig {
                induce_procs: 1,
                store: Some(dir.clone()),
                ..LiveConfig::default()
            },
        );
        assert!(live.swaps.iter().all(|s| s.payload_bytes > 0));
        let gens = genstore::list_generations(&dir);
        assert_eq!(gens.len(), live.swaps.len());
        // The typed scan verdict names the newest intact generation.
        match genstore::scan(&dir) {
            StoreVerdict::Usable {
                meta,
                tree,
                skipped_corrupt,
            } => {
                let last = live.swaps.last().unwrap();
                assert_eq!(meta.generation, last.generation);
                assert_eq!(model_io::to_text(&tree), last.tree_text);
                assert_eq!(skipped_corrupt, 0);
            }
            v => panic!("expected a usable store, got {v:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
