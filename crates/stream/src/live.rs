//! The live streaming runner: real threads, a backpressured ingest queue,
//! and generational hot-swap into a running [`serve::Server`].
//!
//! Where [`scalparc::stream::run_stream`] executes the whole pipeline
//! inside one simulated machine (deterministic clock, collective-lockstep
//! triggers), [`run_live`] runs it as an actual concurrent system:
//!
//! * a **feeder** thread materializes stream blocks and pushes them into a
//!   bounded [`IngestQueue`] (a slow trainer backpressures the feeder);
//! * the **trainer** (the calling thread) pops blocks, maintains the
//!   sliding window and the prequential drift statistics, and on each
//!   trigger re-induces over the window (on a simulated
//!   `induce_procs`-rank machine), commits the generation to the store,
//!   and publishes it into the server's [`serve::ModelSlot`] — measuring
//!   the wall-clock swap;
//! * a **traffic** thread keeps sustained scoring load on the server the
//!   whole time, so swaps happen under fire and the per-generation serve
//!   windows in the final [`StatsReport`] show who answered what.
//!
//! **Equivalence guarantee**: the trainer applies the *same* window,
//! trigger, and induction logic as the in-machine pipeline, so with the
//! same [`StreamConfig`] (and `reeval_records` a multiple of
//! `block_records`) the sequence of committed generations — ids, windows,
//! triggers, and tree bytes — is identical to [`run_stream`]'s, and the
//! prequential block log matches point for point. The live layer adds
//! concurrency and wall-clock measurements, never different models.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use dtree::data::Dataset;
use dtree::flat::FlatTree;
use dtree::model_io;
use scalparc::stream::accum::LeafStats;
use scalparc::stream::genstore::{self, GenMeta};
use scalparc::stream::{BlockPoint, BlockSource, StreamConfig, Trigger};
use scalparc::{induce, ParConfig};
use serve::{Request, ResponseStatus, ServeConfig, ServeModel, Server, StatsReport};

use crate::queue::IngestQueue;

/// Configuration of the live runner (the streaming logic itself is the
/// shared [`StreamConfig`]).
#[derive(Clone, Debug)]
pub struct LiveConfig {
    /// Ingest-queue capacity in blocks; the feeder backpressures here.
    pub queue_blocks: usize,
    /// Simulated rank count of each re-induction.
    pub induce_procs: usize,
    /// Serving-harness configuration.
    pub serve: ServeConfig,
    /// Records per scoring request issued by the traffic thread.
    pub score_chunk: usize,
    /// Generation-store directory (`None` = in-memory only).
    pub store: Option<PathBuf>,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            queue_blocks: 4,
            induce_procs: 4,
            serve: ServeConfig::default(),
            score_chunk: 256,
            store: None,
        }
    }
}

/// One hot-swap the live trainer performed.
#[derive(Clone, Debug)]
pub struct SwapEvent {
    /// Generation id committed and published.
    pub generation: u64,
    /// What fired the re-evaluation (`Count` for the bootstrap).
    pub trigger: Trigger,
    /// First global record of the training window.
    pub window_lo: u64,
    /// One past the last global record of the training window.
    pub window_hi: u64,
    /// The committed tree in canonical `model_io` text form — byte-equal
    /// to the in-machine pipeline's commit for the same window.
    pub tree_text: String,
    /// Wall-clock nanoseconds of the [`serve::ModelSlot`] publish itself —
    /// the serving-visible swap latency.
    pub publish_ns: u64,
    /// Wall-clock nanoseconds from trigger decision to published model
    /// (induction + commit + publish).
    pub retrain_ns: u64,
    /// Committed payload bytes (0 without a store).
    pub payload_bytes: u64,
}

/// Everything one [`run_live`] call produced.
#[derive(Debug)]
pub struct LiveReport {
    /// Hot-swaps in commit order (the bootstrap generation 0 included).
    pub swaps: Vec<SwapEvent>,
    /// Prequential per-block log, identical in content to the in-machine
    /// pipeline's [`scalparc::stream::StreamReport::points`].
    pub points: Vec<BlockPoint>,
    /// The serving harness's final report (per-generation windows
    /// included).
    pub serve: StatsReport,
    /// Scoring responses the traffic thread collected.
    pub responses: u64,
    /// Responses that were not `Ok` (must be 0 — hot-swap drops nothing).
    pub response_failures: u64,
    /// Distinct generation ids observed in scoring responses, ascending.
    pub generations_observed: Vec<u64>,
    /// Largest ingest-queue depth observed (backpressure headroom).
    pub queue_high_water: usize,
}

/// One retained window run: a contiguous stretch of global records.
struct Run {
    global_lo: u64,
    data: Dataset,
}

/// Train one generation over `window`, commit it, and publish it into the
/// server. Returns the swap event.
#[allow(clippy::too_many_arguments)]
fn commit_and_publish(
    server: &Server,
    cfg: &LiveConfig,
    generation: u64,
    trigger: Trigger,
    window_lo: u64,
    window_hi: u64,
    window: &Dataset,
    triggered_at: Instant,
) -> (FlatTree, SwapEvent) {
    let result = induce(window, &ParConfig::new(cfg.induce_procs.max(1)));
    let flat = FlatTree::compile(&result.tree);
    let mut payload_bytes = 0;
    if let Some(dir) = &cfg.store {
        let meta = GenMeta {
            generation,
            window_lo,
            window_hi,
        };
        payload_bytes = genstore::commit(dir, meta, &result.tree).expect("generation commit");
    }
    let publish_start = Instant::now();
    server.publish(generation, ServeModel::Tree(flat.clone()));
    let publish_ns = publish_start.elapsed().as_nanos() as u64;
    let event = SwapEvent {
        generation,
        trigger,
        window_lo,
        window_hi,
        tree_text: model_io::to_text(&result.tree),
        publish_ns,
        retrain_ns: triggered_at.elapsed().as_nanos() as u64,
        payload_bytes,
    };
    (flat, event)
}

/// Run the live streaming system over `source` until the stream is
/// exhausted: bootstrap a first generation, then ingest, retrain, and
/// hot-swap under sustained scoring traffic. See the module docs for the
/// thread layout and the equivalence guarantee.
pub fn run_live(source: &dyn BlockSource, stream: &StreamConfig, cfg: &LiveConfig) -> LiveReport {
    assert!(stream.block_records >= 1);
    assert!(
        stream.reeval_records.is_multiple_of(stream.block_records),
        "live/in-machine equivalence needs reeval_records aligned to blocks"
    );
    let total = source.total();
    let boot_hi = stream.reeval_records.min(total).max(1);

    // Bootstrap generation 0 — the model the server opens with — trained
    // on the first `reeval_records` of the stream, exactly the window the
    // in-machine pipeline's first count trigger uses.
    let boot_start = Instant::now();
    let schema = source.schema();
    let boot_data = source.block(0, boot_hi);
    let mut swaps = Vec::new();
    let server = {
        // A placeholder server start is not possible without a model, so
        // generation 0 is induced before the harness exists; its publish
        // is the slot construction itself (publish_ns = 0 by definition).
        let result = induce(&boot_data, &ParConfig::new(cfg.induce_procs.max(1)));
        let flat = FlatTree::compile(&result.tree);
        let mut payload_bytes = 0;
        if let Some(dir) = &cfg.store {
            payload_bytes = genstore::commit(
                dir,
                GenMeta {
                    generation: 0,
                    window_lo: 0,
                    window_hi: boot_hi as u64,
                },
                &result.tree,
            )
            .expect("bootstrap commit");
        }
        swaps.push(SwapEvent {
            generation: 0,
            trigger: Trigger::Count,
            window_lo: 0,
            window_hi: boot_hi as u64,
            tree_text: model_io::to_text(&result.tree),
            publish_ns: 0,
            retrain_ns: boot_start.elapsed().as_nanos() as u64,
            payload_bytes,
        });
        Server::start_slot(serve::ModelSlot::new(0, ServeModel::Tree(flat)), cfg.serve)
    };
    let mut current = match &server.slot().current().model {
        ServeModel::Tree(t) => t.clone(),
        ServeModel::Forest(_) => unreachable!("live runner serves trees"),
    };

    // Prequential log of the bootstrap range: ingested before any model
    // existed, so unscored — mirrors the in-machine pipeline's points.
    let mut points: Vec<BlockPoint> = Vec::new();
    let mut blo = 0usize;
    while blo < boot_hi {
        let bhi = (blo + stream.block_records).min(boot_hi);
        points.push(BlockPoint {
            upto: bhi as u64,
            generation: None,
            records: 0,
            errors: 0,
        });
        blo = bhi;
    }

    let queue: IngestQueue<(u64, Dataset)> = IngestQueue::new(cfg.queue_blocks);
    let done = AtomicBool::new(false);
    // Fixed scoring set for the traffic thread: the head of the stream,
    // shared by every request.
    let score_data = Arc::new(source.block(0, total.min(4 * cfg.score_chunk.max(1))));

    let traffic_out = std::thread::scope(|scope| {
        // Feeder: materialize the rest of the stream, backpressured.
        scope.spawn(|| {
            let mut lo = boot_hi;
            while lo < total {
                let hi = (lo + stream.block_records).min(total);
                if !queue.push((lo as u64, source.block(lo, hi))) {
                    break;
                }
                lo = hi;
            }
            queue.close();
        });

        // Traffic: sustained scoring load until the trainer is done.
        let traffic = scope.spawn(|| {
            let mut responses = 0u64;
            let mut failures = 0u64;
            let mut gens: Vec<u64> = Vec::new();
            let chunk = cfg.score_chunk.max(1).min(score_data.len().max(1));
            let mut at = 0usize;
            while !done.load(Ordering::Relaxed) {
                let lo = at % score_data.len().max(1);
                let hi = (lo + chunk).min(score_data.len());
                at = hi % score_data.len().max(1);
                match server.score_blocking(Request {
                    data: Arc::clone(&score_data),
                    lo,
                    hi,
                }) {
                    Ok(resp) => {
                        responses += 1;
                        if resp.status != ResponseStatus::Ok {
                            failures += 1;
                        }
                        if !gens.contains(&resp.generation) {
                            gens.push(resp.generation);
                        }
                    }
                    Err(_) => {
                        // Shed by backpressure or shutdown: back off.
                        std::thread::yield_now();
                    }
                }
            }
            gens.sort_unstable();
            (responses, failures, gens)
        });

        // Trainer: the streaming pipeline itself, on real arrivals.
        let mut window: std::collections::VecDeque<Run> = std::collections::VecDeque::new();
        let mut leaf = LeafStats::new(&current);
        let mut scratch: Vec<u32> = Vec::new();
        let mut last_commit_upto = boot_hi as u64;
        let mut epoch_scored = 0u64;
        let mut epoch_errors = 0u64;
        let mut next_gen = 1u64;
        // The bootstrap range seeds the window, like any other arrivals.
        window.push_back(Run {
            global_lo: 0,
            data: boot_data,
        });
        while let Some((lo, data)) = queue.pop() {
            let upto = lo + data.len() as u64;
            let before = leaf.errors;
            leaf.update(&current, &data, &mut scratch);
            let scored = data.len() as u64;
            let errors = leaf.errors - before;
            epoch_scored += scored;
            epoch_errors += errors;
            points.push(BlockPoint {
                upto,
                generation: Some(next_gen - 1),
                records: scored,
                errors,
            });
            window.push_back(Run {
                global_lo: lo,
                data,
            });
            let win_lo = upto.saturating_sub(stream.window_records as u64);
            while let Some(front) = window.front_mut() {
                let run_hi = front.global_lo + front.data.len() as u64;
                if run_hi <= win_lo {
                    window.pop_front();
                } else if front.global_lo < win_lo {
                    let cut = (win_lo - front.global_lo) as usize;
                    front.data = front.data.slice(cut, front.data.len());
                    front.global_lo = win_lo;
                    break;
                } else {
                    break;
                }
            }

            let count_fire = upto - last_commit_upto >= stream.reeval_records as u64;
            let drift_fire = stream.drift_error.is_some_and(|thr| {
                epoch_scored >= stream.min_epoch_records.max(1)
                    && epoch_errors as f64 / epoch_scored as f64 > thr
            });
            if !(count_fire || drift_fire) {
                continue;
            }
            let trigger = if drift_fire {
                Trigger::Drift
            } else {
                Trigger::Count
            };
            let triggered_at = Instant::now();
            let parts: Vec<&Dataset> = window.iter().map(|r| &r.data).collect();
            let window_data = scalparc::stream::rows::concat(&schema, &parts);
            let (flat, event) = commit_and_publish(
                &server,
                cfg,
                next_gen,
                trigger,
                win_lo,
                upto,
                &window_data,
                triggered_at,
            );
            if let (Some(dir), Some(keep)) = (&cfg.store, stream.keep_generations) {
                genstore::gc(dir, next_gen, keep);
            }
            swaps.push(event);
            current = flat;
            leaf = LeafStats::new(&current);
            epoch_scored = 0;
            epoch_errors = 0;
            last_commit_upto = upto;
            next_gen += 1;
        }
        done.store(true, Ordering::Relaxed);
        traffic.join().unwrap()
    });
    let (responses, response_failures, generations_observed) = traffic_out;
    let queue_high_water = queue.high_water();
    LiveReport {
        swaps,
        points,
        serve: server.shutdown(),
        responses,
        response_failures,
        generations_observed,
        queue_high_water,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{DriftKind, GenConfig};
    use scalparc::stream::run_stream;

    use crate::source::quest_sketch;
    use crate::source::DriftSource;

    fn small_cfg(schema: &dtree::data::Schema) -> StreamConfig {
        StreamConfig {
            block_records: 100,
            window_records: 800,
            reeval_records: 400,
            drift_error: Some(0.25),
            min_epoch_records: 100,
            sketch: quest_sketch(schema, 16),
            keep_generations: None,
            induce: Default::default(),
        }
    }

    #[test]
    fn live_run_matches_the_in_machine_pipeline() {
        let source = DriftSource::new(
            GenConfig::paper(1_600, 91),
            DriftKind::Abrupt {
                at: 800,
                to: datagen::ClassFunc::F1,
            },
        );
        let stream_cfg = small_cfg(&source.schema());
        let live = run_live(
            &source,
            &stream_cfg,
            &LiveConfig {
                induce_procs: 2,
                ..LiveConfig::default()
            },
        );
        let sim = run_stream(&source, &ParConfig::new(2), &stream_cfg, None).report;

        // Same generation sequence: ids, windows, triggers, tree bytes.
        assert_eq!(live.swaps.len(), sim.commits.len());
        for (s, c) in live.swaps.iter().zip(&sim.commits) {
            assert_eq!(s.generation, c.generation);
            assert_eq!(s.trigger, c.trigger);
            assert_eq!((s.window_lo, s.window_hi), (c.window_lo, c.window_hi));
            assert_eq!(s.tree_text, c.tree_text, "gen {}", s.generation);
        }
        // Same prequential log, point for point.
        assert_eq!(live.points, sim.points);
        // Zero dropped requests under the swaps.
        assert_eq!(live.response_failures, 0);
        assert!(live.responses > 0, "traffic ran");
        // Every observed generation is a committed one.
        let committed: Vec<u64> = live.swaps.iter().map(|s| s.generation).collect();
        assert!(live
            .generations_observed
            .iter()
            .all(|g| committed.contains(g)));
        // The serve windows account for every completed request.
        let win_requests: u64 = live.serve.generations.iter().map(|w| w.requests).sum();
        assert_eq!(win_requests, live.serve.requests);
    }

    #[test]
    fn store_receives_every_generation() {
        let source = DriftSource::new(GenConfig::paper(900, 93), DriftKind::Stable);
        let stream_cfg = small_cfg(&source.schema());
        let dir = std::env::temp_dir().join(format!("scalparc-live-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let live = run_live(
            &source,
            &stream_cfg,
            &LiveConfig {
                induce_procs: 1,
                store: Some(dir.clone()),
                ..LiveConfig::default()
            },
        );
        assert!(live.swaps.iter().all(|s| s.payload_bytes > 0));
        let gens = genstore::list_generations(&dir);
        assert_eq!(gens.len(), live.swaps.len());
        let (meta, tree, _) = genstore::latest(&dir).unwrap();
        let last = live.swaps.last().unwrap();
        assert_eq!(meta.generation, last.generation);
        assert_eq!(model_io::to_text(&tree), last.tree_text);
        std::fs::remove_dir_all(&dir).ok();
    }
}
