//! Scripted fault injection for the live runtime — the chaos half of the
//! supervision story.
//!
//! A [`LiveFaultPlan`] is a set of one-shot faults the live runner's
//! threads consult at well-defined points: the trainer after popping a
//! block (panic / stall), the trainer between store-commit and publish
//! (the torn-commit window), and the feeder before pushing a block. Each
//! fault fires **at most once** — the plan is shared across restart
//! attempts, so a fault that already fired does not re-kill the restarted
//! thread at the same position.
//!
//! Storage damage ([`StorageDamage`]) is the between-runs fault: the chaos
//! harness applies it to the generation store while the process is "down",
//! then asserts that crash-resume degrades gracefully (skips the damaged
//! newest file, resumes from the newest intact one).
//!
//! Every injected panic message carries the `"[injected]"` marker so
//! [`serve::sync::hush_injected_panics`] can silence the expected panic
//! reports in chaos runs.

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use diskio::ckpt;
use scalparc::stream::genstore;

/// One scripted fault; positions are absolute global record indices, so a
/// plan means the same thing across restarts and against the oracle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LiveFault {
    /// The trainer panics on the first popped block whose end reaches
    /// `upto` — mid-window, after scoring state has been touched.
    TrainerPanicAtBlock {
        /// Global record index the triggering block must reach.
        upto: u64,
    },
    /// The trainer panics right after `genstore::commit` of `generation`
    /// and before the publish — the torn window crash-resume must heal.
    TrainerPanicAfterCommit {
        /// Generation whose commit/publish gap is torn.
        generation: u64,
    },
    /// The feeder panics instead of pushing the block starting at `at`.
    FeederPanicAtBlock {
        /// Global record index of the block the feeder dies on.
        at: u64,
    },
    /// The trainer stops heartbeating (sleeps) for `ms` milliseconds on
    /// the first popped block whose end reaches `upto` — long enough past
    /// the watchdog threshold to be declared stalled and abandoned.
    TrainerStallAtBlock {
        /// Global record index the triggering block must reach.
        upto: u64,
        /// How long the hang lasts.
        ms: u64,
    },
}

/// A one-shot armed set of [`LiveFault`]s, shared (behind an `Arc`) by
/// every thread of a live run.
#[derive(Debug, Default)]
pub struct LiveFaultPlan {
    faults: Vec<(LiveFault, AtomicBool)>,
}

impl LiveFaultPlan {
    /// A plan that injects nothing (the default).
    pub fn none() -> LiveFaultPlan {
        LiveFaultPlan::default()
    }

    /// A plan armed with `faults`, each to fire at most once.
    pub fn new(faults: Vec<LiveFault>) -> LiveFaultPlan {
        LiveFaultPlan {
            faults: faults
                .into_iter()
                .map(|f| (f, AtomicBool::new(true)))
                .collect(),
        }
    }

    /// Faults that have not fired yet.
    pub fn pending(&self) -> usize {
        self.faults
            .iter()
            .filter(|(_, armed)| armed.load(Ordering::SeqCst))
            .count()
    }

    /// Consume the first still-armed fault matching `pick` (at most one
    /// thread wins the swap, so a fault cannot double-fire).
    fn take(&self, pick: impl Fn(&LiveFault) -> bool) -> Option<LiveFault> {
        for (fault, armed) in &self.faults {
            if pick(fault) && armed.swap(false, Ordering::SeqCst) {
                return Some(*fault);
            }
        }
        None
    }

    /// Trainer hook, after popping the block ending at `upto`: `true`
    /// means panic now.
    pub fn trainer_panic_at(&self, upto: u64) -> bool {
        self.take(|f| matches!(f, LiveFault::TrainerPanicAtBlock { upto: at } if upto >= *at))
            .is_some()
    }

    /// Trainer hook, between commit and publish of `generation`: `true`
    /// means panic now.
    pub fn trainer_panic_after_commit(&self, generation: u64) -> bool {
        self.take(|f| matches!(f, LiveFault::TrainerPanicAfterCommit { generation: g } if *g == generation))
            .is_some()
    }

    /// Feeder hook, before pushing the block starting at `at`: `true`
    /// means panic now.
    pub fn feeder_panic_at(&self, at: u64) -> bool {
        self.take(|f| matches!(f, LiveFault::FeederPanicAtBlock { at: a } if at >= *a))
            .is_some()
    }

    /// Trainer hook, after popping the block ending at `upto`: how long to
    /// hang without heartbeating, if a stall is scheduled here.
    pub fn trainer_stall_at(&self, upto: u64) -> Option<Duration> {
        self.take(|f| matches!(f, LiveFault::TrainerStallAtBlock { upto: at, .. } if upto >= *at))
            .map(|f| match f {
                LiveFault::TrainerStallAtBlock { ms, .. } => Duration::from_millis(ms),
                _ => unreachable!("take matched a stall"),
            })
    }
}

/// How to damage a committed generation file on disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DamageKind {
    /// Flip one payload bit (CRC mismatch on load).
    FlipBit,
    /// Truncate the file mid-payload (torn write).
    TruncateTail,
    /// Delete the file outright.
    Remove,
}

/// Between-runs storage fault: damage `generation`'s file in the store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StorageDamage {
    /// Generation whose committed file is damaged.
    pub generation: u64,
    /// What kind of damage.
    pub kind: DamageKind,
}

impl StorageDamage {
    /// Apply the damage to the store at `dir`. Returns `false` if the
    /// target file does not exist (nothing was damaged).
    pub fn apply(&self, dir: &Path) -> bool {
        let path = genstore::gen_file(dir, self.generation);
        if !path.exists() {
            return false;
        }
        match self.kind {
            DamageKind::FlipBit => ckpt::damage_flip_bit(&path).is_ok(),
            DamageKind::TruncateTail => ckpt::damage_truncate_tail(&path).is_ok(),
            DamageKind::Remove => ckpt::damage_remove(&path).is_ok(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_fault_fires_exactly_once() {
        let plan = LiveFaultPlan::new(vec![
            LiveFault::TrainerPanicAtBlock { upto: 500 },
            LiveFault::FeederPanicAtBlock { at: 300 },
            LiveFault::TrainerStallAtBlock { upto: 900, ms: 50 },
        ]);
        assert_eq!(plan.pending(), 3);
        assert!(!plan.trainer_panic_at(499), "not reached yet");
        assert!(plan.trainer_panic_at(500));
        assert!(!plan.trainer_panic_at(500), "one-shot");
        assert!(plan.feeder_panic_at(350));
        assert!(!plan.feeder_panic_at(350));
        assert_eq!(plan.trainer_stall_at(100), None);
        assert_eq!(plan.trainer_stall_at(950), Some(Duration::from_millis(50)));
        assert_eq!(plan.trainer_stall_at(950), None);
        assert_eq!(plan.pending(), 0);
    }

    #[test]
    fn commit_fault_matches_its_generation_only() {
        let plan = LiveFaultPlan::new(vec![LiveFault::TrainerPanicAfterCommit { generation: 2 }]);
        assert!(!plan.trainer_panic_after_commit(1));
        assert!(plan.trainer_panic_after_commit(2));
        assert!(!plan.trainer_panic_after_commit(2));
    }

    #[test]
    fn storage_damage_reports_missing_targets() {
        let dir = std::env::temp_dir().join(format!("scalparc-fault-none-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let dmg = StorageDamage {
            generation: 7,
            kind: DamageKind::Remove,
        };
        assert!(!dmg.apply(&dir), "no such generation file");
        std::fs::remove_dir_all(&dir).ok();
    }
}
