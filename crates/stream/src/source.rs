//! Stream sources: adapters from the `datagen` generators to the
//! [`BlockSource`] trait the pipelines consume, plus the QUEST sketch
//! geometry.

use datagen::{DriftGen, DriftKind, GenConfig, StreamingGen};
use dtree::data::{AttrKind, Dataset, Schema};
use scalparc::stream::accum::SketchSpec;
use scalparc::stream::BlockSource;

/// A concept-drift stream as a [`BlockSource`]: deterministic, randomly
/// addressable, boundary-invariant (any blocking yields the same records).
/// `DriftKind::Stable` makes it a plain [`StreamingGen`] stream.
pub struct DriftSource(DriftGen);

impl DriftSource {
    /// A drift stream over `cfg` with concept schedule `kind`.
    pub fn new(cfg: GenConfig, kind: DriftKind) -> DriftSource {
        DriftSource(DriftGen::new(cfg, kind))
    }

    /// The wrapped generator.
    pub fn generator(&self) -> &DriftGen {
        &self.0
    }
}

impl From<DriftGen> for DriftSource {
    fn from(gen: DriftGen) -> Self {
        DriftSource(gen)
    }
}

impl BlockSource for DriftSource {
    fn total(&self) -> usize {
        self.0.len()
    }
    fn schema(&self) -> Schema {
        self.0.schema()
    }
    fn block(&self, lo: usize, hi: usize) -> Dataset {
        self.0.block(lo, hi)
    }
}

/// A stable (drift-free) stream as a [`BlockSource`].
pub struct StableSource(StreamingGen);

impl StableSource {
    /// A boundary-invariant stream over `cfg`.
    pub fn new(cfg: GenConfig) -> StableSource {
        StableSource(StreamingGen::new(cfg))
    }
}

impl BlockSource for StableSource {
    fn total(&self) -> usize {
        self.0.len()
    }
    fn schema(&self) -> Schema {
        self.0.schema()
    }
    fn block(&self, lo: usize, hi: usize) -> Dataset {
        self.0.block(lo, hi)
    }
}

/// Sketch specs matched to the QUEST attribute ranges (salary 20k–150k,
/// commission 0–75k, age 20–80, hvalue 0–1.35M, hyears 1–30, loan 0–500k),
/// with `bins` equal-width bins per continuous attribute. Unknown
/// continuous attributes get a generous 0–1M default; categorical
/// attributes bin by value (`None`).
pub fn quest_sketch(schema: &Schema, bins: u32) -> Vec<Option<SketchSpec>> {
    schema
        .attrs
        .iter()
        .map(|a| match a.kind {
            AttrKind::Categorical { .. } => None,
            AttrKind::Continuous => {
                let (lo, hi) = match a.name.as_str() {
                    "salary" => (20_000.0, 150_000.0),
                    "commission" => (0.0, 75_000.0),
                    "age" => (20.0, 80.0),
                    "hvalue" => (0.0, 1_350_000.0),
                    "hyears" => (1.0, 30.0),
                    "loan" => (0.0, 500_000.0),
                    _ => (0.0, 1_000_000.0),
                };
                Some(SketchSpec { lo, hi, bins })
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_source_is_boundary_invariant() {
        let s = DriftSource::new(
            GenConfig::paper(300, 41),
            DriftKind::Abrupt {
                at: 150,
                to: datagen::ClassFunc::F1,
            },
        );
        let whole = s.block(0, 300);
        let mut parts = Vec::new();
        for (lo, hi) in [(0, 37), (37, 150), (150, 151), (151, 300)] {
            parts.push(s.block(lo, hi));
        }
        let refs: Vec<&Dataset> = parts.iter().collect();
        assert_eq!(
            scalparc::stream::rows::concat(&s.schema(), &refs),
            whole,
            "any blocking yields the same stream"
        );
    }

    #[test]
    fn quest_sketch_covers_every_attribute() {
        let s = StableSource::new(GenConfig::paper(10, 1));
        let schema = s.schema();
        let specs = quest_sketch(&schema, 8);
        assert_eq!(specs.len(), schema.num_attrs());
        for (attr, spec) in schema.attrs.iter().zip(&specs) {
            match attr.kind {
                AttrKind::Continuous => {
                    let spec = spec.expect("continuous attrs need specs");
                    assert!(spec.hi > spec.lo);
                    assert_eq!(spec.bins, 8);
                }
                AttrKind::Categorical { .. } => assert!(spec.is_none()),
            }
        }
        // The geometry is accepted by the accumulator.
        let _ = scalparc::stream::accum::StreamAccum::new(&schema, &specs);
    }
}
