//! `stream` — streaming induction: train from an unbounded record stream
//! while serving, with generational hot-swap.
//!
//! The subsystem has two halves that share one set of window/trigger
//! semantics ([`StreamConfig`]):
//!
//! * the **deterministic in-machine pipeline**
//!   ([`scalparc::stream::run_stream`], re-exported here): the whole
//!   ingest → re-evaluate → commit loop runs inside one simulated `mpsim`
//!   machine, so generation sequences, confusion matrices, and trigger
//!   decisions are byte-reproducible and independent of the rank count —
//!   the half that carries the correctness guarantees;
//! * the **live runner** ([`live::run_live`]): real threads — a
//!   backpressured [`queue::IngestQueue`] feeder, a trainer that
//!   re-induces and publishes generations through a
//!   [`serve::ModelSlot`], and a traffic thread keeping sustained scoring
//!   load on the [`serve::Server`] so hot-swaps happen under fire — the
//!   half that carries the wall-clock swap-latency and zero-drop
//!   measurements. With aligned configuration the live runner provably
//!   commits the *identical* generation sequence (see
//!   [`live`] module docs).
//!
//! Stream sources come from [`source`]: `datagen`'s boundary-invariant
//! generators (with time-varying concept drift) adapted to the
//! [`BlockSource`] trait. Committed generations live in the single-file
//! CRC-checked [`scalparc::stream::genstore`].
//!
//! The live runner is **supervised**: trainer and feeder run as
//! panic-isolated attempts under a heartbeat watchdog with a bounded
//! restart policy ([`supervisor`]), scripted chaos faults can be injected
//! ([`fault`]), and a killed run crash-resumes from the newest intact
//! committed generation in the store (see [`live`] module docs).

pub mod fault;
pub mod live;
pub mod queue;
pub mod source;
pub mod supervisor;

pub use fault::{DamageKind, LiveFault, LiveFaultPlan, StorageDamage};
pub use live::{run_live, LiveConfig, LiveReport, SwapEvent};
pub use queue::{IngestQueue, TryPushError};
pub use scalparc::stream::{
    accum, genstore, rows, run_stream, stream_on_comm, BlockPoint, BlockSource, GenCommit,
    StreamConfig, StreamOutcome, StreamReport, Trigger,
};
pub use source::{quest_sketch, DriftSource, StableSource};
pub use supervisor::{
    Component, FailureKind, Health, Heartbeat, RestartPolicy, Supervisor, SupervisorReport,
    Watchdog,
};
