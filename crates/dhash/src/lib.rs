//! `dhash` — the parallel hashing paradigm of ScalParC (§3.3.1).
//!
//! The paper's key building block is a *distributed hash table* updated and
//! queried by all processors at once:
//!
//! * **construction/update** — every processor hashes its `(key, value)`
//!   pairs to `(home processor, local index)`, fills one buffer per
//!   destination, and a single step of all-to-all personalized communication
//!   delivers the `(index, value)` pairs to their homes;
//! * **enquiry** — every processor hashes its keys into per-destination
//!   *enquiry buffers* of local indices; one all-to-all step delivers the
//!   indices, the homes look the values up, and a second all-to-all step
//!   returns them.
//!
//! With `m` keys hashed per processor, each step costs `O(m)` provided
//! `m = Ω(p)`, making the paradigm scalable. The paper applies it to the
//! record-id → child-number *node table* ([`DistTable`], collision-free
//! because record ids are dense), and notes that open chaining supports
//! general keys ([`ChainedTable`]).
//!
//! Memory scalability under skew is preserved by [`DistTable::update_blocked`],
//! which splits a processor's outgoing updates into rounds of at most
//! `N/p` entries (paper §3.3.2: "dividing the updates being sent into blocks
//! of `N/p`").

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use mpsim::{Comm, MemTracker};

/// Memory-tracker category for the distributed table's resident storage.
pub const TABLE_MEM: &str = "dist-table";
/// Memory-tracker category for transient hash/enquiry/result buffers.
pub const BUFFER_MEM: &str = "hash-buffers";

/// A distributed, collision-free hash table over the dense key space
/// `0..total_keys`, block-partitioned across ranks.
///
/// The hash function is the paper's `h(j) = (j div ⌈N/p⌉, j mod ⌈N/p⌉)`:
/// key `j` lives at local index `j mod block` on rank `j div block`. Since
/// every key has a distinct slot the table is collision-free.
///
/// All methods taking a [`Comm`] are collective: every rank of the machine
/// must call them in the same order.
pub struct DistTable<V> {
    total_keys: u64,
    block: u64,
    rank: usize,
    local: Vec<Option<V>>,
    tracked_bytes: u64,
    scratch: Scratch<V>,
}

/// Reused per-exchange buffers: cleared at every collective call, never
/// shrunk, so the steady state allocates nothing (see DESIGN.md §6).
struct Scratch<V> {
    /// Per-destination element counts of the current exchange.
    counts: Vec<usize>,
    /// Cursor per destination while scattering into a flat send buffer.
    cursors: Vec<usize>,
    /// Flat `(local index, value)` send/recv buffers for `update`.
    send_updates: Vec<(u32, V)>,
    recv_updates: Vec<(u32, V)>,
    /// Flat local-index send/recv buffers for `inquire` step 1.
    send_idx: Vec<u32>,
    recv_idx: Vec<u32>,
    /// Flat value send/recv buffers for `inquire` step 2.
    send_vals: Vec<Option<V>>,
    recv_vals: Vec<Option<V>>,
    /// Per-source counts returned by the flat collectives.
    recv_counts: Vec<usize>,
    idx_counts: Vec<usize>,
}

impl<V> Scratch<V> {
    fn new(p: usize) -> Self {
        Scratch {
            counts: vec![0; p],
            cursors: vec![0; p],
            send_updates: Vec::new(),
            recv_updates: Vec::new(),
            send_idx: Vec::new(),
            recv_idx: Vec::new(),
            send_vals: Vec::new(),
            recv_vals: Vec::new(),
            recv_counts: Vec::new(),
            idx_counts: Vec::new(),
        }
    }
}

impl<V: Clone + Send + Sync + 'static> DistTable<V> {
    /// Collectively create an empty table for keys `0..total_keys`.
    pub fn new(comm: &Comm, total_keys: u64) -> Self {
        let p = comm.size() as u64;
        let block = total_keys.div_ceil(p).max(1);
        let rank = comm.rank();
        let lo = (rank as u64 * block).min(total_keys);
        let hi = ((rank as u64 + 1) * block).min(total_keys);
        let local = vec![None; (hi - lo) as usize];
        let tracked_bytes = (local.len() * std::mem::size_of::<Option<V>>()) as u64;
        comm.tracker().alloc(TABLE_MEM, tracked_bytes);
        DistTable {
            total_keys,
            block,
            rank,
            local,
            tracked_bytes,
            scratch: Scratch::new(comm.size()),
        }
    }

    /// Total key-space size `N`.
    pub fn total_keys(&self) -> u64 {
        self.total_keys
    }

    /// Block size `⌈N/p⌉`.
    pub fn block(&self) -> u64 {
        self.block
    }

    /// Number of slots resident on this rank.
    pub fn local_len(&self) -> usize {
        self.local.len()
    }

    /// The paper's hash function: `(home rank, local index)` of `key`.
    #[inline]
    pub fn home_of(&self, key: u64) -> (usize, usize) {
        debug_assert!(key < self.total_keys, "key {key} out of range");
        ((key / self.block) as usize, (key % self.block) as usize)
    }

    /// Read a locally-resident slot (for tests and local fast paths).
    ///
    /// # Panics
    /// Panics if `key` is homed on a different rank.
    pub fn get_local(&self, key: u64) -> Option<&V> {
        let (home, idx) = self.home_of(key);
        assert_eq!(home, self.rank, "key {key} is not resident on this rank");
        self.local[idx].as_ref()
    }

    /// This rank's resident slots, in local-index order — what a checkpoint
    /// of the distributed table snapshots.
    pub fn local_slots(&self) -> &[Option<V>] {
        &self.local
    }

    /// Restore this rank's resident slots from a checkpoint taken with
    /// [`DistTable::local_slots`] on a table of identical geometry
    /// (`total_keys`, `procs`).
    ///
    /// # Panics
    /// Panics if `slots` does not match this rank's slot count.
    pub fn set_local_slots(&mut self, slots: Vec<Option<V>>) {
        assert_eq!(
            slots.len(),
            self.local.len(),
            "checkpointed slot count does not match table geometry"
        );
        self.local = slots;
    }

    /// Collectively apply `(key, value)` updates, one all-to-all step.
    ///
    /// Each rank may pass any number of entries; keys may target any rank.
    /// Later updates (by rank order, then buffer order) win on duplicates.
    ///
    /// The exchange runs on the flat collective: a pre-counting pass sizes
    /// the per-destination regions, a cursor scatter fills one contiguous
    /// send buffer, and every buffer involved is reused scratch — the steady
    /// state allocates nothing.
    pub fn update(&mut self, comm: &mut Comm, entries: &[(u64, V)]) {
        comm.phase_begin("dhash_update", 0);
        let block = self.block;
        let s = &mut self.scratch;

        // Pass 1: size each destination region.
        s.counts.iter_mut().for_each(|c| *c = 0);
        for &(key, _) in entries {
            s.counts[(key / block) as usize] += 1;
        }
        let mut acc = 0usize;
        for (cur, &cnt) in s.cursors.iter_mut().zip(&s.counts) {
            *cur = acc;
            acc += cnt;
        }

        // Pass 2: cursor-scatter into one flat, exactly-sized send buffer.
        s.send_updates.clear();
        s.send_updates.reserve(entries.len());
        let spare = s.send_updates.spare_capacity_mut();
        for &(key, ref value) in entries {
            let home = (key / block) as usize;
            let at = s.cursors[home];
            s.cursors[home] += 1;
            spare[at].write(((key % block) as u32, value.clone()));
        }
        // SAFETY: the cursors partition `0..entries.len()`, so the scatter
        // wrote each of the first `entries.len()` spare slots exactly once.
        unsafe { s.send_updates.set_len(entries.len()) };

        let buf_bytes = (entries.len() * std::mem::size_of::<(u32, V)>()) as u64;
        comm.tracker().pulse(BUFFER_MEM, buf_bytes);
        comm.alltoallv_flat_into(
            &s.send_updates,
            &s.counts,
            &mut s.recv_updates,
            &mut s.recv_counts,
        );
        for (idx, value) in s.recv_updates.drain(..) {
            self.local[idx as usize] = Some(value);
        }
        comm.phase_end(); // dhash_update
    }

    /// Memory-scalable update: outgoing entries are split into rounds of at
    /// most `max_per_round` per rank, bounding buffer memory even when one
    /// rank must send far more than `N/p` updates (the paper's pathological
    /// skew case). All ranks execute the same (all-reduced) number of rounds.
    pub fn update_blocked(&mut self, comm: &mut Comm, entries: &[(u64, V)], max_per_round: usize) {
        assert!(max_per_round > 0, "round size must be positive");
        comm.phase_begin("dhash_update_blocked", 0);
        let rounds_mine = entries.len().div_ceil(max_per_round);
        let rounds = comm.allreduce(rounds_mine as u64, |a, b| *a = (*a).max(*b)) as usize;
        for r in 0..rounds {
            let lo = (r * max_per_round).min(entries.len());
            let hi = ((r + 1) * max_per_round).min(entries.len());
            self.update(comm, &entries[lo..hi]);
        }
        comm.phase_end(); // dhash_update_blocked
    }

    /// Collectively look the given keys up; `out[i]` is the value for
    /// `keys[i]` (or `None` if never written). Two all-to-all steps.
    pub fn inquire(&mut self, comm: &mut Comm, keys: &[u64]) -> Vec<Option<V>> {
        let mut out = Vec::new();
        self.inquire_into(comm, keys, &mut out);
        out
    }

    /// [`inquire`](Self::inquire) into a caller-owned buffer, so repeated
    /// enquiries (one per tree level) reuse the result allocation too.
    ///
    /// Both all-to-all steps run on the flat collective. The reply regions
    /// mirror the enquiry regions element for element, so a key's answer
    /// lands at the key's flat send position — re-running the cursor scatter
    /// recovers key order without any placement table.
    pub fn inquire_into(&mut self, comm: &mut Comm, keys: &[u64], out: &mut Vec<Option<V>>) {
        comm.phase_begin("dhash_inquire", 0);
        let block = self.block;
        let s = &mut self.scratch;

        // Pass 1: size each destination region.
        s.counts.iter_mut().for_each(|c| *c = 0);
        for &key in keys {
            s.counts[(key / block) as usize] += 1;
        }
        let mut acc = 0usize;
        for (cur, &cnt) in s.cursors.iter_mut().zip(&s.counts) {
            *cur = acc;
            acc += cnt;
        }

        // Pass 2: cursor-scatter local indices into one flat enquiry buffer.
        s.send_idx.clear();
        s.send_idx.resize(keys.len(), 0);
        for &key in keys {
            let home = (key / block) as usize;
            let at = s.cursors[home];
            s.cursors[home] += 1;
            s.send_idx[at] = (key % block) as u32;
        }
        let enquiry_bytes = (keys.len() * std::mem::size_of::<u32>()) as u64;
        comm.tracker().pulse(BUFFER_MEM, enquiry_bytes);

        // Step 1: indices travel to their homes.
        comm.alltoallv_flat_into(&s.send_idx, &s.counts, &mut s.recv_idx, &mut s.idx_counts);

        // Homes look values up in received order; the per-source reply
        // counts are exactly the received enquiry counts.
        s.send_vals.clear();
        s.send_vals
            .extend(s.recv_idx.iter().map(|&i| self.local[i as usize].clone()));
        let value_bytes = (s.send_vals.len() * std::mem::size_of::<Option<V>>()) as u64;
        comm.tracker().pulse(BUFFER_MEM, value_bytes);

        // Step 2: values travel back.
        comm.alltoallv_flat_into(
            &s.send_vals,
            &s.idx_counts,
            &mut s.recv_vals,
            &mut s.recv_counts,
        );

        // Scatter replies into key order: each key's reply sits at the flat
        // position its enquiry was sent from, and each position is read
        // exactly once, so the value can be moved out instead of cloned.
        let mut acc = 0usize;
        for (cur, &cnt) in s.cursors.iter_mut().zip(&s.counts) {
            *cur = acc;
            acc += cnt;
        }
        out.clear();
        out.reserve(keys.len());
        for &key in keys {
            let home = (key / block) as usize;
            let at = s.cursors[home];
            s.cursors[home] += 1;
            out.push(s.recv_vals[at].take());
        }
        comm.phase_end(); // dhash_inquire
    }

    /// Collectively clear all slots (reused between decision-tree levels).
    pub fn clear(&mut self, comm: &mut Comm) {
        for slot in &mut self.local {
            *slot = None;
        }
        comm.barrier();
    }

    /// Release the tracked bytes of the resident block. Call when the table
    /// is retired so the rank's memory accounting sees the storage returned.
    pub fn release(mut self, tracker: &MemTracker) {
        tracker.free(TABLE_MEM, self.tracked_bytes);
        self.tracked_bytes = 0;
    }
}

/// A distributed hash table for arbitrary hashable keys, with open chaining
/// at each local slot — the generalization the paper sketches for reusing
/// the paradigm in other algorithms.
///
/// Keys hash to `(rank, bucket)`; each bucket is a chain of `(key, value)`
/// pairs. All [`Comm`]-taking methods are collective.
pub struct ChainedTable<K, V> {
    buckets_per_rank: usize,
    local: Vec<Vec<(K, V)>>,
}

fn hash64<K: Hash>(key: &K) -> u64 {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

impl<K, V> ChainedTable<K, V>
where
    K: Clone + Eq + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Collectively create a table with `buckets_per_rank` chains per rank.
    pub fn new(_comm: &Comm, buckets_per_rank: usize) -> Self {
        assert!(buckets_per_rank > 0);
        ChainedTable {
            buckets_per_rank,
            local: vec![Vec::new(); buckets_per_rank],
        }
    }

    /// `(home rank, bucket)` of a key on a `p`-rank machine.
    #[inline]
    pub fn home_of(&self, p: usize, key: &K) -> (usize, usize) {
        let h = hash64(key);
        (
            (h % p as u64) as usize,
            (h / p as u64) as usize % self.buckets_per_rank,
        )
    }

    /// Collectively insert `(key, value)` pairs (one all-to-all step).
    /// Inserting an existing key overwrites its value.
    pub fn insert(&mut self, comm: &mut Comm, entries: &[(K, V)]) {
        let p = comm.size();
        let mut bufs: Vec<Vec<(K, V)>> = vec![Vec::new(); p];
        for (key, value) in entries {
            let (home, _) = self.home_of(p, key);
            bufs[home].push((key.clone(), value.clone()));
        }
        for part in comm.alltoallv(bufs) {
            for (key, value) in part {
                let (_, bucket) = self.home_of(p, &key);
                let chain = &mut self.local[bucket];
                if let Some(slot) = chain.iter_mut().find(|(k, _)| *k == key) {
                    slot.1 = value;
                } else {
                    chain.push((key, value));
                }
            }
        }
    }

    /// Collectively look keys up; results align with `keys`.
    pub fn lookup(&self, comm: &mut Comm, keys: &[K]) -> Vec<Option<V>> {
        let p = comm.size();
        let mut enquiry: Vec<Vec<K>> = vec![Vec::new(); p];
        let mut placement: Vec<(u32, u32)> = Vec::with_capacity(keys.len());
        for key in keys {
            let (home, _) = self.home_of(p, key);
            placement.push((home as u32, enquiry[home].len() as u32));
            enquiry[home].push(key.clone());
        }
        let key_bufs = comm.alltoallv(enquiry);
        let value_bufs: Vec<Vec<Option<V>>> = key_bufs
            .into_iter()
            .map(|ks| {
                ks.into_iter()
                    .map(|key| {
                        let (_, bucket) = self.home_of(p, &key);
                        self.local[bucket]
                            .iter()
                            .find(|(k, _)| *k == key)
                            .map(|(_, v)| v.clone())
                    })
                    .collect()
            })
            .collect();
        let result_bufs = comm.alltoallv(value_bufs);
        placement
            .into_iter()
            .map(|(home, pos)| result_bufs[home as usize][pos as usize].clone())
            .collect()
    }

    /// Number of entries resident on this rank.
    pub fn local_entries(&self) -> usize {
        self.local.iter().map(|c| c.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsim::run_simple;

    #[test]
    fn home_partitioning_is_collision_free() {
        let outs = run_simple(4, |c| {
            let t = DistTable::<u8>::new(c, 10);
            // block = ceil(10/4) = 3 → ranks own [0..3), [3..6), [6..9), [9..10)
            (t.block(), t.local_len())
        });
        assert_eq!(outs, vec![(3, 3), (3, 3), (3, 3), (3, 1)]);
    }

    #[test]
    fn update_then_inquire_roundtrip() {
        let n = 50u64;
        let outs = run_simple(4, |c| {
            let mut t = DistTable::<u32>::new(c, n);
            // Rank r updates keys ≡ r (mod 4) with value key*10.
            let mine: Vec<(u64, u32)> = (0..n)
                .filter(|k| *k as usize % 4 == c.rank())
                .map(|k| (k, k as u32 * 10))
                .collect();
            t.update(c, &mine);
            // Every rank inquires every key.
            let keys: Vec<u64> = (0..n).collect();
            t.inquire(c, &keys)
        });
        for out in outs {
            for (k, v) in out.into_iter().enumerate() {
                assert_eq!(v, Some(k as u32 * 10));
            }
        }
    }

    #[test]
    fn inquire_missing_returns_none() {
        let outs = run_simple(3, |c| {
            let mut t = DistTable::<u8>::new(c, 9);
            if c.rank() == 0 {
                t.update(c, &[(4, 7)]);
            } else {
                t.update(c, &[]);
            }
            t.inquire(c, &[3, 4, 5])
        });
        for out in outs {
            assert_eq!(out, vec![None, Some(7), None]);
        }
    }

    #[test]
    fn blocked_update_matches_plain() {
        let n = 40u64;
        let outs = run_simple(4, |c| {
            let mut t = DistTable::<u32>::new(c, n);
            // Pathological skew: rank 0 sends everything.
            let mine: Vec<(u64, u32)> = if c.rank() == 0 {
                (0..n).map(|k| (k, k as u32 + 1)).collect()
            } else {
                Vec::new()
            };
            t.update_blocked(c, &mine, 7);
            let keys: Vec<u64> = (0..n).collect();
            t.inquire(c, &keys)
        });
        for out in outs {
            for (k, v) in out.into_iter().enumerate() {
                assert_eq!(v, Some(k as u32 + 1));
            }
        }
    }

    #[test]
    fn duplicate_keys_last_writer_wins_within_rank() {
        let outs = run_simple(2, |c| {
            let mut t = DistTable::<u32>::new(c, 4);
            if c.rank() == 0 {
                t.update(c, &[(1, 10), (1, 20)]);
            } else {
                t.update(c, &[]);
            }
            t.inquire(c, &[1])
        });
        for out in outs {
            assert_eq!(out, vec![Some(20)]);
        }
    }

    #[test]
    fn clear_resets_all_slots() {
        let outs = run_simple(2, |c| {
            let mut t = DistTable::<u8>::new(c, 8);
            t.update(c, &[(c.rank() as u64, 1)]);
            t.clear(c);
            t.inquire(c, &[0, 1])
        });
        for out in outs {
            assert_eq!(out, vec![None, None]);
        }
    }

    #[test]
    fn single_proc_table() {
        let outs = run_simple(1, |c| {
            let mut t = DistTable::<u64>::new(c, 5);
            t.update(c, &[(0, 1), (4, 2)]);
            t.inquire(c, &[0, 1, 4])
        });
        assert_eq!(outs[0], vec![Some(1), None, Some(2)]);
    }

    #[test]
    fn inquire_handles_duplicate_and_unsorted_keys() {
        let outs = run_simple(4, |c| {
            let mut t = DistTable::<u32>::new(c, 32);
            let mine: Vec<(u64, u32)> = (0..32)
                .filter(|k| *k as usize % 4 == c.rank())
                .map(|k| (k, k as u32 + 100))
                .collect();
            t.update(c, &mine);
            t.inquire(c, &[31, 0, 7, 7, 31, 2])
        });
        for out in outs {
            assert_eq!(
                out,
                vec![
                    Some(131),
                    Some(100),
                    Some(107),
                    Some(107),
                    Some(131),
                    Some(102)
                ]
            );
        }
    }

    #[test]
    fn scratch_reuse_across_many_rounds() {
        let outs = run_simple(3, |c| {
            let mut t = DistTable::<u64>::new(c, 30);
            let mut last = Vec::new();
            for round in 0..5u64 {
                let mine: Vec<(u64, u64)> = (0..30)
                    .filter(|k| *k as usize % 3 == c.rank())
                    .map(|k| (k, k * 1000 + round))
                    .collect();
                t.update(c, &mine);
                let keys: Vec<u64> = (0..30).rev().collect();
                t.inquire_into(c, &keys, &mut last);
            }
            last
        });
        for out in outs {
            for (i, v) in out.into_iter().enumerate() {
                let k = 29 - i as u64;
                assert_eq!(v, Some(k * 1000 + 4));
            }
        }
    }

    #[test]
    fn table_memory_is_tracked_per_rank() {
        let outs = run_simple(4, |c| {
            let _t = DistTable::<u8>::new(c, 1000);
            c.tracker().category(TABLE_MEM).current
        });
        // 1000 keys over 4 ranks: 250 Option<u8> (2 bytes) each.
        assert!(outs.iter().all(|&b| b == 500));
    }

    #[test]
    fn release_returns_tracked_bytes() {
        let outs = run_simple(2, |c| {
            let t = DistTable::<u8>::new(c, 100);
            let before = c.tracker().category(TABLE_MEM).current;
            t.release(c.tracker());
            (before, c.tracker().category(TABLE_MEM).current)
        });
        for (before, after) in outs {
            assert!(before > 0);
            assert_eq!(after, 0);
        }
    }

    #[test]
    fn chained_table_roundtrip() {
        let outs = run_simple(4, |c| {
            let mut t = ChainedTable::<String, u32>::new(c, 8);
            let mine: Vec<(String, u32)> = (0..20)
                .filter(|i| i % 4 == c.rank())
                .map(|i| (format!("key-{i}"), i as u32))
                .collect();
            t.insert(c, &mine);
            let keys: Vec<String> = (0..20).map(|i| format!("key-{i}")).collect();
            t.lookup(c, &keys)
        });
        for out in outs {
            for (i, v) in out.into_iter().enumerate() {
                assert_eq!(v, Some(i as u32));
            }
        }
    }

    #[test]
    fn chained_table_overwrites_and_misses() {
        let outs = run_simple(2, |c| {
            let mut t = ChainedTable::<u64, &'static str>::new(c, 4);
            if c.rank() == 0 {
                t.insert(c, &[(9, "first")]);
                t.insert(c, &[(9, "second")]);
            } else {
                t.insert(c, &[]);
                t.insert(c, &[]);
            }
            t.lookup(c, &[9, 77])
        });
        for out in outs {
            assert_eq!(out, vec![Some("second"), None]);
        }
    }

    #[test]
    fn chained_collisions_chain_correctly() {
        // 1 bucket per rank on 1 rank forces every key into one chain.
        let outs = run_simple(1, |c| {
            let mut t = ChainedTable::<u32, u32>::new(c, 1);
            let entries: Vec<(u32, u32)> = (0..32).map(|i| (i, i * i)).collect();
            t.insert(c, &entries);
            assert_eq!(t.local_entries(), 32);
            let keys: Vec<u32> = (0..32).collect();
            t.lookup(c, &keys)
        });
        for (i, v) in outs[0].iter().enumerate() {
            assert_eq!(*v, Some((i * i) as u32));
        }
    }
}
