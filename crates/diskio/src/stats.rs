//! Byte-exact I/O accounting shared by all disk structures of one run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cumulative I/O counters. Clone the `Arc` into every [`crate::DiskVec`]
/// belonging to the same experiment.
#[derive(Debug, Default)]
pub struct IoStats {
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    read_passes: AtomicU64,
}

impl IoStats {
    /// Fresh counters.
    pub fn new() -> Arc<Self> {
        Arc::new(IoStats::default())
    }

    pub(crate) fn add_read(&self, bytes: u64) {
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn add_written(&self, bytes: u64) {
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn add_pass(&self) {
        self.read_passes.fetch_add(1, Ordering::Relaxed);
    }

    /// Total bytes read from disk.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Total bytes written to disk.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Number of full sequential read passes started.
    pub fn read_passes(&self) -> u64 {
        self.read_passes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::new();
        s.add_read(10);
        s.add_read(5);
        s.add_written(7);
        s.add_pass();
        assert_eq!(s.bytes_read(), 15);
        assert_eq!(s.bytes_written(), 7);
        assert_eq!(s.read_passes(), 1);
    }
}
