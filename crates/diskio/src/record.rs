//! Fixed-size binary encoding of attribute-list entries.
//!
//! Hand-rolled little-endian encoding (no serde): out-of-core lists must be
//! byte-exact and schema-stable, and the entries are trivial PODs.

use dtree::list::{CatEntry, ContEntry};

/// A fixed-size record that can live in a [`crate::DiskVec`].
pub trait Record: Copy {
    /// Encoded size in bytes.
    const SIZE: usize;
    /// Serialize into `buf[..Self::SIZE]`.
    fn write(&self, buf: &mut [u8]);
    /// Deserialize from `buf[..Self::SIZE]`.
    fn read(buf: &[u8]) -> Self;
}

impl Record for ContEntry {
    const SIZE: usize = 9;

    fn write(&self, buf: &mut [u8]) {
        buf[0..4].copy_from_slice(&self.value.to_le_bytes());
        buf[4..8].copy_from_slice(&self.rid.to_le_bytes());
        buf[8] = self.class;
    }

    fn read(buf: &[u8]) -> Self {
        ContEntry {
            value: f32::from_le_bytes(buf[0..4].try_into().unwrap()),
            rid: u32::from_le_bytes(buf[4..8].try_into().unwrap()),
            class: buf[8],
        }
    }
}

impl Record for CatEntry {
    const SIZE: usize = 9;

    fn write(&self, buf: &mut [u8]) {
        buf[0..4].copy_from_slice(&self.value.to_le_bytes());
        buf[4..8].copy_from_slice(&self.rid.to_le_bytes());
        buf[8] = self.class;
    }

    fn read(buf: &[u8]) -> Self {
        CatEntry {
            value: u32::from_le_bytes(buf[0..4].try_into().unwrap()),
            rid: u32::from_le_bytes(buf[4..8].try_into().unwrap()),
            class: buf[8],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cont_entry_roundtrip() {
        let e = ContEntry {
            value: -3.25,
            rid: 0xDEAD_BEEF,
            class: 7,
        };
        let mut buf = [0u8; 9];
        e.write(&mut buf);
        assert_eq!(ContEntry::read(&buf), e);
    }

    #[test]
    fn cat_entry_roundtrip() {
        let e = CatEntry {
            value: 19,
            rid: 42,
            class: 1,
        };
        let mut buf = [0u8; 9];
        e.write(&mut buf);
        assert_eq!(CatEntry::read(&buf), e);
    }

    #[test]
    fn encoded_size_is_packed() {
        // 4 + 4 + 1 — no padding on disk, unlike the in-memory layout.
        assert_eq!(ContEntry::SIZE, 9);
        assert!(ContEntry::SIZE < std::mem::size_of::<ContEntry>());
    }
}
