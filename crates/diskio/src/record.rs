//! Fixed-size binary encoding of attribute-list entries.
//!
//! Hand-rolled little-endian encoding (no serde): out-of-core lists must be
//! byte-exact and schema-stable, and the entries are trivial PODs. Since the
//! in-memory layout became `#[repr(C, packed(2))]` the disk encoding is the
//! little-endian image of the in-memory bytes: both are exactly
//! [`PACKED_ENTRY_BYTES`] wide with no padding.

use dtree::list::{CatEntry, ContEntry, PACKED_ENTRY_BYTES};

/// A fixed-size record that can live in a [`crate::DiskVec`].
pub trait Record: Copy {
    /// Encoded size in bytes.
    const SIZE: usize;
    /// Serialize into `buf[..Self::SIZE]`.
    fn write(&self, buf: &mut [u8]);
    /// Deserialize from `buf[..Self::SIZE]`.
    fn read(buf: &[u8]) -> Self;
}

impl Record for ContEntry {
    const SIZE: usize = PACKED_ENTRY_BYTES;

    fn write(&self, buf: &mut [u8]) {
        let (value, rid, class) = (self.value, self.rid, self.class);
        buf[0..4].copy_from_slice(&value.to_le_bytes());
        buf[4..8].copy_from_slice(&rid.to_le_bytes());
        buf[8..10].copy_from_slice(&class.to_le_bytes());
    }

    fn read(buf: &[u8]) -> Self {
        ContEntry {
            value: f32::from_le_bytes(buf[0..4].try_into().unwrap()),
            rid: u32::from_le_bytes(buf[4..8].try_into().unwrap()),
            class: u16::from_le_bytes(buf[8..10].try_into().unwrap()),
        }
    }
}

impl Record for CatEntry {
    const SIZE: usize = PACKED_ENTRY_BYTES;

    fn write(&self, buf: &mut [u8]) {
        let (value, rid, class) = (self.value, self.rid, self.class);
        buf[0..4].copy_from_slice(&value.to_le_bytes());
        buf[4..8].copy_from_slice(&rid.to_le_bytes());
        buf[8..10].copy_from_slice(&class.to_le_bytes());
    }

    fn read(buf: &[u8]) -> Self {
        CatEntry {
            value: u32::from_le_bytes(buf[0..4].try_into().unwrap()),
            rid: u32::from_le_bytes(buf[4..8].try_into().unwrap()),
            class: u16::from_le_bytes(buf[8..10].try_into().unwrap()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cont_entry_roundtrip() {
        let e = ContEntry {
            value: -3.25,
            rid: 0xDEAD_BEEF,
            class: 7,
        };
        let mut buf = [0u8; 10];
        e.write(&mut buf);
        assert_eq!(ContEntry::read(&buf), e);
    }

    #[test]
    fn cat_entry_roundtrip() {
        let e = CatEntry {
            value: 19,
            rid: 42,
            class: 1,
        };
        let mut buf = [0u8; 10];
        e.write(&mut buf);
        assert_eq!(CatEntry::read(&buf), e);
    }

    #[test]
    fn encoded_size_is_packed() {
        // 4 + 4 + 2 — disk encoding and in-memory layout agree byte for byte.
        assert_eq!(ContEntry::SIZE, 10);
        assert_eq!(ContEntry::SIZE, std::mem::size_of::<ContEntry>());
    }
}
