//! Out-of-core serial SPRINT with a hash-table memory budget.
//!
//! Identical splitting decisions to [`dtree::sprint`] (the integration
//! tests assert tree equality), but the attribute lists are [`DiskVec`]s
//! and the record-id → child hash table may not exceed `budget` entries in
//! memory. When a node holds more records than the budget, its splitting
//! phase runs in ⌈n/budget⌉ **stages** (paper §2): each stage builds the
//! table for one record-id range from the splitting attribute's list, then
//! re-reads every other attribute list in full, routing only the records of
//! that range. Continuous child lists are written per (child, stage) and
//! merged afterwards to restore their sort order — one more pass.
//!
//! The point, measured by the `ooc_passes` experiment: read volume grows
//! roughly with `n_attrs · N · N/(budget)` at the upper tree levels, which
//! is exactly the "additional expensive disk I/O" ScalParC's distributed
//! node table eliminates.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use dtree::data::{AttrKind, Dataset, Schema};
use dtree::gini::{ContinuousScan, CountMatrix};
use dtree::hashutil::{rid_map_with_capacity, RidMap};
use dtree::list::{build_lists, AttrList, CatEntry, ContEntry};
use dtree::split::{categorical_candidate, SplitOptions};
use dtree::tree::{BestSplit, DecisionTree, Node, SplitTest, StopRules};

use crate::file::DiskVec;
use crate::stats::IoStats;

/// Configuration of the out-of-core induction.
#[derive(Clone, Debug)]
pub struct OocConfig {
    /// Stopping rules (same semantics as the in-memory classifiers).
    pub stop: StopRules,
    /// Candidate generation options (categorical mode, criterion).
    pub split: SplitOptions,
    /// Maximum resident hash-table entries during a node's splitting phase.
    pub budget: usize,
    /// Scratch directory for the list files.
    pub dir: PathBuf,
}

impl OocConfig {
    /// Config with the given budget, scratch space under the system temp
    /// directory.
    pub fn with_budget(budget: usize) -> Self {
        OocConfig {
            stop: StopRules::default(),
            split: SplitOptions::default(),
            budget,
            dir: std::env::temp_dir().join("scalparc-ooc"),
        }
    }
}

/// Counters of one out-of-core run (I/O totals live in the [`IoStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OocStats {
    /// Total splitting-phase stages executed (≥ one per split node).
    pub stages: u64,
    /// Number of nodes whose split needed more than one stage.
    pub staged_nodes: u64,
    /// Extra merge passes run to restore continuous sort order.
    pub merge_passes: u64,
}

enum DiskList {
    Continuous(DiskVec<ContEntry>),
    Categorical(DiskVec<CatEntry>),
}

impl DiskList {
    fn len(&self) -> usize {
        match self {
            DiskList::Continuous(v) => v.len(),
            DiskList::Categorical(v) => v.len(),
        }
    }
}

struct Work {
    node_id: u32,
    depth: u32,
    hist: Vec<u64>,
    lists: Vec<DiskList>,
}

/// Induce a tree with disk-resident attribute lists under a hash-table
/// memory budget. Returns the tree, the staging counters, and leaves the
/// cumulative I/O in `stats`.
pub fn induce_ooc(
    data: &Dataset,
    cfg: &OocConfig,
    stats: &Arc<IoStats>,
) -> (DecisionTree, OocStats) {
    assert!(cfg.budget > 0, "hash-table budget must be positive");
    let schema = data.schema.clone();
    let mut counters = OocStats::default();
    let mut file_seq = 0u64;

    let mut nodes = vec![Node::leaf(0, data.class_hist())];
    let mut level: Vec<Work> = Vec::new();
    if !data.is_empty() && !cfg.stop.pre_split_leaf(&nodes[0].hist, 0) {
        // Presort in memory, then spill the root lists to disk (a real
        // out-of-core presort would use an external sort; the I/O under
        // study is the *splitting* phase, which dominates per level).
        let mem_lists = build_lists(data, 0, true);
        let lists = mem_lists
            .into_iter()
            .map(|l| spill(&cfg.dir, &mut file_seq, l, stats))
            .collect();
        level.push(Work {
            node_id: 0,
            depth: 0,
            hist: nodes[0].hist.clone(),
            lists,
        });
    }

    while !level.is_empty() {
        let mut next = Vec::new();
        for mut work in level {
            let parent_gini = cfg.split.criterion.impurity(&work.hist);
            let best = find_best_split(&schema, &mut work, cfg.split);
            let split = match best {
                Some(b) if !cfg.stop.insufficient_gain(parent_gini, b.gini) => b,
                _ => {
                    remove_lists(work.lists);
                    continue;
                }
            };

            let arity = split.test.arity(&schema);
            let n = work.lists[split.test.attr()].len();
            let stages = n.div_ceil(cfg.budget).max(1);
            counters.stages += stages as u64;
            if stages > 1 {
                counters.staged_nodes += 1;
            }

            let (child_lists, child_hists, merges) = staged_split(
                &cfg.dir,
                &mut file_seq,
                &schema,
                work.lists,
                &split,
                arity,
                work.hist.len(),
                cfg.budget,
                stages,
                stats,
            );
            counters.merge_passes += merges;

            let parent_majority = nodes[work.node_id as usize].majority;
            let mut children = Vec::with_capacity(arity);
            for (hist, lists) in child_hists.into_iter().zip(child_lists) {
                let id = nodes.len() as u32;
                let records: u64 = hist.iter().sum();
                let mut child = Node::leaf(work.depth + 1, hist.clone());
                if records == 0 {
                    child.majority = parent_majority;
                }
                nodes.push(child);
                children.push(id);
                if records > 0 && !cfg.stop.pre_split_leaf(&hist, work.depth + 1) {
                    next.push(Work {
                        node_id: id,
                        depth: work.depth + 1,
                        hist,
                        lists,
                    });
                } else {
                    remove_lists(lists);
                }
            }
            let parent = &mut nodes[work.node_id as usize];
            parent.test = Some(split.test);
            parent.children = children;
        }
        level = next;
    }

    (DecisionTree { schema, nodes }, counters)
}

fn new_file(dir: &Path, seq: &mut u64) -> PathBuf {
    *seq += 1;
    dir.join(format!("list-{seq:08}.bin"))
}

fn spill(dir: &Path, seq: &mut u64, list: AttrList, stats: &Arc<IoStats>) -> DiskList {
    match list {
        AttrList::Continuous(entries) => {
            let mut v = DiskVec::create(&new_file(dir, seq), Arc::clone(stats)).expect("create");
            for e in &entries {
                v.push(e).expect("write");
            }
            DiskList::Continuous(v)
        }
        AttrList::Categorical(entries) => {
            let mut v = DiskVec::create(&new_file(dir, seq), Arc::clone(stats)).expect("create");
            for e in &entries {
                v.push(e).expect("write");
            }
            DiskList::Categorical(v)
        }
    }
}

fn remove_lists(lists: Vec<DiskList>) {
    for l in lists {
        match l {
            DiskList::Continuous(v) => v.remove().ok(),
            DiskList::Categorical(v) => v.remove().ok(),
        };
    }
}

/// Streaming split determination (one pass per attribute list).
fn find_best_split(schema: &Schema, work: &mut Work, opts: SplitOptions) -> Option<BestSplit> {
    let mut best: Option<BestSplit> = None;
    for (attr, list) in work.lists.iter_mut().enumerate() {
        let candidate = match (&schema.attrs[attr].kind, list) {
            (AttrKind::Continuous, DiskList::Continuous(v)) => {
                let mut scan =
                    ContinuousScan::fresh(work.hist.clone()).with_criterion(opts.criterion);
                for e in v.iter().expect("read") {
                    scan.push(e.value, e.class as u8);
                }
                scan.best().map(|c| BestSplit {
                    gini: c.gini,
                    test: SplitTest::Continuous {
                        attr,
                        threshold: c.threshold,
                    },
                })
            }
            (AttrKind::Categorical { cardinality }, DiskList::Categorical(v)) => {
                let mut m = CountMatrix::new(*cardinality as usize, work.hist.len());
                for e in v.iter().expect("read") {
                    m.add(e.value as usize, e.class as usize);
                }
                categorical_candidate(attr, &m, opts)
            }
            _ => unreachable!("list kind matches schema"),
        };
        best = BestSplit::better(best, candidate);
    }
    best
}

fn route(test: &SplitTest, cont_value: Option<f32>, cat_value: Option<u32>) -> usize {
    match *test {
        SplitTest::Continuous { threshold, .. } => {
            usize::from(cont_value.expect("continuous test") >= threshold)
        }
        SplitTest::Categorical { .. } => cat_value.expect("categorical test") as usize,
        SplitTest::CategoricalSubset { left_mask, .. } => {
            usize::from((left_mask >> cat_value.expect("categorical test")) & 1 == 0)
        }
    }
}

/// The budgeted splitting phase. Returns per-child lists, per-child
/// histograms, and the number of merge passes used.
#[allow(clippy::too_many_arguments)]
fn staged_split(
    dir: &Path,
    seq: &mut u64,
    schema: &Schema,
    mut lists: Vec<DiskList>,
    split: &BestSplit,
    arity: usize,
    classes: usize,
    budget: usize,
    stages: usize,
    stats: &Arc<IoStats>,
) -> (Vec<Vec<DiskList>>, Vec<Vec<u64>>, u64) {
    let split_attr = split.test.attr();
    let mut child_hists = vec![vec![0u64; classes]; arity];
    let mut merges = 0u64;

    // Per (attr, child, stage) output files; merged per (attr, child) below.
    let n_attrs = lists.len();
    let mut outputs: Vec<Vec<Vec<DiskList>>> = (0..n_attrs)
        .map(|_| (0..arity).map(|_| Vec::new()).collect())
        .collect();

    for stage in 0..stages {
        let lo = stage * budget;
        let hi = (stage + 1) * budget;

        // Build this stage's hash table from the splitting attribute's
        // list: the `stage`-th block of `budget` entries in list order.
        // Each record is covered by exactly one stage, so the child
        // histograms accumulate each record once.
        let mut table: RidMap<u8> = rid_map_with_capacity(budget.min(1 << 20));
        match &mut lists[split_attr] {
            DiskList::Continuous(v) => {
                for (i, e) in v.iter().expect("read").enumerate() {
                    if i < lo || i >= hi {
                        continue;
                    }
                    let child = route(&split.test, Some(e.value), None);
                    table.insert(e.rid, child as u8);
                    child_hists[child][e.class as usize] += 1;
                }
            }
            DiskList::Categorical(v) => {
                for (i, e) in v.iter().expect("read").enumerate() {
                    if i < lo || i >= hi {
                        continue;
                    }
                    let child = route(&split.test, None, Some(e.value));
                    table.insert(e.rid, child as u8);
                    child_hists[child][e.class as usize] += 1;
                }
            }
        }

        // Route every attribute list's records belonging to this stage.
        for (attr, list) in lists.iter_mut().enumerate() {
            let mut outs: Vec<DiskList> = (0..arity)
                .map(|_| match schema.attrs[attr].kind {
                    AttrKind::Continuous => DiskList::Continuous(
                        DiskVec::create(&new_file(dir, seq), Arc::clone(stats)).expect("create"),
                    ),
                    AttrKind::Categorical { .. } => DiskList::Categorical(
                        DiskVec::create(&new_file(dir, seq), Arc::clone(stats)).expect("create"),
                    ),
                })
                .collect();
            match list {
                DiskList::Continuous(v) => {
                    for e in v.iter().expect("read") {
                        let rid = e.rid;
                        if let Some(&c) = table.get(&rid) {
                            match &mut outs[c as usize] {
                                DiskList::Continuous(o) => o.push(&e).expect("write"),
                                _ => unreachable!(),
                            }
                        }
                    }
                }
                DiskList::Categorical(v) => {
                    for e in v.iter().expect("read") {
                        let rid = e.rid;
                        if let Some(&c) = table.get(&rid) {
                            match &mut outs[c as usize] {
                                DiskList::Categorical(o) => o.push(&e).expect("write"),
                                _ => unreachable!(),
                            }
                        }
                    }
                }
            }
            for (c, o) in outs.into_iter().enumerate() {
                outputs[attr][c].push(o);
            }
        }
    }
    remove_lists(lists);

    // Merge stage files per (attr, child). Continuous lists need a k-way
    // merge by (value, rid) to restore sort order; categorical lists (and
    // the single-stage case) concatenate.
    let mut child_lists: Vec<Vec<DiskList>> = (0..arity).map(|_| Vec::new()).collect();
    for (attr, per_child) in outputs.into_iter().enumerate() {
        for (c, stage_files) in per_child.into_iter().enumerate() {
            let merged = if stage_files.len() == 1 {
                stage_files.into_iter().next().unwrap()
            } else {
                merges += 1;
                merge_stage_files(dir, seq, &schema.attrs[attr].kind, stage_files, stats)
            };
            child_lists[c].push(merged);
        }
    }
    // child_lists[c] currently has attrs appended per attr loop above in
    // attr order — but per_child iteration pushed attr-major, so each
    // child's vector is already in ascending attribute order.
    (child_lists, child_hists, merges)
}

fn merge_stage_files(
    dir: &Path,
    seq: &mut u64,
    kind: &AttrKind,
    files: Vec<DiskList>,
    stats: &Arc<IoStats>,
) -> DiskList {
    match kind {
        AttrKind::Continuous => {
            // Streaming k-way merge (k = stages): only one head entry per
            // run is resident, so the merge respects the memory budget.
            let mut vecs: Vec<DiskVec<ContEntry>> = files
                .into_iter()
                .map(|f| match f {
                    DiskList::Continuous(v) => v,
                    _ => unreachable!(),
                })
                .collect();
            let mut out = DiskVec::create(&new_file(dir, seq), Arc::clone(stats)).expect("create");
            {
                let mut iters: Vec<_> = vecs
                    .iter_mut()
                    .map(|v| v.iter().expect("read").peekable())
                    .collect();
                loop {
                    let mut best: Option<usize> = None;
                    for i in 0..iters.len() {
                        let Some(cand) = iters[i].peek().copied() else {
                            continue;
                        };
                        let better = match best {
                            None => true,
                            Some(b) => {
                                let cur = *iters[b].peek().unwrap();
                                let (cv, uv, cr, ur) = (cand.value, cur.value, cand.rid, cur.rid);
                                cv.total_cmp(&uv).then(cr.cmp(&ur)).is_lt()
                            }
                        };
                        if better {
                            best = Some(i);
                        }
                    }
                    match best {
                        None => break,
                        Some(i) => {
                            let e = iters[i].next().unwrap();
                            out.push(&e).expect("write");
                        }
                    }
                }
            }
            for v in vecs {
                v.remove().ok();
            }
            DiskList::Continuous(out)
        }
        AttrKind::Categorical { .. } => {
            let mut out = DiskVec::create(&new_file(dir, seq), Arc::clone(stats)).expect("create");
            for f in files {
                match f {
                    DiskList::Categorical(mut v) => {
                        for e in v.iter().expect("read") {
                            out.push(&e).expect("write");
                        }
                        v.remove().ok();
                    }
                    _ => unreachable!(),
                }
            }
            DiskList::Categorical(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, ClassFunc, GenConfig, Profile};
    use dtree::sprint::{self, SprintConfig};

    fn quest(n: usize, seed: u64) -> Dataset {
        generate(&GenConfig {
            n,
            func: ClassFunc::F2,
            noise: 0.0,
            seed,
            profile: Profile::Paper7,
        })
    }

    fn cfg(budget: usize, name: &str) -> OocConfig {
        OocConfig {
            stop: StopRules::default(),
            split: SplitOptions::default(),
            budget,
            dir: std::env::temp_dir().join("scalparc-ooc-test").join(name),
        }
    }

    #[test]
    fn unlimited_budget_matches_in_memory_sprint() {
        let data = quest(400, 1);
        let want = sprint::induce(&data, &SprintConfig::default());
        let stats = IoStats::new();
        let (tree, counters) = induce_ooc(&data, &cfg(usize::MAX >> 1, "unlimited"), &stats);
        assert_eq!(tree, want);
        assert_eq!(counters.staged_nodes, 0);
        assert_eq!(counters.merge_passes, 0);
    }

    #[test]
    fn tiny_budget_still_matches_but_stages() {
        let data = quest(300, 2);
        let want = sprint::induce(&data, &SprintConfig::default());
        let stats = IoStats::new();
        let (tree, counters) = induce_ooc(&data, &cfg(64, "tiny"), &stats);
        assert_eq!(tree, want, "staged split must not change the tree");
        assert!(counters.staged_nodes > 0);
        assert!(counters.merge_passes > 0);
        assert!(counters.stages as usize > counters.staged_nodes as usize);
    }

    #[test]
    fn smaller_budget_reads_more() {
        let data = quest(500, 3);
        let big = IoStats::new();
        induce_ooc(&data, &cfg(1_000_000, "big"), &big);
        let small = IoStats::new();
        induce_ooc(&data, &cfg(50, "small"), &small);
        assert!(
            small.bytes_read() > 3 * big.bytes_read(),
            "budget 50: {} vs unlimited: {}",
            small.bytes_read(),
            big.bytes_read()
        );
        assert!(small.read_passes() > big.read_passes());
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn zero_budget_rejected() {
        let data = quest(10, 4);
        let stats = IoStats::new();
        induce_ooc(&data, &cfg(0, "zero"), &stats);
    }
}
