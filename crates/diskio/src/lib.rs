//! `diskio` — out-of-core attribute lists and the memory-limited serial
//! SPRINT that motivates ScalParC.
//!
//! The paper's §2 argument for parallelizing the splitting phase is an
//! out-of-core one: SPRINT's record-id → child hash table "is proportional
//! to the number of records at the node. For the root node of the decision
//! tree, this size is the same as the original training dataset size …
//! If the hash table does not fit in the memory, then multiple passes need
//! to be done over the entire data requiring additional expensive disk
//! I/O." ScalParC's distributed node table removes the limitation by
//! spreading the table over processors.
//!
//! This crate makes that argument measurable on one machine:
//!
//! * [`DiskVec`] — a file-backed, append-only vector of fixed-size records
//!   with buffered sequential I/O and byte-exact I/O accounting;
//! * [`sprint_ooc`] — serial SPRINT whose attribute lists live on disk and
//!   whose splitting phase honours a **hash-table memory budget**: when a
//!   node's records exceed the budget, the split runs in stages of
//!   budget-sized record-id ranges, each stage re-reading every
//!   non-splitting attribute list in full (and a final merge pass restores
//!   the per-child sort order of continuous lists);
//! * the `OOC-PASSES` experiment (`scalparc-bench`, `--bin ooc_passes`)
//!   reports read volume vs budget — the ~`N/B`-passes blow-up the paper
//!   describes.
//!
//! The induced tree is identical to the in-memory classifiers' for every
//! budget; only the I/O differs.

pub mod ckpt;
pub mod file;
pub mod ooc_store;
pub mod record;
pub mod sprint_ooc;
pub mod stats;

pub use ckpt::{read_sections, write_sections, ByteReader, ByteWriter, CkptError};
pub use file::{DiskChunks, DiskVec};
pub use ooc_store::{OocAttrStore, OocList};
pub use record::Record;
pub use sprint_ooc::{induce_ooc, OocConfig, OocStats};
pub use stats::IoStats;
