//! General out-of-core attribute-list store.
//!
//! [`sprint_ooc`](crate::sprint_ooc) is the *serial* memory-budgeted SPRINT
//! used to motivate ScalParC; this module is the storage layer for the
//! **parallel** out-of-core formulation: each rank owns one
//! [`OocAttrStore`] — a scratch directory of [`DiskVec`] files plus shared
//! [`IoStats`] — and keeps every attribute-list segment on disk, streaming
//! it through chunk-sized buffers ([`crate::file::DiskChunks`]) during the
//! per-level phases. Resident memory per rank is then O(chunk) regardless
//! of the training-set size; the spill/read traffic is byte-exact in the
//! store's stats so the driver can charge it to the simulated cost model.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use dtree::data::AttrKind;
use dtree::list::{AttrList, CatEntry, ContEntry};

use crate::file::DiskVec;
use crate::stats::IoStats;

/// One disk-resident attribute-list segment.
pub enum OocList {
    /// Sorted-by-value continuous segment.
    Continuous(DiskVec<ContEntry>),
    /// Categorical segment in record order.
    Categorical(DiskVec<CatEntry>),
}

impl OocList {
    /// Number of records in the segment.
    pub fn len(&self) -> usize {
        match self {
            OocList::Continuous(v) => v.len(),
            OocList::Categorical(v) => v.len(),
        }
    }

    /// True when the segment holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Payload bytes on disk (the packed record size times the length).
    pub fn bytes(&self) -> u64 {
        match self {
            OocList::Continuous(v) => v.bytes(),
            OocList::Categorical(v) => v.bytes(),
        }
    }

    /// Delete the backing file.
    pub fn remove(self) -> std::io::Result<()> {
        match self {
            OocList::Continuous(v) => v.remove(),
            OocList::Categorical(v) => v.remove(),
        }
    }
}

/// Per-rank store of disk-resident attribute-list files.
///
/// Owns the scratch directory (one per rank — paths never collide between
/// ranks) and the file-name sequence; every file it creates shares one
/// [`IoStats`], so `stats()` is the rank's exact spill/read ledger.
pub struct OocAttrStore {
    dir: PathBuf,
    seq: u64,
    stats: Arc<IoStats>,
}

impl OocAttrStore {
    /// Open a store rooted at `dir` (created if absent) with fresh stats.
    pub fn new(dir: &Path) -> std::io::Result<Self> {
        Self::with_stats(dir, IoStats::new())
    }

    /// Open a store rooted at `dir` that accounts into shared `stats`.
    pub fn with_stats(dir: &Path, stats: Arc<IoStats>) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        Ok(OocAttrStore {
            dir: dir.to_path_buf(),
            seq: 0,
            stats,
        })
    }

    /// The store's I/O ledger.
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// Total bytes moved to or from disk so far.
    pub fn io_bytes(&self) -> u64 {
        self.stats.bytes_read() + self.stats.bytes_written()
    }

    fn next_path(&mut self) -> PathBuf {
        let p = self.dir.join(format!("list-{:08}.bin", self.seq));
        self.seq += 1;
        p
    }

    /// Create an empty continuous list file.
    pub fn create_cont(&mut self) -> std::io::Result<DiskVec<ContEntry>> {
        DiskVec::create(&self.next_path(), Arc::clone(&self.stats))
    }

    /// Create an empty categorical list file.
    pub fn create_cat(&mut self) -> std::io::Result<DiskVec<CatEntry>> {
        DiskVec::create(&self.next_path(), Arc::clone(&self.stats))
    }

    /// Create an empty list of the given attribute kind.
    pub fn create(&mut self, kind: AttrKind) -> std::io::Result<OocList> {
        Ok(match kind {
            AttrKind::Continuous => OocList::Continuous(self.create_cont()?),
            AttrKind::Categorical { .. } => OocList::Categorical(self.create_cat()?),
        })
    }

    /// Spill an in-memory attribute list to disk (bulk write).
    pub fn spill(&mut self, list: &AttrList) -> std::io::Result<OocList> {
        Ok(match list {
            AttrList::Continuous(entries) => {
                let mut v = self.create_cont()?;
                v.extend_from_slice(entries)?;
                v.flush()?;
                OocList::Continuous(v)
            }
            AttrList::Categorical(entries) => {
                let mut v = self.create_cat()?;
                v.extend_from_slice(entries)?;
                v.flush()?;
                OocList::Categorical(v)
            }
        })
    }

    /// Remove the scratch directory and everything in it.
    pub fn destroy(self) -> std::io::Result<()> {
        std::fs::remove_dir_all(&self.dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtree::list::PACKED_ENTRY_BYTES;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir()
            .join("scalparc-ooc-store-test")
            .join(name)
    }

    #[test]
    fn spill_and_chunked_readback() {
        let mut store = OocAttrStore::new(&tmp("spill")).unwrap();
        let entries: Vec<ContEntry> = (0..257)
            .map(|i| ContEntry {
                value: i as f32,
                rid: i,
                class: (i % 3) as u16,
            })
            .collect();
        let list = AttrList::Continuous(entries.clone());
        let mut spilled = store.spill(&list).unwrap();
        assert_eq!(spilled.len(), 257);
        assert_eq!(spilled.bytes(), 257 * PACKED_ENTRY_BYTES as u64);

        let OocList::Continuous(v) = &mut spilled else {
            panic!("kind preserved")
        };
        let mut buf = Vec::new();
        let mut back: Vec<ContEntry> = Vec::new();
        let mut chunks = v.chunks(100).unwrap();
        let mut sizes = Vec::new();
        loop {
            let n = chunks.next_into(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            sizes.push(n);
            back.extend_from_slice(&buf);
        }
        assert_eq!(sizes, vec![100, 100, 57]);
        assert_eq!(back, entries);
        assert_eq!(store.stats().bytes_read(), 257 * PACKED_ENTRY_BYTES as u64);
        spilled.remove().unwrap();
        store.destroy().unwrap();
    }

    #[test]
    fn create_by_kind_and_sequence_names() {
        let mut store = OocAttrStore::new(&tmp("kinds")).unwrap();
        let a = store.create(AttrKind::Continuous).unwrap();
        let b = store
            .create(AttrKind::Categorical { cardinality: 4 })
            .unwrap();
        assert!(matches!(a, OocList::Continuous(_)));
        assert!(matches!(b, OocList::Categorical(_)));
        assert!(a.is_empty() && b.is_empty());
        a.remove().unwrap();
        b.remove().unwrap();
        store.destroy().unwrap();
    }
}
