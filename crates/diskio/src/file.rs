//! File-backed vectors of fixed-size records with buffered sequential I/O.

use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::record::Record;
use crate::stats::IoStats;

/// An append-only, file-backed vector of `T` records.
///
/// Writes are buffered; reading is a buffered sequential scan
/// ([`DiskVec::iter`]). All traffic is accounted in the shared [`IoStats`].
pub struct DiskVec<T: Record> {
    path: PathBuf,
    len: usize,
    writer: Option<BufWriter<File>>,
    stats: Arc<IoStats>,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Record> DiskVec<T> {
    /// Create (truncating) a vector backed by `path`.
    pub fn create(path: &Path, stats: Arc<IoStats>) -> std::io::Result<Self> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(DiskVec {
            path: path.to_path_buf(),
            len: 0,
            writer: Some(BufWriter::new(file)),
            stats,
            _marker: std::marker::PhantomData,
        })
    }

    /// Number of records appended.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no records were appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Payload bytes on disk.
    pub fn bytes(&self) -> u64 {
        (self.len * T::SIZE) as u64
    }

    /// Backing path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record.
    pub fn push(&mut self, value: &T) -> std::io::Result<()> {
        let w = self
            .writer
            .as_mut()
            .expect("DiskVec already sealed for reading");
        let mut buf = [0u8; 64];
        assert!(T::SIZE <= 64, "record too large for the stack buffer");
        value.write(&mut buf[..T::SIZE]);
        w.write_all(&buf[..T::SIZE])?;
        self.len += 1;
        self.stats.add_written(T::SIZE as u64);
        Ok(())
    }

    /// Flush buffered writes; further `push` calls remain allowed.
    pub fn flush(&mut self) -> std::io::Result<()> {
        if let Some(w) = self.writer.as_mut() {
            w.flush()?;
        }
        Ok(())
    }

    /// Bulk-append a slice of records (one stats update for the whole
    /// batch; the encoding still goes through the buffered writer).
    pub fn extend_from_slice(&mut self, items: &[T]) -> std::io::Result<()> {
        let w = self
            .writer
            .as_mut()
            .expect("DiskVec already sealed for reading");
        let mut buf = [0u8; 64];
        assert!(T::SIZE <= 64, "record too large for the stack buffer");
        for v in items {
            v.write(&mut buf[..T::SIZE]);
            w.write_all(&buf[..T::SIZE])?;
        }
        self.len += items.len();
        self.stats.add_written((items.len() * T::SIZE) as u64);
        Ok(())
    }

    /// Finish writing and return a sequential reader over the records.
    /// Counts one read pass in the stats.
    pub fn iter(&mut self) -> std::io::Result<DiskIter<'_, T>> {
        self.flush()?;
        self.stats.add_pass();
        let mut file = File::open(&self.path)?;
        file.seek(SeekFrom::Start(0))?;
        Ok(DiskIter {
            reader: BufReader::with_capacity(1 << 16, file),
            remaining: self.len,
            stats: &self.stats,
            _marker: std::marker::PhantomData,
        })
    }

    /// Finish writing and return a chunked sequential reader that fills a
    /// caller-owned buffer with up to `chunk` records per call — the
    /// out-of-core streaming primitive: resident memory is one chunk, not
    /// the list. Counts one read pass in the stats.
    pub fn chunks(&mut self, chunk: usize) -> std::io::Result<DiskChunks<'_, T>> {
        assert!(chunk > 0, "chunk must be positive");
        self.flush()?;
        self.stats.add_pass();
        let mut file = File::open(&self.path)?;
        file.seek(SeekFrom::Start(0))?;
        Ok(DiskChunks {
            reader: BufReader::with_capacity(1 << 16, file),
            remaining: self.len,
            chunk,
            bytes: Vec::new(),
            stats: &self.stats,
            _marker: std::marker::PhantomData,
        })
    }

    /// Delete the backing file (consumes the vector).
    pub fn remove(mut self) -> std::io::Result<()> {
        self.writer = None;
        std::fs::remove_file(&self.path)
    }
}

/// Buffered sequential reader over a [`DiskVec`].
pub struct DiskIter<'a, T: Record> {
    reader: BufReader<File>,
    remaining: usize,
    stats: &'a Arc<IoStats>,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Record> Iterator for DiskIter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        if self.remaining == 0 {
            return None;
        }
        let mut buf = [0u8; 64];
        self.reader
            .read_exact(&mut buf[..T::SIZE])
            .expect("disk list truncated");
        self.remaining -= 1;
        self.stats.add_read(T::SIZE as u64);
        Some(T::read(&buf[..T::SIZE]))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

/// Chunked sequential reader over a [`DiskVec`]: decodes up to `chunk`
/// records per [`DiskChunks::next_into`] call into a reusable buffer.
pub struct DiskChunks<'a, T: Record> {
    reader: BufReader<File>,
    remaining: usize,
    chunk: usize,
    bytes: Vec<u8>,
    stats: &'a Arc<IoStats>,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Record> DiskChunks<'_, T> {
    /// Fill `buf` (cleared first) with the next chunk. Returns the number
    /// of records read; `0` means the list is exhausted.
    pub fn next_into(&mut self, buf: &mut Vec<T>) -> std::io::Result<usize> {
        buf.clear();
        let n = self.chunk.min(self.remaining);
        if n == 0 {
            return Ok(0);
        }
        self.bytes.resize(n * T::SIZE, 0);
        self.reader.read_exact(&mut self.bytes)?;
        buf.reserve(n);
        for rec in self.bytes.chunks_exact(T::SIZE) {
            buf.push(T::read(rec));
        }
        self.remaining -= n;
        self.stats.add_read((n * T::SIZE) as u64);
        Ok(n)
    }

    /// Records not yet read.
    pub fn remaining(&self) -> usize {
        self.remaining
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtree::list::ContEntry;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join("scalparc-diskio-test").join(name)
    }

    #[test]
    fn push_iter_roundtrip() {
        let stats = IoStats::new();
        let path = tmp("roundtrip.bin");
        let mut v = DiskVec::<ContEntry>::create(&path, Arc::clone(&stats)).unwrap();
        let entries: Vec<ContEntry> = (0..100)
            .map(|i| ContEntry {
                value: i as f32 / 2.0,
                rid: i,
                class: (i % 2) as u16,
            })
            .collect();
        for e in &entries {
            v.push(e).unwrap();
        }
        assert_eq!(v.len(), 100);
        assert_eq!(v.bytes(), 1000);
        let back: Vec<ContEntry> = v.iter().unwrap().collect();
        assert_eq!(back, entries);
        assert_eq!(stats.bytes_written(), 1000);
        assert_eq!(stats.bytes_read(), 1000);
        assert_eq!(stats.read_passes(), 1);
        v.remove().unwrap();
    }

    #[test]
    fn multiple_passes_are_counted() {
        let stats = IoStats::new();
        let path = tmp("passes.bin");
        let mut v = DiskVec::<ContEntry>::create(&path, Arc::clone(&stats)).unwrap();
        for i in 0..10 {
            v.push(&ContEntry {
                value: i as f32,
                rid: i,
                class: 0,
            })
            .unwrap();
        }
        for _ in 0..3 {
            assert_eq!(v.iter().unwrap().count(), 10);
        }
        assert_eq!(stats.read_passes(), 3);
        assert_eq!(stats.bytes_read(), 3 * 100);
        v.remove().unwrap();
    }

    #[test]
    fn empty_vec_iterates_nothing() {
        let stats = IoStats::new();
        let path = tmp("empty.bin");
        let mut v = DiskVec::<ContEntry>::create(&path, stats).unwrap();
        assert!(v.is_empty());
        assert_eq!(v.iter().unwrap().count(), 0);
        v.remove().unwrap();
    }
}
