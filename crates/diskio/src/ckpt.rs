//! Versioned, CRC-checked checkpoint files.
//!
//! The on-disk format is deliberately dumb — a fixed header followed by
//! tagged sections, everything little-endian:
//!
//! ```text
//! [magic  u32 = "SCPK"] [version u32 = 1] [section count u32]
//! section := [tag u32] [len u64] [payload: len bytes] [crc32 u32]
//! ```
//!
//! Each section's CRC-32 covers tag, length, and payload, so a torn or
//! bit-flipped file is *detected* (a structured [`CkptError`]), never
//! silently deserialized. Writers are atomic: payload goes to a `.tmp`
//! sibling which is fsynced and renamed into place, so a crash mid-write
//! leaves either the old file or the new one, never a hybrid. Values are
//! encoded via [`ByteWriter`]/[`ByteReader`] (floats as raw bits, so a
//! save→load→save cycle is byte-identical).

use std::fs::{self, File};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// `"SCPK"` in little-endian byte order.
pub const MAGIC: u32 = u32::from_le_bytes(*b"SCPK");
/// Current format version.
pub const VERSION: u32 = 1;

/// Why a checkpoint file could not be read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CkptError {
    /// The offending file.
    pub path: PathBuf,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "checkpoint {}: {}", self.path.display(), self.msg)
    }
}

impl std::error::Error for CkptError {}

fn err(path: &Path, msg: impl Into<String>) -> CkptError {
    CkptError {
        path: path.to_path_buf(),
        msg: msg.into(),
    }
}

/// CRC-32 (IEEE 802.3, reflected), bitwise — checkpoint I/O is not a hot
/// path and a table-free implementation keeps the crate std-only and small.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = 0u32.wrapping_sub(crc & 1);
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// Write `sections` (tag, payload) as one checkpoint file, atomically:
/// the bytes land in `<path>.tmp`, are fsynced, and renamed over `path`.
pub fn write_sections(path: &Path, sections: &[(u32, &[u8])]) -> Result<(), CkptError> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir).map_err(|e| err(path, format!("create dir: {e}")))?;
    }
    let mut buf = Vec::new();
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    for &(tag, payload) in sections {
        let start = buf.len();
        buf.extend_from_slice(&tag.to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        buf.extend_from_slice(payload);
        let crc = crc32(&buf[start..]);
        buf.extend_from_slice(&crc.to_le_bytes());
    }
    let tmp = tmp_path(path);
    {
        let mut f = File::create(&tmp).map_err(|e| err(&tmp, format!("create: {e}")))?;
        f.write_all(&buf)
            .map_err(|e| err(&tmp, format!("write: {e}")))?;
        f.sync_all().map_err(|e| err(&tmp, format!("fsync: {e}")))?;
    }
    fs::rename(&tmp, path).map_err(|e| err(path, format!("rename into place: {e}")))
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Read a checkpoint file back into its `(tag, payload)` sections,
/// verifying magic, version, and every section CRC.
pub fn read_sections(path: &Path) -> Result<Vec<(u32, Vec<u8>)>, CkptError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| err(path, format!("read: {e}")))?;
    let mut r = ByteReader::new(&bytes);
    let magic = r.u32().map_err(|e| err(path, e))?;
    if magic != MAGIC {
        return Err(err(path, format!("bad magic {magic:#010x}")));
    }
    let version = r.u32().map_err(|e| err(path, e))?;
    if version != VERSION {
        return Err(err(path, format!("unsupported version {version}")));
    }
    let count = r.u32().map_err(|e| err(path, e))? as usize;
    let mut sections = Vec::with_capacity(count);
    for i in 0..count {
        let start = r.pos;
        let tag = r.u32().map_err(|e| err(path, e))?;
        let len = r.u64().map_err(|e| err(path, e))? as usize;
        let payload = r
            .bytes(len)
            .map_err(|e| err(path, format!("section {i}: {e}")))?
            .to_vec();
        let stored = r.u32().map_err(|e| err(path, e))?;
        let computed = crc32(&bytes[start..start + 4 + 8 + len]);
        if stored != computed {
            return Err(err(
                path,
                format!("section {i} (tag {tag}): CRC mismatch (stored {stored:#010x}, computed {computed:#010x})"),
            ));
        }
        sections.push((tag, payload));
    }
    if r.pos != bytes.len() {
        return Err(err(
            path,
            format!("{} trailing bytes after last section", bytes.len() - r.pos),
        ));
    }
    Ok(sections)
}

/// One section of a tolerant read: either an intact payload or a typed
/// damage note. See [`read_sections_tolerant`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SectionRead {
    /// CRC verified; the payload is intact.
    Ok {
        /// The section tag.
        tag: u32,
        /// The verified payload bytes.
        payload: Vec<u8>,
    },
    /// The section is damaged — CRC mismatch, or lost to a truncation.
    Corrupt {
        /// The declared tag, when the section header was still readable
        /// (`None` once a truncation has eaten the header itself).
        tag: Option<u32>,
        /// What was wrong.
        msg: String,
    },
}

/// Read a checkpoint file section by section, **isolating damage**: a
/// section whose CRC fails is reported as [`SectionRead::Corrupt`] and the
/// walk continues at the next section (the length field still locates it
/// when only payload bytes flipped), so one damaged section never hides
/// its intact neighbours. A truncation mid-file marks the current and
/// every remaining declared section `Corrupt` — their bytes are gone.
///
/// Only header-level failures (unreadable file, bad magic, unsupported
/// version) are an `Err`: past the header there is always a per-section
/// verdict. A flipped bit in a *length* field desynchronizes the walk, but
/// every subsequent pseudo-section then fails its CRC too — damage is
/// always detected, never silently decoded. Trailing bytes after the last
/// declared section are ignored.
pub fn read_sections_tolerant(path: &Path) -> Result<Vec<SectionRead>, CkptError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| err(path, format!("read: {e}")))?;
    let mut r = ByteReader::new(&bytes);
    let magic = r.u32().map_err(|e| err(path, e))?;
    if magic != MAGIC {
        return Err(err(path, format!("bad magic {magic:#010x}")));
    }
    let version = r.u32().map_err(|e| err(path, e))?;
    if version != VERSION {
        return Err(err(path, format!("unsupported version {version}")));
    }
    let count = r.u32().map_err(|e| err(path, e))? as usize;
    let mut sections = Vec::with_capacity(count);
    for i in 0..count {
        let start = r.pos;
        let header = (|| -> Result<(u32, usize), String> {
            let tag = r.u32()?;
            let len = r.u64()? as usize;
            Ok((tag, len))
        })();
        let (tag, len) = match header {
            Ok(h) => h,
            Err(e) => {
                // The header itself is truncated: this section and every
                // later one are gone.
                for j in i..count {
                    sections.push(SectionRead::Corrupt {
                        tag: None,
                        msg: if j == i {
                            format!("section {j}: {e}")
                        } else {
                            format!("section {j}: lost to earlier truncation")
                        },
                    });
                }
                return Ok(sections);
            }
        };
        match r.bytes(len).and_then(|_| {
            let stored = r.u32()?;
            Ok(stored)
        }) {
            Ok(stored) => {
                let computed = crc32(&bytes[start..start + 4 + 8 + len]);
                if stored == computed {
                    sections.push(SectionRead::Ok {
                        tag,
                        payload: bytes[start + 12..start + 12 + len].to_vec(),
                    });
                } else {
                    sections.push(SectionRead::Corrupt {
                        tag: Some(tag),
                        msg: format!(
                            "section {i} (tag {tag}): CRC mismatch (stored {stored:#010x}, computed {computed:#010x})"
                        ),
                    });
                }
            }
            Err(e) => {
                // Payload or CRC truncated: nothing after it is locatable.
                for j in i..count {
                    sections.push(SectionRead::Corrupt {
                        tag: if j == i { Some(tag) } else { None },
                        msg: if j == i {
                            format!("section {j} (tag {tag}): {e}")
                        } else {
                            format!("section {j}: lost to earlier truncation")
                        },
                    });
                }
                return Ok(sections);
            }
        }
    }
    Ok(sections)
}

// ----- deterministic damage (fault injection) ------------------------------
//
// Chaos harnesses need to damage checkpoint files the way real storage
// does, repeatably. These primitives bypass the atomic-write path on
// purpose: they model corruption *after* a successful commit (bit rot, a
// torn flush the rename already acknowledged, a lost file), which is
// exactly what the CRC layer above exists to detect.

/// Drop the trailing quarter of the file (at least one byte): the classic
/// torn write. `read_sections` reports truncation or a CRC mismatch.
pub fn damage_truncate_tail(path: &Path) -> Result<(), CkptError> {
    let bytes = fs::read(path).map_err(|e| err(path, format!("read: {e}")))?;
    let keep = bytes.len().saturating_sub((bytes.len() / 4).max(1));
    fs::write(path, &bytes[..keep]).map_err(|e| err(path, format!("write: {e}")))
}

/// Flip one bit in the middle of the file: silent media corruption.
/// `read_sections` reports a CRC mismatch (or bad magic, for tiny files).
pub fn damage_flip_bit(path: &Path) -> Result<(), CkptError> {
    let mut bytes = fs::read(path).map_err(|e| err(path, format!("read: {e}")))?;
    if bytes.is_empty() {
        return Ok(());
    }
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    fs::write(path, &bytes).map_err(|e| err(path, format!("write: {e}")))
}

/// Remove the file entirely (lost volume, operator error). Missing files
/// are already an error from `read_sections`.
pub fn damage_remove(path: &Path) -> Result<(), CkptError> {
    fs::remove_file(path).map_err(|e| err(path, format!("remove: {e}")))
}

/// Little-endian value encoder for checkpoint payloads.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Floats are stored as raw bits: save→load→save is byte-identical,
    /// NaN payloads and signed zeros included.
    pub fn f32_bits(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Little-endian value decoder; every accessor is bounds-checked and
/// returns a message (not a panic) on truncation.
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(bytes: &'a [u8]) -> ByteReader<'a> {
        ByteReader { bytes, pos: 0 }
    }

    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.bytes.len() - self.pos < n {
            return Err(format!(
                "truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.bytes.len() - self.pos
            ));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.bytes(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    pub fn f32_bits(&mut self) -> Result<f32, String> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// True when every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("scalparc-ckpt-{name}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip_preserves_sections_bytewise() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("a.bin");
        let s1: &[u8] = b"hello";
        let s2: &[u8] = &[0u8, 255, 7];
        write_sections(&path, &[(1, s1), (9, s2), (2, b"")]).unwrap();
        let back = read_sections(&path).unwrap();
        assert_eq!(
            back,
            vec![(1, s1.to_vec()), (9, s2.to_vec()), (2, Vec::new())]
        );
        // Writing the same sections again produces the identical file.
        let bytes1 = fs::read(&path).unwrap();
        write_sections(&path, &[(1, s1), (9, s2), (2, b"")]).unwrap();
        assert_eq!(bytes1, fs::read(&path).unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_is_detected() {
        let dir = tmp_dir("corrupt");
        let path = dir.join("a.bin");
        write_sections(&path, &[(1, b"payload-bytes")]).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // Flip one payload bit.
        let n = bytes.len();
        bytes[n - 8] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let e = read_sections(&path).unwrap_err();
        assert!(e.msg.contains("CRC mismatch"), "{e}");
        // Truncation is detected too.
        fs::write(&path, &bytes[..n - 2]).unwrap();
        assert!(read_sections(&path).is_err());
        // Wrong magic.
        fs::write(&path, b"XXXXYYYYZZZZ").unwrap();
        let e = read_sections(&path).unwrap_err();
        assert!(e.msg.contains("bad magic"), "{e}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damage_primitives_defeat_reads_detectably() {
        let dir = tmp_dir("damage");
        let payload = vec![0xabu8; 256];
        for (name, damage) in [
            (
                "torn",
                damage_truncate_tail as fn(&Path) -> Result<(), CkptError>,
            ),
            ("flip", damage_flip_bit),
            ("gone", damage_remove),
        ] {
            let path = dir.join(format!("{name}.bin"));
            write_sections(&path, &[(1, &payload)]).unwrap();
            assert!(read_sections(&path).is_ok());
            damage(&path).unwrap();
            assert!(
                read_sections(&path).is_err(),
                "{name}: damage must be detected, never silently decoded"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tolerant_read_isolates_a_flipped_payload_bit() {
        let dir = tmp_dir("tolerant-flip");
        let path = dir.join("a.bin");
        let big = vec![0x5au8; 200];
        write_sections(&path, &[(1, b"first"), (2, &big), (3, b"third")]).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // Flip a bit well inside section 2's payload: header(12) +
        // section1(4+8+5+4) + section2 header(12) + 50.
        let off = 12 + 21 + 12 + 50;
        bytes[off] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(read_sections(&path).is_err(), "strict read must fail");
        let back = read_sections_tolerant(&path).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(
            back[0],
            SectionRead::Ok {
                tag: 1,
                payload: b"first".to_vec()
            }
        );
        match &back[1] {
            SectionRead::Corrupt { tag: Some(2), msg } => {
                assert!(msg.contains("CRC mismatch"), "{msg}")
            }
            other => panic!("section 2 should be Corrupt: {other:?}"),
        }
        assert_eq!(
            back[2],
            SectionRead::Ok {
                tag: 3,
                payload: b"third".to_vec()
            },
            "damage must not hide the intact neighbour"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tolerant_read_marks_truncated_tail_sections() {
        let dir = tmp_dir("tolerant-trunc");
        let path = dir.join("a.bin");
        write_sections(&path, &[(7, b"keep-me-around"), (8, b"gone"), (9, b"also")]).unwrap();
        let bytes = fs::read(&path).unwrap();
        // Cut mid-way through section 8's payload.
        let keep = 12 + (4 + 8 + 14 + 4) + 12 + 2;
        fs::write(&path, &bytes[..keep]).unwrap();
        let back = read_sections_tolerant(&path).unwrap();
        assert_eq!(back.len(), 3);
        assert!(matches!(back[0], SectionRead::Ok { tag: 7, .. }));
        assert!(
            matches!(&back[1], SectionRead::Corrupt { tag: Some(8), .. }),
            "{:?}",
            back[1]
        );
        assert!(
            matches!(&back[2], SectionRead::Corrupt { tag: None, .. }),
            "{:?}",
            back[2]
        );
        // Header-level damage is still a hard error.
        fs::write(&path, b"XXXXYYYYZZZZ").unwrap();
        assert!(read_sections_tolerant(&path).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tolerant_read_matches_strict_on_intact_files() {
        let dir = tmp_dir("tolerant-clean");
        let path = dir.join("a.bin");
        write_sections(&path, &[(1, b"alpha"), (2, b"")]).unwrap();
        let strict = read_sections(&path).unwrap();
        let tolerant = read_sections_tolerant(&path).unwrap();
        let as_ok: Vec<(u32, Vec<u8>)> = tolerant
            .into_iter()
            .map(|s| match s {
                SectionRead::Ok { tag, payload } => (tag, payload),
                c => panic!("intact file read back corrupt: {c:?}"),
            })
            .collect();
        assert_eq!(as_ok, strict);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn byte_writer_reader_roundtrip() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 1);
        w.f32_bits(f32::NAN);
        w.f32_bits(-0.0);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert!(r.f32_bits().unwrap().is_nan());
        assert_eq!(r.f32_bits().unwrap().to_bits(), (-0.0f32).to_bits());
        assert!(r.is_done());
        assert!(r.u8().is_err(), "reads past the end are errors");
    }
}
