//! Per-rank memory accounting.
//!
//! Figure 3(b) of the paper plots *memory required per processor*. On the
//! simulator, operating-system metrics for one oversubscribed thread are
//! meaningless, so memory is accounted explicitly: every major data
//! structure (attribute lists, node table, communication buffers, count
//! matrices) registers its allocations with the rank-local [`MemTracker`],
//! which maintains current usage and the high-water mark, per category and
//! overall.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Usage counters for a single category.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CatUsage {
    /// Bytes currently allocated in this category.
    pub current: u64,
    /// High-water mark for this category.
    pub peak: u64,
}

#[derive(Default)]
struct Inner {
    current: u64,
    peak: u64,
    cats: BTreeMap<&'static str, CatUsage>,
}

/// Byte-exact memory tracker for one virtual processor.
///
/// All methods take `&self`; the tracker is internally synchronized so it can
/// be shared with helper structures owned by the same rank.
#[derive(Default)]
pub struct MemTracker {
    inner: Mutex<Inner>,
}

impl MemTracker {
    /// Create an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an allocation of `bytes` in `category`.
    pub fn alloc(&self, category: &'static str, bytes: u64) {
        let mut g = self.inner.lock().unwrap();
        g.current += bytes;
        g.peak = g.peak.max(g.current);
        let c = g.cats.entry(category).or_default();
        c.current += bytes;
        c.peak = c.peak.max(c.current);
    }

    /// Record a release of `bytes` from `category`.
    ///
    /// # Panics
    /// Panics if more bytes are freed than are currently allocated — that is
    /// always an accounting bug in the caller.
    pub fn free(&self, category: &'static str, bytes: u64) {
        let mut g = self.inner.lock().unwrap();
        assert!(g.current >= bytes, "mem accounting underflow (total)");
        g.current -= bytes;
        let c = g
            .cats
            .get_mut(category)
            .unwrap_or_else(|| panic!("free from unknown category {category:?}"));
        assert!(
            c.current >= bytes,
            "mem accounting underflow in category {category:?}"
        );
        c.current -= bytes;
    }

    /// Record a transient allocation: `bytes` are allocated and immediately
    /// released, but the peak still observes them. Used by collectives for
    /// communication buffers whose lifetime is a single exchange.
    pub fn pulse(&self, category: &'static str, bytes: u64) {
        let mut g = self.inner.lock().unwrap();
        let cur = g.current;
        g.peak = g.peak.max(cur + bytes);
        let c = g.cats.entry(category).or_default();
        c.peak = c.peak.max(c.current + bytes);
    }

    /// Adjust a category to a new absolute size (convenience for structures
    /// that grow and shrink, e.g. attribute-list segments).
    pub fn set(&self, category: &'static str, bytes: u64) {
        let mut g = self.inner.lock().unwrap();
        let c = g.cats.entry(category).or_default();
        let old = c.current;
        c.current = bytes;
        c.peak = c.peak.max(bytes);
        let cur = g.current + bytes;
        // Apply the delta to the total, guarding underflow.
        let new_total = cur.checked_sub(old).expect("mem accounting underflow");
        g.current = new_total;
        g.peak = g.peak.max(new_total);
    }

    /// Bytes currently allocated across all categories.
    pub fn current(&self) -> u64 {
        self.inner.lock().unwrap().current
    }

    /// Overall high-water mark.
    pub fn peak(&self) -> u64 {
        self.inner.lock().unwrap().peak
    }

    /// Usage for one category (zero if never used).
    pub fn category(&self, category: &'static str) -> CatUsage {
        self.inner
            .lock()
            .unwrap()
            .cats
            .get(category)
            .copied()
            .unwrap_or_default()
    }

    /// Snapshot of all categories.
    pub fn categories(&self) -> Vec<(&'static str, CatUsage)> {
        self.inner
            .lock()
            .unwrap()
            .cats
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect()
    }
}

/// RAII guard that frees its bytes on drop. Handy for scoped buffers.
pub struct MemGuard<'a> {
    tracker: &'a MemTracker,
    category: &'static str,
    bytes: u64,
}

impl<'a> MemGuard<'a> {
    /// Allocate `bytes` in `category`, released when the guard drops.
    pub fn new(tracker: &'a MemTracker, category: &'static str, bytes: u64) -> Self {
        tracker.alloc(category, bytes);
        MemGuard {
            tracker,
            category,
            bytes,
        }
    }

    /// Grow the guarded allocation by `extra` bytes.
    pub fn grow(&mut self, extra: u64) {
        self.tracker.alloc(self.category, extra);
        self.bytes += extra;
    }
}

impl Drop for MemGuard<'_> {
    fn drop(&mut self) {
        self.tracker.free(self.category, self.bytes);
    }
}

/// Size in bytes of a slice's payload.
pub fn bytes_of<T>(slice: &[T]) -> u64 {
    std::mem::size_of_val(slice) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let t = MemTracker::new();
        t.alloc("a", 100);
        t.alloc("b", 50);
        assert_eq!(t.current(), 150);
        assert_eq!(t.peak(), 150);
        t.free("a", 100);
        assert_eq!(t.current(), 50);
        assert_eq!(t.peak(), 150);
        assert_eq!(t.category("a").peak, 100);
        assert_eq!(t.category("a").current, 0);
    }

    #[test]
    fn pulse_moves_peak_only() {
        let t = MemTracker::new();
        t.alloc("base", 10);
        t.pulse("comm", 1000);
        assert_eq!(t.current(), 10);
        assert_eq!(t.peak(), 1010);
        assert_eq!(t.category("comm").peak, 1000);
        assert_eq!(t.category("comm").current, 0);
    }

    #[test]
    fn set_adjusts_total() {
        let t = MemTracker::new();
        t.set("seg", 100);
        assert_eq!(t.current(), 100);
        t.set("seg", 40);
        assert_eq!(t.current(), 40);
        t.set("seg", 90);
        assert_eq!(t.peak(), 100);
        assert_eq!(t.current(), 90);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn overfree_panics() {
        let t = MemTracker::new();
        t.alloc("a", 10);
        t.free("a", 11);
    }

    #[test]
    fn guard_frees_on_drop() {
        let t = MemTracker::new();
        {
            let mut g = MemGuard::new(&t, "buf", 64);
            g.grow(36);
            assert_eq!(t.current(), 100);
        }
        assert_eq!(t.current(), 0);
        assert_eq!(t.peak(), 100);
    }

    #[test]
    fn bytes_of_slices() {
        assert_eq!(bytes_of(&[0u32; 8]), 32);
        assert_eq!(bytes_of::<u64>(&[]), 0);
    }
}
