//! Deterministic fault injection for the simulated machine.
//!
//! A [`FaultPlan`] is a *seeded, replayable* description of everything that
//! goes wrong during a run: fail-stop rank crashes, dropped or corrupted
//! collective messages (detected by CRC and recovered by retransmission),
//! and straggler slowdowns. The plan is pure data — injecting the same plan
//! into the same program yields the identical simulated clocks, identical
//! fault-event log, and identical results, run after run.
//!
//! # Where faults fire
//!
//! Faults are injected inside the [`Comm`](crate::Comm) collective skeleton,
//! keyed on the **collective sequence number**: every rank of an mpsim
//! machine calls every collective in the same order (the MPI contract), so
//! the per-rank sequence counter is in lockstep across ranks and every rank
//! observes a fault at the same point of the program. Point-to-point
//! send/recv does not advance the sequence and is not a fault site.
//!
//! * **Crash** ([`CrashSpec`]) — fail-stop of one rank at a collective
//!   entry, before any barrier. Because a silently-missing rank would
//!   deadlock the remaining ranks at the next barrier, the simulator models
//!   the *machine-level consequence* directly: all ranks unwind with a
//!   [`CrashSignal`] at the same collective, and
//!   [`try_run`](crate::try_run) reports which rank crashed plus the
//!   partial per-rank statistics of the aborted attempt (the wasted work a
//!   recovery layer must pay for).
//! * **Drop / corrupt** ([`CommFault`]) — a collective payload is lost or
//!   arrives with a bad checksum. Receivers CRC-verify payloads, so both
//!   faults are *detected*; recovery is a collective-wide retransmission
//!   whose extra cost (one retry, plus a timeout for a silent drop) is
//!   charged to every rank identically. Delivered data is the retransmitted
//!   — correct — copy, which is what keeps faulted runs bit-identical in
//!   their *results* while differing in cost and counters.
//! * **Straggler** ([`StragglerSpec`]) — one rank runs slow over a window
//!   of collectives: its time since the previous collective is inflated by
//!   a multiplier before it publishes its entry clock, so every peer waits
//!   for it under the usual max-sync rule.
//!
//! With [`MachineCfg::fault`](crate::MachineCfg::fault) set to `None` the
//! fault layer is strictly free: no checks beyond one `Option` test, no
//! charges, byte-for-byte identical simulated costs to a build without it.

use std::sync::Arc;

/// Where a crash fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashPoint {
    /// First collective entered after the program marked this tree level
    /// via [`Comm::mark_level`](crate::Comm::mark_level).
    Level(u32),
    /// The `n`-th collective of the run (1-based; level-independent —
    /// setup and presort collectives count too).
    CollSeq(u64),
}

/// Fail-stop crash of one rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashSpec {
    /// The rank that dies (reported in the [`CrashSignal`]; the machine
    /// aborts as a whole either way).
    pub rank: usize,
    /// When it dies.
    pub at: CrashPoint,
}

/// What happens to a collective payload in flight.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The payload never arrives; detected by timeout, recovered by a
    /// retransmission. Costs a timeout plus one retry of the collective.
    Drop,
    /// The payload arrives with a CRC mismatch; detected immediately,
    /// recovered by one retransmission. Costs one retry of the collective.
    Corrupt,
}

/// One dropped/corrupted collective message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommFault {
    /// Collective sequence number (1-based) the fault hits.
    pub at_seq: u64,
    /// Drop or corrupt.
    pub kind: FaultKind,
}

/// Straggler window: `rank` is slowed by `slowdown_milli / 1000` over
/// collectives `from_seq ..= to_seq`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StragglerSpec {
    /// The slow rank.
    pub rank: usize,
    /// First collective (1-based, inclusive) of the slow window.
    pub from_seq: u64,
    /// Last collective (inclusive) of the slow window.
    pub to_seq: u64,
    /// Slowdown multiplier in thousandths (`1500` = 1.5×). Values at or
    /// below `1000` mean "not slow" and charge nothing.
    pub slowdown_milli: u64,
}

impl StragglerSpec {
    /// Extra nanoseconds charged at a collective entry, given the virtual
    /// time this rank spent since its previous collective. Integer
    /// arithmetic on the virtual clock — deterministic by construction.
    pub fn extra_ns(&self, elapsed_ns: u64) -> u64 {
        let over = self.slowdown_milli.saturating_sub(1000);
        elapsed_ns.saturating_mul(over) / 1000
    }
}

/// What happens to a checkpoint file on stable storage.
///
/// Unlike message faults these are *silent*: the writer's commit succeeds
/// and nobody notices until a later restore CRC-verifies the file. The
/// restore path must therefore walk back generation by generation to the
/// newest intact snapshot rather than trusting the newest manifest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageFaultKind {
    /// The tail of the file is lost (power cut mid-flush after the commit
    /// was acknowledged): the file exists but fails CRC/decode.
    TornWrite,
    /// A single bit of the payload flips at rest; detected by CRC on read.
    BitFlip,
    /// The file vanishes entirely (operator error, lost volume).
    MissingFile,
}

/// One silent corruption of a rank's checkpoint file, keyed to the
/// **checkpoint sequence** — the 1-based count of checkpoint commits the
/// program has performed this attempt (level-synchronous programs commit
/// once per level, so sequence `n` is the `n`-th checkpointed level).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StorageFault {
    /// The rank whose file is damaged.
    pub rank: usize,
    /// Which checkpoint commit (1-based within the attempt) is hit.
    pub at_ckpt_seq: u64,
    /// How the file is damaged.
    pub kind: StorageFaultKind,
}

impl StorageFaultKind {
    /// Stable label for traces and metrics.
    pub fn label(self) -> &'static str {
        match self {
            StorageFaultKind::TornWrite => "ckpt_torn_write",
            StorageFaultKind::BitFlip => "ckpt_bit_flip",
            StorageFaultKind::MissingFile => "ckpt_missing_file",
        }
    }
}

/// A seeded, replayable fault schedule. See the module docs for semantics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Fail-stop crashes. The earliest matching spec fires (the machine
    /// dies with it, so at most one fires per attempt).
    pub crashes: Vec<CrashSpec>,
    /// Dropped/corrupted collective payloads, any order.
    pub comm_faults: Vec<CommFault>,
    /// Straggler windows, any order.
    pub stragglers: Vec<StragglerSpec>,
    /// Silent checkpoint-file corruptions, any order.
    pub storage_faults: Vec<StorageFault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing; still exercises the fault code path).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// This plan with a crash of `rank` at `at` added.
    pub fn with_crash(mut self, rank: usize, at: CrashPoint) -> FaultPlan {
        self.crashes.push(CrashSpec { rank, at });
        self
    }

    /// This plan with a drop/corrupt fault at collective `at_seq` added.
    pub fn with_comm_fault(mut self, at_seq: u64, kind: FaultKind) -> FaultPlan {
        self.comm_faults.push(CommFault { at_seq, kind });
        self
    }

    /// This plan with a straggler window added.
    pub fn with_straggler(
        mut self,
        rank: usize,
        from_seq: u64,
        to_seq: u64,
        slowdown_milli: u64,
    ) -> FaultPlan {
        self.stragglers.push(StragglerSpec {
            rank,
            from_seq,
            to_seq,
            slowdown_milli,
        });
        self
    }

    /// Seeded message-fault schedule: each of the first `horizon`
    /// collectives is independently hit with probability
    /// `rate_permille / 1000`, alternating deterministically between drop
    /// and corrupt. Same seed → same schedule, forever.
    pub fn random_comm(seed: u64, rate_permille: u64, horizon: u64) -> FaultPlan {
        let mut rng = SplitMix64::new(seed);
        let mut plan = FaultPlan::new();
        for seq in 1..=horizon {
            if rng.next() % 1000 < rate_permille {
                let kind = if rng.next().is_multiple_of(2) {
                    FaultKind::Drop
                } else {
                    FaultKind::Corrupt
                };
                plan.comm_faults.push(CommFault { at_seq: seq, kind });
            }
        }
        plan
    }

    /// This plan with a silent checkpoint corruption added: `rank`'s file
    /// from the `at_ckpt_seq`-th commit (1-based) is damaged as `kind`.
    pub fn with_storage_fault(
        mut self,
        rank: usize,
        at_ckpt_seq: u64,
        kind: StorageFaultKind,
    ) -> FaultPlan {
        self.storage_faults.push(StorageFault {
            rank,
            at_ckpt_seq,
            kind,
        });
        self
    }

    /// True when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.comm_faults.is_empty()
            && self.stragglers.is_empty()
            && self.storage_faults.is_empty()
    }

    /// This plan minus crash spec `idx` — what a recovery driver runs after
    /// that crash has fired (the failed rank has been replaced; the rest of
    /// the schedule still applies).
    pub fn without_crash(&self, idx: usize) -> FaultPlan {
        let mut plan = self.clone();
        if idx < plan.crashes.len() {
            plan.crashes.remove(idx);
        }
        plan
    }

    /// The earliest-indexed crash spec matching this collective, if any.
    /// All ranks evaluate this with identical `(seq, level)` arguments, so
    /// all agree.
    pub fn crash_at(&self, seq: u64, level: u32) -> Option<(usize, &CrashSpec)> {
        self.crashes.iter().enumerate().find(|(_, c)| match c.at {
            CrashPoint::CollSeq(s) => s == seq,
            CrashPoint::Level(l) => level == l,
        })
    }

    /// The message fault hitting collective `seq`, if any.
    pub fn comm_fault_at(&self, seq: u64) -> Option<&CommFault> {
        self.comm_faults.iter().find(|f| f.at_seq == seq)
    }

    /// The storage fault hitting `rank`'s file of checkpoint commit
    /// `ckpt_seq` (1-based within the attempt), if any.
    pub fn storage_fault_at(&self, rank: usize, ckpt_seq: u64) -> Option<&StorageFault> {
        self.storage_faults
            .iter()
            .find(|f| f.rank == rank && f.at_ckpt_seq == ckpt_seq)
    }

    /// Extra straggler nanoseconds for `rank` at collective `seq`, given
    /// the virtual time elapsed since its previous collective.
    pub fn straggler_extra(&self, rank: usize, seq: u64, elapsed_ns: u64) -> u64 {
        self.stragglers
            .iter()
            .filter(|s| s.rank == rank && (s.from_seq..=s.to_seq).contains(&seq))
            .map(|s| s.extra_ns(elapsed_ns))
            .sum()
    }

    /// CRC-32 fingerprint of the plan (order-sensitive), so logs and
    /// metrics can name the exact schedule a run used.
    pub fn fingerprint(&self) -> u32 {
        let mut bytes = Vec::new();
        for c in &self.crashes {
            bytes.extend_from_slice(&(c.rank as u64).to_le_bytes());
            match c.at {
                CrashPoint::Level(l) => {
                    bytes.push(0);
                    bytes.extend_from_slice(&u64::from(l).to_le_bytes());
                }
                CrashPoint::CollSeq(s) => {
                    bytes.push(1);
                    bytes.extend_from_slice(&s.to_le_bytes());
                }
            }
        }
        for f in &self.comm_faults {
            bytes.extend_from_slice(&f.at_seq.to_le_bytes());
            bytes.push(match f.kind {
                FaultKind::Drop => 2,
                FaultKind::Corrupt => 3,
            });
        }
        for s in &self.stragglers {
            bytes.extend_from_slice(&(s.rank as u64).to_le_bytes());
            bytes.extend_from_slice(&s.from_seq.to_le_bytes());
            bytes.extend_from_slice(&s.to_seq.to_le_bytes());
            bytes.extend_from_slice(&s.slowdown_milli.to_le_bytes());
        }
        for f in &self.storage_faults {
            bytes.extend_from_slice(&(f.rank as u64).to_le_bytes());
            bytes.extend_from_slice(&f.at_ckpt_seq.to_le_bytes());
            bytes.push(match f.kind {
                StorageFaultKind::TornWrite => 4,
                StorageFaultKind::BitFlip => 5,
                StorageFaultKind::MissingFile => 6,
            });
        }
        crc32(&bytes)
    }
}

/// The panic payload carried by a machine-level crash. Raised on every rank
/// at the same collective (see the module docs for why) and caught by
/// [`try_run`](crate::try_run).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashSignal {
    /// The rank the plan killed.
    pub rank: usize,
    /// Collective sequence number at which it died.
    pub coll_seq: u64,
    /// Name of the collective it died entering.
    pub coll: &'static str,
    /// Tree level the program had marked (`u32::MAX` before the first
    /// [`Comm::mark_level`](crate::Comm::mark_level) call).
    pub level: u32,
    /// Index of the firing spec in [`FaultPlan::crashes`].
    pub spec: usize,
}

/// A machine run aborted by an injected crash: which rank died where, plus
/// the partial per-rank statistics of the aborted attempt (the work and
/// communication a recovery layer re-pays).
#[derive(Debug)]
pub struct Crash {
    /// The crash that fired.
    pub signal: CrashSignal,
    /// Per-rank statistics accumulated up to the crash point.
    pub stats: crate::RunStats,
}

/// A plan behind an `Arc` so the machine config stays cheaply cloneable.
pub type FaultPlanRef = Arc<FaultPlan>;

/// CRC-32 (IEEE 802.3, reflected), bitwise — small and table-free; fault
/// detection and plan fingerprinting are far off any hot path.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = 0u32.wrapping_sub(crc & 1);
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// SplitMix64: tiny, seedable, and stable across platforms — all the plan
/// generator needs.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_comm_is_replayable() {
        let a = FaultPlan::random_comm(42, 100, 500);
        let b = FaultPlan::random_comm(42, 100, 500);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = FaultPlan::random_comm(43, 100, 500);
        assert_ne!(a, c, "different seeds must differ");
        // Rate 100/1000 over 500 collectives: roughly 50 faults.
        assert!(a.comm_faults.len() > 20 && a.comm_faults.len() < 100);
        // Zero rate injects nothing.
        assert!(FaultPlan::random_comm(1, 0, 500).is_empty());
    }

    #[test]
    fn crash_matching() {
        let plan = FaultPlan::new()
            .with_crash(2, CrashPoint::Level(3))
            .with_crash(0, CrashPoint::CollSeq(7));
        assert_eq!(plan.crash_at(7, u32::MAX).unwrap().0, 1);
        assert_eq!(plan.crash_at(1, 3).unwrap().1.rank, 2);
        assert!(plan.crash_at(1, 0).is_none());
        let without = plan.without_crash(0);
        assert!(without.crash_at(1, 3).is_none());
        assert!(without.crash_at(7, u32::MAX).is_some());
    }

    #[test]
    fn straggler_extra_is_proportional() {
        let s = StragglerSpec {
            rank: 1,
            from_seq: 1,
            to_seq: 10,
            slowdown_milli: 1500,
        };
        assert_eq!(s.extra_ns(1000), 500);
        assert_eq!(s.extra_ns(0), 0);
        // Multiplier ≤ 1× charges nothing.
        let none = StragglerSpec {
            slowdown_milli: 1000,
            ..s
        };
        assert_eq!(none.extra_ns(1000), 0);
        let plan = FaultPlan::new().with_straggler(1, 5, 8, 2000);
        assert_eq!(plan.straggler_extra(1, 6, 100), 100);
        assert_eq!(plan.straggler_extra(1, 9, 100), 0, "outside window");
        assert_eq!(plan.straggler_extra(0, 6, 100), 0, "other rank");
    }

    #[test]
    fn storage_fault_matching() {
        let plan = FaultPlan::new()
            .with_storage_fault(1, 2, StorageFaultKind::BitFlip)
            .with_storage_fault(0, 3, StorageFaultKind::TornWrite);
        assert!(!plan.is_empty());
        assert_eq!(
            plan.storage_fault_at(1, 2).unwrap().kind,
            StorageFaultKind::BitFlip
        );
        assert!(plan.storage_fault_at(1, 3).is_none(), "wrong seq");
        assert!(plan.storage_fault_at(2, 2).is_none(), "wrong rank");
        // Fingerprint distinguishes storage schedules.
        assert_ne!(plan.fingerprint(), FaultPlan::new().fingerprint());
        assert_ne!(
            plan.fingerprint(),
            FaultPlan::new()
                .with_storage_fault(1, 2, StorageFaultKind::MissingFile)
                .with_storage_fault(0, 3, StorageFaultKind::TornWrite)
                .fingerprint()
        );
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard check value of CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
