//! Per-rank simulated clock.
//!
//! A rank's simulated time advances from two sources: measured computation
//! (wall time while the rank holds a compute token, see [`crate::machine`])
//! and modelled communication (costs from [`crate::cost::CostModel`]).
//! Collectives synchronize clocks across ranks to `max + cost`, reproducing
//! the bulk-synchronous structure of the algorithm.

use std::time::Instant;

/// How computation time is charged to the simulated clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TimingMode {
    /// Computation time is not measured; only explicit
    /// [`SimClock::charge_compute`] calls and communication costs advance
    /// the clock. Fastest mode; used by correctness tests, where the ranks
    /// may oversubscribe the host freely.
    #[default]
    Free,
    /// Computation segments run while holding the machine's single *compute
    /// token* and their wall time is charged to the simulated clock. The
    /// token — together with token-guarded collective copy phases — makes
    /// measured segments run exclusively, so wall time is an honest
    /// single-processor measurement even with 128 virtual processors
    /// oversubscribing a 2-core host. (Per-thread CPU clocks would be the
    /// natural tool, but they tick at jiffy granularity on some kernels,
    /// far too coarse for millisecond segments.) Used by the benchmark
    /// harnesses.
    Measured,
}

/// Simulated clock for one virtual processor.
#[derive(Debug)]
pub struct SimClock {
    mode: TimingMode,
    clock_ns: u64,
    compute_ns: u64,
    comm_ns: u64,
    timer: Option<Instant>,
    /// Durations of completed measured segments, in order.
    segments: Vec<u64>,
    /// When set, measured segments charge these recorded durations instead
    /// of the live measurement (deterministic replay; see
    /// [`crate::machine::MachineCfg::replay`]).
    replay: Option<std::sync::Arc<Vec<u64>>>,
}

impl SimClock {
    /// New clock at time zero.
    pub fn new(mode: TimingMode) -> Self {
        SimClock {
            mode,
            clock_ns: 0,
            compute_ns: 0,
            comm_ns: 0,
            timer: None,
            segments: Vec::new(),
            replay: None,
        }
    }

    /// Replace live measurement with recorded segment durations.
    pub fn set_replay(&mut self, durations: std::sync::Arc<Vec<u64>>) {
        self.replay = Some(durations);
    }

    /// Durations of the measured segments completed so far (drained by the
    /// machine when collecting statistics).
    pub fn take_segments(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.segments)
    }

    /// The configured timing mode.
    pub fn mode(&self) -> TimingMode {
        self.mode
    }

    /// Begin a measured compute segment (no-op in [`TimingMode::Free`]).
    pub fn start_compute(&mut self) {
        if self.mode == TimingMode::Measured {
            debug_assert!(self.timer.is_none(), "compute segment already open");
            self.timer = Some(Instant::now());
        }
    }

    /// End the current compute segment, charging its wall time (or the
    /// recorded duration when replaying).
    pub fn stop_compute(&mut self) {
        if let Some(t0) = self.timer.take() {
            let measured = t0.elapsed().as_nanos() as u64;
            let dt = match &self.replay {
                Some(r) => r.get(self.segments.len()).copied().unwrap_or(measured),
                None => measured,
            };
            self.segments.push(dt);
            self.clock_ns += dt;
            self.compute_ns += dt;
        }
    }

    /// Explicitly charge `ns` of computation (any mode). Lets workloads with
    /// an analytic work model drive the clock deterministically.
    pub fn charge_compute(&mut self, ns: u64) {
        self.clock_ns += ns;
        self.compute_ns += ns;
    }

    /// Charge `ns` of communication.
    pub fn charge_comm(&mut self, ns: u64) {
        self.clock_ns += ns;
        self.comm_ns += ns;
    }

    /// Synchronize to a collective exit time `sync_ns` (already including the
    /// collective's cost). Time spent waiting below `sync_ns` is accounted as
    /// communication.
    pub fn sync_to(&mut self, sync_ns: u64) {
        if sync_ns > self.clock_ns {
            self.comm_ns += sync_ns - self.clock_ns;
            self.clock_ns = sync_ns;
        }
    }

    /// Current simulated time, nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.clock_ns
    }

    /// Total computation charged so far.
    pub fn compute_ns(&self) -> u64 {
        self.compute_ns
    }

    /// Total communication (including synchronization waits) charged so far.
    pub fn comm_ns(&self) -> u64 {
        self.comm_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_mode_ignores_segments() {
        let mut c = SimClock::new(TimingMode::Free);
        c.start_compute();
        std::thread::sleep(std::time::Duration::from_millis(2));
        c.stop_compute();
        assert_eq!(c.now_ns(), 0);
    }

    #[test]
    fn measured_mode_charges_busy_time() {
        let mut c = SimClock::new(TimingMode::Measured);
        c.start_compute();
        // Busy work: CPU-time clocks ignore sleeps, so burn real cycles.
        let mut acc = 0u64;
        for i in 0..5_000_000u64 {
            acc = acc.wrapping_add(i ^ (i << 7));
        }
        std::hint::black_box(acc);
        c.stop_compute();
        assert!(c.now_ns() > 100_000, "got {}", c.now_ns());
        assert_eq!(c.now_ns(), c.compute_ns());
    }

    #[test]
    fn sync_accounts_wait_as_comm() {
        let mut c = SimClock::new(TimingMode::Free);
        c.charge_compute(100);
        c.sync_to(250);
        assert_eq!(c.now_ns(), 250);
        assert_eq!(c.compute_ns(), 100);
        assert_eq!(c.comm_ns(), 150);
        // Sync below current time is a no-op.
        c.sync_to(10);
        assert_eq!(c.now_ns(), 250);
    }

    #[test]
    fn explicit_charges_accumulate() {
        let mut c = SimClock::new(TimingMode::Free);
        c.charge_compute(40);
        c.charge_comm(60);
        assert_eq!(c.now_ns(), 100);
        assert_eq!(c.compute_ns(), 40);
        assert_eq!(c.comm_ns(), 60);
    }
}
