//! Linear communication cost model.
//!
//! The paper benchmarks the Cray T3D's tuned MPI "assuming a linear model of
//! communication" and reports (digits partially lost in the source text) a
//! point-to-point latency on the order of 100 µs with ~30 MB/s bandwidth, and
//! for the all-to-all collectives a latency linear in the processor count
//! (~25 µs per processor) with ~45 MB/s aggregate per-processor bandwidth.
//! The defaults below encode those T3D-like constants; every experiment
//! accepts a custom [`CostModel`], and the *shape* of the scalability curves
//! (who wins, where the deviation from ideal begins) is insensitive to the
//! exact constants.
//!
//! Costs are returned in nanoseconds of simulated time. Tree-structured
//! collectives (broadcast, reduce, scan) are charged `⌈log2 p⌉` point-to-point
//! steps, the standard model from Kumar et al., *Introduction to Parallel
//! Computing* — the reference the paper itself cites for these operations.

/// Parameters of the linear communication model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Point-to-point latency per message, nanoseconds.
    pub ptp_latency_ns: f64,
    /// Point-to-point bandwidth, bytes per second.
    pub ptp_bandwidth: f64,
    /// All-to-all personalized latency, nanoseconds *per processor*.
    pub a2a_latency_ns_per_proc: f64,
    /// All-to-all personalized per-processor bandwidth, bytes per second.
    pub a2a_bandwidth: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::t3d()
    }
}

impl CostModel {
    /// T3D-like constants (see module docs).
    pub fn t3d() -> Self {
        CostModel {
            ptp_latency_ns: 100_000.0,         // 100 µs
            ptp_bandwidth: 30.0e6,             // 30 MB/s
            a2a_latency_ns_per_proc: 25_000.0, // 25 µs per processor
            a2a_bandwidth: 45.0e6,             // 45 MB/s
        }
    }

    /// A model for a modern commodity cluster (for sensitivity studies):
    /// ~2 µs latency, ~10 GB/s links.
    pub fn modern_cluster() -> Self {
        CostModel {
            ptp_latency_ns: 2_000.0,
            ptp_bandwidth: 10.0e9,
            a2a_latency_ns_per_proc: 1_000.0,
            a2a_bandwidth: 8.0e9,
        }
    }

    /// T3D constants rescaled for a modern host CPU.
    ///
    /// The paper's compute runs on a 150 MHz Alpha EV4; this reproduction's
    /// compute runs on a ~2020s core that is roughly `factor` times faster
    /// on this workload. Dividing the communication constants by the same
    /// factor preserves the paper's computation-to-communication ratio —
    /// the quantity every scalability shape in Figure 3 depends on. The
    /// benchmark harnesses default to `factor = 64`.
    pub fn t3d_scaled(factor: f64) -> Self {
        assert!(factor > 0.0);
        let base = CostModel::t3d();
        CostModel {
            ptp_latency_ns: base.ptp_latency_ns / factor,
            ptp_bandwidth: base.ptp_bandwidth * factor,
            a2a_latency_ns_per_proc: base.a2a_latency_ns_per_proc / factor,
            a2a_bandwidth: base.a2a_bandwidth * factor,
        }
    }

    /// A zero-cost model: communication is free. Useful to isolate
    /// computation time in ablations.
    pub fn free() -> Self {
        CostModel {
            ptp_latency_ns: 0.0,
            ptp_bandwidth: f64::INFINITY,
            a2a_latency_ns_per_proc: 0.0,
            a2a_bandwidth: f64::INFINITY,
        }
    }

    #[inline]
    fn xfer_ns(bytes: u64, bandwidth: f64) -> f64 {
        if bandwidth.is_infinite() {
            0.0
        } else {
            bytes as f64 * 1e9 / bandwidth
        }
    }

    /// Cost of one point-to-point message of `bytes` payload.
    pub fn ptp(&self, bytes: u64) -> u64 {
        (self.ptp_latency_ns + Self::xfer_ns(bytes, self.ptp_bandwidth)) as u64
    }

    /// Cost of an all-to-all personalized exchange on `p` processors where
    /// the busiest processor sends/receives `max_bytes` in total.
    ///
    /// This is the operation at the heart of the parallel hashing paradigm;
    /// the paper notes it completes in `O(m)` time for `m` keys per processor
    /// provided `m = Ω(p)`.
    pub fn alltoall(&self, p: usize, max_bytes: u64) -> u64 {
        if p <= 1 {
            return 0;
        }
        (self.a2a_latency_ns_per_proc * p as f64 + Self::xfer_ns(max_bytes, self.a2a_bandwidth))
            as u64
    }

    /// Cost of a tree-structured collective (broadcast / reduce / scan) on
    /// `p` processors moving `bytes` per step.
    pub fn tree(&self, p: usize, bytes: u64) -> u64 {
        if p <= 1 {
            return 0;
        }
        let steps = usize::BITS - (p - 1).leading_zeros(); // ceil(log2 p)
        steps as u64 * self.ptp(bytes)
    }

    /// Cost of an allgather on `p` processors where each contributes
    /// `bytes_each` and every processor ends with `p * bytes_each`.
    ///
    /// Modelled as the standard recursive-doubling allgather:
    /// `α·log p + (p-1)·m/B`.
    pub fn allgather(&self, p: usize, bytes_each: u64) -> u64 {
        if p <= 1 {
            return 0;
        }
        let steps = usize::BITS - (p - 1).leading_zeros();
        (steps as f64 * self.ptp_latency_ns
            + Self::xfer_ns((p as u64 - 1) * bytes_each, self.ptp_bandwidth)) as u64
    }

    /// Cost of a barrier: one tree collective with empty payload.
    pub fn barrier(&self, p: usize) -> u64 {
        self.tree(p, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p1_is_free() {
        let m = CostModel::t3d();
        assert_eq!(m.alltoall(1, 1 << 20), 0);
        assert_eq!(m.tree(1, 1 << 20), 0);
        assert_eq!(m.allgather(1, 1 << 20), 0);
        assert_eq!(m.barrier(1), 0);
    }

    #[test]
    fn ptp_scales_linearly_in_bytes() {
        let m = CostModel::t3d();
        let small = m.ptp(1_000);
        let large = m.ptp(1_000_000);
        // Latency-dominated at 1 KB, bandwidth-dominated at 1 MB.
        assert!(large > 10 * small);
        // 1 MB at 30 MB/s is ~33 ms.
        assert!((large as f64 - 1e6 * 1e9 / 30e6 - 100_000.0).abs() < 1e3);
    }

    #[test]
    fn alltoall_latency_linear_in_p() {
        let m = CostModel::t3d();
        let c32 = m.alltoall(32, 0);
        let c64 = m.alltoall(64, 0);
        assert_eq!(c64, 2 * c32);
    }

    #[test]
    fn tree_cost_is_log_p() {
        let m = CostModel::t3d();
        assert_eq!(m.tree(2, 0), m.ptp(0));
        assert_eq!(m.tree(8, 0), 3 * m.ptp(0));
        assert_eq!(m.tree(9, 0), 4 * m.ptp(0));
        assert_eq!(m.tree(128, 0), 7 * m.ptp(0));
    }

    #[test]
    fn allgather_volume_grows_with_p() {
        let m = CostModel::t3d();
        // Fixed per-rank contribution: total received grows with p, so the
        // cost must grow roughly linearly in p for bandwidth-bound sizes.
        let c4 = m.allgather(4, 1 << 20);
        let c64 = m.allgather(64, 1 << 20);
        assert!(c64 > 10 * c4);
    }

    #[test]
    fn scaled_model_preserves_ratios() {
        let base = CostModel::t3d();
        let fast = CostModel::t3d_scaled(64.0);
        assert!((base.ptp(1 << 20) as f64 / fast.ptp(1 << 20) as f64 - 64.0).abs() < 1.0);
        assert!(
            (base.alltoall(32, 1 << 20) as f64 / fast.alltoall(32, 1 << 20) as f64 - 64.0).abs()
                < 1.0
        );
    }

    #[test]
    fn free_model_is_zero_everywhere() {
        let m = CostModel::free();
        assert_eq!(m.ptp(1 << 30), 0);
        assert_eq!(m.alltoall(128, 1 << 30), 0);
        assert_eq!(m.allgather(128, 1 << 30), 0);
    }
}
