//! `mpsim` — a deterministic message-passing machine simulator.
//!
//! ScalParC (Joshi, Karypis & Kumar, IPPS 1998) was evaluated on a Cray T3D
//! using MPI. This crate substitutes for that machine: it runs an SPMD
//! closure on `p` *virtual processors* (OS threads, possibly heavily
//! oversubscribed on the host) and gives each rank a [`Comm`] handle with the
//! collective operations the paper's algorithm needs — barrier, broadcast,
//! reduce, all-reduce, prefix scan, gather(v), allgather(v), all-to-all(v)
//! personalized communication, and point-to-point send/receive.
//!
//! # Timing model
//!
//! Simulated time per rank is the sum of
//!
//! * **computation time** — measured wall time of compute segments, which
//!   run exclusively (a single machine-wide *compute token*, with the
//!   collectives' host-side copy phases guarded by the same token), so the
//!   measurement is an honest single-processor time even when 128 virtual
//!   processors run on a 2-core host ([`TimingMode::Measured`]); and
//! * **communication time** — charged analytically by a [`CostModel`]
//!   mirroring the linear model the paper calibrates on the T3D
//!   (`t = α + m/B` point-to-point, `t = α_c · p + m/B_c` for all-to-all).
//!
//! Collectives synchronize rank clocks to `max(entry clocks) + cost`, which
//! models the bulk-synchronous per-level structure of ScalParC exactly.
//!
//! # Memory model
//!
//! Each rank carries a [`MemTracker`]. The algorithms register every major
//! data structure (attribute lists, node table, hash/enquiry buffers) and the
//! collectives account their transient communication buffers, so per-rank
//! peak memory — the quantity of the paper's Figure 3(b) — is exact byte
//! accounting rather than meaningless RSS of an oversubscribed process.
//!
//! # Correctness contract
//!
//! Every collective must be invoked by **all** ranks of the machine in the
//! same order (standard MPI semantics). Point-to-point operations may be
//! invoked by any subset. Violations deadlock or panic; they never produce
//! wrong data silently.

pub mod clock;
pub mod comm;
pub mod cost;
pub mod fault;
pub mod machine;
pub mod mem;
pub mod stats;

pub use comm::Comm;
pub use cost::CostModel;
pub use fault::{
    CommFault, Crash, CrashPoint, CrashSignal, CrashSpec, FaultKind, FaultPlan, StorageFault,
    StorageFaultKind, StragglerSpec,
};
pub use machine::{run, try_run, MachineCfg, RunResult, TimingMode};
pub use mem::MemTracker;
pub use stats::{RankStats, RunStats};

// Observability: `MachineCfg::trace` takes an [`obs::TraceConfig`]; traced
// runs populate `RankStats::trace` with an [`obs::RankTrace`]. Re-exported
// so downstream crates need no separate `obs` dependency for the common
// path.
pub use obs;
pub use obs::TraceConfig;

/// Convenience: run an SPMD closure on `p` ranks with default configuration
/// (free-running timing, default cost model). Intended for tests.
pub fn run_simple<T, F>(procs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    let cfg = MachineCfg::new(procs);
    run(&cfg, f).outputs
}
