//! Run statistics: simulated time, communication volume, and memory peaks
//! per rank, with aggregation helpers used by the benchmark harnesses.

use crate::mem::CatUsage;

/// Statistics for one virtual processor after the SPMD closure returned.
#[derive(Clone, Debug, Default)]
pub struct RankStats {
    /// Final simulated clock, nanoseconds.
    pub clock_ns: u64,
    /// Computation portion of the clock.
    pub compute_ns: u64,
    /// Communication portion (modelled costs + synchronization waits).
    pub comm_ns: u64,
    /// Total payload bytes sent by this rank (point-to-point + collectives).
    pub bytes_sent: u64,
    /// Total payload bytes delivered to this rank. For an allgather this is
    /// the full concatenation minus the rank's own contribution — the
    /// receive-side volume that makes replicated-table schemes `O(N)` per
    /// processor.
    pub bytes_recv: u64,
    /// Number of messages / collective participations initiated.
    pub msgs_sent: u64,
    /// Peak tracked memory, bytes.
    pub peak_mem: u64,
    /// Per-category memory peaks.
    pub mem_categories: Vec<(&'static str, CatUsage)>,
    /// Durations of the rank's measured compute segments, in execution
    /// order (empty outside measured mode). Deterministic algorithms yield
    /// the same segment count every run, so two runs' vectors can be
    /// combined elementwise (e.g. a minimum) and replayed for a
    /// noise-filtered simulated time.
    pub segments: Vec<u64>,
    /// The rank's observability trace; `Some` iff the run was configured
    /// with [`crate::MachineCfg::trace`].
    pub trace: Option<obs::RankTrace>,
    /// Collectives re-run after a detected drop/corrupt fault (see
    /// [`crate::fault`]); zero when no fault plan is set.
    pub retransmits: u64,
    /// Payload bytes this rank re-sent in those retransmissions (not
    /// included in `bytes_sent`, which counts logical traffic only).
    pub resent_bytes: u64,
    /// Virtual nanoseconds lost to injected faults (straggler slowdown +
    /// retransmission cost); included in `comm_ns`.
    pub fault_delay_ns: u64,
}

impl RankStats {
    /// This rank's counter totals in the form the `obs` rollup and parity
    /// checks consume.
    pub fn totals(&self) -> obs::RankTotals {
        obs::RankTotals {
            clock_ns: self.clock_ns,
            compute_ns: self.compute_ns,
            comm_ns: self.comm_ns,
            bytes_sent: self.bytes_sent,
            bytes_recv: self.bytes_recv,
            peak_mem: self.peak_mem,
        }
    }
}

/// Statistics for a whole machine run.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// One entry per rank, in rank order.
    pub ranks: Vec<RankStats>,
}

impl RunStats {
    /// Number of virtual processors.
    pub fn procs(&self) -> usize {
        self.ranks.len()
    }

    /// Parallel runtime: the maximum simulated clock across ranks
    /// (all ranks finish a bulk-synchronous program at nearly the same
    /// simulated time; the max is the honest completion time).
    pub fn time_ns(&self) -> u64 {
        self.ranks.iter().map(|r| r.clock_ns).max().unwrap_or(0)
    }

    /// Parallel runtime in seconds.
    pub fn time_s(&self) -> f64 {
        self.time_ns() as f64 / 1e9
    }

    /// Maximum per-rank peak memory — the quantity of the paper's Fig 3(b).
    pub fn peak_mem_per_proc(&self) -> u64 {
        self.ranks.iter().map(|r| r.peak_mem).max().unwrap_or(0)
    }

    /// Total bytes sent by all ranks.
    pub fn total_bytes_sent(&self) -> u64 {
        self.ranks.iter().map(|r| r.bytes_sent).sum()
    }

    /// Maximum bytes sent by any single rank (per-processor communication
    /// overhead — the quantity bounded by O(N/p) in the paper's analysis).
    pub fn max_bytes_sent_per_proc(&self) -> u64 {
        self.ranks.iter().map(|r| r.bytes_sent).max().unwrap_or(0)
    }

    /// Maximum communication volume (sent + received) on any single rank —
    /// the per-processor communication overhead of the paper's analysis
    /// (§3.2 counts the O(N) hash table *received* by every processor in
    /// parallel SPRINT).
    pub fn max_comm_volume_per_proc(&self) -> u64 {
        self.ranks
            .iter()
            .map(|r| r.bytes_sent + r.bytes_recv)
            .max()
            .unwrap_or(0)
    }

    /// Sum of compute time across ranks (≈ serial work).
    pub fn total_compute_ns(&self) -> u64 {
        self.ranks.iter().map(|r| r.compute_ns).sum()
    }

    /// Maximum communication time on any rank.
    pub fn max_comm_ns(&self) -> u64 {
        self.ranks.iter().map(|r| r.comm_ns).max().unwrap_or(0)
    }

    /// Total collective retransmissions across ranks (injected faults).
    pub fn total_retransmits(&self) -> u64 {
        self.ranks.iter().map(|r| r.retransmits).sum()
    }

    /// Total payload bytes re-sent after injected faults, across ranks.
    pub fn total_resent_bytes(&self) -> u64 {
        self.ranks.iter().map(|r| r.resent_bytes).sum()
    }

    /// Maximum per-rank virtual time lost to injected faults.
    pub fn max_fault_delay_ns(&self) -> u64 {
        self.ranks
            .iter()
            .map(|r| r.fault_delay_ns)
            .max()
            .unwrap_or(0)
    }

    /// Speedup of this run relative to a baseline run (typically `p = 1`).
    ///
    /// Zero-time runs (empty machines, configs that charge nothing) would
    /// make the ratio `inf`/`NaN`; those poison downstream statistics and
    /// serialize as `null`. Sentinels instead: if both runs took zero
    /// simulated time the runs are indistinguishable and the speedup is
    /// `1.0`; if exactly one did, there is no meaningful ratio and the
    /// result is `0.0` ("no measurement"). Both are documented here and
    /// always finite.
    pub fn speedup_vs(&self, baseline: &RunStats) -> f64 {
        match (baseline.time_ns(), self.time_ns()) {
            (0, 0) => 1.0,
            (0, _) | (_, 0) => 0.0,
            (b, s) => b as f64 / s as f64,
        }
    }

    /// Every rank's trace, when the run was traced (`None` if any rank is
    /// missing one — i.e. the run was not configured with
    /// [`crate::MachineCfg::trace`]).
    pub fn traces(&self) -> Option<Vec<&obs::RankTrace>> {
        self.ranks.iter().map(|r| r.trace.as_ref()).collect()
    }

    /// The p×p communication matrices of a traced run.
    pub fn comm_matrix(&self) -> Option<obs::CommMatrix> {
        self.traces().map(|t| obs::CommMatrix::from_traces(&t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(clock: u64, bytes: u64, peak: u64) -> RankStats {
        RankStats {
            clock_ns: clock,
            compute_ns: clock / 2,
            comm_ns: clock / 2,
            bytes_sent: bytes,
            bytes_recv: bytes * 2,
            msgs_sent: 1,
            peak_mem: peak,
            mem_categories: vec![],
            segments: vec![],
            trace: None,
            retransmits: 0,
            resent_bytes: 0,
            fault_delay_ns: 0,
        }
    }

    #[test]
    fn aggregates() {
        let stats = RunStats {
            ranks: vec![rs(100, 10, 1000), rs(150, 30, 800), rs(120, 20, 900)],
        };
        assert_eq!(stats.procs(), 3);
        assert_eq!(stats.time_ns(), 150);
        assert_eq!(stats.peak_mem_per_proc(), 1000);
        assert_eq!(stats.total_bytes_sent(), 60);
        assert_eq!(stats.max_bytes_sent_per_proc(), 30);
        assert_eq!(stats.max_comm_volume_per_proc(), 90);
        assert_eq!(stats.total_compute_ns(), 185);
    }

    #[test]
    fn speedup() {
        let serial = RunStats {
            ranks: vec![rs(1000, 0, 0)],
        };
        let par = RunStats {
            ranks: vec![rs(250, 0, 0), rs(260, 0, 0)],
        };
        let s = par.speedup_vs(&serial);
        assert!((s - 1000.0 / 260.0).abs() < 1e-9);
    }

    #[test]
    fn empty_run_is_zeroes() {
        let stats = RunStats::default();
        assert_eq!(stats.time_ns(), 0);
        assert_eq!(stats.peak_mem_per_proc(), 0);
    }

    #[test]
    fn speedup_zero_time_sentinels_are_finite() {
        let zero = RunStats {
            ranks: vec![rs(0, 0, 0)],
        };
        let real = RunStats {
            ranks: vec![rs(500, 0, 0)],
        };
        // Both zero: indistinguishable runs, speedup 1.
        assert_eq!(zero.speedup_vs(&zero), 1.0);
        // Either side zero: no meaningful ratio, sentinel 0 (not inf/NaN).
        assert_eq!(real.speedup_vs(&zero), 0.0);
        assert_eq!(zero.speedup_vs(&real), 0.0);
        // An empty RunStats has zero time too.
        assert_eq!(RunStats::default().speedup_vs(&real), 0.0);
        for s in [
            zero.speedup_vs(&zero),
            real.speedup_vs(&zero),
            zero.speedup_vs(&real),
            real.speedup_vs(&real),
        ] {
            assert!(s.is_finite());
        }
    }
}
