//! The per-rank communicator: collectives and point-to-point operations.
//!
//! All collectives follow the same bulk-synchronous skeleton:
//!
//! 1. close the current compute segment and publish (clock, payload bytes)
//!    on the shared boards, deposit data;
//! 2. barrier;
//! 3. read peers' deposits and boards, synchronize the local clock to
//!    `max(entry clocks) + modelled cost`;
//! 4. barrier (so slots may be safely reused);
//! 5. reopen a compute segment.
//!
//! The contract is standard MPI: every rank of the machine must call every
//! collective, in the same order. Point-to-point `send`/`recv` may be used by
//! any subset of ranks and are FIFO-ordered per (source, destination) pair.

use std::any::Any;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use std::sync::mpsc::{Receiver, Sender};

use crate::clock::SimClock;
use crate::fault::{CrashSignal, FaultKind, FaultPlan};
use crate::machine::{PtpMsg, Shared};
use crate::mem::MemTracker;
use crate::stats::RankStats;

/// Which cost formula a collective uses (payload size comes from the
/// shared bytes board).
#[derive(Clone, Copy)]
enum CollKind {
    Barrier,
    Tree,
    Allgather,
    Alltoall,
}

/// Memory-tracker category used for transient collective buffers.
pub const COMM_MEM: &str = "comm-buffers";

/// Communicator handle owned by one virtual processor.
pub struct Comm {
    rank: usize,
    shared: Arc<Shared>,
    clock: SimClock,
    tracker: Arc<MemTracker>,
    senders: Vec<Sender<PtpMsg>>,
    receivers: Vec<Receiver<PtpMsg>>,
    bytes_sent: u64,
    bytes_recv: u64,
    msgs_sent: u64,
    rec: obs::Recorder,
    /// Collective in flight: name + counters at entry (set only when the
    /// recorder is enabled; finalized in `exit`).
    pending_coll: Option<(&'static str, obs::Counters)>,
    /// Injected fault schedule; `None` (the default) keeps every fault hook
    /// down to a single `Option` check (see [`crate::fault`]).
    fault: Option<Arc<FaultPlan>>,
    /// 1-based count of collectives entered — in lockstep across ranks by
    /// the MPI ordering contract, which is what makes sequence-keyed faults
    /// fire at the same program point on every rank. Point-to-point
    /// operations do not advance it.
    coll_seq: u64,
    /// Payload bytes of the collective currently in flight (for
    /// retransmission accounting).
    pending_bytes: u64,
    /// Tree level marked via [`Comm::mark_level`]; `u32::MAX` before the
    /// first mark (setup/presort).
    current_level: u32,
    /// Virtual clock at the previous collective entry — the base of the
    /// straggler slowdown window.
    last_enter_ns: u64,
    /// Collectives re-run after a detected drop/corrupt fault.
    retransmits: u64,
    /// Payload bytes this rank re-sent in those retransmissions.
    resent_bytes: u64,
    /// Total virtual nanoseconds this rank lost to injected faults
    /// (straggler slowdown + retransmission cost).
    fault_delay_ns: u64,
}

fn payload_bytes<T>(len: usize) -> u64 {
    (std::mem::size_of::<T>() * len) as u64
}

fn downcast<T: 'static>(b: Box<dyn Any + Send>) -> T {
    *b.downcast::<T>().unwrap_or_else(|_| {
        panic!(
            "mpsim type mismatch: expected {}",
            std::any::type_name::<T>()
        )
    })
}

/// Raw view of a rank's contiguous send buffer (plus its per-destination
/// counts) deposited for the flat collectives.
///
/// Depositing a view instead of an owned `Vec` lets a collective move
/// bytes exactly once — from the sender's buffer straight into the
/// receiver's reused scratch. This is sound because every peer read
/// completes before the collective's closing barrier, and the referenced
/// buffers are borrowed parameters of the same collective call on every
/// rank, so they outlive that barrier.
struct FlatView<T> {
    data: *const T,
    len: usize,
    counts: *const usize,
    counts_len: usize,
}

// SAFETY: the view only permits shared reads (`*const`), and `T: Sync`
// makes cross-thread shared reads of the pointee sound.
unsafe impl<T: Sync> Send for FlatView<T> {}

impl<T> Clone for FlatView<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for FlatView<T> {}

impl<T> FlatView<T> {
    fn new(data: &[T], counts: &[usize]) -> Self {
        FlatView {
            data: data.as_ptr(),
            len: data.len(),
            counts: counts.as_ptr(),
            counts_len: counts.len(),
        }
    }

    fn slice(&self) -> &[T] {
        // SAFETY: constructed from a live slice; reads happen strictly
        // before the barrier that lets the owner reclaim the buffer.
        unsafe { std::slice::from_raw_parts(self.data, self.len) }
    }

    fn counts(&self) -> &[usize] {
        // SAFETY: as `slice`.
        unsafe { std::slice::from_raw_parts(self.counts, self.counts_len) }
    }
}

/// Borrow of a single value deposited for the borrowed-fold collectives
/// ([`Comm::scan_exclusive_with`], [`Comm::allreduce_with`]). Same
/// lifetime argument as [`FlatView`].
struct FlatRef<T>(*const T);

// SAFETY: shared reads only; `T: Sync` required at every use site.
unsafe impl<T: Sync> Send for FlatRef<T> {}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        shared: Arc<Shared>,
        clock: SimClock,
        tracker: Arc<MemTracker>,
        senders: Vec<Sender<PtpMsg>>,
        receivers: Vec<Receiver<PtpMsg>>,
        rec: obs::Recorder,
    ) -> Self {
        Comm {
            rank,
            shared,
            clock,
            tracker,
            senders,
            receivers,
            bytes_sent: 0,
            bytes_recv: 0,
            msgs_sent: 0,
            rec,
            pending_coll: None,
            fault: None,
            coll_seq: 0,
            pending_bytes: 0,
            current_level: u32::MAX,
            last_enter_ns: 0,
            retransmits: 0,
            resent_bytes: 0,
            fault_delay_ns: 0,
        }
    }

    /// This rank's id, `0 ≤ rank < size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of virtual processors in the machine.
    pub fn size(&self) -> usize {
        self.shared.procs
    }

    /// The rank-local memory tracker. Clone the `Arc` to hand it to data
    /// structures owned by this rank.
    pub fn tracker(&self) -> &Arc<MemTracker> {
        &self.tracker
    }

    /// Current simulated time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Explicitly charge computation time (for analytic work models).
    pub fn charge_compute(&mut self, ns: u64) {
        self.clock.charge_compute(ns);
    }

    /// Mark the tree level subsequent collectives belong to, so
    /// level-targeted faults ([`crate::fault::CrashPoint::Level`]) know
    /// where they are. Before the first call the level is `u32::MAX`
    /// (setup/presort). Free when no fault plan is set.
    pub fn mark_level(&mut self, level: u32) {
        self.current_level = level;
    }

    /// 1-based count of collectives this rank has entered (lockstep across
    /// ranks; point-to-point traffic not included).
    pub fn coll_seq(&self) -> u64 {
        self.coll_seq
    }

    /// The installed fault schedule, if any. Lets program-level layers
    /// (e.g. a checkpoint writer honouring storage faults) consult the same
    /// plan the collective skeleton uses, keeping one source of truth.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_deref()
    }

    /// Record a program-level injected fault (e.g. a checkpoint-file
    /// corruption) on this rank's fault log, at the current clock and
    /// collective sequence. No cost is charged — silent faults are free at
    /// injection time and paid for at detection. No-op when untraced.
    pub fn record_fault(&mut self, kind: &'static str, delay_ns: u64) {
        self.rec
            .fault(kind, self.coll_seq, self.clock.now_ns(), delay_ns);
    }

    // ----- observability ------------------------------------------------------

    /// Whether this rank carries an enabled trace recorder (see
    /// [`crate::MachineCfg::trace`]). Callers may use this to skip building
    /// trace-only inputs; the phase API below is already a no-op when false.
    pub fn tracing(&self) -> bool {
        self.rec.is_enabled()
    }

    /// Snapshot of this rank's monotone counters for the recorder. Only
    /// called on enabled-recorder paths: it locks the memory tracker and,
    /// in measured mode, expects compute segments to be closed around it.
    fn counters(&self) -> obs::Counters {
        obs::Counters {
            clock_ns: self.clock.now_ns(),
            compute_ns: self.clock.compute_ns(),
            comm_ns: self.clock.comm_ns(),
            bytes_sent: self.bytes_sent,
            bytes_recv: self.bytes_recv,
            peak_mem: self.tracker.peak(),
        }
    }

    /// Open an instrumentation span named `name` (by convention, `level`
    /// carries the tree level, 0 when not applicable). Spans nest; close
    /// each with [`Comm::phase_end`]. Strictly a no-op — no clock, segment,
    /// or allocation effect — when tracing is disabled.
    pub fn phase_begin(&mut self, name: &'static str, level: u32) {
        if !self.rec.is_enabled() {
            return;
        }
        // Close the open measured segment so the snapshot sees fresh time;
        // only done when tracing, so untraced runs keep their exact
        // segment structure.
        self.clock.stop_compute();
        let c = self.counters();
        self.rec.span_begin(name, level, c);
        self.clock.start_compute();
    }

    /// Close the innermost span opened by [`Comm::phase_begin`].
    pub fn phase_end(&mut self) {
        if !self.rec.is_enabled() {
            return;
        }
        self.clock.stop_compute();
        let c = self.counters();
        self.rec.span_end(c);
        self.clock.start_compute();
    }

    // ----- machine lifecycle -------------------------------------------------

    pub(crate) fn pin_worker(&self) {
        self.shared.tokens.pin_worker();
    }

    pub(crate) fn set_replay(&mut self, durations: std::sync::Arc<Vec<u64>>) {
        self.clock.set_replay(durations);
    }

    pub(crate) fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.fault = Some(plan);
    }

    pub(crate) fn begin(&mut self) {
        self.shared.tokens.acquire();
        self.clock.start_compute();
    }

    pub(crate) fn finish(&mut self) -> RankStats {
        self.clock.stop_compute();
        self.shared.tokens.release();
        let trace = if self.rec.is_enabled() {
            let final_c = self.counters();
            std::mem::replace(&mut self.rec, obs::Recorder::disabled()).finish(final_c)
        } else {
            None
        };
        RankStats {
            clock_ns: self.clock.now_ns(),
            compute_ns: self.clock.compute_ns(),
            comm_ns: self.clock.comm_ns(),
            bytes_sent: self.bytes_sent,
            bytes_recv: self.bytes_recv,
            msgs_sent: self.msgs_sent,
            peak_mem: self.tracker.peak(),
            mem_categories: self.tracker.categories(),
            segments: self.clock.take_segments(),
            trace,
            retransmits: self.retransmits,
            resent_bytes: self.resent_bytes,
            fault_delay_ns: self.fault_delay_ns,
        }
    }

    // ----- collective skeleton ----------------------------------------------

    fn enter(&mut self, my_bytes: u64, name: &'static str) {
        self.clock.stop_compute();
        // Snapshot before the byte counters move so the event's deltas
        // cover exactly this collective's traffic and charged time.
        if self.rec.is_enabled() {
            self.pending_coll = Some((name, self.counters()));
        }
        self.coll_seq += 1;
        self.pending_bytes = my_bytes;
        if let Some(plan) = &self.fault {
            if let Some((spec, c)) = plan.crash_at(self.coll_seq, self.current_level) {
                let signal = CrashSignal {
                    rank: c.rank,
                    coll_seq: self.coll_seq,
                    coll: name,
                    level: self.current_level,
                    spec,
                };
                // Every rank reaches this collective (MPI ordering contract)
                // and unwinds here, before any barrier wait — a silent
                // single-rank exit would deadlock the machine instead.
                // Release the compute token first so peers still blocked in
                // `tokens.acquire` can reach their own crash point; the
                // extra `release` in `finish` only over-credits a machine
                // that is already dead. `resume_unwind` (not `panic_any`)
                // keeps the panic hook quiet: a planned crash is data, not
                // a bug report.
                self.shared.tokens.release();
                std::panic::resume_unwind(Box::new(signal));
            }
            // Straggler: inflate the time since the previous collective and
            // charge it *before* publishing the entry clock, so every peer
            // waits for the slow rank under the usual max-sync rule.
            let elapsed = self.clock.now_ns().saturating_sub(self.last_enter_ns);
            let extra = plan.straggler_extra(self.rank, self.coll_seq, elapsed);
            if extra > 0 {
                let at = self.clock.now_ns();
                self.clock.charge_comm(extra);
                self.fault_delay_ns += extra;
                self.rec.fault("straggler", self.coll_seq, at, extra);
            }
        }
        self.last_enter_ns = self.clock.now_ns();
        self.shared.tokens.release();
        self.shared.clock_board[self.rank].store(self.clock.now_ns(), Ordering::Release);
        self.shared.bytes_board[self.rank].store(my_bytes, Ordering::Release);
        // Self-traffic is not network traffic: a single-processor machine
        // communicates nothing.
        if self.shared.procs > 1 {
            self.bytes_sent += my_bytes;
        }
        self.msgs_sent += 1;
    }

    fn exit(&mut self) {
        // All byte counters and the clock sync are final here; close the
        // collective event before the barrier releases the slots.
        if let Some((name, start)) = self.pending_coll.take() {
            let end = self.counters();
            self.rec.collective(name, start, end);
        }
        self.shared.barrier.wait();
        self.shared.tokens.acquire();
        self.clock.start_compute();
    }

    fn sync_with_cost(&mut self, kind: CollKind) {
        let (max_clock, max_bytes) = self.shared.board_max();
        let p = self.shared.procs;
        let cost = match kind {
            CollKind::Barrier => self.shared.cost.barrier(p),
            CollKind::Tree => self.shared.cost.tree(p, max_bytes),
            CollKind::Allgather => self.shared.cost.allgather(p, max_bytes),
            CollKind::Alltoall => self.shared.cost.alltoall(p, max_bytes),
        };
        // Detected message fault: receivers CRC-verify payloads, so a
        // corrupted payload costs one re-run of the collective and a
        // dropped one additionally costs a detection timeout (modelled as
        // one more collective). Every rank charges the identical extra —
        // the retransmission is itself a collective — and the delivered
        // data is the correct retransmitted copy, so results are unchanged.
        let mut fault_hit: Option<&'static str> = None;
        let mut extra = 0u64;
        if let Some(plan) = &self.fault {
            if let Some(f) = plan.comm_fault_at(self.coll_seq) {
                (fault_hit, extra) = match f.kind {
                    FaultKind::Drop => (Some("drop"), cost.saturating_mul(2)),
                    FaultKind::Corrupt => (Some("corrupt"), cost),
                };
                self.retransmits += 1;
                self.resent_bytes += self.pending_bytes;
                self.fault_delay_ns += extra;
            }
        }
        self.clock.sync_to(max_clock + cost + extra);
        if let Some(name) = fault_hit {
            let end = self.clock.now_ns();
            self.rec
                .fault(name, self.coll_seq, end.saturating_sub(extra), extra);
        }
    }

    fn deposit(&self, value: Option<Box<dyn Any + Send>>) {
        *self.shared.slots[self.rank].lock().unwrap() = value;
    }

    /// Read rank `r`'s deposit as `Arc<T>` without consuming it.
    fn peek<T: Send + Sync + 'static>(&self, r: usize) -> Arc<T> {
        let guard = self.shared.slots[r].lock().unwrap();
        let any = guard
            .as_ref()
            .unwrap_or_else(|| panic!("rank {r} deposited nothing for this collective"));
        any.downcast_ref::<Arc<T>>()
            .unwrap_or_else(|| {
                panic!(
                    "mpsim type mismatch reading rank {r}: expected {}",
                    std::any::type_name::<T>()
                )
            })
            .clone()
    }

    /// Read rank `r`'s deposit as a [`FlatView`] (copied out of the slot;
    /// the pointers stay valid until the collective's closing barrier).
    fn peek_view<T: Sync + 'static>(&self, r: usize) -> FlatView<T> {
        let guard = self.shared.slots[r].lock().unwrap();
        let any = guard
            .as_ref()
            .unwrap_or_else(|| panic!("rank {r} deposited nothing for this collective"));
        *any.downcast_ref::<FlatView<T>>().unwrap_or_else(|| {
            panic!(
                "mpsim type mismatch reading rank {r}: expected flat view of {}",
                std::any::type_name::<T>()
            )
        })
    }

    /// Read rank `r`'s deposit as a [`FlatRef`] pointer.
    fn peek_ref<T: Sync + 'static>(&self, r: usize) -> *const T {
        let guard = self.shared.slots[r].lock().unwrap();
        let any = guard
            .as_ref()
            .unwrap_or_else(|| panic!("rank {r} deposited nothing for this collective"));
        any.downcast_ref::<FlatRef<T>>()
            .unwrap_or_else(|| {
                panic!(
                    "mpsim type mismatch reading rank {r}: expected borrowed {}",
                    std::any::type_name::<T>()
                )
            })
            .0
    }

    // ----- collectives --------------------------------------------------------

    /// Synchronize all ranks; clocks align to `max + barrier cost`.
    pub fn barrier(&mut self) {
        self.enter(0, "barrier");
        self.shared.barrier.wait();
        self.sync_with_cost(CollKind::Barrier);
        self.exit();
    }

    /// Broadcast `value` from `root`. Non-root ranks pass `None`.
    pub fn bcast<T: Clone + Send + Sync + 'static>(&mut self, root: usize, value: Option<T>) -> T {
        let bytes = if self.rank == root {
            std::mem::size_of::<T>() as u64
        } else {
            0
        };
        self.enter(bytes, "bcast");
        if self.shared.procs > 1 && self.rank == root {
            // Tree fan-out has no single peer; diagonal bucket.
            self.rec.sent_aggregate(bytes);
        }
        self.shared.tokens.acquire();
        if self.rank == root {
            let v = value.expect("broadcast root must supply a value");
            self.deposit(Some(Box::new(Arc::new(v))));
        } else {
            assert!(value.is_none(), "non-root rank supplied a broadcast value");
            self.deposit(None);
        }
        self.shared.tokens.release();
        self.shared.barrier.wait();
        self.shared.tokens.acquire();
        let out = self.peek::<T>(root).as_ref().clone();
        self.shared.tokens.release();
        if self.rank != root {
            self.bytes_recv += std::mem::size_of::<T>() as u64;
            self.rec.recv(root, std::mem::size_of::<T>() as u64);
        }
        self.tracker
            .pulse(COMM_MEM, std::mem::size_of::<T>() as u64);
        self.sync_with_cost(CollKind::Tree);
        self.exit();
        out
    }

    /// Reduce with `op` onto `root`; returns `Some(result)` there, `None`
    /// elsewhere. `op` is applied in rank order, so non-commutative folds are
    /// deterministic.
    pub fn reduce<T, F>(&mut self, root: usize, value: T, op: F) -> Option<T>
    where
        T: Clone + Send + Sync + 'static,
        F: Fn(&mut T, &T),
    {
        let bytes = std::mem::size_of::<T>() as u64;
        self.reduce_sized(root, value, bytes, op)
    }

    /// [`Comm::reduce`] with an explicit per-rank payload size, for payloads
    /// whose wire size `size_of::<T>()` cannot see (e.g. `Vec` contents).
    pub fn reduce_sized<T, F>(&mut self, root: usize, value: T, bytes: u64, op: F) -> Option<T>
    where
        T: Clone + Send + Sync + 'static,
        F: Fn(&mut T, &T),
    {
        self.enter(bytes, "reduce");
        if self.shared.procs > 1 {
            if self.rank == root {
                self.rec.sent_aggregate(bytes);
            } else {
                self.rec.sent(root, bytes);
            }
        }
        self.shared.tokens.acquire();
        self.deposit(Some(Box::new(Arc::new(value))));
        self.shared.tokens.release();
        self.shared.barrier.wait();
        let out = if self.rank == root {
            self.shared.tokens.acquire();
            let mut acc = self.peek::<T>(0).as_ref().clone();
            for r in 1..self.shared.procs {
                op(&mut acc, self.peek::<T>(r).as_ref());
            }
            self.shared.tokens.release();
            self.bytes_recv += bytes * (self.shared.procs as u64 - 1);
            if self.rec.is_enabled() {
                for r in (0..self.shared.procs).filter(|&r| r != root) {
                    self.rec.recv(r, bytes);
                }
            }
            Some(acc)
        } else {
            None
        };
        self.sync_with_cost(CollKind::Tree);
        self.exit();
        out
    }

    /// All-reduce: every rank receives the rank-ordered fold of all values.
    pub fn allreduce<T, F>(&mut self, value: T, op: F) -> T
    where
        T: Clone + Send + Sync + 'static,
        F: Fn(&mut T, &T),
    {
        let bytes = std::mem::size_of::<T>() as u64;
        self.allreduce_sized(value, bytes, op)
    }

    /// [`Comm::allreduce`] with an explicit per-rank payload size, for
    /// payloads whose wire size `size_of::<T>()` cannot see (`Vec`s).
    pub fn allreduce_sized<T, F>(&mut self, value: T, bytes: u64, op: F) -> T
    where
        T: Clone + Send + Sync + 'static,
        F: Fn(&mut T, &T),
    {
        self.enter(bytes, "allreduce");
        if self.shared.procs > 1 {
            self.rec.sent_aggregate(bytes);
        }
        self.shared.tokens.acquire();
        self.deposit(Some(Box::new(Arc::new(value))));
        self.shared.tokens.release();
        self.shared.barrier.wait();
        self.shared.tokens.acquire();
        let mut acc = self.peek::<T>(0).as_ref().clone();
        for r in 1..self.shared.procs {
            op(&mut acc, self.peek::<T>(r).as_ref());
        }
        self.shared.tokens.release();
        if self.shared.procs > 1 {
            self.bytes_recv += bytes;
            self.rec.recv_aggregate(bytes);
        }
        self.sync_with_cost(CollKind::Tree);
        self.exit();
        acc
    }

    /// Exclusive prefix scan: rank `i` receives `op(identity, v_0, …, v_{i-1})`.
    /// Rank 0 receives `identity`. This is the "parallel prefix" the paper
    /// uses in `FindSplitI` to globalize per-node count matrices.
    pub fn scan_exclusive<T, F>(&mut self, value: T, identity: T, op: F) -> T
    where
        T: Clone + Send + Sync + 'static,
        F: Fn(&mut T, &T),
    {
        let bytes = std::mem::size_of::<T>() as u64;
        self.scan_exclusive_sized(value, identity, bytes, op)
    }

    /// [`Comm::scan_exclusive`] with an explicit per-rank payload size.
    pub fn scan_exclusive_sized<T, F>(&mut self, value: T, identity: T, bytes: u64, op: F) -> T
    where
        T: Clone + Send + Sync + 'static,
        F: Fn(&mut T, &T),
    {
        self.enter(bytes, "scan");
        if self.shared.procs > 1 {
            self.rec.sent_aggregate(bytes);
        }
        self.shared.tokens.acquire();
        self.deposit(Some(Box::new(Arc::new(value))));
        self.shared.tokens.release();
        self.shared.barrier.wait();
        self.shared.tokens.acquire();
        let mut acc = identity;
        for r in 0..self.rank {
            op(&mut acc, self.peek::<T>(r).as_ref());
        }
        self.shared.tokens.release();
        if self.rank > 0 {
            self.bytes_recv += bytes;
            self.rec.recv_aggregate(bytes);
        }
        self.sync_with_cost(CollKind::Tree);
        self.exit();
        acc
    }

    /// Gather one value per rank onto `root` (rank order).
    pub fn gather<T: Clone + Send + Sync + 'static>(
        &mut self,
        root: usize,
        value: T,
    ) -> Option<Vec<T>> {
        let bytes = std::mem::size_of::<T>() as u64;
        self.enter(bytes, "gather");
        if self.shared.procs > 1 {
            if self.rank == root {
                self.rec.sent_aggregate(bytes);
            } else {
                self.rec.sent(root, bytes);
            }
        }
        self.shared.tokens.acquire();
        self.deposit(Some(Box::new(Arc::new(value))));
        self.shared.tokens.release();
        self.shared.barrier.wait();
        let out = if self.rank == root {
            self.shared.tokens.acquire();
            let mut v = Vec::with_capacity(self.shared.procs);
            for r in 0..self.shared.procs {
                v.push(self.peek::<T>(r).as_ref().clone());
            }
            self.shared.tokens.release();
            self.bytes_recv += bytes * (self.shared.procs as u64 - 1);
            if self.rec.is_enabled() {
                for r in (0..self.shared.procs).filter(|&r| r != root) {
                    self.rec.recv(r, bytes);
                }
            }
            self.tracker
                .pulse(COMM_MEM, bytes * self.shared.procs as u64);
            Some(v)
        } else {
            None
        };
        self.sync_with_cost(CollKind::Allgather);
        self.exit();
        out
    }

    /// Allgather one value per rank; every rank receives all values in rank
    /// order.
    pub fn allgather<T: Clone + Send + Sync + 'static>(&mut self, value: T) -> Vec<T> {
        let bytes = std::mem::size_of::<T>() as u64;
        self.enter(bytes, "allgather");
        if self.shared.procs > 1 {
            self.rec.sent_aggregate(bytes);
        }
        self.shared.tokens.acquire();
        self.deposit(Some(Box::new(Arc::new(value))));
        self.shared.tokens.release();
        self.shared.barrier.wait();
        self.shared.tokens.acquire();
        let mut v = Vec::with_capacity(self.shared.procs);
        for r in 0..self.shared.procs {
            v.push(self.peek::<T>(r).as_ref().clone());
        }
        self.shared.tokens.release();
        self.bytes_recv += bytes * (self.shared.procs as u64 - 1);
        if self.rec.is_enabled() {
            for r in (0..self.shared.procs).filter(|&r| r != self.rank) {
                self.rec.recv(r, bytes);
            }
        }
        self.tracker
            .pulse(COMM_MEM, bytes * self.shared.procs as u64);
        self.sync_with_cost(CollKind::Allgather);
        self.exit();
        v
    }

    /// Variable-length allgather: every rank contributes a vector; every rank
    /// receives the rank-ordered concatenation.
    ///
    /// This is the operation that makes the parallel SPRINT splitting phase
    /// unscalable: each rank receives the *entire* record-to-child mapping,
    /// `O(N)` bytes, regardless of `p`.
    ///
    /// Thin wrapper over [`Comm::allgatherv_flat_into`]; cost-model and byte
    /// accounting are identical.
    pub fn allgatherv<T: Clone + Send + Sync + 'static>(&mut self, value: Vec<T>) -> Vec<T> {
        let mut recv = Vec::new();
        let mut recv_counts = Vec::new();
        self.allgatherv_flat_into(&value, &mut recv, &mut recv_counts);
        recv
    }

    /// All-to-all personalized communication with variable payloads:
    /// `bufs[d]` is moved to rank `d`; the result's element `s` is the buffer
    /// rank `s` addressed to this rank.
    ///
    /// This is the core primitive of the paper's parallel hashing paradigm.
    ///
    /// Thin wrapper over [`Comm::alltoallv_flat_into`]: the nested buffers
    /// are flattened into one contiguous send buffer (and the received
    /// stream split back per source). Hot paths should call the flat API
    /// directly; cost-model and byte accounting are identical either way.
    pub fn alltoallv<T: Clone + Send + Sync + 'static>(
        &mut self,
        bufs: Vec<Vec<T>>,
    ) -> Vec<Vec<T>> {
        let p = self.shared.procs;
        assert_eq!(bufs.len(), p, "alltoallv needs one buffer per rank");
        let counts: Vec<usize> = bufs.iter().map(Vec::len).collect();
        let mut send = Vec::with_capacity(counts.iter().sum());
        for buf in &bufs {
            send.extend_from_slice(buf);
        }
        let mut recv = Vec::new();
        let mut recv_counts = Vec::new();
        self.alltoallv_flat_into(&send, &counts, &mut recv, &mut recv_counts);
        let mut out: Vec<Vec<T>> = Vec::with_capacity(p);
        let mut offset = 0usize;
        for &k in &recv_counts {
            out.push(recv[offset..offset + k].to_vec());
            offset += k;
        }
        out
    }

    /// Fixed-size all-to-all: element `d` of `items` goes to rank `d`.
    pub fn alltoall<T: Clone + Send + Sync + 'static>(&mut self, items: Vec<T>) -> Vec<T> {
        let bufs = items.into_iter().map(|x| vec![x]).collect();
        self.alltoallv(bufs)
            .into_iter()
            .map(|mut v| {
                assert_eq!(v.len(), 1);
                v.pop().unwrap()
            })
            .collect()
    }

    // ----- flat (counts/displacements) collectives ---------------------------

    /// All-to-all with counts/displacements over one contiguous buffer: the
    /// first `counts[0]` elements of `send` go to rank 0, the next
    /// `counts[1]` to rank 1, and so on. Returns the received elements
    /// (grouped by source rank, in rank order) and the per-source counts —
    /// the moral equivalent of `MPI_Alltoallv`.
    pub fn alltoallv_flat<T: Clone + Send + Sync + 'static>(
        &mut self,
        send: Vec<T>,
        counts: &[usize],
    ) -> (Vec<T>, Vec<usize>) {
        let mut recv = Vec::new();
        let mut recv_counts = Vec::new();
        self.alltoallv_flat_into(&send, counts, &mut recv, &mut recv_counts);
        (recv, recv_counts)
    }

    /// [`Comm::alltoallv_flat`] writing into caller-owned buffers, which are
    /// cleared and refilled (capacity is retained) — the steady-state
    /// allocation-free hot path. Each peer's region is moved with a single
    /// contiguous copy; no per-rank `Vec` and no per-element clone for
    /// `Copy` element types.
    pub fn alltoallv_flat_into<T: Clone + Send + Sync + 'static>(
        &mut self,
        send: &[T],
        counts: &[usize],
        recv: &mut Vec<T>,
        recv_counts: &mut Vec<usize>,
    ) {
        let p = self.shared.procs;
        assert_eq!(counts.len(), p, "alltoallv_flat needs one count per rank");
        let total: usize = counts.iter().sum();
        assert_eq!(
            total,
            send.len(),
            "counts must tile the send buffer exactly"
        );
        let self_bytes = payload_bytes::<T>(counts[self.rank]);
        let send_bytes = payload_bytes::<T>(total) - self_bytes;
        self.enter(send_bytes, "alltoallv");
        if self.rec.is_enabled() && self.shared.procs > 1 {
            // Personalized exchange: destinations are exact. The per-peer
            // payloads (minus the self region) sum to `send_bytes`.
            for (d, &k) in counts.iter().enumerate() {
                if d != self.rank {
                    self.rec.sent(d, payload_bytes::<T>(k));
                }
            }
        }
        self.shared.tokens.acquire();
        self.deposit(Some(Box::new(FlatView::new(send, counts))));
        self.shared.tokens.release();
        self.shared.barrier.wait();
        self.shared.tokens.acquire();
        recv.clear();
        recv_counts.clear();
        let mut recv_bytes = 0u64;
        for src in 0..p {
            let view = self.peek_view::<T>(src);
            let cnts = view.counts();
            let offset: usize = cnts[..self.rank].iter().sum();
            let k = cnts[self.rank];
            recv.extend_from_slice(&view.slice()[offset..offset + k]);
            recv_counts.push(k);
            recv_bytes += payload_bytes::<T>(k);
            if src != self.rank {
                self.rec.recv(src, payload_bytes::<T>(k));
            }
        }
        self.shared.tokens.release();
        self.bytes_recv += recv_bytes.saturating_sub(self_bytes);
        self.tracker.pulse(COMM_MEM, send_bytes + recv_bytes);
        self.sync_with_cost(CollKind::Alltoall);
        self.exit();
    }

    /// Flat variable-length allgather: returns the rank-ordered
    /// concatenation of every rank's buffer plus the per-rank counts.
    pub fn allgatherv_flat<T: Clone + Send + Sync + 'static>(
        &mut self,
        send: Vec<T>,
    ) -> (Vec<T>, Vec<usize>) {
        let mut recv = Vec::new();
        let mut recv_counts = Vec::new();
        self.allgatherv_flat_into(&send, &mut recv, &mut recv_counts);
        (recv, recv_counts)
    }

    /// [`Comm::allgatherv_flat`] writing into caller-owned buffers, which
    /// are cleared and refilled (capacity is retained) — no allocation once
    /// the scratch has grown to the high-water mark.
    pub fn allgatherv_flat_into<T: Clone + Send + Sync + 'static>(
        &mut self,
        send: &[T],
        recv: &mut Vec<T>,
        recv_counts: &mut Vec<usize>,
    ) {
        let bytes = payload_bytes::<T>(send.len());
        self.enter(bytes, "allgatherv");
        if self.shared.procs > 1 {
            self.rec.sent_aggregate(bytes);
        }
        self.shared.tokens.acquire();
        self.deposit(Some(Box::new(FlatView::new(send, &[]))));
        self.shared.tokens.release();
        self.shared.barrier.wait();
        self.shared.tokens.acquire();
        recv.clear();
        recv_counts.clear();
        let mut total = 0usize;
        for r in 0..self.shared.procs {
            let view = self.peek_view::<T>(r);
            let part = view.slice();
            recv.extend_from_slice(part);
            recv_counts.push(part.len());
            total += part.len();
            if r != self.rank {
                self.rec.recv(r, payload_bytes::<T>(part.len()));
            }
        }
        self.shared.tokens.release();
        self.bytes_recv += payload_bytes::<T>(total).saturating_sub(bytes);
        self.tracker
            .pulse(COMM_MEM, bytes + payload_bytes::<T>(total));
        // Cost: the largest per-rank contribution bounds each doubling step.
        self.sync_with_cost(CollKind::Allgather);
        self.exit();
    }

    // ----- borrowed folds -----------------------------------------------------

    /// Exclusive prefix fold over a borrowed value: `fold_prev` is invoked
    /// once per lower-ranked peer, in rank order, with that peer's value.
    /// The caller owns the accumulator (typically reused level scratch
    /// initialized to the identity), so the collective itself allocates
    /// nothing. Cost-model and byte accounting are identical to
    /// [`Comm::scan_exclusive_sized`] with the same `bytes`.
    pub fn scan_exclusive_with<T, F>(&mut self, value: &T, bytes: u64, mut fold_prev: F)
    where
        T: Sync + 'static,
        F: FnMut(&T),
    {
        self.enter(bytes, "scan");
        if self.shared.procs > 1 {
            self.rec.sent_aggregate(bytes);
        }
        self.shared.tokens.acquire();
        self.deposit(Some(Box::new(FlatRef(value as *const T))));
        self.shared.tokens.release();
        self.shared.barrier.wait();
        self.shared.tokens.acquire();
        for r in 0..self.rank {
            let ptr = self.peek_ref::<T>(r);
            // SAFETY: the pointee is rank `r`'s borrowed `value`, which
            // lives until that rank passes the exit barrier — after every
            // read here.
            fold_prev(unsafe { &*ptr });
        }
        self.shared.tokens.release();
        if self.rank > 0 {
            self.bytes_recv += bytes;
            self.rec.recv_aggregate(bytes);
        }
        self.sync_with_cost(CollKind::Tree);
        self.exit();
    }

    /// All-reduce over borrowed values: `fold` is invoked once per rank, in
    /// rank order (own rank included), so folding into a caller-owned
    /// identity accumulator reproduces [`Comm::allreduce_sized`] without
    /// cloning or allocating. Cost-model and byte accounting are identical
    /// to `allreduce_sized` with the same `bytes`.
    pub fn allreduce_with<T, F>(&mut self, value: &T, bytes: u64, mut fold: F)
    where
        T: Sync + 'static,
        F: FnMut(usize, &T),
    {
        self.enter(bytes, "allreduce");
        if self.shared.procs > 1 {
            self.rec.sent_aggregate(bytes);
        }
        self.shared.tokens.acquire();
        self.deposit(Some(Box::new(FlatRef(value as *const T))));
        self.shared.tokens.release();
        self.shared.barrier.wait();
        self.shared.tokens.acquire();
        for r in 0..self.shared.procs {
            let ptr = self.peek_ref::<T>(r);
            // SAFETY: see scan_exclusive_with.
            fold(r, unsafe { &*ptr });
        }
        self.shared.tokens.release();
        if self.shared.procs > 1 {
            self.bytes_recv += bytes;
            self.rec.recv_aggregate(bytes);
        }
        self.sync_with_cost(CollKind::Tree);
        self.exit();
    }

    // ----- point-to-point -----------------------------------------------------

    /// Send `value` to rank `dst`. Never blocks. FIFO per (src, dst) pair;
    /// the receiver must `recv` with the matching type.
    pub fn send<T: Send + 'static>(&mut self, dst: usize, value: T) {
        let bytes = std::mem::size_of::<T>() as u64;
        let start = self.rec.is_enabled().then(|| self.counters());
        let depart_ns = self.clock.now_ns();
        self.clock.charge_comm(self.shared.cost.ptp(bytes));
        self.bytes_sent += bytes;
        self.msgs_sent += 1;
        if let Some(start) = start {
            self.rec.sent(dst, bytes);
            let end = self.counters();
            self.rec.collective("send", start, end);
        }
        self.senders[dst]
            .send(PtpMsg {
                data: Box::new(value),
                depart_ns,
                bytes,
            })
            .expect("mpsim channel closed");
    }

    /// Send a vector to rank `dst` (payload-sized accounting).
    pub fn send_vec<T: Send + 'static>(&mut self, dst: usize, value: Vec<T>) {
        let bytes = payload_bytes::<T>(value.len());
        let start = self.rec.is_enabled().then(|| self.counters());
        let depart_ns = self.clock.now_ns();
        self.clock.charge_comm(self.shared.cost.ptp(bytes));
        self.bytes_sent += bytes;
        self.msgs_sent += 1;
        if let Some(start) = start {
            self.rec.sent(dst, bytes);
            let end = self.counters();
            self.rec.collective("send", start, end);
        }
        self.senders[dst]
            .send(PtpMsg {
                data: Box::new(value),
                depart_ns,
                bytes,
            })
            .expect("mpsim channel closed");
    }

    /// Receive the next message from rank `src`, blocking if necessary.
    pub fn recv<T: Send + 'static>(&mut self, src: usize) -> T {
        self.clock.stop_compute();
        let start = self.rec.is_enabled().then(|| self.counters());
        self.shared.tokens.release();
        let msg = self.receivers[src].recv().expect("mpsim channel closed");
        self.clock
            .sync_to(msg.depart_ns + self.shared.cost.ptp(msg.bytes));
        self.bytes_recv += msg.bytes;
        self.tracker.pulse(COMM_MEM, msg.bytes);
        if let Some(start) = start {
            self.rec.recv(src, msg.bytes);
            let end = self.counters();
            self.rec.collective("recv", start, end);
        }
        self.shared.tokens.acquire();
        self.clock.start_compute();
        downcast(msg.data)
    }

    /// Receive a vector sent with [`Comm::send_vec`].
    pub fn recv_vec<T: Send + 'static>(&mut self, src: usize) -> Vec<T> {
        self.recv::<Vec<T>>(src)
    }
}

#[cfg(test)]
mod tests {
    use crate::machine::{run, MachineCfg};

    #[test]
    fn bcast_from_each_root() {
        for root in 0..4 {
            let cfg = MachineCfg::new(4);
            let r = run(&cfg, |c| {
                let v = if c.rank() == root {
                    Some(root * 100 + 7)
                } else {
                    None
                };
                c.bcast(root, v)
            });
            assert!(r.outputs.iter().all(|&v| v == root * 100 + 7));
        }
    }

    #[test]
    fn allreduce_sum_and_max() {
        let cfg = MachineCfg::new(7);
        let r = run(&cfg, |c| {
            let sum = c.allreduce(c.rank() as u64 + 1, |a, b| *a += *b);
            let max = c.allreduce(c.rank() as u64, |a, b| *a = (*a).max(*b));
            (sum, max)
        });
        for &(sum, max) in &r.outputs {
            assert_eq!(sum, 28);
            assert_eq!(max, 6);
        }
    }

    #[test]
    fn reduce_only_root_gets_result() {
        let cfg = MachineCfg::new(5);
        let r = run(&cfg, |c| c.reduce(2, 1u32, |a, b| *a += *b));
        for (rank, out) in r.outputs.iter().enumerate() {
            if rank == 2 {
                assert_eq!(*out, Some(5));
            } else {
                assert_eq!(*out, None);
            }
        }
    }

    #[test]
    fn scan_exclusive_prefix_sums() {
        let cfg = MachineCfg::new(6);
        let r = run(&cfg, |c| {
            c.scan_exclusive((c.rank() + 1) as u64, 0u64, |a, b| *a += *b)
        });
        // prefix sums of [1,2,3,4,5,6] exclusive: [0,1,3,6,10,15]
        assert_eq!(r.outputs, vec![0, 1, 3, 6, 10, 15]);
    }

    #[test]
    fn gather_and_allgather() {
        let cfg = MachineCfg::new(4);
        let r = run(&cfg, |c| {
            let g = c.gather(0, c.rank() as u32);
            let ag = c.allgather(c.rank() as u32 * 2);
            (g, ag)
        });
        assert_eq!(r.outputs[0].0, Some(vec![0, 1, 2, 3]));
        assert_eq!(r.outputs[3].0, None);
        for (_, ag) in &r.outputs {
            assert_eq!(*ag, vec![0, 2, 4, 6]);
        }
    }

    #[test]
    fn allgatherv_concatenates_in_rank_order() {
        let cfg = MachineCfg::new(3);
        let r = run(&cfg, |c| {
            let mine: Vec<u32> = (0..c.rank() as u32 + 1)
                .map(|i| c.rank() as u32 * 10 + i)
                .collect();
            c.allgatherv(mine)
        });
        for out in &r.outputs {
            assert_eq!(*out, vec![0, 10, 11, 20, 21, 22]);
        }
    }

    #[test]
    fn alltoallv_is_transpose() {
        let p = 5;
        let cfg = MachineCfg::new(p);
        let r = run(&cfg, |c| {
            let bufs: Vec<Vec<(usize, usize)>> =
                (0..p).map(|d| vec![(c.rank(), d); c.rank() + d]).collect();
            c.alltoallv(bufs)
        });
        for (me, out) in r.outputs.iter().enumerate() {
            for (src, buf) in out.iter().enumerate() {
                assert_eq!(buf.len(), src + me);
                assert!(buf.iter().all(|&(s, d)| s == src && d == me));
            }
        }
    }

    #[test]
    fn alltoall_fixed() {
        let cfg = MachineCfg::new(4);
        let r = run(&cfg, |c| {
            let items: Vec<u32> = (0..4).map(|d| (c.rank() * 10 + d) as u32).collect();
            c.alltoall(items)
        });
        // rank m receives [s*10+m for s in 0..4]
        for (m, out) in r.outputs.iter().enumerate() {
            let want: Vec<u32> = (0..4).map(|s| (s * 10 + m) as u32).collect();
            assert_eq!(*out, want);
        }
    }

    #[test]
    fn ptp_ring() {
        let p = 6;
        let cfg = MachineCfg::new(p);
        let r = run(&cfg, |c| {
            let next = (c.rank() + 1) % p;
            let prev = (c.rank() + p - 1) % p;
            c.send(next, c.rank() as u64);
            c.recv::<u64>(prev)
        });
        for (me, got) in r.outputs.iter().enumerate() {
            assert_eq!(*got as usize, (me + p - 1) % p);
        }
    }

    #[test]
    fn ptp_vec_roundtrip() {
        let cfg = MachineCfg::new(2);
        let r = run(&cfg, |c| {
            if c.rank() == 0 {
                c.send_vec(1, vec![1u8, 2, 3]);
                Vec::new()
            } else {
                c.recv_vec::<u8>(0)
            }
        });
        assert_eq!(r.outputs[1], vec![1, 2, 3]);
    }

    #[test]
    fn collective_clock_sync_monotonic() {
        let cfg = MachineCfg::new(4);
        let r = run(&cfg, |c| {
            c.charge_compute((c.rank() as u64 + 1) * 1000);
            c.barrier();
            c.now_ns()
        });
        // After a barrier all clocks agree, and equal at least the slowest
        // rank's entry time.
        let t = r.outputs[0];
        assert!(r.outputs.iter().all(|&x| x == t));
        assert!(t >= 4000);
    }

    #[test]
    fn comm_bytes_accounted() {
        let cfg = MachineCfg::new(2);
        let r = run(&cfg, |c| {
            let _ = c.allgatherv(vec![0u64; 100]);
        });
        for rs in &r.stats.ranks {
            assert!(rs.bytes_sent >= 800);
            assert!(rs.peak_mem >= 1600); // send + concatenated recv pulse
        }
    }

    #[test]
    fn mixed_type_ptp_fifo_per_pair() {
        let cfg = MachineCfg::new(2);
        let r = run(&cfg, |c| {
            if c.rank() == 0 {
                c.send(1, 7u32);
                c.send_vec(1, vec![1.5f64, 2.5]);
                c.send(1, "done".to_string());
                (0, vec![], String::new())
            } else {
                let a = c.recv::<u32>(0);
                let b = c.recv_vec::<f64>(0);
                let s = c.recv::<String>(0);
                (a, b, s)
            }
        });
        assert_eq!(r.outputs[1], (7, vec![1.5, 2.5], "done".to_string()));
    }

    #[test]
    fn allgatherv_with_empty_contributions() {
        let cfg = MachineCfg::new(4);
        let r = run(&cfg, |c| {
            let mine: Vec<u8> = if c.rank() == 2 { vec![9, 9] } else { vec![] };
            c.allgatherv(mine)
        });
        for out in &r.outputs {
            assert_eq!(*out, vec![9, 9]);
        }
    }

    #[test]
    fn vector_payload_scan() {
        let cfg = MachineCfg::new(3);
        let r = run(&cfg, |c| {
            let mine = vec![c.rank() as u64 + 1; 4];
            c.scan_exclusive_sized(mine, vec![0u64; 4], 32, |a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += *y;
                }
            })
        });
        assert_eq!(r.outputs[0], vec![0; 4]);
        assert_eq!(r.outputs[1], vec![1; 4]);
        assert_eq!(r.outputs[2], vec![3; 4]);
    }

    #[test]
    fn barrier_charges_cost_model() {
        use crate::cost::CostModel;
        let cfg = MachineCfg {
            cost: CostModel::t3d(),
            ..MachineCfg::new(4)
        };
        let r = run(&cfg, |c| {
            c.barrier();
            c.barrier();
            c.now_ns()
        });
        let want = 2 * CostModel::t3d().barrier(4);
        assert!(r.outputs.iter().all(|&t| t == want), "{:?}", r.outputs);
    }

    #[test]
    fn replay_overrides_measured_durations() {
        use std::sync::Arc;
        // First run: record real segments (3 segments per rank: begin→b1,
        // b1→b2, b2→finish).
        let cfg = MachineCfg::measured(2, crate::cost::CostModel::free());
        let first = run(&cfg, |c| {
            c.barrier();
            c.barrier();
        });
        let segs: Vec<Vec<u64>> = first
            .stats
            .ranks
            .iter()
            .map(|r| r.segments.iter().map(|_| 1000u64).collect())
            .collect();
        let n_segs = segs[0].len();
        let cfg2 = MachineCfg {
            replay: Some(Arc::new(segs)),
            ..cfg
        };
        let second = run(&cfg2, |c| {
            c.barrier();
            c.barrier();
        });
        for r in &second.stats.ranks {
            assert_eq!(r.compute_ns, n_segs as u64 * 1000);
        }
    }

    #[test]
    fn stress_many_collectives_many_ranks() {
        let cfg = MachineCfg::new(16);
        let r = run(&cfg, |c| {
            let mut acc = 0u64;
            for round in 0..20u64 {
                acc += c.allreduce(round + c.rank() as u64, |a, b| *a += *b);
            }
            acc
        });
        assert!(r.outputs.iter().all(|&v| v == r.outputs[0]));
    }

    /// Cost-model config so accounting comparisons cover modelled comm time,
    /// not just byte counters.
    fn t3d_cfg(p: usize) -> MachineCfg {
        MachineCfg {
            cost: crate::cost::CostModel::t3d(),
            ..MachineCfg::new(p)
        }
    }

    fn assert_same_accounting(a: &crate::RunStats, b: &crate::RunStats) {
        for (x, y) in a.ranks.iter().zip(&b.ranks) {
            assert_eq!(x.clock_ns, y.clock_ns);
            assert_eq!(x.comm_ns, y.comm_ns);
            assert_eq!(x.bytes_sent, y.bytes_sent);
            assert_eq!(x.bytes_recv, y.bytes_recv);
            assert_eq!(x.msgs_sent, y.msgs_sent);
            assert_eq!(x.peak_mem, y.peak_mem);
        }
    }

    #[test]
    fn flat_alltoallv_matches_nested_and_accounting() {
        let p = 5;
        // Same logical exchange as `alltoallv_is_transpose`, once through the
        // nested API and once through the flat one.
        let nested = run(&t3d_cfg(p), |c| {
            let bufs: Vec<Vec<(usize, usize)>> =
                (0..p).map(|d| vec![(c.rank(), d); c.rank() + d]).collect();
            c.alltoallv(bufs)
        });
        let flat = run(&t3d_cfg(p), |c| {
            let counts: Vec<usize> = (0..p).map(|d| c.rank() + d).collect();
            let mut send = Vec::new();
            for d in 0..p {
                send.extend(std::iter::repeat_n((c.rank(), d), c.rank() + d));
            }
            c.alltoallv_flat(send, &counts)
        });
        for (me, (recv, cnts)) in flat.outputs.iter().enumerate() {
            // Element-for-element: flat recv is the nested buffers, in src
            // order, concatenated.
            let want: Vec<(usize, usize)> = nested.outputs[me].iter().flatten().copied().collect();
            assert_eq!(*recv, want);
            let want_counts: Vec<usize> = nested.outputs[me].iter().map(Vec::len).collect();
            assert_eq!(*cnts, want_counts);
        }
        assert_same_accounting(&nested.stats, &flat.stats);
    }

    #[test]
    fn flat_allgatherv_matches_nested_and_accounting() {
        let p = 4;
        let nested = run(&t3d_cfg(p), |c| {
            let mine: Vec<u32> = (0..c.rank() as u32 + 1)
                .map(|i| c.rank() as u32 * 10 + i)
                .collect();
            c.allgatherv(mine)
        });
        let flat = run(&t3d_cfg(p), |c| {
            let mine: Vec<u32> = (0..c.rank() as u32 + 1)
                .map(|i| c.rank() as u32 * 10 + i)
                .collect();
            c.allgatherv_flat(mine)
        });
        for (me, (recv, cnts)) in flat.outputs.iter().enumerate() {
            assert_eq!(*recv, nested.outputs[me]);
            assert_eq!(*cnts, (1..=p).collect::<Vec<usize>>());
        }
        assert_same_accounting(&nested.stats, &flat.stats);
    }

    #[test]
    fn scan_exclusive_with_matches_sized() {
        let p = 6;
        let sized = run(&t3d_cfg(p), |c| {
            let mine = vec![c.rank() as u64 + 1; 4];
            c.scan_exclusive_sized(mine, vec![0u64; 4], 32, |a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += *y;
                }
            })
        });
        let borrowed = run(&t3d_cfg(p), |c| {
            let mine = vec![c.rank() as u64 + 1; 4];
            let mut acc = vec![0u64; 4];
            c.scan_exclusive_with(&mine, 32, |prev: &Vec<u64>| {
                for (x, y) in acc.iter_mut().zip(prev) {
                    *x += *y;
                }
            });
            acc
        });
        assert_eq!(sized.outputs, borrowed.outputs);
        assert_same_accounting(&sized.stats, &borrowed.stats);
    }

    #[test]
    fn allreduce_with_matches_sized() {
        let p = 5;
        let sized = run(&t3d_cfg(p), |c| {
            let mine = vec![c.rank() as u64; 3];
            c.allreduce_sized(mine, 24, |a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += *y;
                }
            })
        });
        let borrowed = run(&t3d_cfg(p), |c| {
            let mine = vec![c.rank() as u64; 3];
            let mut acc = vec![0u64; 3];
            c.allreduce_with(&mine, 24, |_src, other: &Vec<u64>| {
                for (x, y) in acc.iter_mut().zip(other) {
                    *x += *y;
                }
            });
            acc
        });
        assert_eq!(sized.outputs, borrowed.outputs);
        assert_same_accounting(&sized.stats, &borrowed.stats);
    }

    #[test]
    fn flat_exchange_with_empty_regions() {
        // Only rank 1 sends anything, and only to rank 2; every other region
        // is zero-length.
        let p = 4;
        let r = run(&MachineCfg::new(p), |c| {
            let mut counts = vec![0usize; p];
            let send: Vec<u8> = if c.rank() == 1 {
                counts[2] = 3;
                vec![7, 8, 9]
            } else {
                Vec::new()
            };
            c.alltoallv_flat(send, &counts)
        });
        for (me, (recv, cnts)) in r.outputs.iter().enumerate() {
            if me == 2 {
                assert_eq!(*recv, vec![7, 8, 9]);
                assert_eq!(*cnts, vec![0, 3, 0, 0]);
            } else {
                assert!(recv.is_empty());
                assert_eq!(*cnts, vec![0; p]);
            }
        }
    }
}
