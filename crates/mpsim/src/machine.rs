//! The virtual machine: spawns `p` ranks as threads, wires up the shared
//! communication boards and point-to-point channels, and collects statistics.

use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Barrier, Mutex};

use crate::clock::SimClock;
pub use crate::clock::TimingMode;
use crate::comm::Comm;
use crate::cost::CostModel;
use crate::mem::MemTracker;
use crate::stats::{RankStats, RunStats};

/// Configuration for a machine run.
#[derive(Clone, Debug)]
pub struct MachineCfg {
    /// Number of virtual processors.
    pub procs: usize,
    /// Communication cost model.
    pub cost: CostModel,
    /// How computation time is charged (see [`TimingMode`]).
    pub timing: TimingMode,
    /// Number of compute tokens in [`TimingMode::Measured`]; `0` means `1`
    /// (fully exclusive measured segments — the accurate default).
    pub compute_tokens: usize,
    /// Recorded per-rank segment durations to replay instead of live
    /// measurement (outer index = rank). A deterministic SPMD program runs
    /// the same segments every time, so replaying the elementwise minimum
    /// of several measured runs filters out host noise (CPU steal,
    /// preemption) while keeping the honest per-segment costs.
    pub replay: Option<Arc<Vec<Vec<u64>>>>,
    /// When set, every rank carries an enabled [`obs::Recorder`] with these
    /// buffer capacities and `RankStats::trace` is populated after the run.
    /// `None` (the default) is strictly free: no allocation, no clock or
    /// segment effects — simulated results are byte-identical to a build
    /// without the recorder.
    pub trace: Option<obs::TraceConfig>,
}

impl MachineCfg {
    /// Default configuration: free-running timing, T3D cost model.
    pub fn new(procs: usize) -> Self {
        MachineCfg {
            procs,
            cost: CostModel::default(),
            timing: TimingMode::Free,
            compute_tokens: 0,
            replay: None,
            trace: None,
        }
    }

    /// Configuration for benchmark runs: measured computation time.
    pub fn measured(procs: usize, cost: CostModel) -> Self {
        MachineCfg {
            procs,
            cost,
            timing: TimingMode::Measured,
            compute_tokens: 0,
            replay: None,
            trace: None,
        }
    }

    /// This configuration with per-rank tracing enabled (default recorder
    /// capacities).
    pub fn traced(mut self) -> Self {
        self.trace = Some(obs::TraceConfig::default());
        self
    }

    fn effective_tokens(&self) -> usize {
        if self.timing != TimingMode::Measured {
            return usize::MAX; // tokens disabled
        }
        if self.compute_tokens > 0 {
            self.compute_tokens
        } else {
            // One token: measured segments (and token-guarded collective
            // copy phases) run exclusively, so their wall time is a clean
            // single-processor measurement regardless of oversubscription.
            1
        }
    }
}

/// One cache line per entry: rank-indexed atomics in `Shared` would
/// otherwise false-share and perturb measured segments.
#[repr(align(128))]
pub(crate) struct CachePadded<T>(T);

impl<T> CachePadded<T> {
    pub(crate) fn new(value: T) -> Self {
        CachePadded(value)
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// Apply a CPU affinity mask (up to 1024 cores) to the calling thread via
/// a raw `sched_setaffinity` syscall; the workspace builds without libc.
/// Failure is ignored — pinning is a measurement-quality optimization.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn set_affinity(mask: &[u64; 16]) {
    // SAFETY: syscall 203 = sched_setaffinity(pid=0, len, mask) reads
    // `len` bytes from a live, properly-sized local buffer.
    unsafe {
        let mut ret: isize = 203;
        std::arch::asm!(
            "syscall",
            inout("rax") ret,
            in("rdi") 0usize,
            in("rsi") std::mem::size_of::<[u64; 16]>(),
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack, readonly)
        );
        let _ = ret;
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
fn set_affinity(_mask: &[u64; 16]) {}

/// Pin the calling thread to one CPU core (no-op on failure or unsupported
/// targets).
fn pin_to_core(core: usize) {
    let mut mask = [0u64; 16];
    if core < 1024 {
        mask[core / 64] |= 1 << (core % 64);
        set_affinity(&mask);
    }
}

/// Pin the calling thread to every core except core 0.
fn pin_to_others(ncores: usize) {
    let mut mask = [0u64; 16];
    for c in 1..ncores.clamp(2, 1024) {
        mask[c / 64] |= 1 << (c % 64);
    }
    set_affinity(&mask);
}

/// Counting semaphore gating measured compute segments.
///
/// FIFO handoff built on per-thread parking: a release wakes exactly one
/// waiter and nobody spins. This matters for measurement quality — with a
/// condvar- or spin-based semaphore, every barrier release stampedes ~p
/// waiters onto the lock, stealing CPU from the one measured segment that
/// is running and systematically inflating its wall time.
pub(crate) struct Tokens {
    state: Mutex<TokenState>,
    enabled: bool,
    /// Pin token holders to core 0 (measured mode on multi-core hosts):
    /// the one measured segment owns a core; the other ranks' wakeup storms
    /// stay on the remaining cores and cannot perturb the measurement.
    pin: bool,
    host_cores: usize,
}

struct TokenState {
    avail: usize,
    queue: std::collections::VecDeque<std::thread::Thread>,
}

impl Tokens {
    fn new(count: usize) -> Self {
        let host_cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let enabled = count != usize::MAX;
        Tokens {
            state: Mutex::new(TokenState {
                avail: if enabled { count } else { 0 },
                queue: std::collections::VecDeque::new(),
            }),
            enabled,
            pin: enabled && count == 1 && host_cores >= 2,
            host_cores,
        }
    }

    /// Confine the calling (non-token-holding) thread to the non-measured
    /// cores. Called once per rank thread at machine start.
    pub(crate) fn pin_worker(&self) {
        if self.pin {
            pin_to_others(self.host_cores);
        }
    }

    pub(crate) fn acquire(&self) {
        if !self.enabled {
            return;
        }
        {
            let mut s = self.state.lock().unwrap();
            if s.avail > 0 && s.queue.is_empty() {
                s.avail -= 1;
                drop(s);
                if self.pin {
                    pin_to_core(0);
                }
                return;
            }
            s.queue.push_back(std::thread::current());
        }
        // Park until a release hands the token to this thread. Spurious
        // unparks are possible, so re-check queue membership.
        loop {
            std::thread::park();
            let s = self.state.lock().unwrap();
            let me = std::thread::current().id();
            if !s.queue.iter().any(|t| t.id() == me) {
                // A release removed us from the queue: the token is ours.
                drop(s);
                if self.pin {
                    pin_to_core(0);
                }
                return;
            }
            drop(s);
        }
    }

    pub(crate) fn release(&self) {
        if !self.enabled {
            return;
        }
        if self.pin {
            pin_to_others(self.host_cores);
        }
        let mut s = self.state.lock().unwrap();
        if let Some(next) = s.queue.pop_front() {
            // Direct handoff: avail stays as-is, the waiter owns the token.
            drop(s);
            next.unpark();
        } else {
            s.avail += 1;
        }
    }
}

/// A point-to-point message in flight.
pub(crate) struct PtpMsg {
    pub data: Box<dyn Any + Send>,
    /// Sender's simulated clock at departure.
    pub depart_ns: u64,
    pub bytes: u64,
}

type Slot = Mutex<Option<Box<dyn Any + Send>>>;

/// State shared by all ranks of one machine.
pub(crate) struct Shared {
    pub procs: usize,
    pub cost: CostModel,
    pub barrier: Barrier,
    /// One deposit slot per rank, for broadcast/reduce/scan/gather-style
    /// collectives.
    pub slots: Vec<Slot>,
    /// Per-rank clock board: each rank publishes its clock at collective
    /// entry; all ranks synchronize to the max plus the collective's cost.
    pub clock_board: Vec<CachePadded<AtomicU64>>,
    /// Per-rank payload-size board for collective cost computation.
    pub bytes_board: Vec<CachePadded<AtomicU64>>,
    pub tokens: Tokens,
}

impl Shared {
    fn new(cfg: &MachineCfg) -> Self {
        let p = cfg.procs;
        Shared {
            procs: p,
            cost: cfg.cost,
            barrier: Barrier::new(p),
            slots: (0..p).map(|_| Mutex::new(None)).collect(),
            clock_board: (0..p)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            bytes_board: (0..p)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            tokens: Tokens::new(cfg.effective_tokens()),
        }
    }

    pub(crate) fn board_max(&self) -> (u64, u64) {
        let mut max_clock = 0;
        let mut max_bytes = 0;
        for r in 0..self.procs {
            max_clock = max_clock.max(self.clock_board[r].load(Ordering::Acquire));
            max_bytes = max_bytes.max(self.bytes_board[r].load(Ordering::Acquire));
        }
        (max_clock, max_bytes)
    }
}

/// Result of a machine run: the per-rank outputs (rank order) and statistics.
#[derive(Debug)]
pub struct RunResult<T> {
    pub outputs: Vec<T>,
    pub stats: RunStats,
}

/// Run `f` as an SPMD program on `cfg.procs` virtual processors.
///
/// `f` is invoked once per rank with that rank's [`Comm`] handle. The
/// returned outputs are ordered by rank. Panics in any rank propagate.
pub fn run<T, F>(cfg: &MachineCfg, f: F) -> RunResult<T>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    assert!(cfg.procs >= 1, "machine needs at least one processor");
    let p = cfg.procs;
    let shared = Arc::new(Shared::new(cfg));

    // p×p mesh of point-to-point channels.
    let mut senders: Vec<Vec<Option<Sender<PtpMsg>>>> = (0..p).map(|_| Vec::new()).collect();
    let mut receivers: Vec<Vec<Option<Receiver<PtpMsg>>>> = (0..p).map(|_| Vec::new()).collect();
    for srow in senders.iter_mut() {
        for rrow in receivers.iter_mut() {
            let (tx, rx) = channel();
            srow.push(Some(tx));
            rrow.push(Some(rx));
        }
    }

    let mut rank_ctx: Vec<Option<Comm>> = Vec::with_capacity(p);
    for (rank, (srow, rrow)) in senders.into_iter().zip(receivers).enumerate() {
        let rec = match cfg.trace {
            Some(tc) => obs::Recorder::enabled(rank, p, tc),
            None => obs::Recorder::disabled(),
        };
        let mut comm = Comm::new(
            rank,
            Arc::clone(&shared),
            SimClock::new(cfg.timing),
            Arc::new(MemTracker::new()),
            srow.into_iter().map(|s| s.unwrap()).collect(),
            rrow.into_iter().map(|r| r.unwrap()).collect(),
            rec,
        );
        if let Some(replay) = &cfg.replay {
            comm.set_replay(Arc::new(replay[rank].clone()));
        }
        rank_ctx.push(Some(comm));
    }

    let mut results: Vec<Option<(T, RankStats)>> = (0..p).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for (rank, (ctx, out)) in rank_ctx.iter_mut().zip(results.iter_mut()).enumerate() {
            let fref = &f;
            let mut comm = ctx.take().unwrap();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("mpsim-rank-{rank}"))
                    .spawn_scoped(scope, move || {
                        comm.pin_worker();
                        comm.begin();
                        let value = fref(&mut comm);
                        let stats = comm.finish();
                        *out = Some((value, stats));
                    })
                    .expect("failed to spawn rank thread"),
            );
        }
        for h in handles {
            if let Err(e) = h.join() {
                std::panic::resume_unwind(e);
            }
        }
    });

    let mut outputs = Vec::with_capacity(p);
    let mut ranks = Vec::with_capacity(p);
    for slot in results {
        let (v, s) = slot.expect("rank produced no output");
        outputs.push(v);
        ranks.push(s);
    }
    RunResult {
        outputs,
        stats: RunStats { ranks },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_are_rank_ordered() {
        let cfg = MachineCfg::new(8);
        let r = run(&cfg, |c| c.rank() * 10);
        assert_eq!(r.outputs, vec![0, 10, 20, 30, 40, 50, 60, 70]);
        assert_eq!(r.stats.procs(), 8);
    }

    #[test]
    fn single_proc_works() {
        let cfg = MachineCfg::new(1);
        let r = run(&cfg, |c| {
            c.barrier();
            c.size()
        });
        assert_eq!(r.outputs, vec![1]);
    }

    #[test]
    fn many_procs_oversubscribe_fine() {
        let cfg = MachineCfg::new(64);
        let r = run(&cfg, |c| {
            c.barrier();
            c.rank()
        });
        assert_eq!(r.outputs.len(), 64);
    }

    #[test]
    fn measured_mode_charges_compute() {
        let cfg = MachineCfg::measured(4, CostModel::free());
        let r = run(&cfg, |_c| {
            // Busy loop long enough to register on the clock; black_box
            // keeps the compiler from folding the loop away.
            let mut acc = 0u64;
            for i in 0..5_000_000u64 {
                acc = acc.wrapping_add(std::hint::black_box(i * i));
            }
            acc
        });
        for rs in &r.stats.ranks {
            assert!(rs.compute_ns > 0, "compute time not measured");
        }
    }

    #[test]
    #[should_panic]
    fn rank_panic_propagates() {
        let cfg = MachineCfg::new(2);
        let _ = run(&cfg, |c| {
            if c.rank() == 1 {
                panic!("boom");
            }
            // Rank 0 must not block on a collective here, or the machine
            // deadlocks instead of propagating. Plain return is fine.
            0
        });
    }

    #[test]
    fn tokens_acquire_release() {
        let t = Tokens::new(2);
        t.acquire();
        t.acquire();
        t.release();
        t.acquire();
        t.release();
        t.release();
    }
}
