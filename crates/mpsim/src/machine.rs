//! The virtual machine: spawns `p` ranks as threads, wires up the shared
//! communication boards and point-to-point channels, and collects statistics.

use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Barrier, Mutex};

use crate::clock::SimClock;
pub use crate::clock::TimingMode;
use crate::comm::Comm;
use crate::cost::CostModel;
use crate::fault::{Crash, CrashSignal, FaultPlan};
use crate::mem::MemTracker;
use crate::stats::{RankStats, RunStats};

/// Configuration for a machine run.
#[derive(Clone, Debug)]
pub struct MachineCfg {
    /// Number of virtual processors.
    pub procs: usize,
    /// Communication cost model.
    pub cost: CostModel,
    /// How computation time is charged (see [`TimingMode`]).
    pub timing: TimingMode,
    /// Number of compute tokens in [`TimingMode::Measured`]; `0` means `1`
    /// (fully exclusive measured segments — the accurate default).
    pub compute_tokens: usize,
    /// Recorded per-rank segment durations to replay instead of live
    /// measurement (outer index = rank). A deterministic SPMD program runs
    /// the same segments every time, so replaying the elementwise minimum
    /// of several measured runs filters out host noise (CPU steal,
    /// preemption) while keeping the honest per-segment costs.
    pub replay: Option<Arc<Vec<Vec<u64>>>>,
    /// When set, every rank carries an enabled [`obs::Recorder`] with these
    /// buffer capacities and `RankStats::trace` is populated after the run.
    /// `None` (the default) is strictly free: no allocation, no clock or
    /// segment effects — simulated results are byte-identical to a build
    /// without the recorder.
    pub trace: Option<obs::TraceConfig>,
    /// Deterministic fault schedule injected inside the collectives (see
    /// [`crate::fault`]). `None` (the default) is strictly free: one
    /// `Option` check per collective, no charges, byte-identical simulated
    /// costs to a build without the fault layer. Plans with crashes must be
    /// run through [`try_run`]; [`run`] panics if one fires.
    pub fault: Option<Arc<FaultPlan>>,
}

impl MachineCfg {
    /// Default configuration: free-running timing, T3D cost model.
    pub fn new(procs: usize) -> Self {
        MachineCfg {
            procs,
            cost: CostModel::default(),
            timing: TimingMode::Free,
            compute_tokens: 0,
            replay: None,
            trace: None,
            fault: None,
        }
    }

    /// Configuration for benchmark runs: measured computation time.
    pub fn measured(procs: usize, cost: CostModel) -> Self {
        MachineCfg {
            procs,
            cost,
            timing: TimingMode::Measured,
            compute_tokens: 0,
            replay: None,
            trace: None,
            fault: None,
        }
    }

    /// This configuration with per-rank tracing enabled (default recorder
    /// capacities).
    pub fn traced(mut self) -> Self {
        self.trace = Some(obs::TraceConfig::default());
        self
    }

    fn effective_tokens(&self) -> usize {
        if self.timing != TimingMode::Measured {
            return usize::MAX; // tokens disabled
        }
        if self.compute_tokens > 0 {
            self.compute_tokens
        } else {
            // One token: measured segments (and token-guarded collective
            // copy phases) run exclusively, so their wall time is a clean
            // single-processor measurement regardless of oversubscription.
            1
        }
    }
}

/// One cache line per entry: rank-indexed atomics in `Shared` would
/// otherwise false-share and perturb measured segments.
#[repr(align(128))]
pub(crate) struct CachePadded<T>(T);

impl<T> CachePadded<T> {
    pub(crate) fn new(value: T) -> Self {
        CachePadded(value)
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// Apply a CPU affinity mask (up to 1024 cores) to the calling thread via
/// a raw `sched_setaffinity` syscall; the workspace builds without libc.
/// Failure is ignored — pinning is a measurement-quality optimization.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn set_affinity(mask: &[u64; 16]) {
    // SAFETY: syscall 203 = sched_setaffinity(pid=0, len, mask) reads
    // `len` bytes from a live, properly-sized local buffer.
    unsafe {
        let mut ret: isize = 203;
        std::arch::asm!(
            "syscall",
            inout("rax") ret,
            in("rdi") 0usize,
            in("rsi") std::mem::size_of::<[u64; 16]>(),
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack, readonly)
        );
        let _ = ret;
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
fn set_affinity(_mask: &[u64; 16]) {}

/// Pin the calling thread to one CPU core (no-op on failure or unsupported
/// targets).
fn pin_to_core(core: usize) {
    let mut mask = [0u64; 16];
    if core < 1024 {
        mask[core / 64] |= 1 << (core % 64);
        set_affinity(&mask);
    }
}

/// Pin the calling thread to every core except core 0.
fn pin_to_others(ncores: usize) {
    let mut mask = [0u64; 16];
    for c in 1..ncores.clamp(2, 1024) {
        mask[c / 64] |= 1 << (c % 64);
    }
    set_affinity(&mask);
}

/// Counting semaphore gating measured compute segments.
///
/// FIFO handoff built on per-thread parking: a release wakes exactly one
/// waiter and nobody spins. This matters for measurement quality — with a
/// condvar- or spin-based semaphore, every barrier release stampedes ~p
/// waiters onto the lock, stealing CPU from the one measured segment that
/// is running and systematically inflating its wall time.
pub(crate) struct Tokens {
    state: Mutex<TokenState>,
    enabled: bool,
    /// Pin token holders to core 0 (measured mode on multi-core hosts):
    /// the one measured segment owns a core; the other ranks' wakeup storms
    /// stay on the remaining cores and cannot perturb the measurement.
    pin: bool,
    host_cores: usize,
}

struct TokenState {
    avail: usize,
    queue: std::collections::VecDeque<std::thread::Thread>,
}

impl Tokens {
    fn new(count: usize) -> Self {
        let host_cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let enabled = count != usize::MAX;
        Tokens {
            state: Mutex::new(TokenState {
                avail: if enabled { count } else { 0 },
                queue: std::collections::VecDeque::new(),
            }),
            enabled,
            pin: enabled && count == 1 && host_cores >= 2,
            host_cores,
        }
    }

    /// Confine the calling (non-token-holding) thread to the non-measured
    /// cores. Called once per rank thread at machine start.
    pub(crate) fn pin_worker(&self) {
        if self.pin {
            pin_to_others(self.host_cores);
        }
    }

    pub(crate) fn acquire(&self) {
        if !self.enabled {
            return;
        }
        {
            let mut s = self.state.lock().unwrap();
            if s.avail > 0 && s.queue.is_empty() {
                s.avail -= 1;
                drop(s);
                if self.pin {
                    pin_to_core(0);
                }
                return;
            }
            s.queue.push_back(std::thread::current());
        }
        // Park until a release hands the token to this thread. Spurious
        // unparks are possible, so re-check queue membership.
        loop {
            std::thread::park();
            let s = self.state.lock().unwrap();
            let me = std::thread::current().id();
            if !s.queue.iter().any(|t| t.id() == me) {
                // A release removed us from the queue: the token is ours.
                drop(s);
                if self.pin {
                    pin_to_core(0);
                }
                return;
            }
            drop(s);
        }
    }

    pub(crate) fn release(&self) {
        if !self.enabled {
            return;
        }
        if self.pin {
            pin_to_others(self.host_cores);
        }
        let mut s = self.state.lock().unwrap();
        if let Some(next) = s.queue.pop_front() {
            // Direct handoff: avail stays as-is, the waiter owns the token.
            drop(s);
            next.unpark();
        } else {
            s.avail += 1;
        }
    }
}

/// A point-to-point message in flight.
pub(crate) struct PtpMsg {
    pub data: Box<dyn Any + Send>,
    /// Sender's simulated clock at departure.
    pub depart_ns: u64,
    pub bytes: u64,
}

type Slot = Mutex<Option<Box<dyn Any + Send>>>;

/// State shared by all ranks of one machine.
pub(crate) struct Shared {
    pub procs: usize,
    pub cost: CostModel,
    pub barrier: Barrier,
    /// One deposit slot per rank, for broadcast/reduce/scan/gather-style
    /// collectives.
    pub slots: Vec<Slot>,
    /// Per-rank clock board: each rank publishes its clock at collective
    /// entry; all ranks synchronize to the max plus the collective's cost.
    pub clock_board: Vec<CachePadded<AtomicU64>>,
    /// Per-rank payload-size board for collective cost computation.
    pub bytes_board: Vec<CachePadded<AtomicU64>>,
    pub tokens: Tokens,
}

impl Shared {
    fn new(cfg: &MachineCfg) -> Self {
        let p = cfg.procs;
        Shared {
            procs: p,
            cost: cfg.cost,
            barrier: Barrier::new(p),
            slots: (0..p).map(|_| Mutex::new(None)).collect(),
            clock_board: (0..p)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            bytes_board: (0..p)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            tokens: Tokens::new(cfg.effective_tokens()),
        }
    }

    pub(crate) fn board_max(&self) -> (u64, u64) {
        let mut max_clock = 0;
        let mut max_bytes = 0;
        for r in 0..self.procs {
            max_clock = max_clock.max(self.clock_board[r].load(Ordering::Acquire));
            max_bytes = max_bytes.max(self.bytes_board[r].load(Ordering::Acquire));
        }
        (max_clock, max_bytes)
    }
}

/// Result of a machine run: the per-rank outputs (rank order) and statistics.
#[derive(Debug)]
pub struct RunResult<T> {
    pub outputs: Vec<T>,
    pub stats: RunStats,
}

/// How one rank thread ended.
enum RankEnd<T> {
    /// Normal completion.
    Done(T, RankStats),
    /// Unwound with an injected [`CrashSignal`]; statistics cover the work
    /// up to the crash point.
    Crashed(CrashSignal, RankStats),
    /// Unwound with an ordinary panic — a real bug, re-raised by the driver.
    Panicked(Box<dyn Any + Send>),
}

/// Run `f` as an SPMD program on `cfg.procs` virtual processors.
///
/// `f` is invoked once per rank with that rank's [`Comm`] handle. The
/// returned outputs are ordered by rank. Panics in any rank propagate.
/// A crash injected by [`MachineCfg::fault`] panics too — use [`try_run`]
/// to observe crashes as values.
pub fn run<T, F>(cfg: &MachineCfg, f: F) -> RunResult<T>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    match try_run(cfg, f) {
        Ok(result) => result,
        Err(crash) => panic!(
            "mpsim: injected crash of rank {} at collective #{} ({}, level {}); \
             use try_run to handle crashes",
            crash.signal.rank, crash.signal.coll_seq, crash.signal.coll, crash.signal.level
        ),
    }
}

/// Run `f` as an SPMD program, reporting an injected rank crash as an
/// `Err(Crash)` value instead of panicking.
///
/// An injected crash is machine-wide (see [`crate::fault`]): every rank
/// unwinds at the same collective, and the returned [`Crash`] carries the
/// per-rank statistics accumulated up to that point — the wasted work a
/// recovery driver re-pays. Ordinary panics in `f` still propagate.
pub fn try_run<T, F>(cfg: &MachineCfg, f: F) -> Result<RunResult<T>, Crash>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    assert!(cfg.procs >= 1, "machine needs at least one processor");
    let p = cfg.procs;
    let shared = Arc::new(Shared::new(cfg));

    // p×p mesh of point-to-point channels.
    let mut senders: Vec<Vec<Option<Sender<PtpMsg>>>> = (0..p).map(|_| Vec::new()).collect();
    let mut receivers: Vec<Vec<Option<Receiver<PtpMsg>>>> = (0..p).map(|_| Vec::new()).collect();
    for srow in senders.iter_mut() {
        for rrow in receivers.iter_mut() {
            let (tx, rx) = channel();
            srow.push(Some(tx));
            rrow.push(Some(rx));
        }
    }

    let mut rank_ctx: Vec<Option<Comm>> = Vec::with_capacity(p);
    for (rank, (srow, rrow)) in senders.into_iter().zip(receivers).enumerate() {
        let rec = match cfg.trace {
            Some(tc) => obs::Recorder::enabled(rank, p, tc),
            None => obs::Recorder::disabled(),
        };
        let mut comm = Comm::new(
            rank,
            Arc::clone(&shared),
            SimClock::new(cfg.timing),
            Arc::new(MemTracker::new()),
            srow.into_iter().map(|s| s.unwrap()).collect(),
            rrow.into_iter().map(|r| r.unwrap()).collect(),
            rec,
        );
        if let Some(replay) = &cfg.replay {
            comm.set_replay(Arc::new(replay[rank].clone()));
        }
        if let Some(fault) = &cfg.fault {
            comm.set_fault_plan(Arc::clone(fault));
        }
        rank_ctx.push(Some(comm));
    }

    let mut results: Vec<Option<RankEnd<T>>> = (0..p).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for (rank, (ctx, out)) in rank_ctx.iter_mut().zip(results.iter_mut()).enumerate() {
            let fref = &f;
            let mut comm = ctx.take().unwrap();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("mpsim-rank-{rank}"))
                    .spawn_scoped(scope, move || {
                        comm.pin_worker();
                        comm.begin();
                        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            fref(&mut comm)
                        }));
                        *out = Some(match caught {
                            Ok(value) => RankEnd::Done(value, comm.finish()),
                            Err(payload) => match payload.downcast::<CrashSignal>() {
                                // A crash stops compute and releases tokens
                                // before unwinding, so the partial statistics
                                // are still collectable.
                                Ok(sig) => RankEnd::Crashed(*sig, comm.finish()),
                                Err(other) => RankEnd::Panicked(other),
                            },
                        });
                        // Hand the comm back so point-to-point channels stay
                        // open until every rank has finished: a rank still
                        // sending must not observe a crashed peer's closed
                        // channel (which would panic with a channel error
                        // instead of its own crash signal).
                        comm
                    })
                    .expect("failed to spawn rank thread"),
            );
        }
        let mut comms = Vec::with_capacity(p);
        for h in handles {
            match h.join() {
                Ok(comm) => comms.push(comm),
                Err(e) => std::panic::resume_unwind(e),
            }
        }
    });

    let mut outputs = Vec::with_capacity(p);
    let mut ranks = Vec::with_capacity(p);
    let mut crash: Option<CrashSignal> = None;
    for slot in &mut results {
        match slot.take().expect("rank produced no output") {
            RankEnd::Done(v, s) => {
                outputs.push(v);
                ranks.push(s);
            }
            RankEnd::Crashed(sig, s) => {
                crash.get_or_insert(sig);
                ranks.push(s);
            }
            RankEnd::Panicked(payload) => std::panic::resume_unwind(payload),
        }
    }
    let stats = RunStats { ranks };
    match crash {
        Some(signal) => Err(Crash { signal, stats }),
        None => Ok(RunResult { outputs, stats }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_are_rank_ordered() {
        let cfg = MachineCfg::new(8);
        let r = run(&cfg, |c| c.rank() * 10);
        assert_eq!(r.outputs, vec![0, 10, 20, 30, 40, 50, 60, 70]);
        assert_eq!(r.stats.procs(), 8);
    }

    #[test]
    fn single_proc_works() {
        let cfg = MachineCfg::new(1);
        let r = run(&cfg, |c| {
            c.barrier();
            c.size()
        });
        assert_eq!(r.outputs, vec![1]);
    }

    #[test]
    fn many_procs_oversubscribe_fine() {
        let cfg = MachineCfg::new(64);
        let r = run(&cfg, |c| {
            c.barrier();
            c.rank()
        });
        assert_eq!(r.outputs.len(), 64);
    }

    #[test]
    fn measured_mode_charges_compute() {
        let cfg = MachineCfg::measured(4, CostModel::free());
        let r = run(&cfg, |_c| {
            // Busy loop long enough to register on the clock; black_box
            // keeps the compiler from folding the loop away.
            let mut acc = 0u64;
            for i in 0..5_000_000u64 {
                acc = acc.wrapping_add(std::hint::black_box(i * i));
            }
            acc
        });
        for rs in &r.stats.ranks {
            assert!(rs.compute_ns > 0, "compute time not measured");
        }
    }

    #[test]
    #[should_panic]
    fn rank_panic_propagates() {
        let cfg = MachineCfg::new(2);
        let _ = run(&cfg, |c| {
            if c.rank() == 1 {
                panic!("boom");
            }
            // Rank 0 must not block on a collective here, or the machine
            // deadlocks instead of propagating. Plain return is fine.
            0
        });
    }

    #[test]
    fn injected_crash_is_reported_with_partial_stats() {
        use crate::fault::{CrashPoint, FaultPlan};
        let mut cfg = MachineCfg::new(4);
        cfg.cost = CostModel::t3d();
        cfg.fault = Some(Arc::new(
            FaultPlan::new().with_crash(2, CrashPoint::CollSeq(3)),
        ));
        let r = try_run(&cfg, |c| {
            for _ in 0..10 {
                c.allreduce(1u64, |a, b| *a += *b);
            }
            0u64
        });
        let crash = r.expect_err("crash must surface as Err");
        assert_eq!(crash.signal.rank, 2);
        assert_eq!(crash.signal.coll_seq, 3);
        assert_eq!(crash.signal.level, u32::MAX, "no level was marked");
        // Partial statistics cover the two completed collectives on every
        // rank: clocks advanced, payload bytes were sent.
        assert_eq!(crash.stats.procs(), 4);
        for rs in &crash.stats.ranks {
            assert!(rs.clock_ns > 0);
            assert_eq!(rs.bytes_sent, 16, "two allreduces of one u64");
        }
    }

    #[test]
    fn crash_at_marked_level_fires_on_every_rank() {
        use crate::fault::{CrashPoint, FaultPlan};
        let mut cfg = MachineCfg::new(2);
        cfg.fault = Some(Arc::new(
            FaultPlan::new().with_crash(0, CrashPoint::Level(1)),
        ));
        let r = try_run(&cfg, |c| {
            for level in 0..4u32 {
                c.mark_level(level);
                c.barrier();
            }
        });
        let crash = r.expect_err("level-keyed crash must fire");
        assert_eq!(crash.signal.level, 1);
        assert_eq!(crash.signal.coll_seq, 2, "second barrier");
    }

    #[test]
    fn unmatched_fault_plan_run_completes_with_identical_costs() {
        use crate::fault::FaultPlan;
        let body = |c: &mut Comm| {
            for _ in 0..5 {
                c.allreduce(2u64, |a, b| *a += *b);
            }
            c.barrier();
        };
        let mut plain = MachineCfg::new(4);
        plain.cost = CostModel::t3d();
        let mut armed = plain.clone();
        // A plan whose crash point is past the end of the program: the
        // fault layer is exercised on every collective but never fires.
        armed.fault = Some(Arc::new(
            FaultPlan::new().with_crash(0, crate::fault::CrashPoint::CollSeq(1000)),
        ));
        let a = run(&plain, body);
        let b = try_run(&armed, body).expect("no fault fires");
        for (x, y) in a.stats.ranks.iter().zip(&b.stats.ranks) {
            assert_eq!(x.clock_ns, y.clock_ns);
            assert_eq!(x.comm_ns, y.comm_ns);
            assert_eq!(x.bytes_sent, y.bytes_sent);
            assert_eq!(y.retransmits, 0);
            assert_eq!(y.fault_delay_ns, 0);
        }
    }

    #[test]
    fn drop_and_corrupt_charge_identically_on_all_ranks() {
        use crate::fault::{FaultKind, FaultPlan};
        let body = |c: &mut Comm| {
            for _ in 0..4 {
                c.allreduce(3u64, |a, b| *a += *b);
            }
        };
        let mut clean = MachineCfg::new(4);
        clean.cost = CostModel::t3d();
        let mut faulty = clean.clone();
        faulty.fault = Some(Arc::new(
            FaultPlan::new()
                .with_comm_fault(2, FaultKind::Corrupt)
                .with_comm_fault(3, FaultKind::Drop),
        ));
        let a = run(&clean, body);
        let b = run(&faulty, body);
        // Results identical (retransmission delivers the correct copy);
        // costs strictly higher; counters identical across ranks.
        let delay = b.stats.ranks[0].fault_delay_ns;
        assert!(delay > 0);
        for (x, y) in a.stats.ranks.iter().zip(&b.stats.ranks) {
            assert_eq!(y.retransmits, 2);
            assert_eq!(y.resent_bytes, 16, "two faulted allreduces of one u64 each");
            assert_eq!(y.fault_delay_ns, delay);
            assert_eq!(y.clock_ns, x.clock_ns + delay);
            assert_eq!(y.bytes_sent, x.bytes_sent, "logical traffic unchanged");
        }
        // Determinism: the same plan replays to identical counters.
        let c2 = run(&faulty, body);
        for (x, y) in b.stats.ranks.iter().zip(&c2.stats.ranks) {
            assert_eq!(x.clock_ns, y.clock_ns);
            assert_eq!(x.fault_delay_ns, y.fault_delay_ns);
        }
    }

    #[test]
    fn straggler_slows_one_rank_and_everyone_waits() {
        use crate::fault::FaultPlan;
        let body = |c: &mut Comm| {
            for _ in 0..3 {
                c.charge_compute(1000);
                c.barrier();
            }
        };
        let mut clean = MachineCfg::new(2);
        clean.cost = CostModel::t3d();
        let mut slow = clean.clone();
        // Rank 1 runs at 2× cost over the whole run.
        slow.fault = Some(Arc::new(FaultPlan::new().with_straggler(1, 1, 100, 2000)));
        let a = run(&clean, body);
        let b = run(&slow, body);
        assert!(b.stats.time_ns() > a.stats.time_ns());
        assert_eq!(b.stats.ranks[0].retransmits, 0);
        assert!(b.stats.ranks[1].fault_delay_ns >= 3000, "3×1000ns doubled");
        // Max-sync: both ranks end at the same clock, waiting on the slow one.
        assert_eq!(b.stats.ranks[0].clock_ns, b.stats.ranks[1].clock_ns);
    }

    #[test]
    fn traced_fault_run_logs_events_deterministically() {
        use crate::fault::{FaultKind, FaultPlan};
        let body = |c: &mut Comm| {
            for _ in 0..4 {
                c.allreduce(1u64, |a, b| *a += *b);
            }
        };
        let mut cfg = MachineCfg::new(2).traced();
        cfg.cost = CostModel::t3d();
        cfg.fault = Some(Arc::new(
            FaultPlan::new()
                .with_comm_fault(2, FaultKind::Drop)
                .with_straggler(1, 3, 3, 3000),
        ));
        let a = run(&cfg, body);
        let b = run(&cfg, body);
        let ta = a.stats.traces().unwrap();
        let tb = b.stats.traces().unwrap();
        for (x, y) in ta.iter().zip(&tb) {
            assert_eq!(x.faults, y.faults, "fault-event log must replay exactly");
        }
        // Rank 0 sees the drop; rank 1 sees the drop and its own slowdown.
        assert_eq!(ta[0].faults.len(), 1);
        assert_eq!(ta[0].faults[0].kind, "drop");
        assert_eq!(ta[0].faults[0].coll_seq, 2);
        assert_eq!(ta[1].faults.len(), 2);
        assert!(ta[1].faults.iter().any(|f| f.kind == "straggler"));
    }

    #[test]
    fn tokens_acquire_release() {
        let t = Tokens::new(2);
        t.acquire();
        t.acquire();
        t.release();
        t.acquire();
        t.release();
        t.release();
    }
}
