//! Distribution of the training set: horizontal fragmentation, the Presort
//! phase (parallel sample sort of every continuous attribute list), and
//! memory accounting of the distributed attribute lists.

use dtree::data::{AttrKind, Column, Dataset};
use dtree::list::{AttrList, CatEntry, ContEntry};
use mpsim::Comm;

/// Memory-tracker category for this rank's attribute-list segments.
pub const ATTR_MEM: &str = "attr-lists";

/// Build this rank's portion of the distributed attribute lists from its
/// horizontal fragment (records `rid_offset..rid_offset + local.len()`),
/// running the Presort on every continuous attribute.
///
/// Collective. After the call:
/// * each continuous list is **globally sorted** by `(value, rid)` with this
///   rank holding block `rank` of `⌈N/p⌉` entries (sample sort + parallel
///   shift, paper §4);
/// * each categorical list holds the local fragment in record order.
pub fn build_distributed_lists(comm: &mut Comm, local: &Dataset, rid_offset: u32) -> Vec<AttrList> {
    let lists: Vec<AttrList> = local
        .columns
        .iter()
        .zip(&local.schema.attrs)
        .map(|(col, def)| match (col, def.kind) {
            (Column::Continuous(vals), AttrKind::Continuous) => {
                let entries: Vec<ContEntry> = vals
                    .iter()
                    .enumerate()
                    .map(|(i, &value)| ContEntry {
                        value,
                        rid: rid_offset + i as u32,
                        class: local.labels[i] as u16,
                    })
                    .collect();
                let sorted = sortp::sample_sort(comm, entries, |a, b| {
                    let (av, bv, ar, br) = (a.value, b.value, a.rid, b.rid);
                    av.total_cmp(&bv).then(ar.cmp(&br))
                });
                AttrList::Continuous(sorted)
            }
            (Column::Categorical(vals), AttrKind::Categorical { .. }) => AttrList::Categorical(
                vals.iter()
                    .enumerate()
                    .map(|(i, &value)| CatEntry {
                        value,
                        rid: rid_offset + i as u32,
                        class: local.labels[i] as u16,
                    })
                    .collect(),
            ),
            _ => unreachable!("dataset validated shape"),
        })
        .collect();
    for l in &lists {
        l.assert_sorted();
    }
    lists
}

/// Total payload bytes of a set of attribute lists (one rank's segments).
pub fn lists_bytes<'a>(lists: impl IntoIterator<Item = &'a AttrList>) -> u64 {
    lists.into_iter().map(|l| l.bytes()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtree::data::{AttrDef, Schema};
    use dtree::list::build_lists;
    use mpsim::run_simple;

    fn toy(n: usize) -> Dataset {
        let schema = Schema::new(
            vec![AttrDef::continuous("x"), AttrDef::categorical("g", 3)],
            2,
        );
        let xs: Vec<f32> = (0..n).map(|i| ((i * 7919) % 1000) as f32).collect();
        let gs: Vec<u32> = (0..n).map(|i| (i % 3) as u32).collect();
        let labels: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
        Dataset::new(
            schema,
            vec![Column::Continuous(xs), Column::Categorical(gs)],
            labels,
        )
    }

    #[test]
    fn distributed_presort_matches_serial_presort() {
        let n = 103;
        let data = toy(n);
        for p in [1usize, 2, 3, 5] {
            let dref = &data;
            let outs = run_simple(p, move |c| {
                let block = n.div_ceil(p);
                let lo = (c.rank() * block).min(n);
                let hi = ((c.rank() + 1) * block).min(n);
                let local = dref.slice(lo, hi);
                build_distributed_lists(c, &local, lo as u32)
            });
            // Concatenate the continuous lists across ranks and compare to
            // the serial presort.
            let serial = build_lists(&data, 0, true);
            let parallel: Vec<ContEntry> = outs
                .iter()
                .flat_map(|lists| lists[0].as_continuous().to_vec())
                .collect();
            assert_eq!(parallel, serial[0].as_continuous().to_vec(), "p={p}");
            // Block sizes are ⌈N/p⌉.
            let block = n.div_ceil(p);
            for (r, lists) in outs.iter().enumerate() {
                let want = ((r + 1) * block).min(n).saturating_sub((r * block).min(n));
                assert_eq!(lists[0].len(), want, "p={p} rank={r}");
            }
            // Categorical lists keep the fragment in record order.
            for (r, lists) in outs.iter().enumerate() {
                let lo = (r * block).min(n) as u32;
                for (i, e) in lists[1].as_categorical().iter().enumerate() {
                    let rid = e.rid;
                    assert_eq!(rid, lo + i as u32);
                }
            }
        }
    }

    #[test]
    fn bytes_accounting() {
        let data = toy(10);
        let outs = run_simple(1, move |c| {
            let lists = build_distributed_lists(c, &data, 0);
            lists_bytes(&lists)
        });
        let cont = 10 * std::mem::size_of::<ContEntry>() as u64;
        let cat = 10 * std::mem::size_of::<CatEntry>() as u64;
        assert_eq!(outs[0], cont + cat);
    }
}
