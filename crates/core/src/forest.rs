//! Forest engine: bagged random-forest induction scheduled over the
//! simulated machine, following the joint tree-/data-parallel design of
//! exact distributed random-forest training.
//!
//! # Scheduling
//!
//! The `p` virtual processors are split into **tree groups**
//! ([`ForestSchedule`]): when `p ≥ n_trees` each tree gets its own group of
//! `⌊p/n_trees⌋`-or-one-more ranks (tree-parallel — every group is a full
//! ScalParC machine inducing its tree), otherwise all `p` ranks work on one
//! tree at a time (data-parallel). Groups never communicate during
//! induction, so each group runs as its own [`mpsim`] machine; the forest's
//! simulated train time is the **maximum over groups** of each group's
//! per-tree sum — exactly what a space-shared machine whose rank sets are
//! disjoint would observe.
//!
//! # Determinism
//!
//! The bagged sample of tree `t` is never materialized globally: bagged
//! index `i` sources training record `mix(bag_seed_t, i) mod N` via a
//! `datagen::StreamingGen`-style per-index SplitMix64 hash, so any rank
//! regenerates exactly its `⌈m/g⌉` block from `(seed, t, i)` alone —
//! independent of `p` or the group shape. Per-tree feature subsets are
//! drawn (sorted ascending) from a per-tree seeded generator, and the
//! sorted order makes the subset→global attribute remap **monotone**, which
//! preserves ScalParC's split tie-break order (gini, then lowest attribute
//! index). Combined with ScalParC's geometry-invariance (the induced tree
//! does not depend on the rank count), the whole forest is **byte-identical
//! across scheduling layouts** for fixed seeds — asserted by the
//! `forest_equivalence` integration tests and the `forest` bench bin.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use diskio::ckpt::SectionRead;
use dtree::data::{Dataset, Schema};
use dtree::testgen::TestRng;
use dtree::tree::{DecisionTree, SplitTest};
use dtree::{eval, model_io};
use mpsim::{Crash, FaultPlan, MachineCfg, RunStats};

use crate::checkpoint::{self, CheckpointCtx, RestoreVerdict};
use crate::config::{InduceConfig, ParConfig};
use crate::induce::{induce_on_comm, induce_on_comm_ckpt, ParStats};
use crate::{CrashEvent, RecoveryReport};

/// How trees are laid out over the machine's ranks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ForestSchedule {
    /// Tree-parallel when `p ≥ n_trees`, data-parallel otherwise.
    #[default]
    Auto,
    /// `min(p, n_trees)` groups, trees dealt round-robin: one tree per
    /// group when `p ≥ n_trees`, several sequential trees per group (of at
    /// least one rank each) otherwise.
    TreeParallel,
    /// One group of all `p` ranks inducing the trees sequentially.
    DataParallel,
    /// One group of one rank (the serial reference layout).
    Serial,
}

/// Forest training configuration.
#[derive(Clone, Copy, Debug)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Bootstrap-sample size as a fraction of `N` (sampling is with
    /// replacement; `1.0` is the classic bootstrap).
    pub bootstrap: f64,
    /// Fraction of the attributes each tree trains on (at least one
    /// attribute is always kept; `1.0` disables feature subsetting).
    pub feature_frac: f64,
    /// Master seed: bagging and feature subsets of every tree derive from
    /// it by per-tree SplitMix64 decorrelation.
    pub seed: u64,
    /// Rank layout.
    pub schedule: ForestSchedule,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 8,
            bootstrap: 1.0,
            feature_frac: 1.0,
            seed: 42,
            schedule: ForestSchedule::Auto,
        }
    }
}

/// One tree group of a [`ForestPlan`]: a disjoint set of ranks inducing
/// `trees` sequentially.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForestGroup {
    /// Ranks in the group (each group is its own simulated machine).
    pub procs: usize,
    /// Trees the group induces, in order.
    pub trees: Vec<usize>,
}

/// The resolved rank layout of a forest run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForestPlan {
    /// Disjoint tree groups; `Σ procs ≤ p` and every tree appears exactly
    /// once.
    pub groups: Vec<ForestGroup>,
}

impl ForestPlan {
    /// A short human-readable layout label, e.g. `tree-parallel 4×2`.
    pub fn label(&self) -> String {
        let g = self.groups.len();
        if g == 1 {
            let procs = self.groups[0].procs;
            if procs == 1 {
                "serial 1×1".to_string()
            } else {
                format!("data-parallel 1×{procs}")
            }
        } else {
            let lo = self.groups.iter().map(|x| x.procs).min().unwrap_or(1);
            let hi = self.groups.iter().map(|x| x.procs).max().unwrap_or(1);
            if lo == hi {
                format!("tree-parallel {g}×{lo}")
            } else {
                format!("tree-parallel {g}×{lo}..{hi}")
            }
        }
    }
}

/// Resolve a schedule into tree groups over `procs` ranks.
pub fn plan(n_trees: usize, procs: usize, schedule: ForestSchedule) -> ForestPlan {
    assert!(n_trees >= 1, "a forest needs at least one tree");
    let procs = procs.max(1);
    let schedule = match schedule {
        ForestSchedule::Auto if procs >= n_trees && n_trees > 1 => ForestSchedule::TreeParallel,
        ForestSchedule::Auto => ForestSchedule::DataParallel,
        s => s,
    };
    let groups = match schedule {
        ForestSchedule::Serial => vec![ForestGroup {
            procs: 1,
            trees: (0..n_trees).collect(),
        }],
        ForestSchedule::DataParallel => vec![ForestGroup {
            procs,
            trees: (0..n_trees).collect(),
        }],
        ForestSchedule::TreeParallel => {
            let g = procs.min(n_trees);
            (0..g)
                .map(|i| ForestGroup {
                    // First `procs % g` groups take the extra rank.
                    procs: procs / g + usize::from(i < procs % g),
                    trees: (i..n_trees).step_by(g).collect(),
                })
                .collect()
        }
        ForestSchedule::Auto => unreachable!("resolved above"),
    };
    ForestPlan { groups }
}

/// Per-tree training statistics.
#[derive(Clone, Debug)]
pub struct TreeStat {
    /// Tree index in the forest.
    pub tree: usize,
    /// Index of the group that induced it (under recovery: the group whose
    /// attempt *completed* the tree, which may differ from the planned
    /// owner after a reschedule).
    pub group: usize,
    /// Rank count of that group's machine.
    pub procs: usize,
    /// Nodes in the induced tree.
    pub nodes: usize,
    /// Levels the induction processed.
    pub levels: u32,
    /// Full machine statistics of the tree's run (simulated time,
    /// communication volume, memory peaks, traces when enabled).
    pub run: RunStats,
    /// What recovering this tree cost beyond the successful attempt —
    /// crashes observed, wasted simulated time/bytes, re-executed levels.
    /// Default (one attempt, nothing wasted) on the fault-free path.
    pub recovery: RecoveryReport,
    /// Planned group this tree was moved away from by
    /// [`ForestRecoveryPolicy::Reschedule`] (`None` = induced where
    /// planned).
    pub rescheduled_from: Option<usize>,
}

/// A trained forest plus schedule-aware accounting.
#[derive(Clone, Debug)]
pub struct ForestResult {
    /// The member trees, in index order, attributes remapped to the full
    /// training schema.
    pub trees: Vec<DecisionTree>,
    /// The rank layout that trained them.
    pub plan: ForestPlan,
    /// Per-tree statistics, in tree order.
    pub per_tree: Vec<TreeStat>,
}

impl ForestResult {
    /// Simulated train time of the whole forest: groups run concurrently
    /// on disjoint ranks, trees within a group sequentially — so the
    /// forest finishes when the slowest group's per-tree times have summed.
    pub fn train_time_ns(&self) -> u64 {
        self.plan
            .groups
            .iter()
            .enumerate()
            .map(|(gi, _)| {
                self.per_tree
                    .iter()
                    .filter(|s| s.group == gi)
                    .map(|s| s.run.time_ns())
                    .sum::<u64>()
            })
            .max()
            .unwrap_or(0)
    }

    /// Simulated train time in seconds.
    pub fn train_time_s(&self) -> f64 {
        self.train_time_ns() as f64 / 1e9
    }

    /// Total bytes sent across all trees' machines.
    pub fn total_bytes_sent(&self) -> u64 {
        self.per_tree.iter().map(|s| s.run.total_bytes_sent()).sum()
    }

    /// Peak per-rank memory across all trees' machines.
    pub fn peak_mem_per_proc(&self) -> u64 {
        self.per_tree
            .iter()
            .map(|s| s.run.peak_mem_per_proc())
            .max()
            .unwrap_or(0)
    }
}

/// SplitMix64 finalizer over `(seed, i)` — the same per-index derivation
/// `datagen::StreamingGen` uses, so any rank regenerates any bagged index
/// without materializing the bootstrap.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seed-space salts decorrelating the per-tree bagging and feature streams.
const BAG_SALT: u64 = 0xB001_57A9_0000_0001;
const FEAT_SALT: u64 = 0xFEA7_0000_0000_0002;

/// Number of bagged records per tree.
fn bag_size(n: usize, bootstrap: f64) -> usize {
    if n == 0 {
        0
    } else {
        ((n as f64 * bootstrap).round() as usize).max(1)
    }
}

/// Materialize bagged indices `[lo, hi)` of tree `t`'s bootstrap: bagged
/// index `i` sources record `mix(bag_seed, i) mod N`. Pure in
/// `(seed, t, i)` — identical on any rank, under any layout.
fn bag_block(data: &Dataset, bag_seed: u64, lo: usize, hi: usize) -> Dataset {
    let n = data.len() as u64;
    let src: Vec<usize> = (lo..hi)
        .map(|i| (mix(bag_seed, i as u64) % n) as usize)
        .collect();
    eval::select(data, &src)
}

/// Tree `t`'s feature subset: a sorted draw of `⌈frac·A⌉`-clamped-to-`[1,A]`
/// attributes. Sorting keeps the subset→global remap monotone, preserving
/// the lowest-attribute-index split tie-break.
fn feature_subset(schema: &Schema, feat_seed: u64, frac: f64) -> Vec<usize> {
    let a = schema.num_attrs();
    let k = ((a as f64 * frac).round() as usize).clamp(1, a);
    let mut idx: Vec<usize> = (0..a).collect();
    let mut rng = TestRng::new(feat_seed);
    // Partial Fisher–Yates: the first k entries are a uniform draw.
    for i in 0..k {
        let j = i + rng.below((a - i) as u64) as usize;
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx.sort_unstable();
    idx
}

/// Project a dataset onto an attribute subset (columns and schema).
fn project(data: &Dataset, subset: &[usize]) -> Dataset {
    let attrs = subset
        .iter()
        .map(|&a| data.schema.attrs[a].clone())
        .collect();
    let columns = subset.iter().map(|&a| data.columns[a].clone()).collect();
    Dataset {
        schema: Schema::new(attrs, data.schema.num_classes),
        columns,
        labels: data.labels.clone(),
    }
}

/// Remap a tree induced under a feature subset back onto the full schema.
fn remap_attrs(tree: &mut DecisionTree, subset: &[usize], schema: &Schema) {
    for node in &mut tree.nodes {
        match &mut node.test {
            Some(SplitTest::Continuous { attr, .. })
            | Some(SplitTest::Categorical { attr })
            | Some(SplitTest::CategoricalSubset { attr, .. }) => *attr = subset[*attr],
            None => {}
        }
    }
    tree.schema = schema.clone();
}

/// Train a bagged forest of ScalParC trees over the simulated machine.
///
/// Each group of the resolved [`ForestPlan`] runs as its own machine of
/// `group.procs` ranks; within it, every tree is one `induce_on_comm`
/// collective over that tree's regenerated bagged block, wrapped in a
/// `("tree", t)` obs phase so traced runs attribute every span to its tree.
/// The trees (and therefore the whole forest) are byte-identical across
/// schedules and rank counts for a fixed `fcfg.seed`.
pub fn train_forest(data: &Dataset, fcfg: &ForestConfig, par: &ParConfig) -> ForestResult {
    assert!(fcfg.n_trees >= 1, "a forest needs at least one tree");
    assert!(fcfg.bootstrap > 0.0, "bootstrap fraction must be positive");
    assert!(
        fcfg.feature_frac > 0.0 && fcfg.feature_frac <= 1.0,
        "feature fraction must be in (0, 1]"
    );
    let plan = plan(fcfg.n_trees, par.procs, fcfg.schedule);
    let m = bag_size(data.len(), fcfg.bootstrap);
    let induce_cfg = par.induce;

    let mut trees: Vec<Option<DecisionTree>> = (0..fcfg.n_trees).map(|_| None).collect();
    let mut per_tree: Vec<Option<TreeStat>> = (0..fcfg.n_trees).map(|_| None).collect();
    for (gi, group) in plan.groups.iter().enumerate() {
        let mcfg = MachineCfg {
            procs: group.procs,
            cost: par.cost,
            timing: par.timing,
            compute_tokens: 0,
            replay: None,
            trace: par.trace,
            fault: None,
        };
        for &t in &group.trees {
            let bag_seed = mix(fcfg.seed ^ BAG_SALT, t as u64);
            let subset = feature_subset(
                &data.schema,
                mix(fcfg.seed ^ FEAT_SALT, t as u64),
                fcfg.feature_frac,
            );
            let block = m.div_ceil(group.procs).max(1);
            let subset_ref = &subset;
            let result = mpsim::run(&mcfg, |comm| {
                comm.phase_begin("tree", t as u32);
                let lo = (comm.rank() * block).min(m);
                let hi = ((comm.rank() + 1) * block).min(m);
                let local = if data.is_empty() {
                    project(&data.slice(0, 0), subset_ref)
                } else {
                    project(&bag_block(data, bag_seed, lo, hi), subset_ref)
                };
                let out = induce_on_comm(comm, local, lo as u32, m as u64, &induce_cfg);
                comm.phase_end(); // tree
                out
            });
            let mut outputs = result.outputs;
            let (mut tree, ps) = outputs.swap_remove(0);
            remap_attrs(&mut tree, &subset, &data.schema);
            per_tree[t] = Some(TreeStat {
                tree: t,
                group: gi,
                procs: group.procs,
                nodes: tree.nodes.len(),
                levels: ps.levels,
                run: result.stats,
                recovery: RecoveryReport::default(),
                rescheduled_from: None,
            });
            trees[t] = Some(tree);
        }
    }
    ForestResult {
        trees: trees
            .into_iter()
            .map(|t| t.expect("every tree planned"))
            .collect(),
        plan,
        per_tree: per_tree
            .into_iter()
            .map(|s| s.expect("every tree planned"))
            .collect(),
    }
}

/// Section tag of the single-section (v1, whole-forest) container payload.
/// Still read for backward compatibility; new files are written per tree.
pub const FOREST_SECTION: u32 = u32::from_le_bytes(*b"FRST");

/// Section tag of the forest meta payload (tree count) in v2 containers.
pub const FOREST_META_SECTION: u32 = u32::from_le_bytes(*b"FMET");

/// Base of the per-tree section tag namespace: tree `t` lives in section
/// `TREE_SECTION_BASE + t`.
pub const TREE_SECTION_BASE: u32 = u32::from_le_bytes(*b"\0\0RT");

/// What [`load_forest`] found for one planned tree slot.
#[derive(Clone, Debug, PartialEq)]
pub enum TreeVerdict {
    /// The tree's section was CRC-clean and parsed.
    Ok(DecisionTree),
    /// The section was present but damaged (CRC mismatch, truncation, or a
    /// parse/schema failure). Carries the reason.
    Corrupt(String),
    /// No section for this tree slot survived in the container.
    Missing,
}

impl TreeVerdict {
    /// The tree, when intact.
    pub fn tree(&self) -> Option<&DecisionTree> {
        match self {
            TreeVerdict::Ok(t) => Some(t),
            _ => None,
        }
    }

    /// Whether this slot loaded clean.
    pub fn is_ok(&self) -> bool {
        matches!(self, TreeVerdict::Ok(_))
    }
}

/// Typed per-tree outcome of loading a forest container: damage to one
/// tree's section never hides the surviving trees.
#[derive(Clone, Debug)]
pub struct ForestVerdict {
    /// Trees the container was written with.
    pub planned: usize,
    /// One verdict per planned tree slot, in tree order.
    pub trees: Vec<TreeVerdict>,
}

impl ForestVerdict {
    /// Slots that loaded clean.
    pub fn n_ok(&self) -> usize {
        self.trees.iter().filter(|v| v.is_ok()).count()
    }

    /// Whether every planned tree survived.
    pub fn is_complete(&self) -> bool {
        self.n_ok() == self.planned
    }

    /// Per-slot damage mask (`true` = corrupt or missing) — the shape
    /// `FlatForest::with_missing` votes around.
    pub fn missing_mask(&self) -> Vec<bool> {
        self.trees.iter().map(|v| !v.is_ok()).collect()
    }

    /// The surviving trees, in tree order (damaged slots skipped).
    pub fn surviving(&self) -> Vec<DecisionTree> {
        self.trees
            .iter()
            .filter_map(|v| v.tree().cloned())
            .collect()
    }

    /// All-or-nothing view: the full forest, or the first slot's failure.
    pub fn into_strict(self) -> Result<Vec<DecisionTree>, String> {
        let planned = self.planned;
        let mut trees = Vec::with_capacity(planned);
        for (t, v) in self.trees.into_iter().enumerate() {
            match v {
                TreeVerdict::Ok(tree) => trees.push(tree),
                TreeVerdict::Corrupt(msg) => return Err(format!("tree {t}: corrupt: {msg}")),
                TreeVerdict::Missing => return Err(format!("tree {t}: missing from container")),
            }
        }
        Ok(trees)
    }
}

/// Write a forest to a versioned, CRC-guarded container file: a meta
/// section carrying the tree count plus **one section per tree** (each the
/// tree's `model_io` text), so storage damage is isolated to the trees it
/// actually hits. The write is atomic (tmp + rename) and byte-deterministic
/// for a given forest.
pub fn save_forest(trees: &[DecisionTree], path: &Path) -> Result<(), String> {
    let meta = (trees.len() as u32).to_le_bytes();
    let texts: Vec<String> = trees.iter().map(model_io::to_text).collect();
    let mut sections: Vec<(u32, &[u8])> = vec![(FOREST_META_SECTION, &meta)];
    for (t, text) in texts.iter().enumerate() {
        sections.push((TREE_SECTION_BASE + t as u32, text.as_bytes()));
    }
    diskio::ckpt::write_sections(path, &sections).map_err(|e| e.to_string())
}

/// Parse one tree slot's intact payload, checking UTF-8, the tree grammar,
/// and schema agreement with the slots already parsed.
fn parse_tree_payload(payload: &[u8], schema: &mut Option<Schema>) -> TreeVerdict {
    let text = match std::str::from_utf8(payload) {
        Ok(s) => s,
        Err(e) => return TreeVerdict::Corrupt(format!("payload is not UTF-8: {e}")),
    };
    match model_io::from_text(text) {
        Ok(tree) => match schema {
            Some(s) if *s != tree.schema => {
                TreeVerdict::Corrupt("schema differs from the container's other trees".into())
            }
            _ => {
                schema.get_or_insert_with(|| tree.schema.clone());
                TreeVerdict::Ok(tree)
            }
        },
        Err(e) => TreeVerdict::Corrupt(e),
    }
}

/// Read a forest container damage-tolerantly: every tree slot gets a typed
/// [`TreeVerdict`] instead of the whole load failing on the first bad
/// byte. Only envelope-level damage (unreadable/foreign header, or a
/// destroyed meta section) fails the load as a whole. Legacy v1
/// single-section containers load as all-`Ok`-or-error, unchanged.
pub fn load_forest(path: &Path) -> Result<ForestVerdict, String> {
    let sections = diskio::ckpt::read_sections_tolerant(path).map_err(|e| e.to_string())?;

    // Legacy v1: one FRST section holding the whole forest text. Intact →
    // parse it; damaged → the whole forest is lost (that was v1's deal).
    if let Some(payload) = sections.iter().find_map(|s| match s {
        SectionRead::Ok { tag, payload } if *tag == FOREST_SECTION => Some(payload),
        _ => None,
    }) {
        let text = std::str::from_utf8(payload)
            .map_err(|e| format!("{}: forest payload is not UTF-8: {e}", path.display()))?;
        let trees = model_io::forest_from_text(text)?;
        return Ok(ForestVerdict {
            planned: trees.len(),
            trees: trees.into_iter().map(TreeVerdict::Ok).collect(),
        });
    }

    let meta = sections.iter().find_map(|s| match s {
        SectionRead::Ok { tag, payload } if *tag == FOREST_META_SECTION => Some(payload),
        _ => None,
    });
    let Some(meta) = meta else {
        return Err(format!(
            "{}: forest meta section missing or corrupt",
            path.display()
        ));
    };
    if meta.len() != 4 {
        return Err(format!("{}: malformed forest meta section", path.display()));
    }
    let planned = u32::from_le_bytes([meta[0], meta[1], meta[2], meta[3]]) as usize;

    let mut trees = vec![TreeVerdict::Missing; planned];
    let mut schema: Option<Schema> = None;
    for s in &sections {
        match s {
            SectionRead::Ok { tag, payload } => {
                let Some(t) = tag.checked_sub(TREE_SECTION_BASE).map(|t| t as usize) else {
                    continue;
                };
                if t < planned {
                    trees[t] = parse_tree_payload(payload, &mut schema);
                }
            }
            SectionRead::Corrupt {
                tag: Some(tag),
                msg,
            } => {
                let Some(t) = tag.checked_sub(TREE_SECTION_BASE).map(|t| t as usize) else {
                    continue;
                };
                if t < planned {
                    trees[t] = TreeVerdict::Corrupt(msg.clone());
                }
            }
            // Sections whose very tag was lost (truncation) cannot be
            // attributed to a slot; those slots stay `Missing`.
            SectionRead::Corrupt { tag: None, .. } => {}
        }
    }
    Ok(ForestVerdict { planned, trees })
}

/// All-or-nothing load: the pre-verdict `load_forest` behaviour.
pub fn load_forest_strict(path: &Path) -> Result<Vec<DecisionTree>, String> {
    load_forest(path)?.into_strict()
}

/// Walk a container's raw section frames, calling `f(tag, start, len)` for
/// each (with `start` the file offset of the frame's tag field), until `f`
/// returns `true` or the walk runs off the file.
fn walk_sections(bytes: &[u8], mut f: impl FnMut(u32, usize, usize) -> bool) {
    let mut off = 12usize; // [magic][version][count]
    while off + 12 <= bytes.len() {
        let tag = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
        let len = u64::from_le_bytes(bytes[off + 4..off + 12].try_into().unwrap()) as usize;
        if f(tag, off, len) {
            return;
        }
        off += 12 + len + 4;
    }
}

/// Deterministic damage: flip one bit in the middle of tree `t`'s section
/// payload, so the container loads with exactly that slot `Corrupt`.
pub fn damage_tree_section(path: &Path, t: usize) -> Result<(), String> {
    let mut bytes = std::fs::read(path).map_err(|e| e.to_string())?;
    let want = TREE_SECTION_BASE + t as u32;
    let mut hit = None;
    walk_sections(&bytes, |tag, start, len| {
        if tag == want && len > 0 {
            hit = Some(start + 12 + len / 2);
            true
        } else {
            false
        }
    });
    let at = hit.ok_or_else(|| format!("{}: no section for tree {t}", path.display()))?;
    bytes[at] ^= 0x10;
    std::fs::write(path, &bytes).map_err(|e| e.to_string())
}

/// Deterministic damage: cut the file mid-payload of tree `t`'s section —
/// that slot loads `Corrupt` and every later section is lost (`Missing`).
pub fn truncate_at_tree_section(path: &Path, t: usize) -> Result<(), String> {
    let bytes = std::fs::read(path).map_err(|e| e.to_string())?;
    let want = TREE_SECTION_BASE + t as u32;
    let mut hit = None;
    walk_sections(&bytes, |tag, start, len| {
        if tag == want {
            hit = Some(start + 12 + len / 2);
            true
        } else {
            false
        }
    });
    let at = hit.ok_or_else(|| format!("{}: no section for tree {t}", path.display()))?;
    std::fs::write(path, &bytes[..at]).map_err(|e| e.to_string())
}

/// Deterministic damage: drop tree `t`'s section entirely (rewriting the
/// container without it), so the slot loads `Missing`.
pub fn remove_tree_section(path: &Path, t: usize) -> Result<(), String> {
    let sections = diskio::ckpt::read_sections(path).map_err(|e| e.to_string())?;
    let want = TREE_SECTION_BASE + t as u32;
    if !sections.iter().any(|(tag, _)| *tag == want) {
        return Err(format!("{}: no section for tree {t}", path.display()));
    }
    let kept: Vec<(u32, &[u8])> = sections
        .iter()
        .filter(|(tag, _)| *tag != want)
        .map(|(tag, payload)| (*tag, payload.as_slice()))
        .collect();
    diskio::ckpt::write_sections(path, &kept).map_err(|e| e.to_string())
}

/// Per-group fault plans for a forest run. Every group of the resolved
/// [`ForestPlan`] is its own simulated machine, so crash/straggler/storage
/// specs address ranks and collective sequence numbers *within that
/// group's machine* — exactly the [`FaultPlan`] semantics, namespaced per
/// group.
#[derive(Clone, Debug, Default)]
pub struct ForestFaultPlan {
    groups: Vec<Option<Arc<FaultPlan>>>,
}

impl ForestFaultPlan {
    /// A plan injecting nothing anywhere.
    pub fn new() -> ForestFaultPlan {
        ForestFaultPlan::default()
    }

    /// Install `plan` on group `group`'s machine (builder style).
    pub fn with_group(mut self, group: usize, plan: FaultPlan) -> ForestFaultPlan {
        if self.groups.len() <= group {
            self.groups.resize(group + 1, None);
        }
        self.groups[group] = Some(Arc::new(plan));
        self
    }

    /// The plan installed on group `group`, if any.
    pub fn group(&self, group: usize) -> Option<Arc<FaultPlan>> {
        self.groups.get(group).cloned().flatten()
    }

    /// Whether no group carries any fault.
    pub fn is_empty(&self) -> bool {
        self.groups
            .iter()
            .all(|g| g.as_ref().is_none_or(|p| p.is_empty()))
    }
}

/// Checkpoint namespace of a forest run: tree `t`'s per-level generations
/// land in `root/run_<run_id>/tree_<t>/`, so concurrent runs and trees
/// never collide and a rescheduled tree finds its own checkpoints
/// regardless of which group resumes it.
#[derive(Clone, Debug)]
pub struct ForestCheckpointCtx {
    /// Directory holding the run namespaces.
    pub root: PathBuf,
    /// Distinguishes forest runs sharing a root.
    pub run_id: u64,
    /// Per-tree generation retention (`None` = keep all), forwarded to
    /// every tree's [`CheckpointCtx`].
    pub keep: Option<usize>,
}

impl ForestCheckpointCtx {
    /// Checkpoint under `root`, keeping every generation.
    pub fn new(root: impl Into<PathBuf>, run_id: u64) -> ForestCheckpointCtx {
        ForestCheckpointCtx {
            root: root.into(),
            run_id,
            keep: None,
        }
    }

    /// Keep only the newest `k` generations per tree.
    pub fn with_keep(mut self, k: usize) -> ForestCheckpointCtx {
        self.keep = Some(k);
        self
    }

    /// Tree `t`'s checkpoint directory.
    pub fn tree_dir(&self, t: usize) -> PathBuf {
        self.root
            .join(format!("run_{}", self.run_id))
            .join(format!("tree_{t}"))
    }

    /// Tree `t`'s checkpoint context (retention forwarded).
    pub fn tree_ctx(&self, t: usize) -> CheckpointCtx {
        let ctx = CheckpointCtx::new(self.tree_dir(t));
        match self.keep {
            Some(k) => ctx.with_keep(k),
            None => ctx,
        }
    }
}

/// How [`train_forest_with_recovery`] reacts to a group crash.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ForestRecoveryPolicy {
    /// Retry the tree on the same group (the failed rank is assumed
    /// replaced), resuming from the tree's newest checkpoint when
    /// checkpointing is on — the per-group analogue of
    /// [`crate::RecoveryPolicy::Retry`].
    #[default]
    RetryInPlace,
    /// Declare the crashed group dead and re-plan its trees onto the
    /// surviving groups: the crashed tree moves to the lowest-indexed
    /// survivor (resuming its own checkpoints there — restore re-blocks
    /// them onto the new group's rank count), the rest of the dead group's
    /// queue is dealt round-robin over the survivors. With no survivor
    /// left, the group is revived as a replacement and retried in place.
    Reschedule,
}

/// One tree moved off a dead group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RescheduleEvent {
    /// The tree that moved.
    pub tree: usize,
    /// The group that died owning it.
    pub from_group: usize,
    /// The surviving group that took it over.
    pub to_group: usize,
}

/// Forest-level recovery accounting (per-tree detail lives in each
/// [`TreeStat::recovery`]).
#[derive(Clone, Debug, Default)]
pub struct ForestRecoveryReport {
    /// Machine runs launched across all trees (successful ones included),
    /// so `n_trees` means no crash fired.
    pub attempts: u32,
    /// Crashes observed across all groups.
    pub crashes: u32,
    /// Groups declared dead by [`ForestRecoveryPolicy::Reschedule`], in
    /// death order.
    pub dead_groups: Vec<usize>,
    /// Every tree moved off a dead group, in order.
    pub rescheduled: Vec<RescheduleEvent>,
    /// Tree levels executed more than once, summed over all trees.
    pub reexecuted_levels: u32,
    /// Communication volume of the aborted attempts.
    pub wasted_bytes: u64,
    /// Simulated time of the aborted attempts.
    pub wasted_time_ns: u64,
    /// Corrupt checkpoint generations walked past, summed over restarts.
    pub generations_walked: u32,
}

/// A recovered forest run: the (fault-free-identical) forest plus what the
/// crashes cost.
#[derive(Clone, Debug)]
pub struct ForestRecoveryOutcome {
    /// The trained forest — byte-identical to a fault-free
    /// [`train_forest`] of the same config.
    pub result: ForestResult,
    /// Recovery accounting across all groups and trees.
    pub report: ForestRecoveryReport,
}

/// One machine run of one tree on a `procs`-rank group: the recovery
/// driver's attempt body. Identical collective sequence to the
/// [`train_forest`] inner loop when `fault` and `ckpt` are absent.
#[allow(clippy::too_many_arguments)]
fn tree_attempt(
    data: &Dataset,
    fcfg: &ForestConfig,
    induce_cfg: &InduceConfig,
    par: &ParConfig,
    m: usize,
    t: usize,
    procs: usize,
    fault: Option<Arc<FaultPlan>>,
    ckpt: Option<&CheckpointCtx>,
) -> Result<(DecisionTree, ParStats, RunStats), Crash> {
    let bag_seed = mix(fcfg.seed ^ BAG_SALT, t as u64);
    let subset = feature_subset(
        &data.schema,
        mix(fcfg.seed ^ FEAT_SALT, t as u64),
        fcfg.feature_frac,
    );
    let mcfg = MachineCfg {
        procs,
        cost: par.cost,
        timing: par.timing,
        compute_tokens: 0,
        replay: None,
        trace: par.trace,
        fault,
    };
    let block = m.div_ceil(procs).max(1);
    let subset_ref = &subset;
    let result = mpsim::try_run(&mcfg, |comm| {
        comm.phase_begin("tree", t as u32);
        let lo = (comm.rank() * block).min(m);
        let hi = ((comm.rank() + 1) * block).min(m);
        let local = if data.is_empty() {
            project(&data.slice(0, 0), subset_ref)
        } else {
            project(&bag_block(data, bag_seed, lo, hi), subset_ref)
        };
        let out = induce_on_comm_ckpt(comm, local, lo as u32, m as u64, induce_cfg, ckpt);
        comm.phase_end(); // tree
        out
    })?;
    let mut outputs = result.outputs;
    let (mut tree, ps) = outputs.swap_remove(0);
    remap_attrs(&mut tree, &subset, &data.schema);
    Ok((tree, ps, result.stats))
}

/// [`train_forest`] under per-group fault injection, per-tree
/// checkpointing, and a [`ForestRecoveryPolicy`].
///
/// Every tree runs in an attempt loop mirroring
/// [`crate::induce_with_recovery_policy`]: a crash is accounted (wasted
/// time/bytes, restore scan, re-executed levels), then either the fired
/// spec is disarmed and the tree retried in place, or — under
/// [`ForestRecoveryPolicy::Reschedule`] — the group is declared dead and
/// its trees move to the survivors. Because bagging and feature seeds are
/// pure in the *tree index* and induction is geometry-invariant, a
/// rescheduled or resumed tree is byte-identical to its fault-free twin,
/// whatever group finishes it.
///
/// Stale manifests under the run's checkpoint namespace are cleared
/// first: this drives a fresh forest, not a resume of an earlier one.
pub fn train_forest_with_recovery(
    data: &Dataset,
    fcfg: &ForestConfig,
    par: &ParConfig,
    faults: &ForestFaultPlan,
    ckpt: Option<&ForestCheckpointCtx>,
    policy: ForestRecoveryPolicy,
) -> ForestRecoveryOutcome {
    assert!(fcfg.n_trees >= 1, "a forest needs at least one tree");
    assert!(fcfg.bootstrap > 0.0, "bootstrap fraction must be positive");
    assert!(
        fcfg.feature_frac > 0.0 && fcfg.feature_frac <= 1.0,
        "feature fraction must be in (0, 1]"
    );
    let plan = plan(fcfg.n_trees, par.procs, fcfg.schedule);
    let m = bag_size(data.len(), fcfg.bootstrap);
    let induce_cfg = par.induce;
    if let Some(fc) = ckpt {
        for t in 0..fcfg.n_trees {
            checkpoint::clear_manifests(&fc.tree_dir(t));
        }
    }

    struct GroupState {
        queue: VecDeque<usize>,
        plan: Option<Arc<FaultPlan>>,
        alive: bool,
    }
    let mut groups: Vec<GroupState> = plan
        .groups
        .iter()
        .enumerate()
        .map(|(gi, g)| GroupState {
            queue: g.trees.iter().copied().collect(),
            plan: faults.group(gi),
            alive: true,
        })
        .collect();

    let mut trees: Vec<Option<DecisionTree>> = (0..fcfg.n_trees).map(|_| None).collect();
    let mut per_tree: Vec<Option<TreeStat>> = (0..fcfg.n_trees).map(|_| None).collect();
    let mut rescheduled_from: Vec<Option<usize>> = vec![None; fcfg.n_trees];
    let mut report = ForestRecoveryReport::default();

    // Deterministic schedule: always the lowest-indexed alive group with
    // work. (Groups are disjoint machines, so execution order never
    // affects the trees or any group's own clock.)
    while let Some(gi) = (0..groups.len()).find(|&g| groups[g].alive && !groups[g].queue.is_empty())
    {
        let t = groups[gi].queue.pop_front().expect("non-empty queue");
        let tree_ckpt = ckpt.map(|fc| fc.tree_ctx(t));
        let mut rec = RecoveryReport::default();
        let mut cur = gi;
        loop {
            report.attempts += 1;
            rec.attempts += 1;
            let procs = plan.groups[cur].procs;
            match tree_attempt(
                data,
                fcfg,
                &induce_cfg,
                par,
                m,
                t,
                procs,
                groups[cur].plan.clone(),
                tree_ckpt.as_ref(),
            ) {
                Ok((tree, ps, run)) => {
                    rec.final_procs = procs as u32;
                    per_tree[t] = Some(TreeStat {
                        tree: t,
                        group: cur,
                        procs,
                        nodes: tree.nodes.len(),
                        levels: ps.levels,
                        run,
                        recovery: rec,
                        rescheduled_from: rescheduled_from[t],
                    });
                    trees[t] = Some(tree);
                    break;
                }
                Err(crash) => {
                    let sig = crash.signal;
                    report.crashes += 1;
                    rec.wasted_bytes += crash.stats.total_bytes_sent();
                    rec.wasted_time_ns += crash.stats.time_ns();
                    report.wasted_bytes += crash.stats.total_bytes_sent();
                    report.wasted_time_ns += crash.stats.time_ns();
                    let restore = match &tree_ckpt {
                        Some(ctx) => checkpoint::scan_restore(&ctx.dir, m as u64),
                        None => RestoreVerdict::NoCheckpoint,
                    };
                    let resumed_from = restore.resume_level();
                    rec.generations_walked += restore.generations_walked();
                    report.generations_walked += restore.generations_walked();
                    if sig.level != u32::MAX {
                        let re = sig.level.saturating_sub(resumed_from.unwrap_or(0)) + 1;
                        rec.reexecuted_levels += re;
                        report.reexecuted_levels += re;
                    }
                    rec.crashes.push(CrashEvent {
                        rank: sig.rank,
                        coll_seq: sig.coll_seq,
                        coll: sig.coll,
                        level: sig.level,
                        procs: procs as u32,
                        resumed_from,
                        restore,
                    });
                    let survivors: Vec<usize> = (0..groups.len())
                        .filter(|&g| g != cur && groups[g].alive)
                        .collect();
                    match policy {
                        ForestRecoveryPolicy::Reschedule if !survivors.is_empty() => {
                            groups[cur].alive = false;
                            report.dead_groups.push(cur);
                            // The crashed tree moves to the lowest-indexed
                            // survivor and retries immediately; the dead
                            // group's remaining queue is dealt round-robin
                            // over all survivors.
                            let to = survivors[0];
                            report.rescheduled.push(RescheduleEvent {
                                tree: t,
                                from_group: cur,
                                to_group: to,
                            });
                            rescheduled_from[t].get_or_insert(cur);
                            let orphans: Vec<usize> = groups[cur].queue.drain(..).collect();
                            for (i, &ot) in orphans.iter().enumerate() {
                                let target = survivors[i % survivors.len()];
                                report.rescheduled.push(RescheduleEvent {
                                    tree: ot,
                                    from_group: cur,
                                    to_group: target,
                                });
                                rescheduled_from[ot].get_or_insert(cur);
                                groups[target].queue.push_back(ot);
                            }
                            cur = to;
                        }
                        _ => {
                            // Retry in place: the faulty rank is replaced,
                            // the fired spec disarmed so the retry can pass
                            // the crash site (mirrors
                            // `induce_with_recovery_policy`). Also the
                            // reschedule fallback when no group survives.
                            groups[cur].plan = groups[cur]
                                .plan
                                .take()
                                .map(|p| Arc::new(p.without_crash(sig.spec)));
                        }
                    }
                }
            }
        }
    }
    ForestRecoveryOutcome {
        result: ForestResult {
            trees: trees
                .into_iter()
                .map(|t| t.expect("every tree planned"))
                .collect(),
            plan,
            per_tree: per_tree
                .into_iter()
                .map(|s| s.expect("every tree planned"))
                .collect(),
        },
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, ClassFunc, GenConfig, Profile};

    fn quest(n: usize, seed: u64) -> Dataset {
        generate(&GenConfig {
            n,
            func: ClassFunc::F2,
            noise: 0.05,
            seed,
            profile: Profile::Paper7,
        })
    }

    #[test]
    fn plan_layouts() {
        // Tree-parallel: 8 ranks over 4 trees → 4 groups of 2.
        let p = plan(4, 8, ForestSchedule::TreeParallel);
        assert_eq!(p.groups.len(), 4);
        assert!(p.groups.iter().all(|g| g.procs == 2 && g.trees.len() == 1));
        assert_eq!(p.label(), "tree-parallel 4×2");
        // Uneven split: 7 ranks over 3 trees → 3,2,2.
        let p = plan(3, 7, ForestSchedule::TreeParallel);
        assert_eq!(
            p.groups.iter().map(|g| g.procs).collect::<Vec<_>>(),
            vec![3, 2, 2]
        );
        // Hybrid: more trees than ranks → round-robin over rank-1 groups.
        let p = plan(5, 2, ForestSchedule::TreeParallel);
        assert_eq!(p.groups.len(), 2);
        assert_eq!(p.groups[0].trees, vec![0, 2, 4]);
        assert_eq!(p.groups[1].trees, vec![1, 3]);
        // Auto resolves by p vs n_trees.
        assert_eq!(
            plan(4, 8, ForestSchedule::Auto),
            plan(4, 8, ForestSchedule::TreeParallel)
        );
        assert_eq!(
            plan(8, 4, ForestSchedule::Auto),
            plan(8, 4, ForestSchedule::DataParallel)
        );
        // Serial is one rank regardless of p.
        let p = plan(3, 8, ForestSchedule::Serial);
        assert_eq!(p.groups.len(), 1);
        assert_eq!(p.groups[0].procs, 1);
        assert_eq!(p.label(), "serial 1×1");
        assert_eq!(
            plan(3, 8, ForestSchedule::DataParallel).label(),
            "data-parallel 1×8"
        );
        // Every tree appears exactly once in every layout.
        for (nt, pr, s) in [
            (5, 3, ForestSchedule::TreeParallel),
            (4, 9, ForestSchedule::Auto),
            (6, 2, ForestSchedule::DataParallel),
        ] {
            let mut seen: Vec<usize> = plan(nt, pr, s)
                .groups
                .iter()
                .flat_map(|g| g.trees.clone())
                .collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..nt).collect::<Vec<_>>());
        }
    }

    #[test]
    fn bagging_is_layout_free_and_with_replacement() {
        let data = quest(200, 7);
        let bag_seed = mix(42 ^ BAG_SALT, 3);
        // Concatenated blocks equal the whole bag for any block split.
        let whole = bag_block(&data, bag_seed, 0, 200);
        for splits in [vec![0, 200], vec![0, 67, 134, 200], vec![0, 50, 200]] {
            let mut parts: Vec<Dataset> = Vec::new();
            for w in splits.windows(2) {
                parts.push(bag_block(&data, bag_seed, w[0], w[1]));
            }
            let labels: Vec<u8> = parts.iter().flat_map(|d| d.labels.clone()).collect();
            assert_eq!(labels, whole.labels);
        }
        // With replacement: some source record repeats with overwhelming
        // probability at this size.
        let srcs: Vec<u64> = (0..200u64).map(|i| mix(bag_seed, i) % 200).collect();
        let mut dedup = srcs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert!(dedup.len() < srcs.len(), "bootstrap drew no duplicates?");
    }

    #[test]
    fn feature_subsets_are_sorted_and_sized() {
        let data = quest(10, 1);
        let a = data.schema.num_attrs();
        for t in 0..20u64 {
            let s = feature_subset(&data.schema, mix(9 ^ FEAT_SALT, t), 0.5);
            assert_eq!(s.len(), ((a as f64 * 0.5).round() as usize).clamp(1, a));
            assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted, unique: {s:?}");
            assert!(s.iter().all(|&x| x < a));
        }
        // frac 1.0 keeps everything.
        assert_eq!(
            feature_subset(&data.schema, 5, 1.0),
            (0..a).collect::<Vec<_>>()
        );
    }

    #[test]
    fn forest_identical_across_schedules() {
        let data = quest(300, 11);
        let fcfg = ForestConfig {
            n_trees: 3,
            bootstrap: 1.0,
            feature_frac: 0.7,
            seed: 5,
            schedule: ForestSchedule::Serial,
        };
        let serial = train_forest(&data, &fcfg, &ParConfig::new(1));
        for (schedule, procs) in [
            (ForestSchedule::DataParallel, 4),
            (ForestSchedule::TreeParallel, 6),
            (ForestSchedule::TreeParallel, 2), // hybrid: 3 trees on 2 ranks
            (ForestSchedule::Auto, 3),
        ] {
            let cfg = ForestConfig { schedule, ..fcfg };
            let got = train_forest(&data, &cfg, &ParConfig::new(procs));
            assert_eq!(got.trees, serial.trees, "{schedule:?} p={procs}");
        }
    }

    #[test]
    fn subset_trees_carry_the_full_schema() {
        let data = quest(250, 13);
        let fcfg = ForestConfig {
            n_trees: 2,
            feature_frac: 0.4,
            ..ForestConfig::default()
        };
        let result = train_forest(&data, &fcfg, &ParConfig::new(2));
        for tree in &result.trees {
            assert_eq!(tree.schema, data.schema);
            tree.validate();
        }
        // Time/bytes accounting present.
        assert_eq!(result.per_tree.len(), 2);
        assert!(result.total_bytes_sent() > 0 || result.plan.groups[0].procs == 1);
    }

    #[test]
    fn train_time_composes_as_max_over_groups() {
        let data = quest(200, 17);
        let fcfg = ForestConfig {
            n_trees: 4,
            schedule: ForestSchedule::TreeParallel,
            ..ForestConfig::default()
        };
        let r = train_forest(&data, &fcfg, &crate::ParConfig::measured(4));
        let per_group: Vec<u64> = (0..r.plan.groups.len())
            .map(|gi| {
                r.per_tree
                    .iter()
                    .filter(|s| s.group == gi)
                    .map(|s| s.run.time_ns())
                    .sum()
            })
            .collect();
        assert_eq!(r.train_time_ns(), *per_group.iter().max().unwrap());
        assert!(r.train_time_ns() > 0);
    }

    #[test]
    fn empty_dataset_yields_single_leaf_trees() {
        use dtree::{AttrDef, Column, Schema};
        let schema = Schema::new(vec![AttrDef::continuous("x")], 2);
        let data = Dataset::new(schema, vec![Column::Continuous(vec![])], vec![]);
        let fcfg = ForestConfig {
            n_trees: 2,
            ..ForestConfig::default()
        };
        let r = train_forest(&data, &fcfg, &ParConfig::new(2));
        assert!(r.trees.iter().all(|t| t.nodes.len() == 1));
    }

    fn io_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("scalparc-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn container_roundtrip_and_damage_isolation() {
        let data = quest(150, 23);
        let fcfg = ForestConfig {
            n_trees: 3,
            ..ForestConfig::default()
        };
        let trees = train_forest(&data, &fcfg, &ParConfig::new(1)).trees;
        let dir = io_dir("forest-io");
        let path = dir.join("model.scpf");
        save_forest(&trees, &path).unwrap();
        assert_eq!(load_forest_strict(&path).unwrap(), trees);
        let v = load_forest(&path).unwrap();
        assert!(v.is_complete() && v.planned == 3);

        // A flipped bit in tree 1's section corrupts exactly that slot.
        damage_tree_section(&path, 1).unwrap();
        let v = load_forest(&path).unwrap();
        assert_eq!(v.planned, 3);
        assert!(v.trees[0].is_ok() && v.trees[2].is_ok());
        assert!(matches!(v.trees[1], TreeVerdict::Corrupt(_)));
        assert_eq!(v.missing_mask(), vec![false, true, false]);
        assert_eq!(v.surviving(), vec![trees[0].clone(), trees[2].clone()]);
        assert!(load_forest_strict(&path).is_err());

        // Dropping a section entirely reads back as Missing.
        save_forest(&trees, &path).unwrap();
        remove_tree_section(&path, 0).unwrap();
        let v = load_forest(&path).unwrap();
        assert_eq!(v.trees[0], TreeVerdict::Missing);
        assert_eq!(v.n_ok(), 2);

        // Truncation mid-section: that tree Corrupt, later trees lost.
        save_forest(&trees, &path).unwrap();
        truncate_at_tree_section(&path, 1).unwrap();
        let v = load_forest(&path).unwrap();
        assert!(v.trees[0].is_ok());
        assert!(matches!(v.trees[1], TreeVerdict::Corrupt(_)));
        assert_eq!(v.trees[2], TreeVerdict::Missing);

        // Envelope damage (bad magic) still fails the load as a whole.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(load_forest(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_v1_container_still_loads() {
        let data = quest(120, 29);
        let fcfg = ForestConfig {
            n_trees: 2,
            ..ForestConfig::default()
        };
        let trees = train_forest(&data, &fcfg, &ParConfig::new(1)).trees;
        let dir = io_dir("forest-io-v1");
        let path = dir.join("model.scpf");
        let text = model_io::forest_to_text(&trees);
        diskio::ckpt::write_sections(&path, &[(FOREST_SECTION, text.as_bytes())]).unwrap();
        assert_eq!(load_forest_strict(&path).unwrap(), trees);
        // v1 is all-or-nothing: any damage loses the whole forest.
        diskio::ckpt::damage_flip_bit(&path).unwrap();
        assert!(load_forest(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_matches_fault_free_without_faults() {
        let data = quest(200, 31);
        let fcfg = ForestConfig {
            n_trees: 3,
            schedule: ForestSchedule::TreeParallel,
            ..ForestConfig::default()
        };
        let par = ParConfig::new(6);
        let plain = train_forest(&data, &fcfg, &par);
        let out = train_forest_with_recovery(
            &data,
            &fcfg,
            &par,
            &ForestFaultPlan::new(),
            None,
            ForestRecoveryPolicy::RetryInPlace,
        );
        assert_eq!(out.result.trees, plain.trees);
        assert_eq!(out.report.crashes, 0);
        assert_eq!(out.report.attempts, 3);
        // Cost parity: the driver charges exactly what train_forest does.
        assert_eq!(out.result.train_time_ns(), plain.train_time_ns());
        assert_eq!(out.result.total_bytes_sent(), plain.total_bytes_sent());
        assert!(out
            .result
            .per_tree
            .iter()
            .all(|s| s.recovery.crashes.is_empty() && s.rescheduled_from.is_none()));
    }

    #[test]
    fn crash_retries_in_place_and_recovers_identical_forest() {
        let data = quest(260, 37);
        let fcfg = ForestConfig {
            n_trees: 2,
            schedule: ForestSchedule::TreeParallel,
            ..ForestConfig::default()
        };
        let par = ParConfig::new(4);
        let plain = train_forest(&data, &fcfg, &par);
        let dir = io_dir("forest-rec");
        let faults = ForestFaultPlan::new().with_group(
            1,
            FaultPlan::new().with_crash(1, mpsim::CrashPoint::Level(1)),
        );
        let ckpt = ForestCheckpointCtx::new(&dir, 7);
        let out = train_forest_with_recovery(
            &data,
            &fcfg,
            &par,
            &faults,
            Some(&ckpt),
            ForestRecoveryPolicy::RetryInPlace,
        );
        assert_eq!(out.result.trees, plain.trees);
        assert_eq!(out.report.crashes, 1);
        assert_eq!(out.report.attempts, 3);
        let s = &out.result.per_tree[1];
        assert_eq!(s.recovery.attempts, 2);
        assert_eq!(s.recovery.crashes.len(), 1);
        assert!(s.recovery.wasted_time_ns > 0);
        assert!(out.report.rescheduled.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dead_group_reschedules_trees_onto_survivors() {
        let data = quest(260, 41);
        let fcfg = ForestConfig {
            n_trees: 4,
            schedule: ForestSchedule::TreeParallel,
            seed: 9,
            ..ForestConfig::default()
        };
        // Hybrid: 2 single-rank groups, group 0 owns trees {0, 2}, group 1
        // {1, 3}.
        let par = ParConfig::new(2);
        let plain = train_forest(&data, &fcfg, &par);
        let dir = io_dir("forest-resched");
        let faults = ForestFaultPlan::new().with_group(
            0,
            FaultPlan::new().with_crash(0, mpsim::CrashPoint::Level(1)),
        );
        let ckpt = ForestCheckpointCtx::new(&dir, 11);
        let out = train_forest_with_recovery(
            &data,
            &fcfg,
            &par,
            &faults,
            Some(&ckpt),
            ForestRecoveryPolicy::Reschedule,
        );
        // Byte-identical to the fault-free forest despite the migration.
        assert_eq!(out.result.trees, plain.trees);
        assert_eq!(out.report.dead_groups, vec![0]);
        // Tree 0 crashed on group 0 and moved to group 1; tree 2 was still
        // queued on the dead group and moved too.
        assert_eq!(
            out.report.rescheduled,
            vec![
                RescheduleEvent {
                    tree: 0,
                    from_group: 0,
                    to_group: 1
                },
                RescheduleEvent {
                    tree: 2,
                    from_group: 0,
                    to_group: 1
                },
            ]
        );
        for t in [0, 2] {
            let s = &out.result.per_tree[t];
            assert_eq!(s.rescheduled_from, Some(0));
            assert_eq!(s.group, 1, "tree {t} completed on the survivor");
        }
        // Everything ran on the lone survivor, so the makespan is its sum.
        assert_eq!(
            out.result.train_time_ns(),
            out.result
                .per_tree
                .iter()
                .map(|s| s.run.time_ns())
                .sum::<u64>()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reschedule_with_no_survivor_falls_back_to_replacement() {
        let data = quest(180, 43);
        let fcfg = ForestConfig {
            n_trees: 2,
            schedule: ForestSchedule::DataParallel,
            ..ForestConfig::default()
        };
        let par = ParConfig::new(3);
        let plain = train_forest(&data, &fcfg, &par);
        let faults = ForestFaultPlan::new().with_group(
            0,
            FaultPlan::new().with_crash(2, mpsim::CrashPoint::Level(0)),
        );
        let out = train_forest_with_recovery(
            &data,
            &fcfg,
            &par,
            &faults,
            None,
            ForestRecoveryPolicy::Reschedule,
        );
        assert_eq!(out.result.trees, plain.trees);
        assert_eq!(out.report.crashes, 1);
        assert!(out.report.dead_groups.is_empty());
        assert_eq!(out.result.per_tree[0].rescheduled_from, None);
    }
}
