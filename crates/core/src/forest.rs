//! Forest engine: bagged random-forest induction scheduled over the
//! simulated machine, following the joint tree-/data-parallel design of
//! exact distributed random-forest training.
//!
//! # Scheduling
//!
//! The `p` virtual processors are split into **tree groups**
//! ([`ForestSchedule`]): when `p ≥ n_trees` each tree gets its own group of
//! `⌊p/n_trees⌋`-or-one-more ranks (tree-parallel — every group is a full
//! ScalParC machine inducing its tree), otherwise all `p` ranks work on one
//! tree at a time (data-parallel). Groups never communicate during
//! induction, so each group runs as its own [`mpsim`] machine; the forest's
//! simulated train time is the **maximum over groups** of each group's
//! per-tree sum — exactly what a space-shared machine whose rank sets are
//! disjoint would observe.
//!
//! # Determinism
//!
//! The bagged sample of tree `t` is never materialized globally: bagged
//! index `i` sources training record `mix(bag_seed_t, i) mod N` via a
//! `datagen::StreamingGen`-style per-index SplitMix64 hash, so any rank
//! regenerates exactly its `⌈m/g⌉` block from `(seed, t, i)` alone —
//! independent of `p` or the group shape. Per-tree feature subsets are
//! drawn (sorted ascending) from a per-tree seeded generator, and the
//! sorted order makes the subset→global attribute remap **monotone**, which
//! preserves ScalParC's split tie-break order (gini, then lowest attribute
//! index). Combined with ScalParC's geometry-invariance (the induced tree
//! does not depend on the rank count), the whole forest is **byte-identical
//! across scheduling layouts** for fixed seeds — asserted by the
//! `forest_equivalence` integration tests and the `forest` bench bin.

use std::path::Path;

use dtree::data::{Dataset, Schema};
use dtree::testgen::TestRng;
use dtree::tree::{DecisionTree, SplitTest};
use dtree::{eval, model_io};
use mpsim::{MachineCfg, RunStats};

use crate::config::ParConfig;
use crate::induce::induce_on_comm;

/// How trees are laid out over the machine's ranks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ForestSchedule {
    /// Tree-parallel when `p ≥ n_trees`, data-parallel otherwise.
    #[default]
    Auto,
    /// `min(p, n_trees)` groups, trees dealt round-robin: one tree per
    /// group when `p ≥ n_trees`, several sequential trees per group (of at
    /// least one rank each) otherwise.
    TreeParallel,
    /// One group of all `p` ranks inducing the trees sequentially.
    DataParallel,
    /// One group of one rank (the serial reference layout).
    Serial,
}

/// Forest training configuration.
#[derive(Clone, Copy, Debug)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Bootstrap-sample size as a fraction of `N` (sampling is with
    /// replacement; `1.0` is the classic bootstrap).
    pub bootstrap: f64,
    /// Fraction of the attributes each tree trains on (at least one
    /// attribute is always kept; `1.0` disables feature subsetting).
    pub feature_frac: f64,
    /// Master seed: bagging and feature subsets of every tree derive from
    /// it by per-tree SplitMix64 decorrelation.
    pub seed: u64,
    /// Rank layout.
    pub schedule: ForestSchedule,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 8,
            bootstrap: 1.0,
            feature_frac: 1.0,
            seed: 42,
            schedule: ForestSchedule::Auto,
        }
    }
}

/// One tree group of a [`ForestPlan`]: a disjoint set of ranks inducing
/// `trees` sequentially.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForestGroup {
    /// Ranks in the group (each group is its own simulated machine).
    pub procs: usize,
    /// Trees the group induces, in order.
    pub trees: Vec<usize>,
}

/// The resolved rank layout of a forest run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForestPlan {
    /// Disjoint tree groups; `Σ procs ≤ p` and every tree appears exactly
    /// once.
    pub groups: Vec<ForestGroup>,
}

impl ForestPlan {
    /// A short human-readable layout label, e.g. `tree-parallel 4×2`.
    pub fn label(&self) -> String {
        let g = self.groups.len();
        if g == 1 {
            let procs = self.groups[0].procs;
            if procs == 1 {
                "serial 1×1".to_string()
            } else {
                format!("data-parallel 1×{procs}")
            }
        } else {
            let lo = self.groups.iter().map(|x| x.procs).min().unwrap_or(1);
            let hi = self.groups.iter().map(|x| x.procs).max().unwrap_or(1);
            if lo == hi {
                format!("tree-parallel {g}×{lo}")
            } else {
                format!("tree-parallel {g}×{lo}..{hi}")
            }
        }
    }
}

/// Resolve a schedule into tree groups over `procs` ranks.
pub fn plan(n_trees: usize, procs: usize, schedule: ForestSchedule) -> ForestPlan {
    assert!(n_trees >= 1, "a forest needs at least one tree");
    let procs = procs.max(1);
    let schedule = match schedule {
        ForestSchedule::Auto if procs >= n_trees && n_trees > 1 => ForestSchedule::TreeParallel,
        ForestSchedule::Auto => ForestSchedule::DataParallel,
        s => s,
    };
    let groups = match schedule {
        ForestSchedule::Serial => vec![ForestGroup {
            procs: 1,
            trees: (0..n_trees).collect(),
        }],
        ForestSchedule::DataParallel => vec![ForestGroup {
            procs,
            trees: (0..n_trees).collect(),
        }],
        ForestSchedule::TreeParallel => {
            let g = procs.min(n_trees);
            (0..g)
                .map(|i| ForestGroup {
                    // First `procs % g` groups take the extra rank.
                    procs: procs / g + usize::from(i < procs % g),
                    trees: (i..n_trees).step_by(g).collect(),
                })
                .collect()
        }
        ForestSchedule::Auto => unreachable!("resolved above"),
    };
    ForestPlan { groups }
}

/// Per-tree training statistics.
#[derive(Clone, Debug)]
pub struct TreeStat {
    /// Tree index in the forest.
    pub tree: usize,
    /// Index of the group that induced it.
    pub group: usize,
    /// Rank count of that group's machine.
    pub procs: usize,
    /// Nodes in the induced tree.
    pub nodes: usize,
    /// Levels the induction processed.
    pub levels: u32,
    /// Full machine statistics of the tree's run (simulated time,
    /// communication volume, memory peaks, traces when enabled).
    pub run: RunStats,
}

/// A trained forest plus schedule-aware accounting.
#[derive(Clone, Debug)]
pub struct ForestResult {
    /// The member trees, in index order, attributes remapped to the full
    /// training schema.
    pub trees: Vec<DecisionTree>,
    /// The rank layout that trained them.
    pub plan: ForestPlan,
    /// Per-tree statistics, in tree order.
    pub per_tree: Vec<TreeStat>,
}

impl ForestResult {
    /// Simulated train time of the whole forest: groups run concurrently
    /// on disjoint ranks, trees within a group sequentially — so the
    /// forest finishes when the slowest group's per-tree times have summed.
    pub fn train_time_ns(&self) -> u64 {
        self.plan
            .groups
            .iter()
            .enumerate()
            .map(|(gi, _)| {
                self.per_tree
                    .iter()
                    .filter(|s| s.group == gi)
                    .map(|s| s.run.time_ns())
                    .sum::<u64>()
            })
            .max()
            .unwrap_or(0)
    }

    /// Simulated train time in seconds.
    pub fn train_time_s(&self) -> f64 {
        self.train_time_ns() as f64 / 1e9
    }

    /// Total bytes sent across all trees' machines.
    pub fn total_bytes_sent(&self) -> u64 {
        self.per_tree.iter().map(|s| s.run.total_bytes_sent()).sum()
    }

    /// Peak per-rank memory across all trees' machines.
    pub fn peak_mem_per_proc(&self) -> u64 {
        self.per_tree
            .iter()
            .map(|s| s.run.peak_mem_per_proc())
            .max()
            .unwrap_or(0)
    }
}

/// SplitMix64 finalizer over `(seed, i)` — the same per-index derivation
/// `datagen::StreamingGen` uses, so any rank regenerates any bagged index
/// without materializing the bootstrap.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seed-space salts decorrelating the per-tree bagging and feature streams.
const BAG_SALT: u64 = 0xB001_57A9_0000_0001;
const FEAT_SALT: u64 = 0xFEA7_0000_0000_0002;

/// Number of bagged records per tree.
fn bag_size(n: usize, bootstrap: f64) -> usize {
    if n == 0 {
        0
    } else {
        ((n as f64 * bootstrap).round() as usize).max(1)
    }
}

/// Materialize bagged indices `[lo, hi)` of tree `t`'s bootstrap: bagged
/// index `i` sources record `mix(bag_seed, i) mod N`. Pure in
/// `(seed, t, i)` — identical on any rank, under any layout.
fn bag_block(data: &Dataset, bag_seed: u64, lo: usize, hi: usize) -> Dataset {
    let n = data.len() as u64;
    let src: Vec<usize> = (lo..hi)
        .map(|i| (mix(bag_seed, i as u64) % n) as usize)
        .collect();
    eval::select(data, &src)
}

/// Tree `t`'s feature subset: a sorted draw of `⌈frac·A⌉`-clamped-to-`[1,A]`
/// attributes. Sorting keeps the subset→global remap monotone, preserving
/// the lowest-attribute-index split tie-break.
fn feature_subset(schema: &Schema, feat_seed: u64, frac: f64) -> Vec<usize> {
    let a = schema.num_attrs();
    let k = ((a as f64 * frac).round() as usize).clamp(1, a);
    let mut idx: Vec<usize> = (0..a).collect();
    let mut rng = TestRng::new(feat_seed);
    // Partial Fisher–Yates: the first k entries are a uniform draw.
    for i in 0..k {
        let j = i + rng.below((a - i) as u64) as usize;
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx.sort_unstable();
    idx
}

/// Project a dataset onto an attribute subset (columns and schema).
fn project(data: &Dataset, subset: &[usize]) -> Dataset {
    let attrs = subset
        .iter()
        .map(|&a| data.schema.attrs[a].clone())
        .collect();
    let columns = subset.iter().map(|&a| data.columns[a].clone()).collect();
    Dataset {
        schema: Schema::new(attrs, data.schema.num_classes),
        columns,
        labels: data.labels.clone(),
    }
}

/// Remap a tree induced under a feature subset back onto the full schema.
fn remap_attrs(tree: &mut DecisionTree, subset: &[usize], schema: &Schema) {
    for node in &mut tree.nodes {
        match &mut node.test {
            Some(SplitTest::Continuous { attr, .. })
            | Some(SplitTest::Categorical { attr })
            | Some(SplitTest::CategoricalSubset { attr, .. }) => *attr = subset[*attr],
            None => {}
        }
    }
    tree.schema = schema.clone();
}

/// Train a bagged forest of ScalParC trees over the simulated machine.
///
/// Each group of the resolved [`ForestPlan`] runs as its own machine of
/// `group.procs` ranks; within it, every tree is one `induce_on_comm`
/// collective over that tree's regenerated bagged block, wrapped in a
/// `("tree", t)` obs phase so traced runs attribute every span to its tree.
/// The trees (and therefore the whole forest) are byte-identical across
/// schedules and rank counts for a fixed `fcfg.seed`.
pub fn train_forest(data: &Dataset, fcfg: &ForestConfig, par: &ParConfig) -> ForestResult {
    assert!(fcfg.n_trees >= 1, "a forest needs at least one tree");
    assert!(fcfg.bootstrap > 0.0, "bootstrap fraction must be positive");
    assert!(
        fcfg.feature_frac > 0.0 && fcfg.feature_frac <= 1.0,
        "feature fraction must be in (0, 1]"
    );
    let plan = plan(fcfg.n_trees, par.procs, fcfg.schedule);
    let m = bag_size(data.len(), fcfg.bootstrap);
    let induce_cfg = par.induce;

    let mut trees: Vec<Option<DecisionTree>> = (0..fcfg.n_trees).map(|_| None).collect();
    let mut per_tree: Vec<Option<TreeStat>> = (0..fcfg.n_trees).map(|_| None).collect();
    for (gi, group) in plan.groups.iter().enumerate() {
        let mcfg = MachineCfg {
            procs: group.procs,
            cost: par.cost,
            timing: par.timing,
            compute_tokens: 0,
            replay: None,
            trace: par.trace,
            fault: None,
        };
        for &t in &group.trees {
            let bag_seed = mix(fcfg.seed ^ BAG_SALT, t as u64);
            let subset = feature_subset(
                &data.schema,
                mix(fcfg.seed ^ FEAT_SALT, t as u64),
                fcfg.feature_frac,
            );
            let block = m.div_ceil(group.procs).max(1);
            let subset_ref = &subset;
            let result = mpsim::run(&mcfg, |comm| {
                comm.phase_begin("tree", t as u32);
                let lo = (comm.rank() * block).min(m);
                let hi = ((comm.rank() + 1) * block).min(m);
                let local = if data.is_empty() {
                    project(&data.slice(0, 0), subset_ref)
                } else {
                    project(&bag_block(data, bag_seed, lo, hi), subset_ref)
                };
                let out = induce_on_comm(comm, local, lo as u32, m as u64, &induce_cfg);
                comm.phase_end(); // tree
                out
            });
            let mut outputs = result.outputs;
            let (mut tree, ps) = outputs.swap_remove(0);
            remap_attrs(&mut tree, &subset, &data.schema);
            per_tree[t] = Some(TreeStat {
                tree: t,
                group: gi,
                procs: group.procs,
                nodes: tree.nodes.len(),
                levels: ps.levels,
                run: result.stats,
            });
            trees[t] = Some(tree);
        }
    }
    ForestResult {
        trees: trees
            .into_iter()
            .map(|t| t.expect("every tree planned"))
            .collect(),
        plan,
        per_tree: per_tree
            .into_iter()
            .map(|s| s.expect("every tree planned"))
            .collect(),
    }
}

/// Section tag of the forest payload inside the CRC'd container.
pub const FOREST_SECTION: u32 = u32::from_le_bytes(*b"FRST");

/// Write a forest to a versioned, CRC-guarded container file (the
/// `diskio::ckpt` section format around the `model_io` forest text): a
/// torn or bit-flipped file is detected on load, never silently parsed,
/// and the write is atomic (tmp + rename).
pub fn save_forest(trees: &[DecisionTree], path: &Path) -> Result<(), String> {
    let text = model_io::forest_to_text(trees);
    diskio::ckpt::write_sections(path, &[(FOREST_SECTION, text.as_bytes())])
        .map_err(|e| e.to_string())
}

/// Read a forest back from a [`save_forest`] container, verifying the
/// envelope CRC before parsing.
pub fn load_forest(path: &Path) -> Result<Vec<DecisionTree>, String> {
    let sections = diskio::ckpt::read_sections(path).map_err(|e| e.to_string())?;
    let payload = sections
        .iter()
        .find(|(tag, _)| *tag == FOREST_SECTION)
        .map(|(_, bytes)| bytes)
        .ok_or_else(|| format!("{}: no forest section in container", path.display()))?;
    let text = std::str::from_utf8(payload)
        .map_err(|e| format!("{}: forest payload is not UTF-8: {e}", path.display()))?;
    model_io::forest_from_text(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, ClassFunc, GenConfig, Profile};

    fn quest(n: usize, seed: u64) -> Dataset {
        generate(&GenConfig {
            n,
            func: ClassFunc::F2,
            noise: 0.05,
            seed,
            profile: Profile::Paper7,
        })
    }

    #[test]
    fn plan_layouts() {
        // Tree-parallel: 8 ranks over 4 trees → 4 groups of 2.
        let p = plan(4, 8, ForestSchedule::TreeParallel);
        assert_eq!(p.groups.len(), 4);
        assert!(p.groups.iter().all(|g| g.procs == 2 && g.trees.len() == 1));
        assert_eq!(p.label(), "tree-parallel 4×2");
        // Uneven split: 7 ranks over 3 trees → 3,2,2.
        let p = plan(3, 7, ForestSchedule::TreeParallel);
        assert_eq!(
            p.groups.iter().map(|g| g.procs).collect::<Vec<_>>(),
            vec![3, 2, 2]
        );
        // Hybrid: more trees than ranks → round-robin over rank-1 groups.
        let p = plan(5, 2, ForestSchedule::TreeParallel);
        assert_eq!(p.groups.len(), 2);
        assert_eq!(p.groups[0].trees, vec![0, 2, 4]);
        assert_eq!(p.groups[1].trees, vec![1, 3]);
        // Auto resolves by p vs n_trees.
        assert_eq!(
            plan(4, 8, ForestSchedule::Auto),
            plan(4, 8, ForestSchedule::TreeParallel)
        );
        assert_eq!(
            plan(8, 4, ForestSchedule::Auto),
            plan(8, 4, ForestSchedule::DataParallel)
        );
        // Serial is one rank regardless of p.
        let p = plan(3, 8, ForestSchedule::Serial);
        assert_eq!(p.groups.len(), 1);
        assert_eq!(p.groups[0].procs, 1);
        assert_eq!(p.label(), "serial 1×1");
        assert_eq!(
            plan(3, 8, ForestSchedule::DataParallel).label(),
            "data-parallel 1×8"
        );
        // Every tree appears exactly once in every layout.
        for (nt, pr, s) in [
            (5, 3, ForestSchedule::TreeParallel),
            (4, 9, ForestSchedule::Auto),
            (6, 2, ForestSchedule::DataParallel),
        ] {
            let mut seen: Vec<usize> = plan(nt, pr, s)
                .groups
                .iter()
                .flat_map(|g| g.trees.clone())
                .collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..nt).collect::<Vec<_>>());
        }
    }

    #[test]
    fn bagging_is_layout_free_and_with_replacement() {
        let data = quest(200, 7);
        let bag_seed = mix(42 ^ BAG_SALT, 3);
        // Concatenated blocks equal the whole bag for any block split.
        let whole = bag_block(&data, bag_seed, 0, 200);
        for splits in [vec![0, 200], vec![0, 67, 134, 200], vec![0, 50, 200]] {
            let mut parts: Vec<Dataset> = Vec::new();
            for w in splits.windows(2) {
                parts.push(bag_block(&data, bag_seed, w[0], w[1]));
            }
            let labels: Vec<u8> = parts.iter().flat_map(|d| d.labels.clone()).collect();
            assert_eq!(labels, whole.labels);
        }
        // With replacement: some source record repeats with overwhelming
        // probability at this size.
        let srcs: Vec<u64> = (0..200u64).map(|i| mix(bag_seed, i) % 200).collect();
        let mut dedup = srcs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert!(dedup.len() < srcs.len(), "bootstrap drew no duplicates?");
    }

    #[test]
    fn feature_subsets_are_sorted_and_sized() {
        let data = quest(10, 1);
        let a = data.schema.num_attrs();
        for t in 0..20u64 {
            let s = feature_subset(&data.schema, mix(9 ^ FEAT_SALT, t), 0.5);
            assert_eq!(s.len(), ((a as f64 * 0.5).round() as usize).clamp(1, a));
            assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted, unique: {s:?}");
            assert!(s.iter().all(|&x| x < a));
        }
        // frac 1.0 keeps everything.
        assert_eq!(
            feature_subset(&data.schema, 5, 1.0),
            (0..a).collect::<Vec<_>>()
        );
    }

    #[test]
    fn forest_identical_across_schedules() {
        let data = quest(300, 11);
        let fcfg = ForestConfig {
            n_trees: 3,
            bootstrap: 1.0,
            feature_frac: 0.7,
            seed: 5,
            schedule: ForestSchedule::Serial,
        };
        let serial = train_forest(&data, &fcfg, &ParConfig::new(1));
        for (schedule, procs) in [
            (ForestSchedule::DataParallel, 4),
            (ForestSchedule::TreeParallel, 6),
            (ForestSchedule::TreeParallel, 2), // hybrid: 3 trees on 2 ranks
            (ForestSchedule::Auto, 3),
        ] {
            let cfg = ForestConfig { schedule, ..fcfg };
            let got = train_forest(&data, &cfg, &ParConfig::new(procs));
            assert_eq!(got.trees, serial.trees, "{schedule:?} p={procs}");
        }
    }

    #[test]
    fn subset_trees_carry_the_full_schema() {
        let data = quest(250, 13);
        let fcfg = ForestConfig {
            n_trees: 2,
            feature_frac: 0.4,
            ..ForestConfig::default()
        };
        let result = train_forest(&data, &fcfg, &ParConfig::new(2));
        for tree in &result.trees {
            assert_eq!(tree.schema, data.schema);
            tree.validate();
        }
        // Time/bytes accounting present.
        assert_eq!(result.per_tree.len(), 2);
        assert!(result.total_bytes_sent() > 0 || result.plan.groups[0].procs == 1);
    }

    #[test]
    fn train_time_composes_as_max_over_groups() {
        let data = quest(200, 17);
        let fcfg = ForestConfig {
            n_trees: 4,
            schedule: ForestSchedule::TreeParallel,
            ..ForestConfig::default()
        };
        let r = train_forest(&data, &fcfg, &crate::ParConfig::measured(4));
        let per_group: Vec<u64> = (0..r.plan.groups.len())
            .map(|gi| {
                r.per_tree
                    .iter()
                    .filter(|s| s.group == gi)
                    .map(|s| s.run.time_ns())
                    .sum()
            })
            .collect();
        assert_eq!(r.train_time_ns(), *per_group.iter().max().unwrap());
        assert!(r.train_time_ns() > 0);
    }

    #[test]
    fn empty_dataset_yields_single_leaf_trees() {
        use dtree::{AttrDef, Column, Schema};
        let schema = Schema::new(vec![AttrDef::continuous("x")], 2);
        let data = Dataset::new(schema, vec![Column::Continuous(vec![])], vec![]);
        let fcfg = ForestConfig {
            n_trees: 2,
            ..ForestConfig::default()
        };
        let r = train_forest(&data, &fcfg, &ParConfig::new(2));
        assert!(r.trees.iter().all(|t| t.nodes.len() == 1));
    }

    #[test]
    fn container_roundtrip_and_corruption_detection() {
        let data = quest(150, 23);
        let fcfg = ForestConfig {
            n_trees: 2,
            ..ForestConfig::default()
        };
        let trees = train_forest(&data, &fcfg, &ParConfig::new(1)).trees;
        let dir = std::env::temp_dir().join(format!("scalparc-forest-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.scpf");
        save_forest(&trees, &path).unwrap();
        assert_eq!(load_forest(&path).unwrap(), trees);
        // A flipped bit must surface as a CRC error, not a parsed forest.
        diskio::ckpt::damage_flip_bit(&path).unwrap();
        assert!(load_forest(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
