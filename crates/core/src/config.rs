//! Configuration of parallel induction runs.

use dtree::{SplitOptions, StopRules};
use mpsim::{CostModel, TimingMode};

/// Which parallel splitting-phase formulation to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// ScalParC: distributed node table updated and enquired with the
    /// parallel hashing paradigm. Communication O(N) total per level,
    /// memory O(N/p) per processor.
    #[default]
    ScalParc,
    /// The parallel SPRINT formulation the paper critiques (§3.2): the
    /// record-to-child mapping is allgathered so *every* processor builds
    /// the full hash table. Communication O(N) **per processor** per level,
    /// memory O(N) per processor — unscalable in both.
    SprintReplicated,
}

/// Algorithm-level options (independent of the machine).
#[derive(Clone, Copy, Debug)]
pub struct InduceConfig {
    /// Stopping rules (shared semantics with the serial classifiers).
    pub stop: StopRules,
    /// Candidate generation options: categorical mode (per-value m-way or
    /// the paper's footnote binary-subset variant) and impurity criterion
    /// (gini per the paper, entropy as the C4.5-style extension).
    pub split: SplitOptions,
    /// Splitting-phase formulation.
    pub algorithm: Algorithm,
    /// ScalParC only: split node-table updates into rounds of at most
    /// `⌈N/p⌉` per rank (paper §3.3.2, memory scalability under skew).
    /// Disabling sends each rank's updates in one all-to-all step.
    pub blocked_updates: bool,
    /// ScalParC only: batch the node-table enquiries of **all**
    /// non-splitting attributes into one two-step exchange per level,
    /// instead of the paper's "one attribute at a time" (§4). Same results,
    /// fewer collective latencies — one of the communication optimizations
    /// the paper defers to its technical report. Off by default to match
    /// the paper's algorithm as published.
    pub batched_enquiry: bool,
}

impl Default for InduceConfig {
    fn default() -> Self {
        InduceConfig {
            stop: StopRules::default(),
            split: SplitOptions::default(),
            algorithm: Algorithm::ScalParc,
            blocked_updates: true,
            batched_enquiry: false,
        }
    }
}

/// Full configuration of a simulated parallel run.
#[derive(Clone, Copy, Debug)]
pub struct ParConfig {
    /// Number of virtual processors.
    pub procs: usize,
    /// Communication cost model of the simulated machine.
    pub cost: CostModel,
    /// Computation-time accounting mode.
    pub timing: TimingMode,
    /// Observability: `Some` enables the per-rank recorder (phase spans,
    /// collective events, communication matrix). `None` is strictly free —
    /// the run is byte-for-byte identical to one before tracing existed.
    pub trace: Option<mpsim::TraceConfig>,
    /// Algorithm options.
    pub induce: InduceConfig,
}

impl ParConfig {
    /// Correctness-oriented config: free-running clock, default algorithm.
    pub fn new(procs: usize) -> Self {
        ParConfig {
            procs,
            cost: CostModel::default(),
            timing: TimingMode::Free,
            trace: None,
            induce: InduceConfig::default(),
        }
    }

    /// Benchmark config: measured computation time, T3D-like cost model.
    pub fn measured(procs: usize) -> Self {
        ParConfig {
            timing: TimingMode::Measured,
            ..ParConfig::new(procs)
        }
    }

    /// Same run with the parallel-SPRINT splitting phase.
    pub fn sprint_baseline(mut self) -> Self {
        self.induce.algorithm = Algorithm::SprintReplicated;
        self
    }

    /// Same run with the observability recorder enabled (default capacities).
    pub fn traced(mut self) -> Self {
        self.trace = Some(mpsim::TraceConfig::default());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = ParConfig::new(4);
        assert_eq!(c.procs, 4);
        assert_eq!(c.induce.algorithm, Algorithm::ScalParc);
        assert!(c.induce.blocked_updates);
        assert_eq!(c.timing, TimingMode::Free);
        let m = ParConfig::measured(2);
        assert_eq!(m.timing, TimingMode::Measured);
        let s = ParConfig::new(2).sprint_baseline();
        assert_eq!(s.induce.algorithm, Algorithm::SprintReplicated);
    }
}
