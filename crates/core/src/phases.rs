//! The four per-level phases of ScalParC tree induction (paper §4):
//!
//! * **FindSplitI** — per (node, continuous attribute): local count matrix at
//!   the split point at the start of the local list, globalized with one
//!   parallel prefix; per (node, categorical attribute): global count matrix
//!   by parallel reduction.
//! * **FindSplitII** — local linear scans find each processor's best
//!   continuous split point; the overall best split per node is agreed with
//!   a parallel reduction under the canonical candidate order.
//! * **PerformSplitI** — the lists of splitting attributes are split
//!   directly and the distributed node table is updated with the
//!   record-to-child mapping (parallel hashing paradigm, optionally in
//!   blocks of `⌈N/p⌉` for memory scalability).
//! * **PerformSplitII** — the lists of non-splitting attributes are split,
//!   one attribute at a time, by enquiring the node table.
//!
//! All communication is **per level**, not per node (paper §3.1): every
//! collective in this module batches across all active nodes.
//!
//! The [`Algorithm::SprintReplicated`](crate::config::Algorithm) baseline
//! replaces the node-table update/enquiry with an allgather that replicates
//! the entire mapping on every processor — the formulation the paper proves
//! unscalable. Both formulations share every other phase, so measured
//! differences isolate the splitting phase.

use dhash::DistTable;
use dtree::data::{AttrKind, Schema};
use dtree::gini::{ContinuousScan, CountMatrix};
use dtree::hashutil::RidMap;
use dtree::list::{AttrList, CatEntry, ContEntry};
use dtree::split::{categorical_candidate, SplitOptions};
use dtree::tree::{BestSplit, SplitTest};
use mpsim::Comm;

/// Per-level working memory reused across every level of one induction run:
/// each buffer is cleared at the start of the phase that fills it and never
/// shrunk, so after the first (widest) level the per-level hot path
/// allocates nothing.
///
/// Owned by the induction loop and threaded through [`find_split`] and
/// [`perform_split`]; a fresh [`LevelScratch::new`] per run is cheap (all
/// buffers start empty and grow to the level high-water mark on first use).
pub struct LevelScratch {
    /// FindSplitI continuous: the borrowed prefix-scan payload — one flat
    /// histogram pool (stride = `classes`) plus one boundary value per
    /// (work, attribute) item.
    scan: ScanPayload,
    /// Exclusive-prefix accumulators folded from lower ranks, same layout.
    prefix_hists: Vec<u64>,
    prefix_lasts: Vec<Option<f32>>,
    /// FindSplitI categorical: local and globalized flat count matrices.
    cat: Vec<u64>,
    cat_global: Vec<u64>,
    /// FindSplitII: reused split-point scan state and categorical matrix.
    cont_scan: ContinuousScan,
    cat_matrix: CountMatrix,
    /// PerformSplitI: record-to-child updates and flattened child
    /// histograms (local, then globalized by reduction).
    updates: Vec<(u64, u8)>,
    child_flat: Vec<u64>,
    child_global: Vec<u64>,
    /// SPRINT baseline: the allgathered whole-machine mapping.
    gathered: Vec<(u64, u8)>,
    gather_counts: Vec<usize>,
    /// PerformSplitII: enquiry keys, span table, raw verdicts, and the
    /// unwrapped per-record child numbers.
    keys: Vec<u64>,
    spans: Vec<(usize, usize, usize)>,
    verdicts: Vec<Option<u8>>,
    children: Vec<u8>,
    /// Exact-capacity partitioning: per-child entry counts.
    part_counts: Vec<usize>,
}

impl LevelScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        LevelScratch {
            scan: ScanPayload {
                hists: Vec::new(),
                lasts: Vec::new(),
            },
            prefix_hists: Vec::new(),
            prefix_lasts: Vec::new(),
            cat: Vec::new(),
            cat_global: Vec::new(),
            cont_scan: ContinuousScan::fresh(Vec::new()),
            cat_matrix: CountMatrix::new(0, 0),
            updates: Vec::new(),
            child_flat: Vec::new(),
            child_global: Vec::new(),
            gathered: Vec::new(),
            gather_counts: Vec::new(),
            keys: Vec::new(),
            spans: Vec::new(),
            verdicts: Vec::new(),
            children: Vec::new(),
            part_counts: Vec::new(),
        }
    }
}

impl Default for LevelScratch {
    fn default() -> Self {
        LevelScratch::new()
    }
}

/// Borrowed prefix-scan payload: the flattened class histograms and the
/// last attribute value of every (work, continuous attribute) segment.
struct ScanPayload {
    hists: Vec<u64>,
    lasts: Vec<Option<f32>>,
}

/// Memory-tracker category for count matrices and scan state.
pub const COUNT_MEM: &str = "count-matrices";
/// Memory-tracker category for the SPRINT baseline's replicated hash table.
pub const REPL_HASH_MEM: &str = "replicated-hash";

/// One active (still-splittable) node at the current level: global class
/// histogram plus this rank's segments of every attribute list.
#[derive(Clone, Debug, PartialEq)]
pub struct Work {
    /// Tree node id this work belongs to.
    pub node_id: u32,
    /// Depth of the node.
    pub depth: u32,
    /// **Global** class histogram of the node.
    pub hist: Vec<u64>,
    /// This rank's local segment of each attribute list.
    pub lists: Vec<AttrList>,
}

/// FindSplitI + FindSplitII: the globally best split candidate per work
/// (`None` when no attribute offers a valid split). Collective; every rank
/// returns the same vector. `level` is the tree level (root = 0), recorded
/// on the observability spans.
pub fn find_split(
    comm: &mut Comm,
    works: &[Work],
    schema: &Schema,
    opts: SplitOptions,
    scratch: &mut LevelScratch,
    level: u32,
) -> Vec<Option<BestSplit>> {
    let classes = schema.num_classes as usize;
    let cont_attrs = schema.continuous_attrs();
    let cat_attrs = schema.categorical_attrs();

    comm.phase_begin("find_split_i", level);

    // --- FindSplitI, continuous: one parallel prefix over all (work, attr)
    // count matrices and boundary values. The histograms live in one flat
    // pool (stride = `classes`) deposited by reference, so globalizing them
    // moves no heap-allocated per-item payloads.
    let n_items = works.len() * cont_attrs.len();
    scratch.scan.hists.clear();
    scratch.scan.hists.resize(n_items * classes, 0);
    scratch.scan.lasts.clear();
    scratch.scan.lasts.reserve(n_items);
    let mut base = 0usize;
    for w in works {
        for &a in &cont_attrs {
            let seg = w.lists[a].as_continuous();
            let hist = &mut scratch.scan.hists[base..base + classes];
            for e in seg {
                hist[e.class as usize] += 1;
            }
            scratch.scan.lasts.push(seg.last().map(|e| e.value));
            base += classes;
        }
    }
    let scan_bytes = (n_items * (classes * 8 + 8)) as u64;
    comm.tracker().pulse(COUNT_MEM, scan_bytes);
    scratch.prefix_hists.clear();
    scratch.prefix_hists.resize(n_items * classes, 0);
    scratch.prefix_lasts.clear();
    scratch.prefix_lasts.resize(n_items, None);
    {
        let prefix_hists = &mut scratch.prefix_hists;
        let prefix_lasts = &mut scratch.prefix_lasts;
        comm.scan_exclusive_with(&scratch.scan, scan_bytes, |prev: &ScanPayload| {
            for (x, y) in prefix_hists.iter_mut().zip(&prev.hists) {
                *x += *y;
            }
            for (x, y) in prefix_lasts.iter_mut().zip(&prev.lasts) {
                if y.is_some() {
                    *x = *y; // rightmost non-empty segment wins
                }
            }
        });
    }

    // --- FindSplitI, categorical: counts accumulate straight into one flat
    // pool, globalized by a borrowed-payload reduction.
    scratch.cat.clear();
    for w in works {
        for &a in &cat_attrs {
            let AttrKind::Categorical { cardinality } = schema.attrs[a].kind else {
                unreachable!()
            };
            let b = scratch.cat.len();
            scratch.cat.resize(b + cardinality as usize * classes, 0);
            let m = &mut scratch.cat[b..];
            for e in w.lists[a].as_categorical() {
                m[e.value as usize * classes + e.class as usize] += 1;
            }
        }
    }
    let flat_bytes = (scratch.cat.len() * 8) as u64;
    comm.tracker().pulse(COUNT_MEM, flat_bytes);
    scratch.cat_global.clear();
    scratch.cat_global.resize(scratch.cat.len(), 0);
    {
        let global = &mut scratch.cat_global;
        comm.allreduce_with(&scratch.cat, flat_bytes, |_, other: &Vec<u64>| {
            for (x, y) in global.iter_mut().zip(other) {
                *x += *y;
            }
        });
    }

    comm.phase_end(); // find_split_i

    // --- FindSplitII: local candidates, then a global reduction under the
    // canonical candidate order.
    comm.phase_begin("find_split_ii", level);
    let mut cands: Vec<Option<BestSplit>> = Vec::with_capacity(works.len());
    let mut pi = 0usize;
    let mut off = 0usize;
    scratch.cont_scan.set_criterion(opts.criterion);
    for w in works {
        let mut best: Option<BestSplit> = None;
        for &a in &cont_attrs {
            let below = &scratch.prefix_hists[pi * classes..(pi + 1) * classes];
            let last = scratch.prefix_lasts[pi];
            pi += 1;
            scratch.cont_scan.reset(&w.hist, below, last);
            scratch.cont_scan.scan_packed(w.lists[a].as_continuous());
            best = BestSplit::better(
                best,
                scratch.cont_scan.best().map(|c| BestSplit {
                    gini: c.gini,
                    test: SplitTest::Continuous {
                        attr: a,
                        threshold: c.threshold,
                    },
                }),
            );
        }
        for &a in &cat_attrs {
            let AttrKind::Categorical { cardinality } = schema.attrs[a].kind else {
                unreachable!()
            };
            let len = cardinality as usize * classes;
            scratch.cat_matrix.assign_from_slice(
                cardinality as usize,
                classes,
                &scratch.cat_global[off..off + len],
            );
            off += len;
            best = BestSplit::better(best, categorical_candidate(a, &scratch.cat_matrix, opts));
        }
        cands.push(best);
    }
    let cand_bytes = (cands.len() * std::mem::size_of::<Option<BestSplit>>()) as u64;
    let best = comm.allreduce_sized(cands, cand_bytes, |a, b| {
        for (x, y) in a.iter_mut().zip(b) {
            *x = BestSplit::better(*x, *y);
        }
    });
    comm.phase_end(); // find_split_ii
    best
}

/// Result of splitting one work: the winning test, **global** per-child
/// histograms, and this rank's per-child attribute-list segments.
pub struct SplitOutcome {
    /// The split applied.
    pub test: SplitTest,
    /// Global class histogram of each child.
    pub child_hists: Vec<Vec<u64>>,
    /// Local attribute lists of each child (`[child][attr]`).
    pub child_lists: Vec<Vec<AttrList>>,
}

/// PerformSplitI + PerformSplitII for a whole level. `decisions[i]` is the
/// accepted split of `works[i]` (`None` = the node becomes a leaf and its
/// lists are dropped). Pass the distributed node table for ScalParC, or
/// `None` for the replicated-SPRINT baseline.
///
/// Collective; outcome `i` is `Some` exactly where `decisions[i]` was.
#[allow(clippy::too_many_arguments)] // phase inputs are inherently plural
pub fn perform_split(
    comm: &mut Comm,
    works: Vec<Work>,
    decisions: &[Option<BestSplit>],
    mut table: Option<&mut DistTable<u8>>,
    blocked_updates: bool,
    batched_enquiry: bool,
    total_n: u64,
    schema: &Schema,
    scratch: &mut LevelScratch,
    level: u32,
) -> Vec<Option<SplitOutcome>> {
    assert_eq!(works.len(), decisions.len());
    let p = comm.size() as u64;
    let classes = schema.num_classes as usize;

    comm.phase_begin("perform_split_i", level);

    // --- PerformSplitI: split the splitting attributes' lists, collect the
    // record-to-child mapping and local child histograms (one flat pool,
    // `arity × classes` counts per splitting work).
    scratch.updates.clear();
    scratch.child_flat.clear();
    for (w, dec) in works.iter().zip(decisions) {
        let Some(split) = dec else { continue };
        let arity = split.test.arity(schema);
        let base = scratch.child_flat.len();
        scratch.child_flat.resize(base + arity * classes, 0);
        let updates = &mut scratch.updates;
        let hists = &mut scratch.child_flat[base..];
        match (&w.lists[split.test.attr()], split.test) {
            (AttrList::Continuous(seg), SplitTest::Continuous { threshold, .. }) => {
                for e in seg {
                    let child = usize::from(e.value >= threshold);
                    updates.push((e.rid as u64, child as u8));
                    hists[child * classes + e.class as usize] += 1;
                }
            }
            (AttrList::Categorical(seg), SplitTest::Categorical { .. }) => {
                for e in seg {
                    let child = e.value as usize;
                    updates.push((e.rid as u64, child as u8));
                    hists[child * classes + e.class as usize] += 1;
                }
            }
            (AttrList::Categorical(seg), SplitTest::CategoricalSubset { left_mask, .. }) => {
                for e in seg {
                    let child = usize::from((left_mask >> e.value) & 1 == 0);
                    updates.push((e.rid as u64, child as u8));
                    hists[child * classes + e.class as usize] += 1;
                }
            }
            _ => unreachable!("splitting list kind matches the test"),
        }
    }

    // Publish the record-to-child mapping.
    let mut replicated: Option<RidMap<u8>> = None;
    let mut repl_bytes = 0u64;
    match table.as_deref_mut() {
        Some(t) => {
            // ScalParC: distributed node-table update via the parallel
            // hashing paradigm, optionally blocked into ⌈N/p⌉ rounds.
            if blocked_updates {
                let round = total_n.div_ceil(p).max(1) as usize;
                t.update_blocked(comm, &scratch.updates, round);
            } else {
                t.update(comm, &scratch.updates);
            }
        }
        None => {
            // Parallel SPRINT: every processor receives the entire mapping
            // and builds the full hash table — O(N) communication and O(N)
            // memory per processor at the upper levels.
            comm.allgatherv_flat_into(
                &scratch.updates,
                &mut scratch.gathered,
                &mut scratch.gather_counts,
            );
            // Resident replicated table: entries plus open-addressing slack.
            repl_bytes = (scratch.gathered.len() * (std::mem::size_of::<(u32, u8)>() + 4)) as u64;
            comm.tracker().alloc(REPL_HASH_MEM, repl_bytes);
            replicated = Some(
                scratch
                    .gathered
                    .iter()
                    .map(|&(r, c)| (r as u32, c))
                    .collect(),
            );
        }
    }

    // Globalize the child histograms with one borrowed-payload reduction.
    let hist_bytes = (scratch.child_flat.len() * 8) as u64;
    scratch.child_global.clear();
    scratch.child_global.resize(scratch.child_flat.len(), 0);
    {
        let global = &mut scratch.child_global;
        comm.allreduce_with(&scratch.child_flat, hist_bytes, |_, other: &Vec<u64>| {
            for (x, y) in global.iter_mut().zip(other) {
                *x += *y;
            }
        });
    }
    let gflat = &scratch.child_global;

    // Prepare outcomes (child hists now global, child lists filled below).
    let mut outcomes: Vec<Option<SplitOutcome>> = Vec::with_capacity(works.len());
    let mut gi = 0usize;
    for dec in decisions {
        outcomes.push(dec.map(|split| {
            let arity = split.test.arity(schema);
            let mut child_hists = Vec::with_capacity(arity);
            for _ in 0..arity {
                child_hists.push(gflat[gi..gi + classes].to_vec());
                gi += classes;
            }
            SplitOutcome {
                test: split.test,
                child_hists,
                // One slot per attribute per child, assigned by index so
                // processing order cannot scramble attribute order.
                child_lists: (0..arity)
                    .map(|_| vec![AttrList::Categorical(Vec::new()); schema.num_attrs()])
                    .collect(),
            }
        }));
    }

    comm.phase_end(); // perform_split_i

    // --- PerformSplitII: split every attribute list. The splitting
    // attribute of each node routes directly; all other attributes enquire
    // the node table (or probe the replicated one). The paper enquires one
    // attribute at a time (§4); with `batched_enquiry` all attributes share
    // one two-step exchange (same results, fewer collective latencies).
    comm.phase_begin("perform_split_ii", level);
    let mut works = works;
    let attr_groups: Vec<Vec<usize>> = if batched_enquiry {
        vec![(0..schema.num_attrs()).collect()]
    } else {
        (0..schema.num_attrs()).map(|a| vec![a]).collect()
    };
    for group in attr_groups {
        // Batch the enquiry keys of every (node, attribute) pair where the
        // node splits on a different attribute.
        scratch.keys.clear();
        scratch.spans.clear(); // (work, attr, len)
        for &a in &group {
            for (wi, (w, dec)) in works.iter().zip(decisions).enumerate() {
                if let Some(split) = dec {
                    if split.test.attr() != a {
                        let rids = w.lists[a].rids();
                        scratch.spans.push((wi, a, rids.len()));
                        scratch.keys.extend(rids.iter().map(|&r| r as u64));
                    }
                }
            }
        }
        match (table.as_deref_mut(), replicated.as_ref()) {
            (Some(t), _) => {
                t.inquire_into(comm, &scratch.keys, &mut scratch.verdicts);
                scratch.children.clear();
                scratch.children.extend(
                    scratch
                        .verdicts
                        .drain(..)
                        .map(|o| o.expect("record missing from node table")),
                );
            }
            (None, Some(map)) => {
                scratch.children.clear();
                scratch
                    .children
                    .extend(scratch.keys.iter().map(|&k| map[&(k as u32)]));
            }
            (None, None) => {
                // No node split this level; nothing to enquire, but the
                // branch keeps both formulations' control flow aligned.
                debug_assert!(scratch.keys.is_empty());
                scratch.children.clear();
            }
        };

        // Split the enquired lists in span order.
        let mut pos = 0usize;
        for &(wi, a, len) in &scratch.spans {
            let verdicts = &scratch.children[pos..pos + len];
            pos += len;
            let split = decisions[wi].as_ref().unwrap();
            let arity = split.test.arity(schema);
            let list =
                std::mem::replace(&mut works[wi].lists[a], AttrList::Categorical(Vec::new()));
            let parts = split_by_children(list, arity, verdicts, &mut scratch.part_counts);
            let out = outcomes[wi].as_mut().unwrap();
            for (c, part) in parts.into_iter().enumerate() {
                out.child_lists[c][a] = part;
            }
        }

        // Directly route the nodes splitting on an attribute in this group.
        for &a in &group {
            for (wi, dec) in decisions.iter().enumerate() {
                if let Some(split) = dec {
                    if split.test.attr() == a {
                        let arity = split.test.arity(schema);
                        let list = std::mem::replace(
                            &mut works[wi].lists[a],
                            AttrList::Categorical(Vec::new()),
                        );
                        let parts =
                            split_directly(list, &split.test, arity, &mut scratch.part_counts);
                        let out = outcomes[wi].as_mut().unwrap();
                        for (c, part) in parts.into_iter().enumerate() {
                            out.child_lists[c][a] = part;
                        }
                    }
                }
            }
        }
    }

    if repl_bytes > 0 {
        comm.tracker().free(REPL_HASH_MEM, repl_bytes);
    }
    comm.phase_end(); // perform_split_ii

    // Note: a rank's segments of different attributes cover *different*
    // record subsets (continuous lists are distributed in sorted order,
    // categorical lists by record id), so per-rank cross-list consistency
    // cannot be asserted here. The global invariant — every attribute list
    // of a child holds exactly the child's records — is verified by the
    // integration tests, which compare whole trees against the serial
    // classifier.
    outcomes
}

/// Count pass + cursor scatter: stable partition of `entries` into `arity`
/// exact-capacity vectors, entry `i` going to child `child_of(i, entry)`.
///
/// The count pass sizes every child (bounds-checking `child_of`'s verdicts
/// in the process); the scatter then writes each record through a raw
/// per-child cursor into the uninitialized capacity. The hot loop carries
/// no `Vec::push` capacity check and no growth path — one load, one
/// verdict, one store per record — which is the shape the autovectorizer
/// and the store pipeline want on 10-byte packed records.
fn scatter_partition<T: Copy>(
    entries: Vec<T>,
    arity: usize,
    counts: &mut Vec<usize>,
    child_of: impl Fn(usize, T) -> usize,
) -> Vec<Vec<T>> {
    counts.clear();
    counts.resize(arity, 0);
    for (i, &e) in entries.iter().enumerate() {
        // Bounds-checked: a verdict >= arity panics here, before any
        // unchecked write below can rely on it.
        counts[child_of(i, e)] += 1;
    }
    let mut parts: Vec<Vec<T>> = counts.iter().map(|&n| Vec::with_capacity(n)).collect();
    // Reuse `counts` as the write cursors so the scatter adds no allocation
    // on top of the child lists themselves.
    counts.iter_mut().for_each(|c| *c = 0);
    for (i, &e) in entries.iter().enumerate() {
        let c = child_of(i, e);
        // SAFETY: the count pass proved c < arity and sized each part at
        // exactly the number of records routed to it; `child_of` is a pure
        // function of (i, entry), so the replayed verdicts match and each
        // cursor stays within its part's capacity.
        unsafe {
            let off = *counts.get_unchecked(c);
            parts.get_unchecked_mut(c).as_mut_ptr().add(off).write(e);
            *counts.get_unchecked_mut(c) = off + 1;
        }
    }
    for (p, &n) in parts.iter_mut().zip(counts.iter()) {
        // SAFETY: exactly `n` elements were written contiguously from the
        // start of each part's buffer.
        unsafe { p.set_len(n) };
    }
    parts
}

/// Stable partition by a per-entry child verdict (aligned with the list).
///
/// A counting pass sizes every child first, so each child list is allocated
/// at its exact final capacity — no doubling growth, no copy-on-realloc,
/// no over-allocation held by the next level — and the scatter pass routes
/// through raw cursors ([`scatter_partition`]) with no per-record branches.
/// `counts` is reused scratch. Verified record-identical to
/// [`split_by_children_ref`] by the kernel-equivalence tests.
///
/// Public for the allocation tests and kernel benchmarks; not part of the
/// stable API surface.
pub fn split_by_children(
    list: AttrList,
    arity: usize,
    children: &[u8],
    counts: &mut Vec<usize>,
) -> Vec<AttrList> {
    assert_eq!(list.len(), children.len());
    match list {
        AttrList::Continuous(entries) => {
            scatter_partition(entries, arity, counts, |i, _| children[i] as usize)
                .into_iter()
                .map(AttrList::Continuous)
                .collect()
        }
        AttrList::Categorical(entries) => {
            scatter_partition(entries, arity, counts, |i, _| children[i] as usize)
                .into_iter()
                .map(AttrList::Categorical)
                .collect()
        }
    }
}

/// Stable partition of the splitting attribute's own list, with the same
/// count-pass + cursor-scatter kernel as [`split_by_children`]. The routing
/// predicates (`value >= threshold`, domain index, subset-mask bit) are all
/// branch-free integer expressions, so the scatter loop stays unpredicated.
///
/// Public for the allocation tests and kernel benchmarks; not part of the
/// stable API surface.
pub fn split_directly(
    list: AttrList,
    test: &SplitTest,
    arity: usize,
    counts: &mut Vec<usize>,
) -> Vec<AttrList> {
    match (list, test) {
        (AttrList::Continuous(entries), SplitTest::Continuous { threshold, .. }) => {
            let t = *threshold;
            scatter_partition(entries, arity, counts, |_, e: ContEntry| {
                usize::from(e.value >= t)
            })
            .into_iter()
            .map(AttrList::Continuous)
            .collect()
        }
        (AttrList::Categorical(entries), SplitTest::Categorical { .. }) => {
            scatter_partition(entries, arity, counts, |_, e: CatEntry| e.value as usize)
                .into_iter()
                .map(AttrList::Categorical)
                .collect()
        }
        (AttrList::Categorical(entries), SplitTest::CategoricalSubset { left_mask, .. }) => {
            let mask = *left_mask;
            scatter_partition(entries, arity, counts, |_, e: CatEntry| {
                usize::from((mask >> e.value) & 1 == 0)
            })
            .into_iter()
            .map(AttrList::Categorical)
            .collect()
        }
        _ => unreachable!("splitting list kind matches the test"),
    }
}

/// Reference implementation of [`split_by_children`]: the straightforward
/// count-then-push partition. Kept for the kernel-equivalence tests and as
/// the baseline in the criterion kernel benchmarks.
pub fn split_by_children_ref(
    list: AttrList,
    arity: usize,
    children: &[u8],
    counts: &mut Vec<usize>,
) -> Vec<AttrList> {
    counts.clear();
    counts.resize(arity, 0);
    for &c in children {
        counts[c as usize] += 1;
    }
    match list {
        AttrList::Continuous(entries) => {
            assert_eq!(entries.len(), children.len());
            let mut parts: Vec<Vec<ContEntry>> =
                counts.iter().map(|&n| Vec::with_capacity(n)).collect();
            for (e, &c) in entries.into_iter().zip(children) {
                parts[c as usize].push(e);
            }
            parts.into_iter().map(AttrList::Continuous).collect()
        }
        AttrList::Categorical(entries) => {
            assert_eq!(entries.len(), children.len());
            let mut parts: Vec<Vec<CatEntry>> =
                counts.iter().map(|&n| Vec::with_capacity(n)).collect();
            for (e, &c) in entries.into_iter().zip(children) {
                parts[c as usize].push(e);
            }
            parts.into_iter().map(AttrList::Categorical).collect()
        }
    }
}

/// Reference implementation of [`split_directly`]; see
/// [`split_by_children_ref`].
pub fn split_directly_ref(
    list: AttrList,
    test: &SplitTest,
    arity: usize,
    counts: &mut Vec<usize>,
) -> Vec<AttrList> {
    counts.clear();
    counts.resize(arity, 0);
    match (list, test) {
        (AttrList::Continuous(entries), SplitTest::Continuous { threshold, .. }) => {
            for e in &entries {
                let v = e.value;
                counts[usize::from(v >= *threshold)] += 1;
            }
            let mut parts: Vec<Vec<ContEntry>> =
                counts.iter().map(|&n| Vec::with_capacity(n)).collect();
            for e in entries {
                let v = e.value;
                parts[usize::from(v >= *threshold)].push(e);
            }
            parts.into_iter().map(AttrList::Continuous).collect()
        }
        (AttrList::Categorical(entries), SplitTest::Categorical { .. }) => {
            for e in &entries {
                counts[e.value as usize] += 1;
            }
            let mut parts: Vec<Vec<CatEntry>> =
                counts.iter().map(|&n| Vec::with_capacity(n)).collect();
            for e in entries {
                parts[e.value as usize].push(e);
            }
            parts.into_iter().map(AttrList::Categorical).collect()
        }
        (AttrList::Categorical(entries), SplitTest::CategoricalSubset { left_mask, .. }) => {
            for e in &entries {
                counts[usize::from((left_mask >> e.value) & 1 == 0)] += 1;
            }
            let mut parts: Vec<Vec<CatEntry>> =
                counts.iter().map(|&n| Vec::with_capacity(n)).collect();
            for e in entries {
                parts[usize::from((left_mask >> e.value) & 1 == 0)].push(e);
            }
            parts.into_iter().map(AttrList::Categorical).collect()
        }
        _ => unreachable!("splitting list kind matches the test"),
    }
}
