//! The four per-level phases of ScalParC tree induction (paper §4):
//!
//! * **FindSplitI** — per (node, continuous attribute): local count matrix at
//!   the split point at the start of the local list, globalized with one
//!   parallel prefix; per (node, categorical attribute): global count matrix
//!   by parallel reduction.
//! * **FindSplitII** — local linear scans find each processor's best
//!   continuous split point; the overall best split per node is agreed with
//!   a parallel reduction under the canonical candidate order.
//! * **PerformSplitI** — the lists of splitting attributes are split
//!   directly and the distributed node table is updated with the
//!   record-to-child mapping (parallel hashing paradigm, optionally in
//!   blocks of `⌈N/p⌉` for memory scalability).
//! * **PerformSplitII** — the lists of non-splitting attributes are split,
//!   one attribute at a time, by enquiring the node table.
//!
//! All communication is **per level**, not per node (paper §3.1): every
//! collective in this module batches across all active nodes.
//!
//! The [`Algorithm::SprintReplicated`](crate::config::Algorithm) baseline
//! replaces the node-table update/enquiry with an allgather that replicates
//! the entire mapping on every processor — the formulation the paper proves
//! unscalable. Both formulations share every other phase, so measured
//! differences isolate the splitting phase.

use dhash::DistTable;
use dtree::data::{AttrKind, Schema};
use dtree::gini::{ContinuousScan, CountMatrix};
use dtree::hashutil::RidMap;
use dtree::list::{AttrList, CatEntry, ContEntry};
use dtree::split::{categorical_candidate, SplitOptions};
use dtree::tree::{BestSplit, SplitTest};
use mpsim::Comm;

/// Memory-tracker category for count matrices and scan state.
pub const COUNT_MEM: &str = "count-matrices";
/// Memory-tracker category for the SPRINT baseline's replicated hash table.
pub const REPL_HASH_MEM: &str = "replicated-hash";

/// One active (still-splittable) node at the current level: global class
/// histogram plus this rank's segments of every attribute list.
pub struct Work {
    /// Tree node id this work belongs to.
    pub node_id: u32,
    /// Depth of the node.
    pub depth: u32,
    /// **Global** class histogram of the node.
    pub hist: Vec<u64>,
    /// This rank's local segment of each attribute list.
    pub lists: Vec<AttrList>,
}

/// Prefix-scan payload for one (node, continuous attribute) pair.
#[derive(Clone)]
struct ScanItem {
    /// Class counts of the segment.
    hist: Vec<u64>,
    /// Last attribute value in the segment (`None` when empty).
    last: Option<f32>,
}

/// FindSplitI + FindSplitII: the globally best split candidate per work
/// (`None` when no attribute offers a valid split). Collective; every rank
/// returns the same vector.
pub fn find_split(
    comm: &mut Comm,
    works: &[Work],
    schema: &Schema,
    opts: SplitOptions,
) -> Vec<Option<BestSplit>> {
    let classes = schema.num_classes as usize;
    let cont_attrs = schema.continuous_attrs();
    let cat_attrs = schema.categorical_attrs();

    // --- FindSplitI, continuous: one parallel prefix over all (work, attr)
    // count matrices and boundary values.
    let mut items: Vec<ScanItem> = Vec::with_capacity(works.len() * cont_attrs.len());
    for w in works {
        for &a in &cont_attrs {
            let seg = w.lists[a].as_continuous();
            let mut hist = vec![0u64; classes];
            for e in seg {
                hist[e.class as usize] += 1;
            }
            items.push(ScanItem {
                hist,
                last: seg.last().map(|e| e.value),
            });
        }
    }
    let scan_bytes = (items.len() * (classes * 8 + 8)) as u64;
    comm.tracker().pulse(COUNT_MEM, scan_bytes);
    let identity: Vec<ScanItem> = items
        .iter()
        .map(|_| ScanItem {
            hist: vec![0; classes],
            last: None,
        })
        .collect();
    let prefixes = comm.scan_exclusive_sized(items, identity, scan_bytes, |acc, b| {
        for (x, y) in acc.iter_mut().zip(b) {
            for (h, g) in x.hist.iter_mut().zip(&y.hist) {
                *h += *g;
            }
            if y.last.is_some() {
                x.last = y.last; // rightmost non-empty segment wins
            }
        }
    });

    // --- FindSplitI, categorical: global count matrices by reduction.
    let mut flat: Vec<u64> = Vec::new();
    for w in works {
        for &a in &cat_attrs {
            let AttrKind::Categorical { cardinality } = schema.attrs[a].kind else {
                unreachable!()
            };
            let mut m = CountMatrix::new(cardinality as usize, classes);
            for e in w.lists[a].as_categorical() {
                m.add(e.value as usize, e.class as usize);
            }
            flat.extend_from_slice(m.as_slice());
        }
    }
    comm.tracker().pulse(COUNT_MEM, (flat.len() * 8) as u64);
    let flat_bytes = (flat.len() * 8) as u64;
    let global_flat = comm.allreduce_sized(flat, flat_bytes, |a, b| {
        for (x, y) in a.iter_mut().zip(b) {
            *x += *y;
        }
    });

    // --- FindSplitII: local candidates, then a global reduction under the
    // canonical candidate order.
    let mut cands: Vec<Option<BestSplit>> = Vec::with_capacity(works.len());
    let mut pi = 0usize;
    let mut off = 0usize;
    for w in works {
        let mut best: Option<BestSplit> = None;
        for &a in &cont_attrs {
            let pre = &prefixes[pi];
            pi += 1;
            let mut scan = ContinuousScan::new(w.hist.clone(), pre.hist.clone(), pre.last)
                .with_criterion(opts.criterion);
            for e in w.lists[a].as_continuous() {
                scan.push(e.value, e.class);
            }
            best = BestSplit::better(
                best,
                scan.best().map(|c| BestSplit {
                    gini: c.gini,
                    test: SplitTest::Continuous {
                        attr: a,
                        threshold: c.threshold,
                    },
                }),
            );
        }
        for &a in &cat_attrs {
            let AttrKind::Categorical { cardinality } = schema.attrs[a].kind else {
                unreachable!()
            };
            let len = cardinality as usize * classes;
            let m = CountMatrix::from_slice(
                cardinality as usize,
                classes,
                &global_flat[off..off + len],
            );
            off += len;
            best = BestSplit::better(best, categorical_candidate(a, &m, opts));
        }
        cands.push(best);
    }
    let cand_bytes = (cands.len() * std::mem::size_of::<Option<BestSplit>>()) as u64;
    comm.allreduce_sized(cands, cand_bytes, |a, b| {
        for (x, y) in a.iter_mut().zip(b) {
            *x = BestSplit::better(*x, *y);
        }
    })
}

/// Result of splitting one work: the winning test, **global** per-child
/// histograms, and this rank's per-child attribute-list segments.
pub struct SplitOutcome {
    /// The split applied.
    pub test: SplitTest,
    /// Global class histogram of each child.
    pub child_hists: Vec<Vec<u64>>,
    /// Local attribute lists of each child (`[child][attr]`).
    pub child_lists: Vec<Vec<AttrList>>,
}

/// PerformSplitI + PerformSplitII for a whole level. `decisions[i]` is the
/// accepted split of `works[i]` (`None` = the node becomes a leaf and its
/// lists are dropped). Pass the distributed node table for ScalParC, or
/// `None` for the replicated-SPRINT baseline.
///
/// Collective; outcome `i` is `Some` exactly where `decisions[i]` was.
#[allow(clippy::too_many_arguments)] // phase inputs are inherently plural
pub fn perform_split(
    comm: &mut Comm,
    works: Vec<Work>,
    decisions: &[Option<BestSplit>],
    mut table: Option<&mut DistTable<u8>>,
    blocked_updates: bool,
    batched_enquiry: bool,
    total_n: u64,
    schema: &Schema,
) -> Vec<Option<SplitOutcome>> {
    assert_eq!(works.len(), decisions.len());
    let p = comm.size() as u64;
    let classes = schema.num_classes as usize;

    // --- PerformSplitI: split the splitting attributes' lists, collect the
    // record-to-child mapping and local child histograms.
    let mut updates: Vec<(u64, u8)> = Vec::new();
    let mut local_child_hists: Vec<Vec<Vec<u64>>> = Vec::new();
    for (w, dec) in works.iter().zip(decisions) {
        let Some(split) = dec else { continue };
        let arity = split.test.arity(schema);
        let mut hists = vec![vec![0u64; classes]; arity];
        match (&w.lists[split.test.attr()], split.test) {
            (AttrList::Continuous(seg), SplitTest::Continuous { threshold, .. }) => {
                for e in seg {
                    let child = usize::from(e.value >= threshold);
                    updates.push((e.rid as u64, child as u8));
                    hists[child][e.class as usize] += 1;
                }
            }
            (AttrList::Categorical(seg), SplitTest::Categorical { .. }) => {
                for e in seg {
                    let child = e.value as usize;
                    updates.push((e.rid as u64, child as u8));
                    hists[child][e.class as usize] += 1;
                }
            }
            (AttrList::Categorical(seg), SplitTest::CategoricalSubset { left_mask, .. }) => {
                for e in seg {
                    let child = usize::from((left_mask >> e.value) & 1 == 0);
                    updates.push((e.rid as u64, child as u8));
                    hists[child][e.class as usize] += 1;
                }
            }
            _ => unreachable!("splitting list kind matches the test"),
        }
        local_child_hists.push(hists);
    }

    // Publish the record-to-child mapping.
    let mut replicated: Option<RidMap<u8>> = None;
    let mut repl_bytes = 0u64;
    match table.as_deref_mut() {
        Some(t) => {
            // ScalParC: distributed node-table update via the parallel
            // hashing paradigm, optionally blocked into ⌈N/p⌉ rounds.
            if blocked_updates {
                let round = total_n.div_ceil(p).max(1) as usize;
                t.update_blocked(comm, &updates, round);
            } else {
                t.update(comm, &updates);
            }
        }
        None => {
            // Parallel SPRINT: every processor receives the entire mapping
            // and builds the full hash table — O(N) communication and O(N)
            // memory per processor at the upper levels.
            let all = comm.allgatherv(updates.clone());
            // Resident replicated table: entries plus open-addressing slack.
            repl_bytes = (all.len() * (std::mem::size_of::<(u32, u8)>() + 4)) as u64;
            comm.tracker().alloc(REPL_HASH_MEM, repl_bytes);
            replicated = Some(all.into_iter().map(|(r, c)| (r as u32, c)).collect());
        }
    }

    // Globalize the child histograms with one reduction.
    let flat: Vec<u64> = local_child_hists
        .iter()
        .flatten()
        .flatten()
        .copied()
        .collect();
    let hist_bytes = (flat.len() * 8) as u64;
    let gflat = comm.allreduce_sized(flat, hist_bytes, |a, b| {
        for (x, y) in a.iter_mut().zip(b) {
            *x += *y;
        }
    });

    // Prepare outcomes (child hists now global, child lists filled below).
    let mut outcomes: Vec<Option<SplitOutcome>> = Vec::with_capacity(works.len());
    let mut gi = 0usize;
    for dec in decisions {
        outcomes.push(dec.map(|split| {
            let arity = split.test.arity(schema);
            let mut child_hists = Vec::with_capacity(arity);
            for _ in 0..arity {
                child_hists.push(gflat[gi..gi + classes].to_vec());
                gi += classes;
            }
            SplitOutcome {
                test: split.test,
                child_hists,
                // One slot per attribute per child, assigned by index so
                // processing order cannot scramble attribute order.
                child_lists: (0..arity)
                    .map(|_| vec![AttrList::Categorical(Vec::new()); schema.num_attrs()])
                    .collect(),
            }
        }));
    }

    // --- PerformSplitII: split every attribute list. The splitting
    // attribute of each node routes directly; all other attributes enquire
    // the node table (or probe the replicated one). The paper enquires one
    // attribute at a time (§4); with `batched_enquiry` all attributes share
    // one two-step exchange (same results, fewer collective latencies).
    let mut works = works;
    let attr_groups: Vec<Vec<usize>> = if batched_enquiry {
        vec![(0..schema.num_attrs()).collect()]
    } else {
        (0..schema.num_attrs()).map(|a| vec![a]).collect()
    };
    for group in attr_groups {
        // Batch the enquiry keys of every (node, attribute) pair where the
        // node splits on a different attribute.
        let mut keys: Vec<u64> = Vec::new();
        let mut spans: Vec<(usize, usize, usize)> = Vec::new(); // (work, attr, len)
        for &a in &group {
            for (wi, (w, dec)) in works.iter().zip(decisions).enumerate() {
                if let Some(split) = dec {
                    if split.test.attr() != a {
                        let rids = w.lists[a].rids();
                        spans.push((wi, a, rids.len()));
                        keys.extend(rids.iter().map(|&r| r as u64));
                    }
                }
            }
        }
        let children: Vec<u8> = match (table.as_deref(), replicated.as_ref()) {
            (Some(t), _) => t
                .inquire(comm, &keys)
                .into_iter()
                .map(|o| o.expect("record missing from node table"))
                .collect(),
            (None, Some(map)) => keys.iter().map(|&k| map[&(k as u32)]).collect(),
            (None, None) => {
                // No node split this level; nothing to enquire, but the
                // branch keeps both formulations' control flow aligned.
                debug_assert!(keys.is_empty());
                Vec::new()
            }
        };

        // Split the enquired lists in span order.
        let mut pos = 0usize;
        for (wi, a, len) in spans {
            let verdicts = &children[pos..pos + len];
            pos += len;
            let split = decisions[wi].as_ref().unwrap();
            let arity = split.test.arity(schema);
            let list =
                std::mem::replace(&mut works[wi].lists[a], AttrList::Categorical(Vec::new()));
            let parts = split_by_children(list, arity, verdicts);
            let out = outcomes[wi].as_mut().unwrap();
            for (c, part) in parts.into_iter().enumerate() {
                out.child_lists[c][a] = part;
            }
        }

        // Directly route the nodes splitting on an attribute in this group.
        for &a in &group {
            for (wi, dec) in decisions.iter().enumerate() {
                if let Some(split) = dec {
                    if split.test.attr() == a {
                        let arity = split.test.arity(schema);
                        let list = std::mem::replace(
                            &mut works[wi].lists[a],
                            AttrList::Categorical(Vec::new()),
                        );
                        let parts = split_directly(list, &split.test, arity);
                        let out = outcomes[wi].as_mut().unwrap();
                        for (c, part) in parts.into_iter().enumerate() {
                            out.child_lists[c][a] = part;
                        }
                    }
                }
            }
        }
    }

    if repl_bytes > 0 {
        comm.tracker().free(REPL_HASH_MEM, repl_bytes);
    }

    // Note: a rank's segments of different attributes cover *different*
    // record subsets (continuous lists are distributed in sorted order,
    // categorical lists by record id), so per-rank cross-list consistency
    // cannot be asserted here. The global invariant — every attribute list
    // of a child holds exactly the child's records — is verified by the
    // integration tests, which compare whole trees against the serial
    // classifier.
    outcomes
}

/// Stable partition by a per-entry child verdict (aligned with the list).
fn split_by_children(list: AttrList, arity: usize, children: &[u8]) -> Vec<AttrList> {
    match list {
        AttrList::Continuous(entries) => {
            assert_eq!(entries.len(), children.len());
            let mut parts: Vec<Vec<ContEntry>> = (0..arity).map(|_| Vec::new()).collect();
            for (e, &c) in entries.into_iter().zip(children) {
                parts[c as usize].push(e);
            }
            parts.into_iter().map(AttrList::Continuous).collect()
        }
        AttrList::Categorical(entries) => {
            assert_eq!(entries.len(), children.len());
            let mut parts: Vec<Vec<CatEntry>> = (0..arity).map(|_| Vec::new()).collect();
            for (e, &c) in entries.into_iter().zip(children) {
                parts[c as usize].push(e);
            }
            parts.into_iter().map(AttrList::Categorical).collect()
        }
    }
}

/// Stable partition of the splitting attribute's own list.
fn split_directly(list: AttrList, test: &SplitTest, arity: usize) -> Vec<AttrList> {
    match (list, test) {
        (AttrList::Continuous(entries), SplitTest::Continuous { threshold, .. }) => {
            let mut parts: Vec<Vec<ContEntry>> = (0..arity).map(|_| Vec::new()).collect();
            for e in entries {
                parts[usize::from(e.value >= *threshold)].push(e);
            }
            parts.into_iter().map(AttrList::Continuous).collect()
        }
        (AttrList::Categorical(entries), SplitTest::Categorical { .. }) => {
            let mut parts: Vec<Vec<CatEntry>> = (0..arity).map(|_| Vec::new()).collect();
            for e in entries {
                parts[e.value as usize].push(e);
            }
            parts.into_iter().map(AttrList::Categorical).collect()
        }
        (AttrList::Categorical(entries), SplitTest::CategoricalSubset { left_mask, .. }) => {
            let mut parts: Vec<Vec<CatEntry>> = (0..arity).map(|_| Vec::new()).collect();
            for e in entries {
                parts[usize::from((left_mask >> e.value) & 1 == 0)].push(e);
            }
            parts.into_iter().map(AttrList::Categorical).collect()
        }
        _ => unreachable!("splitting list kind matches the test"),
    }
}
