//! Incremental leaf-statistics accumulators: the per-rank state the
//! streaming trainer maintains *between* re-evaluations.
//!
//! Every structure here is an **order-invariant additive monoid**: updates
//! commute (fixed-edge bins, plain counters) and `merge` is elementwise
//! addition, so
//!
//! * any arrival order of blocks yields the same accumulator as one batch
//!   pass over the concatenated window (the stream≡batch oracle, verified
//!   by a workspace proptest), and
//! * per-rank accumulators globalize with a single `allreduce`,
//!   independent of how records were sharded.
//!
//! Two layers:
//!
//! * [`StreamAccum`] — window-global class histogram plus one fixed-bin
//!   sketch per attribute ([`SketchSpec`] fixes the continuous bin edges up
//!   front; categorical attributes bin by value). This is the cheap,
//!   model-free summary the drift trigger and observability read.
//! * [`LeafStats`] — per-leaf class histograms under a *specific* compiled
//!   tree (records routed with [`FlatTree::predict_leaves_range`]): the
//!   serving model's view of arriving data. Its implied error count is the
//!   drift score — when arriving labels disagree with leaf majorities, the
//!   concept has moved.

use dtree::data::{AttrKind, Column, Dataset, Schema};
use dtree::flat::FlatTree;

/// Fixed binning of one continuous attribute: `bins` equal-width bins over
/// `[lo, hi]`, plus implicit clamping of outliers into the edge bins. The
/// edges never move, so updates commute.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SketchSpec {
    /// Low edge of the binned range.
    pub lo: f32,
    /// High edge of the binned range (`> lo`).
    pub hi: f32,
    /// Number of bins (at least 1).
    pub bins: u32,
}

impl SketchSpec {
    /// The bin `value` falls into (outliers clamp to the edge bins).
    pub fn bin(&self, value: f32) -> usize {
        let span = f64::from(self.hi) - f64::from(self.lo);
        let t = (f64::from(value) - f64::from(self.lo)) / span;
        let b = (t * f64::from(self.bins)).floor();
        (b.max(0.0) as usize).min(self.bins as usize - 1)
    }
}

/// One attribute's bin counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttrBins {
    /// Count of window records per bin (fixed edges → order-invariant).
    pub counts: Vec<u64>,
}

/// Model-free window summary: class histogram + per-attribute sketches.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamAccum {
    specs: Vec<Option<SketchSpec>>,
    /// Records accumulated.
    pub records: u64,
    /// Class histogram (`num_classes` entries).
    pub class_hist: Vec<u64>,
    /// One bin-count vector per attribute (continuous: `spec.bins` bins;
    /// categorical: one bin per category).
    pub attr_bins: Vec<AttrBins>,
}

impl StreamAccum {
    /// Empty accumulator for `schema`. `specs[a]` fixes the binning of
    /// continuous attribute `a` (must be `Some` exactly for continuous
    /// attributes).
    pub fn new(schema: &Schema, specs: &[Option<SketchSpec>]) -> StreamAccum {
        assert_eq!(
            specs.len(),
            schema.num_attrs(),
            "one spec slot per attribute"
        );
        let attr_bins = schema
            .attrs
            .iter()
            .zip(specs)
            .map(|(attr, spec)| {
                let bins = match (attr.kind, spec) {
                    (AttrKind::Continuous, Some(s)) => {
                        assert!(s.bins >= 1 && s.hi > s.lo, "degenerate sketch spec");
                        s.bins as usize
                    }
                    (AttrKind::Categorical { cardinality }, None) => cardinality as usize,
                    (AttrKind::Continuous, None) => {
                        panic!("continuous attribute needs a sketch spec")
                    }
                    (AttrKind::Categorical { .. }, Some(_)) => {
                        panic!("categorical attribute bins by value, not by spec")
                    }
                };
                AttrBins {
                    counts: vec![0; bins],
                }
            })
            .collect();
        StreamAccum {
            specs: specs.to_vec(),
            records: 0,
            class_hist: vec![0; schema.num_classes as usize],
            attr_bins,
        }
    }

    /// Fold one arriving block in (any order, any blocking).
    pub fn update(&mut self, data: &Dataset) {
        self.records += data.len() as u64;
        for &label in &data.labels {
            self.class_hist[label as usize] += 1;
        }
        for (a, col) in data.columns.iter().enumerate() {
            let bins = &mut self.attr_bins[a].counts;
            match col {
                Column::Continuous(values) => {
                    let spec = self.specs[a].expect("continuous attr has a spec");
                    for &v in values {
                        bins[spec.bin(v)] += 1;
                    }
                }
                Column::Categorical(values) => {
                    for &v in values {
                        bins[v as usize] += 1;
                    }
                }
            }
        }
    }

    /// Elementwise addition — the `allreduce` operator.
    pub fn merge(&mut self, other: &StreamAccum) {
        assert_eq!(self.specs, other.specs, "accumulators must share binning");
        self.records += other.records;
        for (x, y) in self.class_hist.iter_mut().zip(&other.class_hist) {
            *x += *y;
        }
        for (mine, theirs) in self.attr_bins.iter_mut().zip(&other.attr_bins) {
            for (x, y) in mine.counts.iter_mut().zip(&theirs.counts) {
                *x += *y;
            }
        }
    }

    /// Reset all counts (a new epoch), keeping the binning.
    pub fn reset(&mut self) {
        self.records = 0;
        self.class_hist.iter_mut().for_each(|c| *c = 0);
        for b in &mut self.attr_bins {
            b.counts.iter_mut().for_each(|c| *c = 0);
        }
    }

    /// Serialized size in bytes (memory-ledger accounting).
    pub fn heap_bytes(&self) -> u64 {
        let bins: usize = self.attr_bins.iter().map(|b| b.counts.len()).sum();
        ((self.class_hist.len() + bins) * 8) as u64
    }
}

/// Per-leaf class histograms of arriving records under one compiled tree:
/// the serving model's running view of the stream, and the source of the
/// drift score.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeafStats {
    /// `hists[leaf][class]` — arriving records routed to `leaf` with class
    /// `class`. Indexed by flat-tree node id (internal nodes stay zero).
    pub hists: Vec<Vec<u64>>,
    /// Majority class of each flat-tree node (what the model answers).
    majorities: Vec<u8>,
    /// Records folded in.
    pub records: u64,
    /// Records whose label disagreed with their leaf's majority — the
    /// model's error count on the stream since the last reset.
    pub errors: u64,
}

impl LeafStats {
    /// Empty statistics for `tree`.
    pub fn new(tree: &FlatTree) -> LeafStats {
        LeafStats {
            hists: vec![vec![0; tree.schema().num_classes as usize]; tree.len()],
            majorities: (0..tree.len()).map(|n| tree.node_class(n)).collect(),
            records: 0,
            errors: 0,
        }
    }

    /// Route one arriving block through the tree and fold its labels in.
    /// `scratch` is the leaf-id buffer, reused across calls.
    pub fn update(&mut self, tree: &FlatTree, data: &Dataset, scratch: &mut Vec<u32>) {
        scratch.clear();
        scratch.resize(data.len(), 0);
        tree.predict_leaves_range(data, 0, data.len(), scratch);
        self.records += data.len() as u64;
        for (i, &leaf) in scratch.iter().enumerate() {
            let label = data.labels[i];
            self.hists[leaf as usize][label as usize] += 1;
            if self.majorities[leaf as usize] != label {
                self.errors += 1;
            }
        }
    }

    /// Elementwise addition — the `allreduce` operator. Both sides must
    /// describe the same tree.
    pub fn merge(&mut self, other: &LeafStats) {
        assert_eq!(
            self.majorities, other.majorities,
            "leaf stats must describe the same tree"
        );
        self.records += other.records;
        self.errors += other.errors;
        for (mine, theirs) in self.hists.iter_mut().zip(&other.hists) {
            for (x, y) in mine.iter_mut().zip(theirs) {
                *x += *y;
            }
        }
    }

    /// Error rate of the model on everything folded in since the last
    /// reset (0.0 when nothing arrived).
    pub fn error_rate(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.errors as f64 / self.records as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{GenConfig, StreamingGen};

    fn specs_for(schema: &Schema, bins: u32) -> Vec<Option<SketchSpec>> {
        schema
            .attrs
            .iter()
            .map(|a| match a.kind {
                AttrKind::Continuous => Some(SketchSpec {
                    lo: 0.0,
                    hi: 200_000.0,
                    bins,
                }),
                AttrKind::Categorical { .. } => None,
            })
            .collect()
    }

    #[test]
    fn sketch_bins_clamp_and_cover() {
        let s = SketchSpec {
            lo: 0.0,
            hi: 100.0,
            bins: 4,
        };
        assert_eq!(s.bin(-5.0), 0);
        assert_eq!(s.bin(0.0), 0);
        assert_eq!(s.bin(24.9), 0);
        assert_eq!(s.bin(25.0), 1);
        assert_eq!(s.bin(99.9), 3);
        assert_eq!(s.bin(100.0), 3, "high edge clamps into the last bin");
        assert_eq!(s.bin(1e9), 3);
        assert_eq!(s.bin(f32::NAN), 0, "NaN clamps low, never panics");
    }

    #[test]
    fn any_block_order_equals_batch() {
        let gen = StreamingGen::new(GenConfig::paper(600, 13));
        let schema = gen.schema();
        let specs = specs_for(&schema, 16);
        let mut batch = StreamAccum::new(&schema, &specs);
        batch.update(&gen.block(0, 600));

        // Out-of-order odd blocks, folded into two rank accumulators that
        // are then merged — the full streaming path.
        let mut r0 = StreamAccum::new(&schema, &specs);
        let mut r1 = StreamAccum::new(&schema, &specs);
        r1.update(&gen.block(450, 600));
        r0.update(&gen.block(0, 37));
        r1.update(&gen.block(37, 201));
        r0.update(&gen.block(201, 450));
        r0.merge(&r1);
        assert_eq!(r0, batch);
        assert_eq!(r0.records, 600);
        assert_eq!(r0.class_hist.iter().sum::<u64>(), 600);
        for bins in &r0.attr_bins {
            assert_eq!(bins.counts.iter().sum::<u64>(), 600);
        }
    }

    #[test]
    fn reset_zeroes_counts_but_keeps_binning() {
        let gen = StreamingGen::new(GenConfig::paper(50, 15));
        let schema = gen.schema();
        let specs = specs_for(&schema, 8);
        let mut acc = StreamAccum::new(&schema, &specs);
        acc.update(&gen.block(0, 50));
        assert!(acc.records > 0);
        acc.reset();
        assert_eq!(acc, StreamAccum::new(&schema, &specs));
    }

    #[test]
    fn leaf_stats_error_count_matches_direct_scoring() {
        use crate::{induce, ParConfig};
        let gen = StreamingGen::new(GenConfig::paper(400, 17));
        let train = gen.block(0, 300);
        let tree = FlatTree::compile(&induce(&train, &ParConfig::new(2)).tree);
        let fresh = gen.block(300, 400);

        let mut stats = LeafStats::new(&tree);
        let mut scratch = Vec::new();
        // Split the fold across two odd blocks plus a merge.
        let mut other = LeafStats::new(&tree);
        stats.update(&tree, &fresh.slice(0, 33), &mut scratch);
        other.update(&tree, &fresh.slice(33, 100), &mut scratch);
        stats.merge(&other);

        let mut preds = vec![0u8; fresh.len()];
        tree.predict_batch(&fresh, &mut preds);
        let direct_errors = preds
            .iter()
            .zip(&fresh.labels)
            .filter(|(p, l)| p != l)
            .count() as u64;
        assert_eq!(stats.records, 100);
        assert_eq!(stats.errors, direct_errors);
        let total: u64 = stats.hists.iter().flatten().sum();
        assert_eq!(total, 100, "every record lands in exactly one leaf");
    }
}
