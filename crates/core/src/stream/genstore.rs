//! Generational model store: the commit/publish path between the streaming
//! trainer and the serve tier.
//!
//! Each committed generation is one self-contained CRC-checked file in the
//! section format of [`diskio::ckpt`]:
//!
//! * `GEN_<g>.bin` — a META section (generation id, window bounds, the
//!   stream position at commit) plus a MODEL section holding the tree in
//!   the canonical [`dtree::model_io`] text form. Text, not an ad-hoc
//!   binary: byte-identity of two committed generations is then exactly
//!   byte-identity of the induced trees, the property the cross-`p`
//!   determinism tests assert.
//!
//! The write is atomic (temp file + rename inside `ckpt::write_sections`),
//! so a generation either exists completely or not at all — there is no
//! manifest to order commits because a single file *is* the commit.
//! [`latest`] walks generations newest→oldest and returns the first intact
//! one, tolerating bit rot or torn writes in newer files the same way the
//! checkpoint restore scan does (one generation lost, not the store).
//! Keep-last-K retention ([`gc`]) mirrors the checkpoint GC.

use std::path::{Path, PathBuf};

use diskio::ckpt::{self, ByteReader, ByteWriter, CkptError};
use dtree::model_io;
use dtree::tree::DecisionTree;

const SEC_META: u32 = 1;
const SEC_MODEL: u32 = 2;

/// Commit metadata of one generation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GenMeta {
    /// Generation id (strictly increasing along one stream).
    pub generation: u64,
    /// First global record index of the training window.
    pub window_lo: u64,
    /// One past the last global record index of the training window.
    pub window_hi: u64,
}

/// Path of generation `g`'s file.
pub fn gen_file(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("GEN_{generation}.bin"))
}

/// Atomically commit one generation. Returns the encoded payload size
/// (the basis of the simulated I/O charge).
pub fn commit(dir: &Path, meta: GenMeta, tree: &DecisionTree) -> Result<u64, CkptError> {
    std::fs::create_dir_all(dir).map_err(|e| CkptError {
        path: dir.to_path_buf(),
        msg: format!("create store dir: {e}"),
    })?;
    let mut w = ByteWriter::new();
    w.u64(meta.generation);
    w.u64(meta.window_lo);
    w.u64(meta.window_hi);
    let meta_bytes = w.into_bytes();
    let model_bytes = model_io::to_text(tree).into_bytes();
    let total = (meta_bytes.len() + model_bytes.len()) as u64;
    ckpt::write_sections(
        &gen_file(dir, meta.generation),
        &[(SEC_META, &meta_bytes), (SEC_MODEL, &model_bytes)],
    )?;
    Ok(total)
}

/// Load one generation. Returns its metadata, the decoded tree, and the
/// payload size read.
pub fn load(dir: &Path, generation: u64) -> Result<(GenMeta, DecisionTree, u64), CkptError> {
    let path = gen_file(dir, generation);
    let sections = ckpt::read_sections(&path)?;
    let bytes: u64 = sections.iter().map(|(_, p)| p.len() as u64).sum();
    let find = |tag: u32| -> Result<&[u8], CkptError> {
        sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, p)| p.as_slice())
            .ok_or_else(|| CkptError {
                path: path.clone(),
                msg: format!("missing section tag {tag}"),
            })
    };
    let mut r = ByteReader::new(find(SEC_META)?);
    let decode = |r: &mut ByteReader| -> Result<GenMeta, String> {
        Ok(GenMeta {
            generation: r.u64()?,
            window_lo: r.u64()?,
            window_hi: r.u64()?,
        })
    };
    let meta = decode(&mut r).map_err(|msg| CkptError {
        path: path.clone(),
        msg,
    })?;
    if meta.generation != generation {
        return Err(CkptError {
            path,
            msg: format!(
                "file claims generation {}, expected {generation}",
                meta.generation
            ),
        });
    }
    let text = std::str::from_utf8(find(SEC_MODEL)?).map_err(|e| CkptError {
        path: path.clone(),
        msg: format!("model section is not UTF-8: {e}"),
    })?;
    let tree = model_io::from_text(text).map_err(|msg| CkptError { path, msg })?;
    Ok((meta, tree, bytes))
}

/// Generation ids present in `dir` (by file name, decoded or not), newest
/// first.
pub fn list_generations(dir: &Path) -> Vec<u64> {
    let mut gens: Vec<u64> = match std::fs::read_dir(dir) {
        Ok(rd) => rd
            .flatten()
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                name.strip_prefix("GEN_")?
                    .strip_suffix(".bin")?
                    .parse()
                    .ok()
            })
            .collect(),
        Err(_) => Vec::new(),
    };
    gens.sort_unstable_by(|a, b| b.cmp(a));
    gens.dedup();
    gens
}

/// What a tolerant store scan found — the typed verdict a restart path
/// branches on instead of unwrapping a bare `Option` (mirrors the
/// checkpoint `RestoreVerdict`).
#[derive(Debug)]
pub enum StoreVerdict {
    /// An intact generation exists; `skipped_corrupt` newer files were
    /// walked past (bit rot, torn writes, decode failures).
    Usable {
        /// Metadata of the newest intact generation.
        meta: GenMeta,
        /// Its decoded tree.
        tree: DecisionTree,
        /// Damaged newer generations skipped on the way down.
        skipped_corrupt: u32,
    },
    /// The store directory has no generation files at all — a fresh start,
    /// not a failure.
    Empty,
    /// Generation files exist but none decodes; resuming would silently
    /// lose the committed lineage, so the caller must decide (fresh start
    /// with the damage surfaced, or refuse).
    AllCorrupt {
        /// Generation files present, all damaged.
        generations: u32,
    },
}

/// Tolerant store walk: newest→oldest past damaged files to the first
/// intact generation, with a typed verdict for the empty and all-corrupt
/// cases. This is the crash-resume entry point.
pub fn scan(dir: &Path) -> StoreVerdict {
    let gens = list_generations(dir);
    if gens.is_empty() {
        return StoreVerdict::Empty;
    }
    let mut skipped = 0u32;
    for generation in gens {
        match load(dir, generation) {
            Ok((meta, tree, _)) => {
                return StoreVerdict::Usable {
                    meta,
                    tree,
                    skipped_corrupt: skipped,
                }
            }
            Err(_) => skipped += 1,
        }
    }
    StoreVerdict::AllCorrupt {
        generations: skipped,
    }
}

/// The newest fully intact generation, walking past damaged newer files
/// (returns the count walked past too). `None` when nothing intact exists.
/// Thin wrapper over [`scan`] for callers that treat empty and all-corrupt
/// alike; restart paths should branch on the [`StoreVerdict`] instead.
pub fn latest(dir: &Path) -> Option<(GenMeta, DecisionTree, u32)> {
    match scan(dir) {
        StoreVerdict::Usable {
            meta,
            tree,
            skipped_corrupt,
        } => Some((meta, tree, skipped_corrupt)),
        StoreVerdict::Empty | StoreVerdict::AllCorrupt { .. } => None,
    }
}

/// What one [`gc`] pass did. `skipped` counts files that could not be
/// removed — surfaced so a watchdog can report retention failures instead
/// of letting disk usage grow unbounded in silence.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Generation files removed.
    pub removed: u32,
    /// Removals that failed (I/O error); the files are still on disk.
    pub skipped: u32,
}

/// Keep-last-K retention after committing generation `newest`: remove
/// every generation older than `newest + 1 - keep`. Host-side filesystem
/// work, uncharged. I/O failures are counted, not swallowed.
pub fn gc(dir: &Path, newest: u64, keep: usize) -> GcReport {
    let floor = (newest + 1).saturating_sub(keep.max(1) as u64);
    let mut report = GcReport::default();
    for generation in list_generations(dir) {
        if generation < floor {
            match std::fs::remove_file(gen_file(dir, generation)) {
                Ok(()) => report.removed += 1,
                Err(_) => report.skipped += 1,
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{induce, ParConfig};
    use datagen::{generate, GenConfig};

    fn tree_for(seed: u64) -> DecisionTree {
        let data = generate(&GenConfig::paper(200, seed));
        induce(&data, &ParConfig::new(2)).tree
    }

    fn store_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("scalparc-genstore-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn commit_load_roundtrip_is_byte_identical() {
        let dir = store_dir("roundtrip");
        let tree = tree_for(3);
        let meta = GenMeta {
            generation: 1,
            window_lo: 100,
            window_hi: 300,
        };
        let written = commit(&dir, meta, &tree).unwrap();
        let (m, back, read) = load(&dir, 1).unwrap();
        assert_eq!(m, meta);
        assert_eq!(written, read);
        assert_eq!(model_io::to_text(&back), model_io::to_text(&tree));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn latest_walks_past_damaged_generations() {
        let dir = store_dir("latest");
        for g in 1..=3u64 {
            commit(
                &dir,
                GenMeta {
                    generation: g,
                    window_lo: g * 10,
                    window_hi: g * 10 + 100,
                },
                &tree_for(g),
            )
            .unwrap();
        }
        let (m, _, skipped) = latest(&dir).unwrap();
        assert_eq!((m.generation, skipped), (3, 0));
        // Bit-flip the newest: the scan lands on 2.
        ckpt::damage_flip_bit(&gen_file(&dir, 3)).unwrap();
        let (m, _, skipped) = latest(&dir).unwrap();
        assert_eq!((m.generation, skipped), (2, 1));
        // Tear 2 as well: the scan lands on 1.
        ckpt::damage_truncate_tail(&gen_file(&dir, 2)).unwrap();
        let (m, _, skipped) = latest(&dir).unwrap();
        assert_eq!((m.generation, skipped), (1, 2));
        // Remove 1: nothing intact remains.
        ckpt::damage_remove(&gen_file(&dir, 1)).unwrap();
        assert!(latest(&dir).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gc_keeps_last_k_and_counts_removals() {
        let dir = store_dir("gc");
        let mut removed = 0;
        for g in 0..5u64 {
            commit(
                &dir,
                GenMeta {
                    generation: g,
                    window_lo: 0,
                    window_hi: 10,
                },
                &tree_for(7),
            )
            .unwrap();
            let r = gc(&dir, g, 2);
            assert_eq!(r.skipped, 0);
            removed += r.removed;
        }
        assert_eq!(removed, 3, "five commits, keep 2");
        assert_eq!(list_generations(&dir), vec![4, 3]);
        assert_eq!(
            gc(&dir, 4, 1),
            GcReport {
                removed: 1,
                skipped: 0
            }
        );
        assert_eq!(list_generations(&dir), vec![4]);
        // Floor underflow is safe, and a no-op pass reports zeros.
        assert_eq!(gc(&dir, 0, 3), GcReport::default());
        assert_eq!(list_generations(&dir), vec![4]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_verdicts_cover_usable_empty_and_all_corrupt() {
        let dir = store_dir("scan");
        assert!(matches!(scan(&dir), StoreVerdict::Empty));
        for g in 1..=2u64 {
            commit(
                &dir,
                GenMeta {
                    generation: g,
                    window_lo: 0,
                    window_hi: g * 100,
                },
                &tree_for(g),
            )
            .unwrap();
        }
        match scan(&dir) {
            StoreVerdict::Usable {
                meta,
                skipped_corrupt,
                ..
            } => assert_eq!((meta.generation, skipped_corrupt), (2, 0)),
            other => panic!("expected Usable, got {other:?}"),
        }
        // Damage the newest: the scan walks down with a skip count.
        ckpt::damage_flip_bit(&gen_file(&dir, 2)).unwrap();
        match scan(&dir) {
            StoreVerdict::Usable {
                meta,
                skipped_corrupt,
                ..
            } => assert_eq!((meta.generation, skipped_corrupt), (1, 1)),
            other => panic!("expected Usable, got {other:?}"),
        }
        // Damage everything: AllCorrupt names the file count, distinct
        // from Empty.
        ckpt::damage_truncate_tail(&gen_file(&dir, 1)).unwrap();
        match scan(&dir) {
            StoreVerdict::AllCorrupt { generations } => assert_eq!(generations, 2),
            other => panic!("expected AllCorrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_or_missing_dir_is_empty_store() {
        let dir = store_dir("empty");
        assert!(list_generations(&dir).is_empty());
        assert!(latest(&dir).is_none());
        assert!(load(&dir, 0).is_err());
    }
}
