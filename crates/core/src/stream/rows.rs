//! Row-run codec for the window re-block exchange.
//!
//! During ingest each rank retains the *arrival shard* of every block — a
//! scatter of contiguous global-index runs. Re-evaluation needs the window
//! re-cut into `p` contiguous shards (the blocking induction expects), so
//! ranks exchange rows with one `alltoallv`. This module is the wire
//! format: a flat `u32` stream of *runs*, each
//!
//! ```text
//! [global_lo: 2×u32 (u64 LE-split)] [count: u32] [count × row]
//! row = one u32 per attribute (f32 bits for continuous, the value for
//!       categorical) + one u32 label
//! ```
//!
//! Encoding is schema-driven and bijective: decode(encode(runs)) == runs
//! exactly (f32 through bit transmutation, never parsing), so the
//! re-blocked window is bit-identical to the stream the generator produced
//! — the foundation of the cross-`p` determinism guarantee.

use dtree::data::{Column, Dataset, Schema};

/// Append one run (`global_lo`, `data`) to the flat word stream.
pub fn encode_run(data: &Dataset, global_lo: u64, out: &mut Vec<u32>) {
    out.push(global_lo as u32);
    out.push((global_lo >> 32) as u32);
    out.push(data.len() as u32);
    for i in 0..data.len() {
        for col in &data.columns {
            match col {
                Column::Continuous(v) => out.push(v[i].to_bits()),
                Column::Categorical(v) => out.push(v[i]),
            }
        }
        out.push(u32::from(data.labels[i]));
    }
}

/// Words one encoded run of `rows` rows occupies under `schema`.
pub fn run_words(schema: &Schema, rows: usize) -> usize {
    3 + rows * (schema.num_attrs() + 1)
}

/// Decode a flat word stream back into `(global_lo, data)` runs.
///
/// # Panics
///
/// On a malformed stream (truncated run, trailing words) — the exchange is
/// in-memory and deterministic, so damage here is a logic error, not an
/// I/O condition to recover from.
pub fn decode_runs(schema: &Schema, words: &[u32]) -> Vec<(u64, Dataset)> {
    let row_words = schema.num_attrs() + 1;
    let mut runs = Vec::new();
    let mut at = 0usize;
    while at < words.len() {
        assert!(at + 3 <= words.len(), "truncated run header");
        let global_lo = u64::from(words[at]) | (u64::from(words[at + 1]) << 32);
        let count = words[at + 2] as usize;
        at += 3;
        assert!(at + count * row_words <= words.len(), "truncated run body");
        let mut columns: Vec<Column> = schema
            .attrs
            .iter()
            .map(|a| match a.kind {
                dtree::data::AttrKind::Continuous => Column::Continuous(Vec::with_capacity(count)),
                dtree::data::AttrKind::Categorical { .. } => {
                    Column::Categorical(Vec::with_capacity(count))
                }
            })
            .collect();
        let mut labels = Vec::with_capacity(count);
        for _ in 0..count {
            for col in columns.iter_mut() {
                match col {
                    Column::Continuous(v) => v.push(f32::from_bits(words[at])),
                    Column::Categorical(v) => v.push(words[at]),
                }
                at += 1;
            }
            labels.push(words[at] as u8);
            at += 1;
        }
        runs.push((global_lo, Dataset::new(schema.clone(), columns, labels)));
    }
    runs
}

/// Concatenate datasets (all of `schema`) in the given order.
pub fn concat(schema: &Schema, parts: &[&Dataset]) -> Dataset {
    let total: usize = parts.iter().map(|d| d.len()).sum();
    let mut columns: Vec<Column> = schema
        .attrs
        .iter()
        .map(|a| match a.kind {
            dtree::data::AttrKind::Continuous => Column::Continuous(Vec::with_capacity(total)),
            dtree::data::AttrKind::Categorical { .. } => {
                Column::Categorical(Vec::with_capacity(total))
            }
        })
        .collect();
    let mut labels = Vec::with_capacity(total);
    for part in parts {
        for (dst, src) in columns.iter_mut().zip(&part.columns) {
            match (dst, src) {
                (Column::Continuous(d), Column::Continuous(s)) => d.extend_from_slice(s),
                (Column::Categorical(d), Column::Categorical(s)) => d.extend_from_slice(s),
                _ => panic!("column kind mismatch in concat"),
            }
        }
        labels.extend_from_slice(&part.labels);
    }
    Dataset::new(schema.clone(), columns, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{GenConfig, StreamingGen};

    #[test]
    fn encode_decode_roundtrips_bit_exactly() {
        let gen = StreamingGen::new(GenConfig::paper(120, 7));
        let schema = gen.schema();
        let a = gen.block(0, 50);
        let b = gen.block(80, 120);
        let mut words = Vec::new();
        encode_run(&a, 0, &mut words);
        encode_run(&b, 80, &mut words);
        assert_eq!(words.len(), run_words(&schema, 50) + run_words(&schema, 40));
        let runs = decode_runs(&schema, &words);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0], (0, a));
        assert_eq!(runs[1], (80, b));
    }

    #[test]
    fn empty_runs_and_streams_are_fine() {
        let gen = StreamingGen::new(GenConfig::paper(10, 9));
        let schema = gen.schema();
        assert!(decode_runs(&schema, &[]).is_empty());
        let mut words = Vec::new();
        encode_run(&gen.block(5, 5), 5, &mut words);
        let runs = decode_runs(&schema, &words);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].0, 5);
        assert_eq!(runs[0].1.len(), 0);
    }

    #[test]
    fn concat_matches_generator_block() {
        let gen = StreamingGen::new(GenConfig::paper(90, 11));
        let schema = gen.schema();
        let parts = [gen.block(0, 30), gen.block(30, 31), gen.block(31, 90)];
        let refs: Vec<&Dataset> = parts.iter().collect();
        assert_eq!(concat(&schema, &refs), gen.block(0, 90));
    }
}
