//! Streaming induction: train from an unbounded record stream with
//! periodic re-evaluation and generational model commits.
//!
//! This is the **deterministic, in-machine half** of the streaming
//! subsystem (the live threaded runner with a real ingest queue and a
//! serving [`ModelSlot`] lives in the `stream` crate and builds on these
//! pieces). Everything here runs inside one [`mpsim`] machine, so the
//! whole pipeline — ingest accounting, trigger decisions, re-induction,
//! commits — is reproducible to the byte and independent of the rank
//! count `p`.
//!
//! # Pipeline
//!
//! The stream arrives in fixed-size **blocks** of global record indices.
//! Each block passes through three instrumented phases:
//!
//! * **`ingest`** — every rank materializes its *arrival shard* (a
//!   contiguous `1/p` cut of the block), folds it into the order-invariant
//!   accumulators ([`accum::StreamAccum`] for the model-free window
//!   summary, [`accum::LeafStats`] for the serving model's prequential
//!   error), retains the shard in its sliding-window buffer, and evicts
//!   rows that fell out of the window. One `allreduce` of
//!   `[scored, errors]` per block globalizes the prequential counts — the
//!   *only* input of the trigger decision, so every rank decides
//!   identically in lockstep.
//! * **`reeval`** (when triggered) — the window is re-cut into `p`
//!   contiguous global-order shards with one `alltoallv` (wire format in
//!   [`rows`]), and ScalParC induction runs over it. Because the window is
//!   re-assembled in global index order, the induced tree is the tree
//!   *any* rank count would induce from the same window — the cross-`p`
//!   determinism guarantee.
//! * **`swap`** — rank 0 commits the new generation to the
//!   [`genstore`] (atomic single-file commit, I/O charged to the simulated
//!   clock), every rank adopts the compiled tree, and the epoch state
//!   (drift counters, leaf statistics) resets.
//!
//! # Triggers
//!
//! Re-evaluation fires on whichever comes first:
//!
//! * **Count** — `reeval_records` new records since the last commit (the
//!   cadence that bounds staleness under a stable concept), or
//! * **Drift** — the serving model's prequential error over the current
//!   epoch exceeds `drift_error` (with a `min_epoch_records` guard against
//!   deciding from a handful of records). Labels disagreeing with leaf
//!   majorities *is* the drift score; no attribute-distribution test is
//!   needed for label drift.
//!
//! Both are functions of globally-reduced counters only, so the commit
//! sequence — generation ids, windows, triggers, trees — is identical for
//! every `p` and every re-run.

pub mod accum;
pub mod genstore;
pub mod rows;

use std::collections::VecDeque;
use std::path::Path;

use dtree::data::{Dataset, Schema};
use dtree::flat::FlatTree;
use dtree::model_io;
use mpsim::{Comm, MachineCfg, RunStats};

use crate::checkpoint::io_charge_ns;
use crate::config::{InduceConfig, ParConfig};
use crate::induce::induce_on_comm;
use accum::{LeafStats, SketchSpec, StreamAccum};
use genstore::GenMeta;

/// Memory-tracker category for the per-rank sliding-window buffer.
pub const WINDOW_MEM: &str = "stream-window";

/// Simulated cost of materializing + accumulating one arriving record.
const INGEST_ROW_NS: u64 = 150;

/// A deterministic, randomly-addressable record stream. Blocks may be
/// requested in any order and at any granularity; `block(lo, hi)` must be
/// a pure function of the range (the property `datagen::StreamingGen` and
/// `datagen::DriftGen` provide by construction).
pub trait BlockSource: Sync {
    /// Records this source can produce (the stream length for this run).
    fn total(&self) -> usize;
    /// Schema of every produced record.
    fn schema(&self) -> Schema;
    /// Materialize global records `lo..hi` (clamped to `total()`).
    fn block(&self, lo: usize, hi: usize) -> Dataset;
}

/// An in-memory dataset replayed as a stream.
impl BlockSource for Dataset {
    fn total(&self) -> usize {
        self.len()
    }
    fn schema(&self) -> Schema {
        self.schema.clone()
    }
    fn block(&self, lo: usize, hi: usize) -> Dataset {
        let hi = hi.min(self.len());
        let lo = lo.min(hi);
        self.slice(lo, hi)
    }
}

/// Streaming-pipeline configuration.
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Records per arriving block (the ingest granularity).
    pub block_records: usize,
    /// Sliding-window size in records: re-evaluations train on the most
    /// recent `window_records` of the stream.
    pub window_records: usize,
    /// Count trigger: re-evaluate after this many records since the last
    /// commit (also the bootstrap point for the first model).
    pub reeval_records: usize,
    /// Drift trigger: re-evaluate when the serving model's prequential
    /// error over the current epoch exceeds this. `None` disables the
    /// drift trigger (pure cadence mode).
    pub drift_error: Option<f64>,
    /// Drift guard: the epoch must have scored at least this many records
    /// before the error rate is trusted.
    pub min_epoch_records: u64,
    /// Per-attribute sketch binning for [`StreamAccum`] (`Some` exactly
    /// for continuous attributes).
    pub sketch: Vec<Option<SketchSpec>>,
    /// Keep-last-K retention of the generation store (`None` = keep all).
    pub keep_generations: Option<usize>,
    /// Induction options for each re-evaluation.
    pub induce: InduceConfig,
}

impl StreamConfig {
    /// A sane default geometry over `sketch`: 500-record blocks, a
    /// 4000-record window, re-evaluation every 2000 records, drift trigger
    /// at 20% prequential error.
    pub fn new(sketch: Vec<Option<SketchSpec>>) -> StreamConfig {
        StreamConfig {
            block_records: 500,
            window_records: 4_000,
            reeval_records: 2_000,
            drift_error: Some(0.2),
            min_epoch_records: 200,
            sketch,
            keep_generations: None,
            induce: InduceConfig::default(),
        }
    }
}

/// Why a re-evaluation fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trigger {
    /// Cadence: `reeval_records` arrived since the last commit.
    Count,
    /// The serving model's prequential error crossed `drift_error`.
    Drift,
}

/// Prequential score of one ingested block: how the *currently serving*
/// generation did on records it had never seen (test-then-train).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockPoint {
    /// Global records ingested once this block landed (the block's hi).
    pub upto: u64,
    /// Generation that scored the block (`None` before the first commit).
    pub generation: Option<u64>,
    /// Records scored globally (0 before the first commit).
    pub records: u64,
    /// Labels that disagreed with the serving model, globally.
    pub errors: u64,
}

/// One committed model generation.
#[derive(Clone, Debug, PartialEq)]
pub struct GenCommit {
    /// Generation id (0-based, strictly increasing).
    pub generation: u64,
    /// What fired the re-evaluation.
    pub trigger: Trigger,
    /// First global record of the training window.
    pub window_lo: u64,
    /// One past the last global record of the training window.
    pub window_hi: u64,
    /// The committed tree in canonical [`model_io`] text form — the
    /// cross-`p` byte-identity witness.
    pub tree_text: String,
    /// Flattened `num_classes × num_classes` confusion matrix of the new
    /// tree over its own training window (`confusion[t * c + p]` = records
    /// of true class `t` predicted `p`), globally reduced.
    pub confusion: Vec<u64>,
    /// Training-window accuracy implied by `confusion`.
    pub accuracy: f64,
    /// Committed payload bytes (0 when no store directory was given).
    pub payload_bytes: u64,
}

/// Everything one streaming run produced (identical on every rank;
/// rank 0's copy is returned by [`run_stream`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StreamReport {
    /// Blocks ingested.
    pub blocks: u64,
    /// Records ingested.
    pub records: u64,
    /// Committed generations, in commit order.
    pub commits: Vec<GenCommit>,
    /// Per-block prequential accuracy points, in stream order.
    pub points: Vec<BlockPoint>,
}

impl StreamReport {
    /// Prequential accuracy over the points scored by `generation`.
    pub fn accuracy_of_generation(&self, generation: u64) -> Option<f64> {
        let (mut rec, mut err) = (0u64, 0u64);
        for p in &self.points {
            if p.generation == Some(generation) {
                rec += p.records;
                err += p.errors;
            }
        }
        (rec > 0).then(|| 1.0 - err as f64 / rec as f64)
    }
}

/// A finished [`run_stream`]: the (rank-0) report plus machine statistics.
#[derive(Debug)]
pub struct StreamOutcome {
    /// The commit/point log.
    pub report: StreamReport,
    /// Per-rank simulated time, communication volume, memory peaks.
    pub stats: RunStats,
}

/// One rank's retained arrival shard: a contiguous global-index run.
struct Run {
    global_lo: u64,
    data: Dataset,
}

/// Bytes one retained row occupies on the wire and (approximately) in the
/// window buffer.
fn row_bytes(schema: &Schema) -> u64 {
    ((schema.num_attrs() + 1) * 4) as u64
}

/// Run the streaming pipeline on an already-running machine. Collective:
/// every rank calls this with the same `source`, `cfg`, and `store`.
/// Returns the identical-on-every-rank report.
pub fn stream_on_comm(
    comm: &mut Comm,
    source: &dyn BlockSource,
    cfg: &StreamConfig,
    store: Option<&Path>,
) -> StreamReport {
    assert!(cfg.block_records >= 1, "need at least one record per block");
    assert!(
        cfg.window_records >= cfg.block_records,
        "window must hold at least one block"
    );
    assert!(cfg.reeval_records >= 1, "need a re-evaluation cadence");
    let schema = source.schema();
    let total = source.total();
    let p = comm.size();
    let rank = comm.rank();
    let classes = schema.num_classes as usize;
    let rbytes = row_bytes(&schema);

    let mut report = StreamReport::default();
    let mut window: VecDeque<Run> = VecDeque::new();
    let mut window_rows = 0u64;
    let mut accum = StreamAccum::new(&schema, &cfg.sketch);
    let mut model: Option<(u64, FlatTree)> = None;
    let mut leaf: Option<LeafStats> = None;
    let mut scratch: Vec<u32> = Vec::new();
    let mut next_gen = 0u64;
    let mut last_commit_upto = 0u64;
    let mut epoch_scored = 0u64;
    let mut epoch_errors = 0u64;

    let mut block_idx = 0u32;
    let mut blo = 0usize;
    while blo < total {
        let bhi = (blo + cfg.block_records).min(total);
        let upto = bhi as u64;

        // --- ingest: arrival shard, accumulators, eviction -------------
        comm.phase_begin("ingest", block_idx);
        let blen = bhi - blo;
        let shard = blen.div_ceil(p);
        let s_lo = blo + (rank * shard).min(blen);
        let s_hi = blo + ((rank + 1) * shard).min(blen);
        let data = source.block(s_lo, s_hi);
        comm.charge_compute(data.len() as u64 * INGEST_ROW_NS);
        accum.update(&data);
        let (mine_scored, mine_errors) = match (&model, &mut leaf) {
            (Some((_, tree)), Some(stats)) => {
                let before = stats.errors;
                stats.update(tree, &data, &mut scratch);
                (data.len() as u64, stats.errors - before)
            }
            _ => (0, 0),
        };
        if !data.is_empty() {
            window_rows += data.len() as u64;
            window.push_back(Run {
                global_lo: s_lo as u64,
                data,
            });
        }
        let win_lo = upto.saturating_sub(cfg.window_records as u64);
        while let Some(front) = window.front_mut() {
            let run_hi = front.global_lo + front.data.len() as u64;
            if run_hi <= win_lo {
                window_rows -= front.data.len() as u64;
                window.pop_front();
            } else if front.global_lo < win_lo {
                let cut = (win_lo - front.global_lo) as usize;
                front.data = front.data.slice(cut, front.data.len());
                front.global_lo = win_lo;
                window_rows -= cut as u64;
                break;
            } else {
                break;
            }
        }
        comm.tracker().pulse(WINDOW_MEM, window_rows * rbytes);
        // The only trigger input: globally-reduced prequential counts.
        let global = comm.allreduce([mine_scored, mine_errors], |a, b| {
            a[0] += b[0];
            a[1] += b[1];
        });
        epoch_scored += global[0];
        epoch_errors += global[1];
        report.blocks += 1;
        report.records = upto;
        report.points.push(BlockPoint {
            upto,
            generation: model.as_ref().map(|(g, _)| *g),
            records: global[0],
            errors: global[1],
        });
        comm.phase_end();

        // --- trigger: deterministic on every rank ----------------------
        let count_fire = upto - last_commit_upto >= cfg.reeval_records as u64;
        let drift_fire = model.is_some()
            && cfg.drift_error.is_some_and(|thr| {
                epoch_scored >= cfg.min_epoch_records.max(1)
                    && epoch_errors as f64 / epoch_scored as f64 > thr
            });
        if !(count_fire || drift_fire) {
            blo = bhi;
            block_idx += 1;
            continue;
        }
        let trigger = if drift_fire {
            Trigger::Drift
        } else {
            Trigger::Count
        };

        // --- reeval: re-block the window in global order, induce -------
        comm.phase_begin("reeval", block_idx);
        let w = upto - win_lo;
        let tgt_block = (w as usize).div_ceil(p).max(1) as u64;
        let dest_of = |g: u64| (((g - win_lo) / tgt_block) as usize).min(p - 1);
        let mut send: Vec<Vec<u32>> = vec![Vec::new(); p];
        for run in &window {
            // A run can straddle target shards: emit one wire run per
            // destination it overlaps.
            let mut at = 0usize;
            while at < run.data.len() {
                let g = run.global_lo + at as u64;
                let dest = dest_of(g);
                let dest_hi = win_lo + (dest as u64 + 1) * tgt_block;
                let take = ((dest_hi - g) as usize).min(run.data.len() - at);
                rows::encode_run(&run.data.slice(at, at + take), g, &mut send[dest]);
                at += take;
            }
        }
        let counts: Vec<usize> = send.iter().map(Vec::len).collect();
        let flat: Vec<u32> = send.into_iter().flatten().collect();
        let (recv, _) = comm.alltoallv_flat(flat, &counts);
        let mut runs = rows::decode_runs(&schema, &recv);
        runs.sort_by_key(|(lo, _)| *lo);
        let parts: Vec<&Dataset> = runs.iter().map(|(_, d)| d).collect();
        let local = rows::concat(&schema, &parts);
        let my_lo = win_lo + (rank as u64 * tgt_block).min(w);
        debug_assert_eq!(
            runs.first().map(|(lo, _)| *lo).unwrap_or(my_lo),
            my_lo,
            "re-blocked shard must start at this rank's target boundary"
        );
        let (tree, _) =
            induce_on_comm(comm, local.clone(), (my_lo - win_lo) as u32, w, &cfg.induce);
        let flat_tree = FlatTree::compile(&tree);
        let mut confusion = vec![0u64; classes * classes];
        let mut preds = vec![0u8; local.len()];
        flat_tree.predict_batch(&local, &mut preds);
        for (i, &pred) in preds.iter().enumerate() {
            confusion[local.labels[i] as usize * classes + pred as usize] += 1;
        }
        let confusion = comm.allreduce_sized(
            confusion,
            (classes * classes * 8) as u64,
            |a: &mut Vec<u64>, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += *y;
                }
            },
        );
        comm.phase_end();

        // --- swap: commit, adopt, reset epoch --------------------------
        comm.phase_begin("swap", block_idx);
        let generation = next_gen;
        let mut payload_bytes = 0u64;
        if let Some(dir) = store {
            if rank == 0 {
                let meta = GenMeta {
                    generation,
                    window_lo: win_lo,
                    window_hi: upto,
                };
                payload_bytes =
                    genstore::commit(dir, meta, &tree).expect("generation commit failed");
                comm.charge_compute(io_charge_ns(payload_bytes));
                if let Some(keep) = cfg.keep_generations {
                    // Retention failures are surfaced by the live runner's
                    // watchdog; the simulated pipeline just keeps going.
                    let _ = genstore::gc(dir, generation, keep);
                }
            }
            payload_bytes = comm.bcast(0, (rank == 0).then_some(payload_bytes));
        }
        // Every rank leaves the swap with the new generation serving.
        comm.barrier();
        leaf = Some(LeafStats::new(&flat_tree));
        model = Some((generation, flat_tree));
        accum.reset();
        epoch_scored = 0;
        epoch_errors = 0;
        last_commit_upto = upto;
        next_gen += 1;
        let diag: u64 = (0..classes).map(|c| confusion[c * classes + c]).sum();
        let total_w: u64 = confusion.iter().sum();
        report.commits.push(GenCommit {
            generation,
            trigger,
            window_lo: win_lo,
            window_hi: upto,
            tree_text: model_io::to_text(&tree),
            confusion,
            accuracy: if total_w == 0 {
                0.0
            } else {
                diag as f64 / total_w as f64
            },
            payload_bytes,
        });
        comm.phase_end();

        blo = bhi;
        block_idx += 1;
    }
    report
}

/// Drive [`stream_on_comm`] on a fresh `cfg.procs`-rank simulated machine.
/// Returns rank 0's report (identical on every rank) plus machine
/// statistics.
pub fn run_stream(
    source: &dyn BlockSource,
    par: &ParConfig,
    cfg: &StreamConfig,
    store: Option<&Path>,
) -> StreamOutcome {
    assert!(par.procs >= 1);
    let mcfg = MachineCfg {
        procs: par.procs,
        cost: par.cost,
        timing: par.timing,
        compute_tokens: 0,
        replay: None,
        trace: par.trace,
        fault: None,
    };
    let result = mpsim::run(&mcfg, |comm| stream_on_comm(comm, source, cfg, store));
    let mut outputs = result.outputs;
    StreamOutcome {
        report: outputs.swap_remove(0),
        stats: result.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, DriftGen, DriftKind, GenConfig};
    use dtree::data::AttrKind;

    /// Sketch specs sized for the QUEST attribute ranges.
    fn quest_sketch(schema: &Schema) -> Vec<Option<SketchSpec>> {
        schema
            .attrs
            .iter()
            .map(|a| match a.kind {
                AttrKind::Continuous => Some(SketchSpec {
                    lo: 0.0,
                    hi: 500_000.0,
                    bins: 32,
                }),
                AttrKind::Categorical { .. } => None,
            })
            .collect()
    }

    /// A drift stream as a [`BlockSource`] (the trait is local, so the
    /// impl can live right here; the `stream` crate wraps it the same way).
    struct DriftSource(DriftGen);
    impl BlockSource for DriftSource {
        fn total(&self) -> usize {
            self.0.len()
        }
        fn schema(&self) -> Schema {
            self.0.schema()
        }
        fn block(&self, lo: usize, hi: usize) -> Dataset {
            self.0.block(lo, hi)
        }
    }

    fn cadence_cfg(sketch: Vec<Option<SketchSpec>>) -> StreamConfig {
        StreamConfig {
            block_records: 100,
            window_records: 800,
            reeval_records: 400,
            drift_error: None,
            min_epoch_records: 100,
            sketch,
            keep_generations: None,
            induce: InduceConfig::default(),
        }
    }

    #[test]
    fn cadence_commits_at_fixed_intervals() {
        let data = generate(&GenConfig::paper(1_200, 31));
        let cfg = cadence_cfg(quest_sketch(&data.schema));
        let out = run_stream(&data, &ParConfig::new(2), &cfg, None);
        let r = &out.report;
        assert_eq!(r.blocks, 12);
        assert_eq!(r.records, 1_200);
        // Commits at 400, 800, 1200 — all count-triggered.
        let his: Vec<u64> = r.commits.iter().map(|c| c.window_hi).collect();
        assert_eq!(his, vec![400, 800, 1_200]);
        assert!(r.commits.iter().all(|c| c.trigger == Trigger::Count));
        assert_eq!(
            r.commits.iter().map(|c| c.generation).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        // Windows clamp to the sliding window size.
        assert_eq!(r.commits[2].window_lo, 400);
        // Before the first commit nothing is scored; after it, every block
        // is scored by exactly the generation serving at its arrival.
        assert!(r.points[..4].iter().all(|pt| pt.generation.is_none()));
        assert!(r.points[4..8].iter().all(|pt| pt.generation == Some(0)));
        assert!(r.points[8..].iter().all(|pt| pt.generation == Some(1)));
        // Noiseless stable concept: the trained trees classify their own
        // window perfectly.
        assert!(r.commits.iter().all(|c| c.accuracy > 0.99));
    }

    #[test]
    fn generation_sequence_is_identical_across_p() {
        let gen = DriftGen::new(
            GenConfig::paper(1_600, 33),
            DriftKind::Abrupt {
                at: 800,
                to: datagen::ClassFunc::F1,
            },
        );
        let source = DriftSource(gen);
        let mut cfg = cadence_cfg(quest_sketch(&source.schema()));
        cfg.drift_error = Some(0.25);
        let baseline = run_stream(&source, &ParConfig::new(1), &cfg, None).report;
        assert!(!baseline.commits.is_empty());
        for p in [2, 4] {
            let r = run_stream(&source, &ParConfig::new(p), &cfg, None).report;
            assert_eq!(
                r.commits.len(),
                baseline.commits.len(),
                "p={p}: commit cadence diverged"
            );
            for (a, b) in r.commits.iter().zip(&baseline.commits) {
                assert_eq!(a.tree_text, b.tree_text, "p={p}: gen {} tree", a.generation);
                assert_eq!(
                    a.confusion, b.confusion,
                    "p={p}: gen {} confusion",
                    a.generation
                );
                assert_eq!(
                    (a.trigger, a.window_lo, a.window_hi),
                    (b.trigger, b.window_lo, b.window_hi)
                );
            }
            assert_eq!(r.points, baseline.points, "p={p}: prequential log diverged");
        }
    }

    #[test]
    fn abrupt_drift_fires_the_drift_trigger_and_recovers() {
        let gen = DriftGen::new(
            GenConfig::paper(2_400, 35),
            DriftKind::Abrupt {
                at: 1_200,
                to: datagen::ClassFunc::F1,
            },
        );
        let source = DriftSource(gen);
        let mut cfg = cadence_cfg(quest_sketch(&source.schema()));
        cfg.reeval_records = 1_200; // cadence alone would never react in time
        cfg.window_records = 800;
        // A tight threshold keeps the trigger firing until the serving
        // model genuinely learns the new concept.
        cfg.drift_error = Some(0.1);
        let r = run_stream(&source, &ParConfig::new(2), &cfg, None).report;
        let drift_commit = r
            .commits
            .iter()
            .find(|c| c.trigger == Trigger::Drift)
            .expect("the concept flip must fire the drift trigger");
        assert!(
            drift_commit.window_hi > 1_200,
            "drift can only be observed after the flip"
        );
        // Recovery: the final committed generation classifies a pure
        // post-flip stretch of the stream essentially perfectly again.
        let last = r.commits.last().unwrap();
        let tree = model_io::from_text(&last.tree_text).unwrap();
        let post = source.block(1_600, 2_400);
        assert!(
            tree.accuracy(&post) > 0.95,
            "post-drift accuracy {}",
            tree.accuracy(&post)
        );
    }

    #[test]
    fn store_holds_the_committed_generations() {
        let data = generate(&GenConfig::paper(900, 37));
        let mut cfg = cadence_cfg(quest_sketch(&data.schema));
        cfg.keep_generations = Some(2);
        let dir =
            std::env::temp_dir().join(format!("scalparc-stream-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let r = run_stream(&data, &ParConfig::new(3), &cfg, Some(&dir)).report;
        assert_eq!(r.commits.len(), 2, "commits at 400 and 800");
        assert!(r.commits.iter().all(|c| c.payload_bytes > 0));
        let (meta, tree, skipped) = genstore::latest(&dir).unwrap();
        assert_eq!(skipped, 0);
        let last = r.commits.last().unwrap();
        assert_eq!(meta.generation, last.generation);
        assert_eq!(
            (meta.window_lo, meta.window_hi),
            (last.window_lo, last.window_hi)
        );
        assert_eq!(model_io::to_text(&tree), last.tree_text);
        assert_eq!(genstore::list_generations(&dir).len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stream_phases_appear_in_traces() {
        let data = generate(&GenConfig::paper(600, 39));
        let cfg = cadence_cfg(quest_sketch(&data.schema));
        let par = ParConfig {
            trace: Some(mpsim::TraceConfig::default()),
            ..ParConfig::new(2)
        };
        let out = run_stream(&data, &par, &cfg, None);
        let trace = out.stats.ranks[0].trace.as_ref().expect("tracing enabled");
        for phase in ["ingest", "reeval", "swap"] {
            assert!(
                trace.spans.iter().any(|s| s.name == phase),
                "missing {phase} span"
            );
        }
    }
}
