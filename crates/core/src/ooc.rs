//! Out-of-core ScalParC: per-level induction whose attribute lists live on
//! disk, streamed through chunk-sized buffers.
//!
//! Same four phases and same splitting decisions as [`crate::induce`] (the
//! equivalence tests assert byte-identical trees), but each rank's
//! attribute-list segments are [`OocList`] files in a per-rank
//! [`OocAttrStore`], and every per-record pass — the FindSplitII gini
//! scans, the PerformSplitI update generation, the PerformSplitII
//! enquiry/routing — reads at most `chunk` records into memory at a time.
//! Per-rank resident memory is O(chunk) for the list state, so N ≫ RAM
//! works: only the ⌈N/p⌉-record presort of one attribute at a time is
//! in-memory (the paper's own O(N/p) bound; a fully external presort is
//! orthogonal to the splitting phase under study).
//!
//! Two things need care that the in-core path gets for free:
//!
//! * **Collective alignment.** Chunked streaming means ranks with longer
//!   segments issue more node-table collectives. Every streamed collective
//!   loop therefore agrees on a global round count first
//!   (`allreduce`-max of the local chunk counts) and ranks that run out of
//!   records issue empty rounds, keeping all ranks in lockstep.
//! * **Split-phase counts without re-reading.** FindSplitI's per-(work,
//!   attribute) class counts and boundary values are maintained
//!   incrementally as segments are written ([`SegMeta`]), so the counting
//!   phase does zero I/O; only FindSplitII and the two routing passes
//!   stream the lists.
//!
//! Disk traffic is charged to the virtual clock under its own `ooc_io`
//! observability phase using the same bytes→ns model as checkpoint I/O, so
//! traces and cost ledgers separate "thinking" from "spilling".

use std::path::PathBuf;

use dhash::DistTable;
use diskio::ooc_store::{OocAttrStore, OocList};
use dtree::data::{AttrKind, Column, Dataset, Schema};
use dtree::gini::{ContinuousScan, CountMatrix};
use dtree::list::{CatEntry, ContEntry, PACKED_ENTRY_BYTES};
use dtree::split::{categorical_candidate, SplitOptions};
use dtree::tree::{BestSplit, DecisionTree, Node, SplitTest};
use mpsim::Comm;

use crate::checkpoint::io_charge_ns;
use crate::config::{Algorithm, InduceConfig};
use crate::dist::ATTR_MEM;
use crate::induce::{LevelInfo, ParStats};

/// Memory-tracker category for the out-of-core chunk buffers.
pub const OOC_BUF_MEM: &str = "ooc-chunk-buffers";

/// Options of an out-of-core run.
#[derive(Clone, Debug)]
pub struct OocOptions {
    /// Records per streamed chunk (also the node-table batch per round).
    pub chunk: usize,
    /// Scratch root; each rank creates its own subdirectory.
    pub dir: PathBuf,
}

impl OocOptions {
    /// Options with the given chunk size, scratch under the system temp dir.
    pub fn with_chunk(chunk: usize) -> Self {
        OocOptions {
            chunk,
            dir: std::env::temp_dir().join("scalparc-par-ooc"),
        }
    }
}

/// One disk-resident segment plus the running local counts that
/// FindSplitI would otherwise re-read the whole list to compute:
/// continuous segments carry the local class histogram and the last
/// (largest) value; categorical segments carry the flat
/// `cardinality × classes` count matrix. Both are maintained on append.
struct SegMeta {
    list: OocList,
    counts: Vec<u64>,
    last: Option<f32>,
}

impl SegMeta {
    fn empty_cont(store: &mut OocAttrStore, classes: usize) -> Self {
        SegMeta {
            list: OocList::Continuous(store.create_cont().expect("create list")),
            counts: vec![0; classes],
            last: None,
        }
    }

    fn empty_cat(store: &mut OocAttrStore, cardinality: usize, classes: usize) -> Self {
        SegMeta {
            list: OocList::Categorical(store.create_cat().expect("create list")),
            counts: vec![0; cardinality * classes],
            last: None,
        }
    }

    fn push_cont(&mut self, e: ContEntry) {
        self.counts[e.class as usize] += 1;
        self.last = Some(e.value);
        let OocList::Continuous(v) = &mut self.list else {
            unreachable!("continuous append to categorical segment")
        };
        v.push(&e).expect("spill write");
    }

    fn push_cat(&mut self, e: CatEntry, classes: usize) {
        self.counts[e.value as usize * classes + e.class as usize] += 1;
        let OocList::Categorical(v) = &mut self.list else {
            unreachable!("categorical append to continuous segment")
        };
        v.push(&e).expect("spill write");
    }
}

/// One active node at the current level (out-of-core analogue of
/// [`crate::phases::Work`]).
struct OocWork {
    node_id: u32,
    depth: u32,
    /// Global class histogram.
    hist: Vec<u64>,
    /// This rank's disk-resident segment of each attribute list.
    segs: Vec<SegMeta>,
}

/// Reused chunk buffers — everything here is O(chunk) or O(level shape).
struct OocScratch {
    cont_buf: Vec<ContEntry>,
    cat_buf: Vec<CatEntry>,
    /// FindSplitI prefix payload (flat hists + boundary values).
    hists: Vec<u64>,
    lasts: Vec<Option<f32>>,
    prefix_hists: Vec<u64>,
    prefix_lasts: Vec<Option<f32>>,
    cat: Vec<u64>,
    cat_global: Vec<u64>,
    cont_scan: ContinuousScan,
    cat_matrix: CountMatrix,
    /// PerformSplitI update batch (flushed every `chunk` records).
    upd_buf: Vec<(u64, u8)>,
    child_flat: Vec<u64>,
    child_global: Vec<u64>,
    /// PerformSplitII enquiry batch: keys, per-entry (work, attr) pair id,
    /// and the verdicts.
    keys: Vec<u64>,
    pids: Vec<u32>,
    verdicts: Vec<Option<u8>>,
    /// Entries buffered alongside `keys` (one of the two, by pass type).
    ent_cont: Vec<ContEntry>,
    ent_cat: Vec<CatEntry>,
}

impl OocScratch {
    fn new() -> Self {
        OocScratch {
            cont_buf: Vec::new(),
            cat_buf: Vec::new(),
            hists: Vec::new(),
            lasts: Vec::new(),
            prefix_hists: Vec::new(),
            prefix_lasts: Vec::new(),
            cat: Vec::new(),
            cat_global: Vec::new(),
            cont_scan: ContinuousScan::fresh(Vec::new()),
            cat_matrix: CountMatrix::new(0, 0),
            upd_buf: Vec::new(),
            child_flat: Vec::new(),
            child_global: Vec::new(),
            keys: Vec::new(),
            pids: Vec::new(),
            verdicts: Vec::new(),
            ent_cont: Vec::new(),
            ent_cat: Vec::new(),
        }
    }

    /// Worst-case bytes of the chunk buffers (for the memory ledger).
    fn budget_bytes(chunk: usize) -> u64 {
        // cont/cat read buffers + update batch + keys + pair ids +
        // verdicts + the buffered entries of one enquiry batch.
        (chunk
            * (2 * PACKED_ENTRY_BYTES
                + std::mem::size_of::<(u64, u8)>()
                + 8
                + 4
                + 2
                + PACKED_ENTRY_BYTES)) as u64
    }
}

/// The prefix-scan payload (same wire shape as the in-core FindSplitI).
struct ScanPayload {
    hists: Vec<u64>,
    lasts: Vec<Option<f32>>,
}

/// Run out-of-core ScalParC induction on an already-distributed training
/// set. Collective; ScalParC algorithm only (the replicated-SPRINT
/// baseline is in-core by construction), no checkpointing.
///
/// Induces the **identical tree** to [`crate::induce::induce_on_comm`]
/// at the same processor count: the presort, candidate evaluation order,
/// and routing order are all preserved; only residency and I/O differ.
pub fn induce_on_comm_ooc(
    comm: &mut Comm,
    local: Dataset,
    rid_offset: u32,
    total_n: u64,
    cfg: &InduceConfig,
    opts: &OocOptions,
) -> (DecisionTree, ParStats) {
    assert_eq!(
        cfg.algorithm,
        Algorithm::ScalParc,
        "out-of-core induction supports the ScalParC formulation only"
    );
    assert!(opts.chunk > 0, "chunk must be positive");
    let schema = local.schema.clone();
    let classes = schema.num_classes as usize;

    let rank_dir = opts.dir.join(format!("rank{:04}", comm.rank()));
    let mut store = OocAttrStore::new(&rank_dir).expect("create ooc scratch dir");
    comm.tracker()
        .set(OOC_BUF_MEM, OocScratch::budget_bytes(opts.chunk));

    comm.phase_begin("setup", 0);
    let hist_bytes = classes as u64 * 8;
    let root_hist = comm.allreduce_sized(local.class_hist(), hist_bytes, |a, b| {
        for (x, y) in a.iter_mut().zip(b) {
            *x += *y;
        }
    });
    debug_assert_eq!(root_hist.iter().sum::<u64>(), total_n);
    let mut table = DistTable::<u8>::new(comm, total_n.max(1));
    comm.phase_end(); // setup

    let mut nodes = vec![Node::leaf(0, root_hist.clone())];
    let mut level: Vec<OocWork> = Vec::new();
    if total_n > 0 && !cfg.stop.pre_split_leaf(&root_hist, 0) {
        // Presort, one attribute at a time: build the entries of attribute
        // `a` from the local fragment, sample-sort (continuous) and spill,
        // then drop the in-memory copy before touching the next attribute —
        // resident presort memory is one attribute's ⌈N/p⌉ segment, not the
        // whole fragment's lists.
        comm.phase_begin("presort", 0);
        let Dataset {
            columns, labels, ..
        } = local;
        let mut segs: Vec<SegMeta> = Vec::with_capacity(schema.num_attrs());
        for (col, def) in columns.into_iter().zip(&schema.attrs) {
            match (col, def.kind) {
                (Column::Continuous(vals), AttrKind::Continuous) => {
                    let entries: Vec<ContEntry> = vals
                        .iter()
                        .enumerate()
                        .map(|(i, &value)| ContEntry {
                            value,
                            rid: rid_offset + i as u32,
                            class: labels[i] as u16,
                        })
                        .collect();
                    let sorted = sortp::sample_sort(comm, entries, |a, b| {
                        let (av, bv, ar, br) = (a.value, b.value, a.rid, b.rid);
                        av.total_cmp(&bv).then(ar.cmp(&br))
                    });
                    comm.tracker()
                        .pulse(ATTR_MEM, (sorted.len() * PACKED_ENTRY_BYTES) as u64);
                    let mut seg = SegMeta::empty_cont(&mut store, classes);
                    for e in sorted {
                        seg.push_cont(e);
                    }
                    segs.push(seg);
                }
                (Column::Categorical(vals), AttrKind::Categorical { cardinality }) => {
                    comm.tracker()
                        .pulse(ATTR_MEM, (vals.len() * PACKED_ENTRY_BYTES) as u64);
                    let mut seg = SegMeta::empty_cat(&mut store, cardinality as usize, classes);
                    for (i, &value) in vals.iter().enumerate() {
                        seg.push_cat(
                            CatEntry {
                                value,
                                rid: rid_offset + i as u32,
                                class: labels[i] as u16,
                            },
                            classes,
                        );
                    }
                    segs.push(seg);
                }
                _ => unreachable!("dataset validated shape"),
            }
        }
        comm.phase_end(); // presort
        level.push(OocWork {
            node_id: 0,
            depth: 0,
            hist: root_hist,
            segs,
        });
    } else {
        drop(local);
    }

    let mut stats = ParStats::default();
    let mut scratch = OocScratch::new();
    while !level.is_empty() {
        let lvl = stats.levels;
        comm.mark_level(lvl);
        stats.levels += 1;
        stats.max_active_nodes = stats.max_active_nodes.max(level.len());
        let mut info = LevelInfo {
            active_nodes: level.len(),
            splits: 0,
            records: level.iter().map(|w| w.hist.iter().sum::<u64>()).sum(),
        };
        // The attribute lists are on disk; the resident list state is the
        // per-segment count metadata only.
        let meta_bytes: u64 = level
            .iter()
            .flat_map(|w| &w.segs)
            .map(|s| (s.counts.len() * 8 + 8) as u64)
            .sum();
        comm.tracker().set(ATTR_MEM, meta_bytes);
        let io0 = store.io_bytes();

        let candidates = ooc_find_split(
            comm,
            &mut level,
            &schema,
            cfg.split,
            &mut scratch,
            opts.chunk,
            lvl,
        );
        let decisions: Vec<Option<BestSplit>> = level
            .iter()
            .zip(&candidates)
            .map(|(w, c)| match c {
                Some(b)
                    if !cfg
                        .stop
                        .insufficient_gain(cfg.split.criterion.impurity(&w.hist), b.gini) =>
                {
                    Some(*b)
                }
                _ => None,
            })
            .collect();
        info.splits = decisions.iter().filter(|d| d.is_some()).count();

        let meta: Vec<(u32, u32, u8)> = level
            .iter()
            .map(|w| (w.node_id, w.depth, nodes[w.node_id as usize].majority))
            .collect();
        let outcomes = ooc_perform_split(
            comm,
            level,
            &decisions,
            &mut table,
            &schema,
            &mut store,
            &mut scratch,
            opts.chunk,
            lvl,
        );

        let mut next: Vec<OocWork> = Vec::new();
        for ((node_id, depth, parent_majority), outcome) in meta.into_iter().zip(outcomes) {
            let Some(o) = outcome else { continue };
            let mut children = Vec::with_capacity(o.child_hists.len());
            for (hist, segs) in o.child_hists.into_iter().zip(o.child_segs) {
                let id = nodes.len() as u32;
                let n: u64 = hist.iter().sum();
                let mut child = Node::leaf(depth + 1, hist.clone());
                if n == 0 {
                    child.majority = parent_majority;
                }
                nodes.push(child);
                children.push(id);
                if n > 0 && !cfg.stop.pre_split_leaf(&hist, depth + 1) {
                    next.push(OocWork {
                        node_id: id,
                        depth: depth + 1,
                        hist,
                        segs,
                    });
                } else {
                    for s in segs {
                        s.list.remove().expect("remove leaf lists");
                    }
                }
            }
            let parent = &mut nodes[node_id as usize];
            parent.test = Some(o.test);
            parent.children = children;
        }

        // Charge this level's disk traffic to the virtual clock under its
        // own phase, separating spill time from compute in every trace.
        let io_delta = store.io_bytes() - io0;
        comm.phase_begin("ooc_io", lvl);
        comm.charge_compute(io_charge_ns(io_delta));
        comm.phase_end(); // ooc_io

        stats.trace.push(info);
        level = next;
    }

    comm.tracker().set(ATTR_MEM, 0);
    comm.tracker().set(OOC_BUF_MEM, 0);
    table.release(comm.tracker());
    store.destroy().expect("remove ooc scratch dir");

    (DecisionTree { schema, nodes }, stats)
}

/// FindSplitI + FindSplitII over disk-resident segments. The counting phase
/// reads nothing (the per-segment metadata is maintained on append); the
/// scan phase streams each continuous segment once, chunk by chunk.
#[allow(clippy::too_many_arguments)]
fn ooc_find_split(
    comm: &mut Comm,
    works: &mut [OocWork],
    schema: &Schema,
    opts: SplitOptions,
    scratch: &mut OocScratch,
    chunk: usize,
    level: u32,
) -> Vec<Option<BestSplit>> {
    let classes = schema.num_classes as usize;
    let cont_attrs = schema.continuous_attrs();
    let cat_attrs = schema.categorical_attrs();

    comm.phase_begin("find_split_i", level);
    let n_items = works.len() * cont_attrs.len();
    scratch.hists.clear();
    scratch.lasts.clear();
    for w in works.iter() {
        for &a in &cont_attrs {
            scratch.hists.extend_from_slice(&w.segs[a].counts);
            scratch.lasts.push(w.segs[a].last);
        }
    }
    let payload = ScanPayload {
        hists: std::mem::take(&mut scratch.hists),
        lasts: std::mem::take(&mut scratch.lasts),
    };
    let scan_bytes = (n_items * (classes * 8 + 8)) as u64;
    scratch.prefix_hists.clear();
    scratch.prefix_hists.resize(n_items * classes, 0);
    scratch.prefix_lasts.clear();
    scratch.prefix_lasts.resize(n_items, None);
    {
        let prefix_hists = &mut scratch.prefix_hists;
        let prefix_lasts = &mut scratch.prefix_lasts;
        comm.scan_exclusive_with(&payload, scan_bytes, |prev: &ScanPayload| {
            for (x, y) in prefix_hists.iter_mut().zip(&prev.hists) {
                *x += *y;
            }
            for (x, y) in prefix_lasts.iter_mut().zip(&prev.lasts) {
                if y.is_some() {
                    *x = *y;
                }
            }
        });
    }
    scratch.hists = payload.hists;
    scratch.lasts = payload.lasts;

    scratch.cat.clear();
    for w in works.iter() {
        for &a in &cat_attrs {
            scratch.cat.extend_from_slice(&w.segs[a].counts);
        }
    }
    let flat_bytes = (scratch.cat.len() * 8) as u64;
    scratch.cat_global.clear();
    scratch.cat_global.resize(scratch.cat.len(), 0);
    {
        let global = &mut scratch.cat_global;
        comm.allreduce_with(&scratch.cat, flat_bytes, |_, other: &Vec<u64>| {
            for (x, y) in global.iter_mut().zip(other) {
                *x += *y;
            }
        });
    }
    comm.phase_end(); // find_split_i

    comm.phase_begin("find_split_ii", level);
    let mut cands: Vec<Option<BestSplit>> = Vec::with_capacity(works.len());
    let mut pi = 0usize;
    let mut off = 0usize;
    scratch.cont_scan.set_criterion(opts.criterion);
    for w in works.iter_mut() {
        let mut best: Option<BestSplit> = None;
        for &a in &cont_attrs {
            let below = &scratch.prefix_hists[pi * classes..(pi + 1) * classes];
            let last = scratch.prefix_lasts[pi];
            pi += 1;
            scratch.cont_scan.reset(&w.hist, below, last);
            let OocList::Continuous(v) = &mut w.segs[a].list else {
                unreachable!("schema kind")
            };
            let mut chunks = v.chunks(chunk).expect("read");
            while chunks.next_into(&mut scratch.cont_buf).expect("read") > 0 {
                scratch.cont_scan.scan_packed(&scratch.cont_buf);
            }
            best = BestSplit::better(
                best,
                scratch.cont_scan.best().map(|c| BestSplit {
                    gini: c.gini,
                    test: SplitTest::Continuous {
                        attr: a,
                        threshold: c.threshold,
                    },
                }),
            );
        }
        for &a in &cat_attrs {
            let AttrKind::Categorical { cardinality } = schema.attrs[a].kind else {
                unreachable!()
            };
            let len = cardinality as usize * classes;
            scratch.cat_matrix.assign_from_slice(
                cardinality as usize,
                classes,
                &scratch.cat_global[off..off + len],
            );
            off += len;
            best = BestSplit::better(best, categorical_candidate(a, &scratch.cat_matrix, opts));
        }
        cands.push(best);
    }
    let cand_bytes = (cands.len() * std::mem::size_of::<Option<BestSplit>>()) as u64;
    let best = comm.allreduce_sized(cands, cand_bytes, |a, b| {
        for (x, y) in a.iter_mut().zip(b) {
            *x = BestSplit::better(*x, *y);
        }
    });
    comm.phase_end(); // find_split_ii
    best
}

/// Per-work split outcome of the out-of-core PerformSplit.
struct OocOutcome {
    test: SplitTest,
    child_hists: Vec<Vec<u64>>,
    /// `[child][attr]` disk segments of the next level.
    child_segs: Vec<Vec<SegMeta>>,
}

fn route(test: &SplitTest, cont: Option<f32>, cat: Option<u32>) -> usize {
    match *test {
        SplitTest::Continuous { threshold, .. } => {
            usize::from(cont.expect("continuous test") >= threshold)
        }
        SplitTest::Categorical { .. } => cat.expect("categorical test") as usize,
        SplitTest::CategoricalSubset { left_mask, .. } => {
            usize::from((left_mask >> cat.expect("categorical test")) & 1 == 0)
        }
    }
}

/// PerformSplitI + PerformSplitII, streaming. Consumes the level's works
/// (their list files are deleted as they are fully routed).
#[allow(clippy::too_many_arguments)]
fn ooc_perform_split(
    comm: &mut Comm,
    works: Vec<OocWork>,
    decisions: &[Option<BestSplit>],
    table: &mut DistTable<u8>,
    schema: &Schema,
    store: &mut OocAttrStore,
    scratch: &mut OocScratch,
    chunk: usize,
    level: u32,
) -> Vec<Option<OocOutcome>> {
    assert_eq!(works.len(), decisions.len());
    let classes = schema.num_classes as usize;
    let mut works = works;

    comm.phase_begin("perform_split_i", level);

    // Round agreement: every rank flushes its update batch exactly
    // ⌈local updates / chunk⌉ times; the global round count is the max.
    let upd_total: usize = works
        .iter()
        .zip(decisions)
        .filter_map(|(w, d)| d.map(|s| w.segs[s.test.attr()].list.len()))
        .sum();
    let rounds_mine = upd_total.div_ceil(chunk);
    let rounds = comm.allreduce(rounds_mine as u64, |a, b| *a = (*a).max(*b));

    scratch.upd_buf.clear();
    scratch.child_flat.clear();
    let mut done_rounds = 0u64;
    for (w, dec) in works.iter_mut().zip(decisions) {
        let Some(split) = dec else { continue };
        let arity = split.test.arity(schema);
        let base = scratch.child_flat.len();
        scratch.child_flat.resize(base + arity * classes, 0);
        match &mut w.segs[split.test.attr()].list {
            OocList::Continuous(v) => {
                let mut chunks = v.chunks(chunk).expect("read");
                while chunks.next_into(&mut scratch.cont_buf).expect("read") > 0 {
                    for &e in &scratch.cont_buf {
                        let child = route(&split.test, Some(e.value), None);
                        scratch.upd_buf.push((e.rid as u64, child as u8));
                        scratch.child_flat[base + child * classes + e.class as usize] += 1;
                        if scratch.upd_buf.len() == chunk {
                            table.update(comm, &scratch.upd_buf);
                            scratch.upd_buf.clear();
                            done_rounds += 1;
                        }
                    }
                }
            }
            OocList::Categorical(v) => {
                let mut chunks = v.chunks(chunk).expect("read");
                while chunks.next_into(&mut scratch.cat_buf).expect("read") > 0 {
                    for &e in &scratch.cat_buf {
                        let child = route(&split.test, None, Some(e.value));
                        scratch.upd_buf.push((e.rid as u64, child as u8));
                        scratch.child_flat[base + child * classes + e.class as usize] += 1;
                        if scratch.upd_buf.len() == chunk {
                            table.update(comm, &scratch.upd_buf);
                            scratch.upd_buf.clear();
                            done_rounds += 1;
                        }
                    }
                }
            }
        }
    }
    if !scratch.upd_buf.is_empty() {
        table.update(comm, &scratch.upd_buf);
        scratch.upd_buf.clear();
        done_rounds += 1;
    }
    while done_rounds < rounds {
        table.update(comm, &[]);
        done_rounds += 1;
    }

    // Globalize the child histograms.
    let hist_bytes = (scratch.child_flat.len() * 8) as u64;
    scratch.child_global.clear();
    scratch.child_global.resize(scratch.child_flat.len(), 0);
    {
        let global = &mut scratch.child_global;
        comm.allreduce_with(&scratch.child_flat, hist_bytes, |_, other: &Vec<u64>| {
            for (x, y) in global.iter_mut().zip(other) {
                *x += *y;
            }
        });
    }

    // Outcome skeletons with empty child segments of the right kinds.
    let mut outcomes: Vec<Option<OocOutcome>> = Vec::with_capacity(works.len());
    let mut gi = 0usize;
    for dec in decisions {
        outcomes.push(dec.map(|split| {
            let arity = split.test.arity(schema);
            let mut child_hists = Vec::with_capacity(arity);
            for _ in 0..arity {
                child_hists.push(scratch.child_global[gi..gi + classes].to_vec());
                gi += classes;
            }
            let child_segs = (0..arity)
                .map(|_| {
                    schema
                        .attrs
                        .iter()
                        .map(|def| match def.kind {
                            AttrKind::Continuous => SegMeta::empty_cont(store, classes),
                            AttrKind::Categorical { cardinality } => {
                                SegMeta::empty_cat(store, cardinality as usize, classes)
                            }
                        })
                        .collect()
                })
                .collect();
            OocOutcome {
                test: split.test,
                child_hists,
                child_segs,
            }
        }));
    }
    comm.phase_end(); // perform_split_i

    comm.phase_begin("perform_split_ii", level);

    // Enquired (work, attr) pairs, continuous and categorical separately so
    // each pass buffers one entry type. Pair order is (attr-major, work
    // order) like the in-core batched enquiry; per-pair routing order is
    // stream order, which preserves the sorted order of continuous lists.
    let mut cont_pairs: Vec<(usize, usize)> = Vec::new(); // (work, attr)
    let mut cat_pairs: Vec<(usize, usize)> = Vec::new();
    for a in 0..schema.num_attrs() {
        for (wi, dec) in decisions.iter().enumerate() {
            if let Some(split) = dec {
                if split.test.attr() != a {
                    match schema.attrs[a].kind {
                        AttrKind::Continuous => cont_pairs.push((wi, a)),
                        AttrKind::Categorical { .. } => cat_pairs.push((wi, a)),
                    }
                }
            }
        }
    }

    // --- Continuous enquiry pass.
    let total: usize = cont_pairs
        .iter()
        .map(|&(wi, a)| works[wi].segs[a].list.len())
        .sum();
    let rounds = comm.allreduce(total.div_ceil(chunk) as u64, |a, b| *a = (*a).max(*b));
    let mut done = 0u64;
    scratch.keys.clear();
    scratch.pids.clear();
    scratch.ent_cont.clear();
    for (pid, &(wi, a)) in cont_pairs.iter().enumerate() {
        let OocList::Continuous(v) = &mut works[wi].segs[a].list else {
            unreachable!("schema kind")
        };
        let mut chunks = v.chunks(chunk).expect("read");
        loop {
            let n = chunks.next_into(&mut scratch.cont_buf).expect("read");
            if n == 0 {
                break;
            }
            // Indexed so the flush (which needs all of `scratch`) does not
            // overlap a borrow of the read buffer.
            for k in 0..n {
                let e = scratch.cont_buf[k];
                let rid = e.rid;
                scratch.keys.push(rid as u64);
                scratch.pids.push(pid as u32);
                scratch.ent_cont.push(e);
                if scratch.keys.len() == chunk {
                    flush_cont_enquiry(comm, table, scratch, &cont_pairs, &mut outcomes);
                    done += 1;
                }
            }
        }
    }
    if !scratch.keys.is_empty() {
        flush_cont_enquiry(comm, table, scratch, &cont_pairs, &mut outcomes);
        done += 1;
    }
    while done < rounds {
        table.inquire_into(comm, &[], &mut scratch.verdicts);
        done += 1;
    }

    // --- Categorical enquiry pass.
    let total: usize = cat_pairs
        .iter()
        .map(|&(wi, a)| works[wi].segs[a].list.len())
        .sum();
    let rounds = comm.allreduce(total.div_ceil(chunk) as u64, |a, b| *a = (*a).max(*b));
    let mut done = 0u64;
    scratch.keys.clear();
    scratch.pids.clear();
    scratch.ent_cat.clear();
    for (pid, &(wi, a)) in cat_pairs.iter().enumerate() {
        let OocList::Categorical(v) = &mut works[wi].segs[a].list else {
            unreachable!("schema kind")
        };
        let mut chunks = v.chunks(chunk).expect("read");
        loop {
            let n = chunks.next_into(&mut scratch.cat_buf).expect("read");
            if n == 0 {
                break;
            }
            for k in 0..n {
                let e = scratch.cat_buf[k];
                let rid = e.rid;
                scratch.keys.push(rid as u64);
                scratch.pids.push(pid as u32);
                scratch.ent_cat.push(e);
                if scratch.keys.len() == chunk {
                    flush_cat_enquiry(comm, table, scratch, &cat_pairs, &mut outcomes, classes);
                    done += 1;
                }
            }
        }
    }
    if !scratch.keys.is_empty() {
        flush_cat_enquiry(comm, table, scratch, &cat_pairs, &mut outcomes, classes);
        done += 1;
    }
    while done < rounds {
        table.inquire_into(comm, &[], &mut scratch.verdicts);
        done += 1;
    }

    // --- Direct routing of each splitting attribute's own list (local).
    for (wi, dec) in decisions.iter().enumerate() {
        let Some(split) = dec else { continue };
        let a = split.test.attr();
        let out = outcomes[wi].as_mut().unwrap();
        match &mut works[wi].segs[a].list {
            OocList::Continuous(v) => {
                let mut chunks = v.chunks(chunk).expect("read");
                while chunks.next_into(&mut scratch.cont_buf).expect("read") > 0 {
                    for &e in &scratch.cont_buf {
                        let c = route(&split.test, Some(e.value), None);
                        out.child_segs[c][a].push_cont(e);
                    }
                }
            }
            OocList::Categorical(v) => {
                let mut chunks = v.chunks(chunk).expect("read");
                while chunks.next_into(&mut scratch.cat_buf).expect("read") > 0 {
                    for &e in &scratch.cat_buf {
                        let c = route(&split.test, None, Some(e.value));
                        out.child_segs[c][a].push_cat(e, classes);
                    }
                }
            }
        }
    }

    // The parents' list files are fully routed (or belong to leaves).
    for w in works {
        for s in w.segs {
            s.list.remove().expect("remove parent lists");
        }
    }
    comm.phase_end(); // perform_split_ii
    outcomes
}

/// Flush one continuous enquiry batch: one collective node-table lookup,
/// then scatter the buffered entries to their child segments.
fn flush_cont_enquiry(
    comm: &mut Comm,
    table: &mut DistTable<u8>,
    scratch: &mut OocScratch,
    pairs: &[(usize, usize)],
    outcomes: &mut [Option<OocOutcome>],
) {
    table.inquire_into(comm, &scratch.keys, &mut scratch.verdicts);
    for ((&pid, &e), v) in scratch
        .pids
        .iter()
        .zip(&scratch.ent_cont)
        .zip(scratch.verdicts.drain(..))
    {
        let (wi, a) = pairs[pid as usize];
        let c = v.expect("record missing from node table") as usize;
        outcomes[wi].as_mut().unwrap().child_segs[c][a].push_cont(e);
    }
    scratch.keys.clear();
    scratch.pids.clear();
    scratch.ent_cont.clear();
}

/// Flush one categorical enquiry batch; see [`flush_cont_enquiry`].
fn flush_cat_enquiry(
    comm: &mut Comm,
    table: &mut DistTable<u8>,
    scratch: &mut OocScratch,
    pairs: &[(usize, usize)],
    outcomes: &mut [Option<OocOutcome>],
    classes: usize,
) {
    table.inquire_into(comm, &scratch.keys, &mut scratch.verdicts);
    for ((&pid, &e), v) in scratch
        .pids
        .iter()
        .zip(&scratch.ent_cat)
        .zip(scratch.verdicts.drain(..))
    {
        let (wi, a) = pairs[pid as usize];
        let c = v.expect("record missing from node table") as usize;
        outcomes[wi].as_mut().unwrap().child_segs[c][a].push_cat(e, classes);
    }
    scratch.keys.clear();
    scratch.pids.clear();
    scratch.ent_cat.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ParConfig;
    use datagen::{generate, ClassFunc, GenConfig, Profile};

    fn quest(n: usize, func: ClassFunc, seed: u64) -> Dataset {
        generate(&GenConfig {
            n,
            func,
            noise: 0.0,
            seed,
            profile: Profile::Paper7,
        })
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir()
            .join("scalparc-ooc-test")
            .join(format!("{name}-{}", std::process::id()))
    }

    fn ooc(chunk: usize, name: &str) -> OocOptions {
        OocOptions {
            chunk,
            dir: tmp(name),
        }
    }

    #[test]
    fn matches_in_core_across_p_and_chunk() {
        let data = quest(300, ClassFunc::F2, 31);
        for p in [1, 3, 4] {
            let want = crate::induce(&data, &ParConfig::new(p)).tree;
            for chunk in [1, 7, 64, 100_000] {
                let got = crate::induce_ooc(
                    &data,
                    &ParConfig::new(p),
                    &ooc(chunk, &format!("grid-p{p}-c{chunk}")),
                );
                assert_eq!(got.tree, want, "p={p} chunk={chunk}");
                got.tree.validate();
            }
        }
    }

    #[test]
    fn matches_in_core_with_categorical_splits() {
        // F3 splits on the categorical elevel attribute.
        let data = quest(300, ClassFunc::F3, 32);
        let want = crate::induce(&data, &ParConfig::new(3)).tree;
        let got = crate::induce_ooc(&data, &ParConfig::new(3), &ooc(16, "cat"));
        assert_eq!(got.tree, want);
    }

    #[test]
    fn matches_in_core_binary_subset_mode() {
        use dtree::split::CatSplitMode;
        let data = quest(250, ClassFunc::F3, 33);
        let mut cfg = ParConfig::new(2);
        cfg.induce.split.cat_mode = CatSplitMode::BinarySubset;
        let want = crate::induce(&data, &cfg).tree;
        let got = crate::induce_ooc(&data, &cfg, &ooc(32, "subset"));
        assert_eq!(got.tree, want);
        got.tree.validate();
    }

    #[test]
    fn level_trace_matches_in_core() {
        let data = quest(240, ClassFunc::F4, 34);
        let want = crate::induce(&data, &ParConfig::new(3));
        let got = crate::induce_ooc(&data, &ParConfig::new(3), &ooc(25, "trace"));
        assert_eq!(got.trace, want.trace);
        assert_eq!(got.levels, want.levels);
    }

    #[test]
    fn empty_and_tiny_datasets() {
        use dtree::data::{AttrDef, Column, Schema};
        let schema = Schema::new(vec![AttrDef::continuous("x")], 2);
        let empty = Dataset::new(schema, vec![Column::Continuous(vec![])], vec![]);
        let par = crate::induce_ooc(&empty, &ParConfig::new(2), &ooc(8, "empty"));
        assert_eq!(par.tree.nodes.len(), 1);
        assert_eq!(par.levels, 0);

        let tiny = quest(5, ClassFunc::F1, 35);
        let want = crate::induce(&tiny, &ParConfig::new(8)).tree;
        let got = crate::induce_ooc(&tiny, &ParConfig::new(8), &ooc(2, "tiny"));
        assert_eq!(got.tree, want);
    }

    #[test]
    fn scratch_dirs_are_removed() {
        let data = quest(120, ClassFunc::F1, 36);
        let opts = ooc(16, "cleanup");
        crate::induce_ooc(&data, &ParConfig::new(2), &opts);
        for r in 0..2 {
            assert!(
                !opts.dir.join(format!("rank{r:04}")).exists(),
                "rank {r} scratch not cleaned"
            );
        }
    }

    #[test]
    fn ooc_io_shows_up_as_phase_time() {
        let data = quest(400, ClassFunc::F2, 37);
        let cfg = ParConfig::new(2);
        let par = crate::induce_ooc(&data, &cfg, &ooc(50, "iophase"));
        let in_core = crate::induce(&data, &cfg);
        // The OOC run pays I/O time on top of the in-core time.
        assert!(
            par.stats.time_ns() > in_core.stats.time_ns(),
            "ooc {} vs in-core {}",
            par.stats.time_ns(),
            in_core.stats.time_ns()
        );
    }
}
