//! The ScalParC tree-induction driver (paper Figure 2):
//!
//! ```text
//! Presort
//! l = 0
//! do while (there are nonempty nodes at level l)
//!     FindSplitI; FindSplitII; PerformSplitI; PerformSplitII
//!     l = l + 1
//! end do
//! ```
//!
//! Every rank maintains a replica of the (small) tree metadata; the heavy
//! per-record state — attribute lists and the node table — stays
//! distributed. All control-flow decisions (stop rules, accepted splits)
//! are taken from *global* quantities, so the ranks stay in collective
//! lockstep and all induce the identical tree.

use dhash::DistTable;
use dtree::data::Dataset;
use dtree::tree::{BestSplit, DecisionTree, Node};
use mpsim::Comm;

use crate::checkpoint::{self, CheckpointCtx, Manifest};
use crate::config::{Algorithm, InduceConfig};
use crate::dist::{build_distributed_lists, lists_bytes, ATTR_MEM};
use crate::phases::{find_split, perform_split, LevelScratch, Work};

/// Per-level trace entry (global quantities — identical on every rank).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LevelInfo {
    /// Active (split-candidate) nodes entering the level.
    pub active_nodes: usize,
    /// Nodes actually split at the level.
    pub splits: usize,
    /// Training records covered by the active nodes.
    pub records: u64,
}

/// Rank-level counters of one induction run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ParStats {
    /// Levels processed (root level counts as 1).
    pub levels: u32,
    /// Largest number of simultaneously active nodes.
    pub max_active_nodes: usize,
    /// One entry per processed level, in order.
    pub trace: Vec<LevelInfo>,
}

/// Run ScalParC induction on an already-distributed training set.
///
/// Collective: every rank passes its horizontal fragment (`local`, whose
/// record 0 has global id `rid_offset`) and the global record count
/// `total_n`. Returns the (identical-on-every-rank) tree and counters.
pub fn induce_on_comm(
    comm: &mut Comm,
    local: Dataset,
    rid_offset: u32,
    total_n: u64,
    cfg: &InduceConfig,
) -> (DecisionTree, ParStats) {
    induce_on_comm_ckpt(comm, local, rid_offset, total_n, cfg, None)
}

/// [`induce_on_comm`] with optional per-level checkpointing.
///
/// When `ckpt` is `Some`, the state *entering* every level is snapshotted
/// (per-rank file, barrier, rank-0 manifest — see [`crate::checkpoint`])
/// before the level's phases run, and a run finding a valid manifest in
/// the directory resumes from it, skipping setup and presort. Induction is
/// deterministic, so a resumed run produces the tree a fault-free run
/// would have. With `ckpt == None` the collective sequence is exactly the
/// non-checkpointed one (no extra cost is charged).
pub fn induce_on_comm_ckpt(
    comm: &mut Comm,
    local: Dataset,
    rid_offset: u32,
    total_n: u64,
    cfg: &InduceConfig,
    ckpt: Option<&CheckpointCtx>,
) -> (DecisionTree, ParStats) {
    let schema = local.schema.clone();

    // Resume decision. Rank 0 alone scans the checkpoint directory —
    // walking generations newest→oldest past any corrupt one to the newest
    // fully intact level (see [`checkpoint::scan_restore`]) — and
    // broadcasts the verdict so every rank takes the same branch even if
    // the filesystem view were to differ between them. A checkpoint from a
    // different rank count is *usable* (restore re-blocks it); only a
    // different record count marks a foreign run and is ignored.
    let resume: Option<(u32, u32)> = match ckpt {
        Some(ctx) => {
            let mine = if comm.rank() == 0 {
                Some(match checkpoint::scan_restore(&ctx.dir, total_n) {
                    checkpoint::RestoreVerdict::Usable { manifest, .. } => {
                        Some((manifest.level, manifest.procs))
                    }
                    _ => None,
                })
            } else {
                None
            };
            comm.bcast(0, mine)
        }
        None => None,
    };

    // Restore attempt: every rank loads its shard — its own level file at
    // matching geometry, or a re-blocked shard of the whole generation
    // when the checkpoint was written at a different rank count — and an
    // allreduce confirms they *all* succeeded; one failure falls the whole
    // run back to a fresh start, collectively.
    let mut restored: Option<checkpoint::LevelState> = None;
    if let (Some(ctx), Some((rl, from_procs))) = (ckpt, resume) {
        comm.phase_begin("restore", rl);
        let loaded = if from_procs as usize == comm.size() {
            checkpoint::load_state(&ctx.dir, rl, comm.rank()).ok()
        } else {
            checkpoint::load_rescaled(
                &ctx.dir,
                rl,
                comm.rank(),
                comm.size(),
                from_procs as usize,
                total_n,
            )
            .ok()
        };
        let all_ok = comm.allreduce(loaded.is_some() as u64, |a, b| *a = (*a).min(*b)) == 1;
        if all_ok {
            let (st, bytes) = loaded.unwrap();
            comm.charge_compute(checkpoint::io_charge_ns(bytes));
            restored = Some(st);
        }
        comm.phase_end(); // restore
    }

    let (mut nodes, mut level, mut stats, mut table) = if let Some(st) = restored {
        let table = match cfg.algorithm {
            Algorithm::ScalParc => {
                // `DistTable::new` is not collective; recreate the
                // geometry, then drop the restored slots back in.
                let mut t = DistTable::<u8>::new(comm, total_n.max(1));
                if let Some(slots) = st.table_slots {
                    t.set_local_slots(slots);
                }
                Some(t)
            }
            Algorithm::SprintReplicated => None,
        };
        drop(local); // the checkpointed lists supersede the raw fragment
        (st.nodes, st.works, st.stats, table)
    } else {
        comm.phase_begin("setup", 0);
        let hist_bytes = schema.num_classes as u64 * 8;
        let root_hist = comm.allreduce_sized(local.class_hist(), hist_bytes, |a, b| {
            for (x, y) in a.iter_mut().zip(b) {
                *x += *y;
            }
        });
        debug_assert_eq!(root_hist.iter().sum::<u64>(), total_n);

        let table = match cfg.algorithm {
            Algorithm::ScalParc => Some(DistTable::<u8>::new(comm, total_n.max(1))),
            Algorithm::SprintReplicated => None,
        };
        comm.phase_end(); // setup

        let nodes = vec![Node::leaf(0, root_hist.clone())];
        let level: Vec<Work> = if total_n > 0 && !cfg.stop.pre_split_leaf(&root_hist, 0) {
            // Presort.
            comm.phase_begin("presort", 0);
            let lists = build_distributed_lists(comm, &local, rid_offset);
            drop(local);
            comm.phase_end(); // presort
            vec![Work {
                node_id: 0,
                depth: 0,
                hist: root_hist,
                lists,
            }]
        } else {
            Vec::new()
        };
        (nodes, level, ParStats::default(), table)
    };

    // Per-level working buffers, reused across levels (cleared, never
    // shrunk): after the widest level the per-level phases allocate only
    // the child lists that become the next level's state.
    let mut scratch = LevelScratch::new();
    let mut ckpt_seq = 0u64; // 1-based checkpoint commits this attempt
    while !level.is_empty() {
        let lvl = stats.levels; // 0-based level index for the span records
        if let Some(ctx) = ckpt {
            // Commit protocol: per-rank files, barrier (all files exist),
            // then the rank-0 manifest commits the generation. Checkpoint
            // I/O is charged to the virtual clock analytically.
            comm.phase_begin("checkpoint", lvl);
            ckpt_seq += 1;
            let bytes = checkpoint::save_state(
                &ctx.dir,
                lvl,
                comm.rank(),
                &nodes,
                &level,
                &stats,
                table.as_ref().map(|t| t.local_slots()),
            )
            .unwrap_or_else(|e| panic!("rank {}: {e}", comm.rank()));
            comm.charge_compute(checkpoint::io_charge_ns(bytes));
            // Scheduled storage faults damage the committed file *after*
            // the write succeeded — silent corruption nobody observes
            // until a later restore scan CRC-checks the generation. Free
            // at injection time (logged for the trace); paid at recovery.
            let hit = comm
                .fault_plan()
                .and_then(|p| p.storage_fault_at(comm.rank(), ckpt_seq))
                .copied();
            if let Some(f) = hit {
                checkpoint::apply_storage_fault(&ctx.dir, lvl, comm.rank(), f.kind);
                comm.record_fault(f.kind.label(), 0);
            }
            comm.barrier();
            if comm.rank() == 0 {
                checkpoint::write_manifest(
                    &ctx.dir,
                    Manifest {
                        level: lvl,
                        procs: comm.size() as u32,
                        total_n,
                    },
                )
                .unwrap_or_else(|e| panic!("rank 0: {e}"));
                comm.charge_compute(checkpoint::io_charge_ns(16));
                if let Some(keep) = ctx.keep {
                    // Host-side retention, outside the simulated machine:
                    // uncharged, so keep-K and keep-everything runs are
                    // cost-identical.
                    checkpoint::gc_generations(&ctx.dir, lvl, keep);
                }
            }
            comm.phase_end(); // checkpoint
        }
        // From here to the next checkpoint commit, a crash rolls back to
        // the manifest just written (or a fresh start at level 0).
        comm.mark_level(lvl);
        stats.levels += 1;
        stats.max_active_nodes = stats.max_active_nodes.max(level.len());
        let mut info = LevelInfo {
            active_nodes: level.len(),
            splits: 0,
            records: level.iter().map(|w| w.hist.iter().sum::<u64>()).sum(),
        };
        comm.tracker()
            .set(ATTR_MEM, lists_bytes(level.iter().flat_map(|w| &w.lists)));

        let candidates = find_split(comm, &level, &schema, cfg.split, &mut scratch, lvl);
        let decisions: Vec<Option<BestSplit>> = level
            .iter()
            .zip(&candidates)
            .map(|(w, c)| match c {
                Some(b)
                    if !cfg
                        .stop
                        .insufficient_gain(cfg.split.criterion.impurity(&w.hist), b.gini) =>
                {
                    Some(*b)
                }
                _ => None,
            })
            .collect();

        info.splits = decisions.iter().filter(|d| d.is_some()).count();
        let meta: Vec<(u32, u32, u8)> = level
            .iter()
            .map(|w| (w.node_id, w.depth, nodes[w.node_id as usize].majority))
            .collect();
        let outcomes = perform_split(
            comm,
            level,
            &decisions,
            table.as_mut(),
            cfg.blocked_updates,
            cfg.batched_enquiry,
            total_n,
            &schema,
            &mut scratch,
            lvl,
        );

        let mut next: Vec<Work> = Vec::new();
        for ((node_id, depth, parent_majority), outcome) in meta.into_iter().zip(outcomes) {
            let Some(o) = outcome else { continue };
            let mut children = Vec::with_capacity(o.child_hists.len());
            for (hist, lists) in o.child_hists.into_iter().zip(o.child_lists) {
                let id = nodes.len() as u32;
                let n: u64 = hist.iter().sum();
                let mut child = Node::leaf(depth + 1, hist.clone());
                if n == 0 {
                    child.majority = parent_majority;
                }
                nodes.push(child);
                children.push(id);
                if n > 0 && !cfg.stop.pre_split_leaf(&hist, depth + 1) {
                    next.push(Work {
                        node_id: id,
                        depth: depth + 1,
                        hist,
                        lists,
                    });
                }
            }
            let parent = &mut nodes[node_id as usize];
            parent.test = Some(o.test);
            parent.children = children;
        }
        stats.trace.push(info);
        level = next;
    }

    comm.tracker().set(ATTR_MEM, 0);
    if let Some(t) = table.take() {
        t.release(comm.tracker());
    }

    (DecisionTree { schema, nodes }, stats)
}
