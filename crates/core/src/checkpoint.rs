//! Per-tree-level checkpointing of the distributed induction state.
//!
//! ScalParC's level-synchronous structure gives a natural consistency
//! point: *entering* level `l`, the whole computation is described by the
//! replicated partial tree, each rank's active [`Work`] items (its slices
//! of the distributed attribute lists), the run counters, and each rank's
//! resident slots of the distributed node table. This module serializes
//! exactly that state — one file per rank per level, in the CRC-checked
//! section format of [`diskio::ckpt`] — plus a tiny rank-0 *manifest*
//! naming the newest complete level.
//!
//! The commit protocol makes the manifest the single source of truth:
//!
//! 1. every rank atomically writes `level_<l>_rank_<r>.bin`;
//! 2. a barrier — after it, *all* per-rank files of level `l` exist;
//! 3. rank 0 atomically rewrites `MANIFEST.bin` to name level `l`.
//!
//! A crash anywhere in that window leaves the manifest naming the previous
//! level, whose files are all on disk — the "last consistent level" is
//! always recoverable. Because induction is deterministic, re-running from
//! a restored level yields a final tree byte-identical to a fault-free run.
//!
//! Checkpoint I/O is charged to the *virtual* clock analytically
//! ([`io_charge_ns`]): deterministic and proportional to bytes, so faulted
//! runs replay to identical simulated costs.

use std::path::{Path, PathBuf};

use diskio::ckpt::{self, ByteReader, ByteWriter, CkptError};
use dtree::list::{AttrList, CatEntry, ContEntry};
use dtree::tree::{Node, SplitTest};

use crate::induce::{LevelInfo, ParStats};
use crate::phases::Work;

/// Section tags of a checkpoint file.
const SEC_META: u32 = 1;
const SEC_NODES: u32 = 2;
const SEC_WORKS: u32 = 3;
const SEC_STATS: u32 = 4;
const SEC_TABLE: u32 = 5;

/// Checkpointing context handed to the induction driver: where the
/// snapshots live.
#[derive(Clone, Debug)]
pub struct CheckpointCtx {
    /// Directory holding `level_<l>_rank_<r>.bin` files and `MANIFEST.bin`.
    pub dir: PathBuf,
}

impl CheckpointCtx {
    pub fn new(dir: impl Into<PathBuf>) -> CheckpointCtx {
        CheckpointCtx { dir: dir.into() }
    }
}

/// The rank-0 manifest: newest complete level plus the run geometry it
/// belongs to (a safety check against resuming into the wrong run).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Newest level whose per-rank files are all committed.
    pub level: u32,
    /// Rank count of the run.
    pub procs: u32,
    /// Global record count of the run.
    pub total_n: u64,
}

/// One rank's snapshot of the state *entering* a level.
#[derive(Clone, Debug, PartialEq)]
pub struct LevelState {
    /// The level this state enters.
    pub level: u32,
    /// The replicated partial tree.
    pub nodes: Vec<Node>,
    /// This rank's active work items (distributed attribute-list slices).
    pub works: Vec<Work>,
    /// Run counters accumulated over levels `0..level`.
    pub stats: ParStats,
    /// This rank's resident slots of the distributed node table
    /// (`None` for the replicated-SPRINT baseline, which has no table).
    pub table_slots: Option<Vec<Option<u8>>>,
}

/// Simulated cost of writing or reading `bytes` of checkpoint data:
/// 100 µs per file plus 0.5 ns/byte (a ~2 GB/s local disk). Analytic and
/// deterministic, like the communication cost model.
pub fn io_charge_ns(bytes: u64) -> u64 {
    100_000 + bytes / 2
}

/// Path of one rank's snapshot of one level.
pub fn state_file(dir: &Path, level: u32, rank: usize) -> PathBuf {
    dir.join(format!("level_{level}_rank_{rank}.bin"))
}

/// Path of the manifest.
pub fn manifest_file(dir: &Path) -> PathBuf {
    dir.join("MANIFEST.bin")
}

// ----- encoding -------------------------------------------------------------

fn encode_split(w: &mut ByteWriter, test: &Option<SplitTest>) {
    match test {
        None => w.u8(0),
        Some(SplitTest::Continuous { attr, threshold }) => {
            w.u8(1);
            w.u64(*attr as u64);
            w.f32_bits(*threshold);
        }
        Some(SplitTest::Categorical { attr }) => {
            w.u8(2);
            w.u64(*attr as u64);
        }
        Some(SplitTest::CategoricalSubset { attr, left_mask }) => {
            w.u8(3);
            w.u64(*attr as u64);
            w.u64(*left_mask);
        }
    }
}

fn decode_split(r: &mut ByteReader) -> Result<Option<SplitTest>, String> {
    Ok(match r.u8()? {
        0 => None,
        1 => Some(SplitTest::Continuous {
            attr: r.u64()? as usize,
            threshold: r.f32_bits()?,
        }),
        2 => Some(SplitTest::Categorical {
            attr: r.u64()? as usize,
        }),
        3 => Some(SplitTest::CategoricalSubset {
            attr: r.u64()? as usize,
            left_mask: r.u64()?,
        }),
        t => return Err(format!("unknown split-test tag {t}")),
    })
}

fn encode_hist(w: &mut ByteWriter, hist: &[u64]) {
    w.u64(hist.len() as u64);
    for &h in hist {
        w.u64(h);
    }
}

fn decode_hist(r: &mut ByteReader) -> Result<Vec<u64>, String> {
    let n = r.u64()? as usize;
    let mut hist = Vec::with_capacity(n);
    for _ in 0..n {
        hist.push(r.u64()?);
    }
    Ok(hist)
}

fn encode_nodes(nodes: &[Node]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u64(nodes.len() as u64);
    for n in nodes {
        w.u32(n.depth);
        encode_hist(&mut w, &n.hist);
        w.u8(n.majority);
        encode_split(&mut w, &n.test);
        w.u64(n.children.len() as u64);
        for &c in &n.children {
            w.u32(c);
        }
    }
    w.into_bytes()
}

fn decode_nodes(bytes: &[u8]) -> Result<Vec<Node>, String> {
    let mut r = ByteReader::new(bytes);
    let count = r.u64()? as usize;
    let mut nodes = Vec::with_capacity(count);
    for _ in 0..count {
        let depth = r.u32()?;
        let hist = decode_hist(&mut r)?;
        let majority = r.u8()?;
        let test = decode_split(&mut r)?;
        let nc = r.u64()? as usize;
        let mut children = Vec::with_capacity(nc);
        for _ in 0..nc {
            children.push(r.u32()?);
        }
        nodes.push(Node {
            depth,
            hist,
            majority,
            test,
            children,
        });
    }
    if !r.is_done() {
        return Err("trailing bytes in nodes section".into());
    }
    Ok(nodes)
}

fn encode_works(works: &[Work]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u64(works.len() as u64);
    for work in works {
        w.u32(work.node_id);
        w.u32(work.depth);
        encode_hist(&mut w, &work.hist);
        w.u64(work.lists.len() as u64);
        for list in &work.lists {
            match list {
                AttrList::Continuous(entries) => {
                    w.u8(0);
                    w.u64(entries.len() as u64);
                    for e in entries {
                        w.f32_bits(e.value);
                        w.u32(e.rid);
                        w.u8(e.class);
                    }
                }
                AttrList::Categorical(entries) => {
                    w.u8(1);
                    w.u64(entries.len() as u64);
                    for e in entries {
                        w.u32(e.value);
                        w.u32(e.rid);
                        w.u8(e.class);
                    }
                }
            }
        }
    }
    w.into_bytes()
}

fn decode_works(bytes: &[u8]) -> Result<Vec<Work>, String> {
    let mut r = ByteReader::new(bytes);
    let count = r.u64()? as usize;
    let mut works = Vec::with_capacity(count);
    for _ in 0..count {
        let node_id = r.u32()?;
        let depth = r.u32()?;
        let hist = decode_hist(&mut r)?;
        let nl = r.u64()? as usize;
        let mut lists = Vec::with_capacity(nl);
        for _ in 0..nl {
            let tag = r.u8()?;
            let ne = r.u64()? as usize;
            match tag {
                0 => {
                    let mut entries = Vec::with_capacity(ne);
                    for _ in 0..ne {
                        entries.push(ContEntry {
                            value: r.f32_bits()?,
                            rid: r.u32()?,
                            class: r.u8()?,
                        });
                    }
                    lists.push(AttrList::Continuous(entries));
                }
                1 => {
                    let mut entries = Vec::with_capacity(ne);
                    for _ in 0..ne {
                        entries.push(CatEntry {
                            value: r.u32()?,
                            rid: r.u32()?,
                            class: r.u8()?,
                        });
                    }
                    lists.push(AttrList::Categorical(entries));
                }
                t => return Err(format!("unknown attribute-list tag {t}")),
            }
        }
        works.push(Work {
            node_id,
            depth,
            hist,
            lists,
        });
    }
    if !r.is_done() {
        return Err("trailing bytes in works section".into());
    }
    Ok(works)
}

fn encode_stats(stats: &ParStats) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(stats.levels);
    w.u64(stats.max_active_nodes as u64);
    w.u64(stats.trace.len() as u64);
    for t in &stats.trace {
        w.u64(t.active_nodes as u64);
        w.u64(t.splits as u64);
        w.u64(t.records);
    }
    w.into_bytes()
}

fn decode_stats(bytes: &[u8]) -> Result<ParStats, String> {
    let mut r = ByteReader::new(bytes);
    let levels = r.u32()?;
    let max_active_nodes = r.u64()? as usize;
    let n = r.u64()? as usize;
    let mut trace = Vec::with_capacity(n);
    for _ in 0..n {
        trace.push(LevelInfo {
            active_nodes: r.u64()? as usize,
            splits: r.u64()? as usize,
            records: r.u64()?,
        });
    }
    if !r.is_done() {
        return Err("trailing bytes in stats section".into());
    }
    Ok(ParStats {
        levels,
        max_active_nodes,
        trace,
    })
}

fn encode_table(slots: Option<&[Option<u8>]>) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match slots {
        None => w.u8(0),
        Some(slots) => {
            w.u8(1);
            w.u64(slots.len() as u64);
            for s in slots {
                match s {
                    None => {
                        w.u8(0);
                        w.u8(0);
                    }
                    Some(v) => {
                        w.u8(1);
                        w.u8(*v);
                    }
                }
            }
        }
    }
    w.into_bytes()
}

fn decode_table(bytes: &[u8]) -> Result<Option<Vec<Option<u8>>>, String> {
    let mut r = ByteReader::new(bytes);
    let present = r.u8()?;
    let out = if present == 0 {
        None
    } else {
        let n = r.u64()? as usize;
        let mut slots = Vec::with_capacity(n);
        for _ in 0..n {
            let flag = r.u8()?;
            let val = r.u8()?;
            slots.push(if flag == 0 { None } else { Some(val) });
        }
        Some(slots)
    };
    if !r.is_done() {
        return Err("trailing bytes in table section".into());
    }
    Ok(out)
}

/// Encode one rank's level state into checkpoint sections (exposed so the
/// byte-identity property — encode→decode→encode yields identical bytes —
/// is directly testable).
pub fn encode_state(
    level: u32,
    rank: usize,
    nodes: &[Node],
    works: &[Work],
    stats: &ParStats,
    table_slots: Option<&[Option<u8>]>,
) -> Vec<(u32, Vec<u8>)> {
    let mut meta = ByteWriter::new();
    meta.u32(level);
    meta.u64(rank as u64);
    vec![
        (SEC_META, meta.into_bytes()),
        (SEC_NODES, encode_nodes(nodes)),
        (SEC_WORKS, encode_works(works)),
        (SEC_STATS, encode_stats(stats)),
        (SEC_TABLE, encode_table(table_slots)),
    ]
}

/// Decode sections produced by [`encode_state`].
pub fn decode_state(sections: &[(u32, Vec<u8>)]) -> Result<LevelState, String> {
    let find = |tag: u32| -> Result<&[u8], String> {
        sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, p)| p.as_slice())
            .ok_or_else(|| format!("missing section tag {tag}"))
    };
    let mut meta = ByteReader::new(find(SEC_META)?);
    let level = meta.u32()?;
    let _rank = meta.u64()?;
    Ok(LevelState {
        level,
        nodes: decode_nodes(find(SEC_NODES)?)?,
        works: decode_works(find(SEC_WORKS)?)?,
        stats: decode_stats(find(SEC_STATS)?)?,
        table_slots: decode_table(find(SEC_TABLE)?)?,
    })
}

/// Atomically write one rank's snapshot of the state entering `level`.
/// Returns the encoded payload size (the basis of the simulated I/O
/// charge).
#[allow(clippy::too_many_arguments)]
pub fn save_state(
    dir: &Path,
    level: u32,
    rank: usize,
    nodes: &[Node],
    works: &[Work],
    stats: &ParStats,
    table_slots: Option<&[Option<u8>]>,
) -> Result<u64, CkptError> {
    let sections = encode_state(level, rank, nodes, works, stats, table_slots);
    let bytes: u64 = sections.iter().map(|(_, p)| p.len() as u64).sum();
    let refs: Vec<(u32, &[u8])> = sections.iter().map(|(t, p)| (*t, p.as_slice())).collect();
    ckpt::write_sections(&state_file(dir, level, rank), &refs)?;
    Ok(bytes)
}

/// Load one rank's snapshot of `level`. Returns the state and the payload
/// size read (for the simulated I/O charge).
pub fn load_state(dir: &Path, level: u32, rank: usize) -> Result<(LevelState, u64), CkptError> {
    let path = state_file(dir, level, rank);
    let sections = ckpt::read_sections(&path)?;
    let bytes: u64 = sections.iter().map(|(_, p)| p.len() as u64).sum();
    let state = decode_state(&sections).map_err(|msg| CkptError {
        path: path.clone(),
        msg,
    })?;
    if state.level != level {
        return Err(CkptError {
            path,
            msg: format!("file claims level {}, expected {level}", state.level),
        });
    }
    Ok((state, bytes))
}

/// Atomically (re)write the manifest to name `level` as the newest
/// complete checkpoint.
pub fn write_manifest(dir: &Path, m: Manifest) -> Result<(), CkptError> {
    let mut w = ByteWriter::new();
    w.u32(m.level);
    w.u32(m.procs);
    w.u64(m.total_n);
    ckpt::write_sections(&manifest_file(dir), &[(SEC_META, &w.into_bytes())])
}

/// Read the manifest. `None` when absent or unreadable — both mean "no
/// complete checkpoint to resume from" (the atomic commit protocol makes a
/// torn manifest impossible; garbage means a foreign file).
pub fn read_manifest(dir: &Path) -> Option<Manifest> {
    let sections = ckpt::read_sections(&manifest_file(dir)).ok()?;
    let (tag, payload) = sections.first()?;
    if *tag != SEC_META {
        return None;
    }
    let mut r = ByteReader::new(payload);
    let level = r.u32().ok()?;
    let procs = r.u32().ok()?;
    let total_n = r.u64().ok()?;
    if !r.is_done() {
        return None;
    }
    Some(Manifest {
        level,
        procs,
        total_n,
    })
}

/// Remove the manifest so the next induction in `dir` starts fresh. Stale
/// level files are harmless (they are only read when the manifest names
/// them) and get overwritten in place.
pub fn clear_manifest(dir: &Path) {
    let _ = std::fs::remove_file(manifest_file(dir));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> LevelState {
        let mut root = Node::leaf(0, vec![3, 5]);
        root.test = Some(SplitTest::Continuous {
            attr: 1,
            threshold: 2.5,
        });
        root.children = vec![1, 2];
        let leaf = Node::leaf(1, vec![3, 0]);
        let mut cat = Node::leaf(1, vec![0, 5]);
        cat.test = Some(SplitTest::CategoricalSubset {
            attr: 0,
            left_mask: 0b101,
        });
        LevelState {
            level: 1,
            nodes: vec![root, leaf, cat],
            works: vec![Work {
                node_id: 2,
                depth: 1,
                hist: vec![0, 5],
                lists: vec![
                    AttrList::Continuous(vec![
                        ContEntry {
                            value: 1.5,
                            rid: 4,
                            class: 1,
                        },
                        ContEntry {
                            value: f32::MIN_POSITIVE,
                            rid: 9,
                            class: 0,
                        },
                    ]),
                    AttrList::Categorical(vec![CatEntry {
                        value: 2,
                        rid: 4,
                        class: 1,
                    }]),
                ],
            }],
            stats: ParStats {
                levels: 1,
                max_active_nodes: 1,
                trace: vec![LevelInfo {
                    active_nodes: 1,
                    splits: 1,
                    records: 8,
                }],
            },
            table_slots: Some(vec![None, Some(0), Some(1)]),
        }
    }

    #[test]
    fn encode_decode_encode_is_byte_identical() {
        let st = sample_state();
        let enc1 = encode_state(
            st.level,
            3,
            &st.nodes,
            &st.works,
            &st.stats,
            st.table_slots.as_deref(),
        );
        let back = decode_state(&enc1).unwrap();
        assert_eq!(back, st);
        let enc2 = encode_state(
            back.level,
            3,
            &back.nodes,
            &back.works,
            &back.stats,
            back.table_slots.as_deref(),
        );
        assert_eq!(enc1, enc2, "save→load→save must be byte-identical");
    }

    #[test]
    fn save_load_roundtrip_on_disk() {
        let dir = std::env::temp_dir().join(format!("scalparc-state-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let st = sample_state();
        let written = save_state(
            &dir,
            st.level,
            3,
            &st.nodes,
            &st.works,
            &st.stats,
            st.table_slots.as_deref(),
        )
        .unwrap();
        let (back, read) = load_state(&dir, st.level, 3).unwrap();
        assert_eq!(back, st);
        assert_eq!(written, read);
        // On-disk byte identity too: saving the loaded state reproduces
        // the file exactly.
        let f1 = std::fs::read(state_file(&dir, st.level, 3)).unwrap();
        save_state(
            &dir,
            back.level,
            3,
            &back.nodes,
            &back.works,
            &back.stats,
            back.table_slots.as_deref(),
        )
        .unwrap();
        assert_eq!(f1, std::fs::read(state_file(&dir, st.level, 3)).unwrap());
        // Wrong level is rejected.
        assert!(load_state(&dir, 7, 3).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_roundtrip_and_absence() {
        let dir = std::env::temp_dir().join(format!("scalparc-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(read_manifest(&dir), None, "no manifest yet");
        let m = Manifest {
            level: 4,
            procs: 8,
            total_n: 4000,
        };
        write_manifest(&dir, m).unwrap();
        assert_eq!(read_manifest(&dir), Some(m));
        // Garbage is treated as absent, not a crash.
        std::fs::write(manifest_file(&dir), b"not a checkpoint").unwrap();
        assert_eq!(read_manifest(&dir), None);
        write_manifest(&dir, m).unwrap();
        clear_manifest(&dir);
        assert_eq!(read_manifest(&dir), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn io_charge_is_monotone_and_deterministic() {
        assert_eq!(io_charge_ns(0), 100_000);
        assert_eq!(io_charge_ns(2_000_000), 100_000 + 1_000_000);
        assert!(io_charge_ns(10) < io_charge_ns(1 << 20));
    }
}
