//! Per-tree-level checkpointing of the distributed induction state.
//!
//! ScalParC's level-synchronous structure gives a natural consistency
//! point: *entering* level `l`, the whole computation is described by the
//! replicated partial tree, each rank's active [`Work`] items (its slices
//! of the distributed attribute lists), the run counters, and each rank's
//! resident slots of the distributed node table. This module serializes
//! exactly that state — one file per rank per level, in the CRC-checked
//! section format of [`diskio::ckpt`] — plus a tiny rank-0 *manifest*
//! naming the newest complete level.
//!
//! The commit protocol makes the manifest the single source of truth:
//!
//! 1. every rank atomically writes `level_<l>_rank_<r>.bin`;
//! 2. a barrier — after it, *all* per-rank files of level `l` exist;
//! 3. rank 0 atomically writes `MANIFEST_<l>.bin` to commit generation `l`.
//!
//! A crash anywhere in that window leaves the newest committed manifest
//! naming the previous level, whose files are all on disk — the "last
//! consistent level" is always recoverable. Because induction is
//! deterministic, re-running from a restored level yields a final tree
//! byte-identical to a fault-free run.
//!
//! # Generations and corruption tolerance
//!
//! Manifests are *generational*: each committed level keeps its own
//! `MANIFEST_<l>.bin` (subject to keep-last-K GC, see
//! [`CheckpointCtx::keep`]), so a snapshot silently corrupted *after* its
//! commit — bit rot, a torn flush, a lost file — costs one generation, not
//! the run. [`scan_restore`] walks generations newest→oldest, CRC-verifying
//! the manifest *and every rank file* of each, and reports the newest fully
//! intact generation as a typed [`RestoreVerdict`]; only when nothing
//! intact remains does the run fall back to a fresh start.
//!
//! # Rescale on restore
//!
//! A checkpoint written at `p` ranks restores onto any `p'`
//! ([`load_rescaled`]): attribute-list slices are concatenated in old rank
//! order — entries never migrate between ranks during splits, so this
//! reproduces the global per-node list order — and re-blocked into `p'`
//! contiguous shards; node-table slots are re-sharded to the new
//! `owner_of` mapping the same way. Split decisions are taken from global
//! reductions (block boundaries are handled by the prefix-carried
//! boundary values in FindSplitI), so the induced tree is independent of
//! the blocking and matches a fault-free `p'` run byte for byte.
//!
//! Checkpoint I/O is charged to the *virtual* clock analytically
//! ([`io_charge_ns`]): deterministic and proportional to bytes, so faulted
//! runs replay to identical simulated costs. Rescaled restores read the
//! whole snapshot on every rank, so their (higher) redistribution cost is
//! charged by the same rule.

use std::path::{Path, PathBuf};

use diskio::ckpt::{self, ByteReader, ByteWriter, CkptError};
use dtree::list::{AttrList, CatEntry, ContEntry};
use dtree::tree::{Node, SplitTest};
use mpsim::StorageFaultKind;

use crate::induce::{LevelInfo, ParStats};
use crate::phases::Work;

/// Section tags of a checkpoint file.
const SEC_META: u32 = 1;
const SEC_NODES: u32 = 2;
const SEC_WORKS: u32 = 3;
const SEC_STATS: u32 = 4;
const SEC_TABLE: u32 = 5;

/// Checkpointing context handed to the induction driver: where the
/// snapshots live and how many generations to retain.
#[derive(Clone, Debug)]
pub struct CheckpointCtx {
    /// Directory holding `level_<l>_rank_<r>.bin` files and per-generation
    /// `MANIFEST_<l>.bin` manifests.
    pub dir: PathBuf,
    /// Keep-last-K retention: after committing generation `l`, rank 0
    /// garbage-collects manifests and rank files of generations `< l+1-K`.
    /// `None` (the default) retains everything. GC is host-side filesystem
    /// work outside the simulated machine, so the knob never changes
    /// simulated costs.
    pub keep: Option<usize>,
}

impl CheckpointCtx {
    pub fn new(dir: impl Into<PathBuf>) -> CheckpointCtx {
        CheckpointCtx {
            dir: dir.into(),
            keep: None,
        }
    }

    /// This context with keep-last-K retention (clamped to at least 1:
    /// dropping the newest generation would defeat the checkpoint).
    pub fn with_keep(mut self, k: usize) -> CheckpointCtx {
        self.keep = Some(k.max(1));
        self
    }
}

/// The rank-0 manifest: newest complete level plus the run geometry it
/// belongs to (a safety check against resuming into the wrong run).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Newest level whose per-rank files are all committed.
    pub level: u32,
    /// Rank count of the run.
    pub procs: u32,
    /// Global record count of the run.
    pub total_n: u64,
}

/// Outcome of reading one generation's manifest — distinguishing "nothing
/// there" from "there, but damaged", which drive different recoveries
/// (fresh start vs. fall back one generation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ManifestRead {
    /// Decoded and CRC-verified.
    Ok(Manifest),
    /// No such manifest file.
    Absent,
    /// The file exists but fails CRC, decode, or shape checks.
    Corrupt(String),
}

/// What a restore scan found in a checkpoint directory — the typed verdict
/// the recovery driver acts on (and surfaces in its report).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RestoreVerdict {
    /// `manifest` names the newest generation whose manifest and *all*
    /// rank files are intact; `skipped_corrupt` newer generations were
    /// walked past to find it.
    Usable {
        manifest: Manifest,
        skipped_corrupt: u32,
    },
    /// No manifest of any generation exists: nothing was ever committed
    /// here (or it was cleared). Fresh start.
    NoCheckpoint,
    /// Manifests exist but every intact one belongs to a run with a
    /// different record count. Fresh start, without disturbing the
    /// foreign files.
    ForeignRun { generations: u32 },
    /// Every generation present is corrupt (manifest or rank files).
    /// Fresh start — degraded, but never a panic.
    AllCorrupt { generations: u32 },
}

impl RestoreVerdict {
    /// The level to resume from, when the verdict allows one.
    pub fn resume_level(&self) -> Option<u32> {
        match self {
            RestoreVerdict::Usable { manifest, .. } => Some(manifest.level),
            _ => None,
        }
    }

    /// Corrupt generations walked past (0 unless `Usable` skipped some).
    pub fn generations_walked(&self) -> u32 {
        match self {
            RestoreVerdict::Usable {
                skipped_corrupt, ..
            } => *skipped_corrupt,
            _ => 0,
        }
    }
}

/// One rank's snapshot of the state *entering* a level.
#[derive(Clone, Debug, PartialEq)]
pub struct LevelState {
    /// The level this state enters.
    pub level: u32,
    /// The replicated partial tree.
    pub nodes: Vec<Node>,
    /// This rank's active work items (distributed attribute-list slices).
    pub works: Vec<Work>,
    /// Run counters accumulated over levels `0..level`.
    pub stats: ParStats,
    /// This rank's resident slots of the distributed node table
    /// (`None` for the replicated-SPRINT baseline, which has no table).
    pub table_slots: Option<Vec<Option<u8>>>,
}

/// Simulated cost of writing or reading `bytes` of checkpoint data:
/// 100 µs per file plus 0.5 ns/byte (a ~2 GB/s local disk). Analytic and
/// deterministic, like the communication cost model.
pub fn io_charge_ns(bytes: u64) -> u64 {
    100_000 + bytes / 2
}

/// Path of one rank's snapshot of one level.
pub fn state_file(dir: &Path, level: u32, rank: usize) -> PathBuf {
    dir.join(format!("level_{level}_rank_{rank}.bin"))
}

/// Path of generation `level`'s manifest.
pub fn manifest_file(dir: &Path, level: u32) -> PathBuf {
    dir.join(format!("MANIFEST_{level}.bin"))
}

// ----- encoding -------------------------------------------------------------

fn encode_split(w: &mut ByteWriter, test: &Option<SplitTest>) {
    match test {
        None => w.u8(0),
        Some(SplitTest::Continuous { attr, threshold }) => {
            w.u8(1);
            w.u64(*attr as u64);
            w.f32_bits(*threshold);
        }
        Some(SplitTest::Categorical { attr }) => {
            w.u8(2);
            w.u64(*attr as u64);
        }
        Some(SplitTest::CategoricalSubset { attr, left_mask }) => {
            w.u8(3);
            w.u64(*attr as u64);
            w.u64(*left_mask);
        }
    }
}

fn decode_split(r: &mut ByteReader) -> Result<Option<SplitTest>, String> {
    Ok(match r.u8()? {
        0 => None,
        1 => Some(SplitTest::Continuous {
            attr: r.u64()? as usize,
            threshold: r.f32_bits()?,
        }),
        2 => Some(SplitTest::Categorical {
            attr: r.u64()? as usize,
        }),
        3 => Some(SplitTest::CategoricalSubset {
            attr: r.u64()? as usize,
            left_mask: r.u64()?,
        }),
        t => return Err(format!("unknown split-test tag {t}")),
    })
}

fn encode_hist(w: &mut ByteWriter, hist: &[u64]) {
    w.u64(hist.len() as u64);
    for &h in hist {
        w.u64(h);
    }
}

fn decode_hist(r: &mut ByteReader) -> Result<Vec<u64>, String> {
    let n = r.u64()? as usize;
    let mut hist = Vec::with_capacity(n);
    for _ in 0..n {
        hist.push(r.u64()?);
    }
    Ok(hist)
}

fn encode_nodes(nodes: &[Node]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u64(nodes.len() as u64);
    for n in nodes {
        w.u32(n.depth);
        encode_hist(&mut w, &n.hist);
        w.u8(n.majority);
        encode_split(&mut w, &n.test);
        w.u64(n.children.len() as u64);
        for &c in &n.children {
            w.u32(c);
        }
    }
    w.into_bytes()
}

fn decode_nodes(bytes: &[u8]) -> Result<Vec<Node>, String> {
    let mut r = ByteReader::new(bytes);
    let count = r.u64()? as usize;
    let mut nodes = Vec::with_capacity(count);
    for _ in 0..count {
        let depth = r.u32()?;
        let hist = decode_hist(&mut r)?;
        let majority = r.u8()?;
        let test = decode_split(&mut r)?;
        let nc = r.u64()? as usize;
        let mut children = Vec::with_capacity(nc);
        for _ in 0..nc {
            children.push(r.u32()?);
        }
        nodes.push(Node {
            depth,
            hist,
            majority,
            test,
            children,
        });
    }
    if !r.is_done() {
        return Err("trailing bytes in nodes section".into());
    }
    Ok(nodes)
}

fn encode_works(works: &[Work]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u64(works.len() as u64);
    for work in works {
        w.u32(work.node_id);
        w.u32(work.depth);
        encode_hist(&mut w, &work.hist);
        w.u64(work.lists.len() as u64);
        for list in &work.lists {
            match list {
                AttrList::Continuous(entries) => {
                    w.u8(0);
                    w.u64(entries.len() as u64);
                    for e in entries {
                        w.f32_bits(e.value);
                        w.u32(e.rid);
                        w.u16(e.class);
                    }
                }
                AttrList::Categorical(entries) => {
                    w.u8(1);
                    w.u64(entries.len() as u64);
                    for e in entries {
                        w.u32(e.value);
                        w.u32(e.rid);
                        w.u16(e.class);
                    }
                }
            }
        }
    }
    w.into_bytes()
}

fn decode_works(bytes: &[u8]) -> Result<Vec<Work>, String> {
    let mut r = ByteReader::new(bytes);
    let count = r.u64()? as usize;
    let mut works = Vec::with_capacity(count);
    for _ in 0..count {
        let node_id = r.u32()?;
        let depth = r.u32()?;
        let hist = decode_hist(&mut r)?;
        let nl = r.u64()? as usize;
        let mut lists = Vec::with_capacity(nl);
        for _ in 0..nl {
            let tag = r.u8()?;
            let ne = r.u64()? as usize;
            match tag {
                0 => {
                    let mut entries = Vec::with_capacity(ne);
                    for _ in 0..ne {
                        entries.push(ContEntry {
                            value: r.f32_bits()?,
                            rid: r.u32()?,
                            class: r.u16()?,
                        });
                    }
                    lists.push(AttrList::Continuous(entries));
                }
                1 => {
                    let mut entries = Vec::with_capacity(ne);
                    for _ in 0..ne {
                        entries.push(CatEntry {
                            value: r.u32()?,
                            rid: r.u32()?,
                            class: r.u16()?,
                        });
                    }
                    lists.push(AttrList::Categorical(entries));
                }
                t => return Err(format!("unknown attribute-list tag {t}")),
            }
        }
        works.push(Work {
            node_id,
            depth,
            hist,
            lists,
        });
    }
    if !r.is_done() {
        return Err("trailing bytes in works section".into());
    }
    Ok(works)
}

fn encode_stats(stats: &ParStats) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(stats.levels);
    w.u64(stats.max_active_nodes as u64);
    w.u64(stats.trace.len() as u64);
    for t in &stats.trace {
        w.u64(t.active_nodes as u64);
        w.u64(t.splits as u64);
        w.u64(t.records);
    }
    w.into_bytes()
}

fn decode_stats(bytes: &[u8]) -> Result<ParStats, String> {
    let mut r = ByteReader::new(bytes);
    let levels = r.u32()?;
    let max_active_nodes = r.u64()? as usize;
    let n = r.u64()? as usize;
    let mut trace = Vec::with_capacity(n);
    for _ in 0..n {
        trace.push(LevelInfo {
            active_nodes: r.u64()? as usize,
            splits: r.u64()? as usize,
            records: r.u64()?,
        });
    }
    if !r.is_done() {
        return Err("trailing bytes in stats section".into());
    }
    Ok(ParStats {
        levels,
        max_active_nodes,
        trace,
    })
}

fn encode_table(slots: Option<&[Option<u8>]>) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match slots {
        None => w.u8(0),
        Some(slots) => {
            w.u8(1);
            w.u64(slots.len() as u64);
            for s in slots {
                match s {
                    None => {
                        w.u8(0);
                        w.u8(0);
                    }
                    Some(v) => {
                        w.u8(1);
                        w.u8(*v);
                    }
                }
            }
        }
    }
    w.into_bytes()
}

fn decode_table(bytes: &[u8]) -> Result<Option<Vec<Option<u8>>>, String> {
    let mut r = ByteReader::new(bytes);
    let present = r.u8()?;
    let out = if present == 0 {
        None
    } else {
        let n = r.u64()? as usize;
        let mut slots = Vec::with_capacity(n);
        for _ in 0..n {
            let flag = r.u8()?;
            let val = r.u8()?;
            slots.push(if flag == 0 { None } else { Some(val) });
        }
        Some(slots)
    };
    if !r.is_done() {
        return Err("trailing bytes in table section".into());
    }
    Ok(out)
}

/// Encode one rank's level state into checkpoint sections (exposed so the
/// byte-identity property — encode→decode→encode yields identical bytes —
/// is directly testable).
pub fn encode_state(
    level: u32,
    rank: usize,
    nodes: &[Node],
    works: &[Work],
    stats: &ParStats,
    table_slots: Option<&[Option<u8>]>,
) -> Vec<(u32, Vec<u8>)> {
    let mut meta = ByteWriter::new();
    meta.u32(level);
    meta.u64(rank as u64);
    vec![
        (SEC_META, meta.into_bytes()),
        (SEC_NODES, encode_nodes(nodes)),
        (SEC_WORKS, encode_works(works)),
        (SEC_STATS, encode_stats(stats)),
        (SEC_TABLE, encode_table(table_slots)),
    ]
}

/// Decode sections produced by [`encode_state`].
pub fn decode_state(sections: &[(u32, Vec<u8>)]) -> Result<LevelState, String> {
    let find = |tag: u32| -> Result<&[u8], String> {
        sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, p)| p.as_slice())
            .ok_or_else(|| format!("missing section tag {tag}"))
    };
    let mut meta = ByteReader::new(find(SEC_META)?);
    let level = meta.u32()?;
    let _rank = meta.u64()?;
    Ok(LevelState {
        level,
        nodes: decode_nodes(find(SEC_NODES)?)?,
        works: decode_works(find(SEC_WORKS)?)?,
        stats: decode_stats(find(SEC_STATS)?)?,
        table_slots: decode_table(find(SEC_TABLE)?)?,
    })
}

/// Atomically write one rank's snapshot of the state entering `level`.
/// Returns the encoded payload size (the basis of the simulated I/O
/// charge).
#[allow(clippy::too_many_arguments)]
pub fn save_state(
    dir: &Path,
    level: u32,
    rank: usize,
    nodes: &[Node],
    works: &[Work],
    stats: &ParStats,
    table_slots: Option<&[Option<u8>]>,
) -> Result<u64, CkptError> {
    let sections = encode_state(level, rank, nodes, works, stats, table_slots);
    let bytes: u64 = sections.iter().map(|(_, p)| p.len() as u64).sum();
    let refs: Vec<(u32, &[u8])> = sections.iter().map(|(t, p)| (*t, p.as_slice())).collect();
    ckpt::write_sections(&state_file(dir, level, rank), &refs)?;
    Ok(bytes)
}

/// Load one rank's snapshot of `level`. Returns the state and the payload
/// size read (for the simulated I/O charge).
pub fn load_state(dir: &Path, level: u32, rank: usize) -> Result<(LevelState, u64), CkptError> {
    let path = state_file(dir, level, rank);
    let sections = ckpt::read_sections(&path)?;
    let bytes: u64 = sections.iter().map(|(_, p)| p.len() as u64).sum();
    let state = decode_state(&sections).map_err(|msg| CkptError {
        path: path.clone(),
        msg,
    })?;
    if state.level != level {
        return Err(CkptError {
            path,
            msg: format!("file claims level {}, expected {level}", state.level),
        });
    }
    Ok((state, bytes))
}

/// Atomically commit generation `m.level`: write its `MANIFEST_<l>.bin`.
pub fn write_manifest(dir: &Path, m: Manifest) -> Result<(), CkptError> {
    let mut w = ByteWriter::new();
    w.u32(m.level);
    w.u32(m.procs);
    w.u64(m.total_n);
    ckpt::write_sections(&manifest_file(dir, m.level), &[(SEC_META, &w.into_bytes())])
}

/// Read generation `level`'s manifest, with a typed verdict: absent,
/// corrupt, and intact are three different situations to a recovery driver
/// (fresh start / walk back a generation / resume).
pub fn read_manifest(dir: &Path, level: u32) -> ManifestRead {
    let path = manifest_file(dir, level);
    if !path.exists() {
        return ManifestRead::Absent;
    }
    let sections = match ckpt::read_sections(&path) {
        Ok(s) => s,
        Err(e) => return ManifestRead::Corrupt(e.msg),
    };
    let Some((tag, payload)) = sections.first() else {
        return ManifestRead::Corrupt("no sections".into());
    };
    if *tag != SEC_META {
        return ManifestRead::Corrupt(format!("unexpected section tag {tag}"));
    }
    let mut r = ByteReader::new(payload);
    let decode = |r: &mut ByteReader| -> Result<Manifest, String> {
        Ok(Manifest {
            level: r.u32()?,
            procs: r.u32()?,
            total_n: r.u64()?,
        })
    };
    match decode(&mut r) {
        Err(msg) => ManifestRead::Corrupt(msg),
        Ok(_) if !r.is_done() => ManifestRead::Corrupt("trailing bytes".into()),
        Ok(m) if m.level != level => {
            ManifestRead::Corrupt(format!("claims level {}, expected {level}", m.level))
        }
        Ok(m) => ManifestRead::Ok(m),
    }
}

/// Generation levels present in `dir` (by manifest file name, decoded or
/// not), newest first.
pub fn list_generations(dir: &Path) -> Vec<u32> {
    let mut levels: Vec<u32> = match std::fs::read_dir(dir) {
        Ok(rd) => rd
            .flatten()
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                name.strip_prefix("MANIFEST_")?
                    .strip_suffix(".bin")?
                    .parse()
                    .ok()
            })
            .collect(),
        Err(_) => Vec::new(),
    };
    levels.sort_unstable_by(|a, b| b.cmp(a));
    levels.dedup();
    levels
}

/// Walk generations newest→oldest and report the newest one that is
/// *fully* intact — manifest decoded, record count matching `want_n`, and
/// every one of its `procs` rank files CRC-clean and decodable to the
/// manifest's level. Host-side filesystem work (the restore collective
/// charges the actual state reads separately); called by rank 0 before the
/// resume broadcast, and by the recovery driver for its report.
pub fn scan_restore(dir: &Path, want_n: u64) -> RestoreVerdict {
    let generations = list_generations(dir);
    if generations.is_empty() {
        return RestoreVerdict::NoCheckpoint;
    }
    let total = generations.len() as u32;
    let mut skipped_corrupt = 0u32;
    let mut foreign = 0u32;
    for level in generations {
        let m = match read_manifest(dir, level) {
            ManifestRead::Ok(m) => m,
            ManifestRead::Absent | ManifestRead::Corrupt(_) => {
                skipped_corrupt += 1;
                continue;
            }
        };
        if m.total_n != want_n {
            foreign += 1;
            continue;
        }
        let all_ranks_intact = (0..m.procs as usize).all(|r| load_state(dir, level, r).is_ok());
        if all_ranks_intact {
            return RestoreVerdict::Usable {
                manifest: m,
                skipped_corrupt,
            };
        }
        skipped_corrupt += 1;
    }
    if foreign > 0 && skipped_corrupt == 0 {
        RestoreVerdict::ForeignRun { generations: total }
    } else {
        RestoreVerdict::AllCorrupt { generations: total }
    }
}

/// Remove every generation's manifest so the next induction in `dir`
/// starts fresh. Stale level files are harmless (they are only read when a
/// manifest names them) and get overwritten in place.
pub fn clear_manifests(dir: &Path) {
    for level in list_generations(dir) {
        let _ = std::fs::remove_file(manifest_file(dir, level));
    }
}

/// Keep-last-K garbage collection after committing generation `newest`:
/// remove manifests and rank files of every generation older than
/// `newest + 1 - keep`. Host-side filesystem work, uncharged — retention
/// policy never changes simulated costs.
pub fn gc_generations(dir: &Path, newest: u32, keep: usize) {
    let floor = (u64::from(newest) + 1).saturating_sub(keep as u64);
    for level in list_generations(dir) {
        if u64::from(level) >= floor {
            continue;
        }
        let _ = std::fs::remove_file(manifest_file(dir, level));
        remove_rank_files(dir, level);
    }
}

/// Remove all `level_<level>_rank_*.bin` files of one generation,
/// whatever rank count wrote them.
fn remove_rank_files(dir: &Path, level: u32) {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return;
    };
    let prefix = format!("level_{level}_rank_");
    for e in rd.flatten() {
        if let Ok(name) = e.file_name().into_string() {
            if name.starts_with(&prefix) && name.ends_with(".bin") {
                let _ = std::fs::remove_file(e.path());
            }
        }
    }
}

// ----- rescale on restore ---------------------------------------------------

/// Re-block a level's state from `states.len()` old ranks onto `new_procs`
/// ranks and return new-rank `rank`'s shard. `states` holds every old
/// rank's snapshot of the same level, in rank order.
///
/// Replicated state (tree, counters, per-work metadata) is taken from old
/// rank 0. Each work item's attribute lists are concatenated over old
/// ranks — entries never migrate between ranks during splits, so old rank
/// order *is* the global per-node order (sorted for continuous attributes,
/// record order for categorical) — then cut into `new_procs` contiguous
/// shards. Node-table slots are concatenated to the global array and
/// re-sliced at the new `⌈N/p'⌉` block geometry, matching
/// [`dhash::DistTable`]'s `owner_of` mapping at `new_procs`.
pub fn rescale_state(
    states: &[LevelState],
    rank: usize,
    new_procs: usize,
    total_n: u64,
) -> LevelState {
    assert!(!states.is_empty() && rank < new_procs);
    let first = &states[0];
    let works = (0..first.works.len())
        .map(|wi| {
            let proto = &first.works[wi];
            let lists = (0..proto.lists.len())
                .map(|li| shard_list(states, wi, li, rank, new_procs))
                .collect();
            Work {
                node_id: proto.node_id,
                depth: proto.depth,
                hist: proto.hist.clone(),
                lists,
            }
        })
        .collect();
    let table_slots = first.table_slots.as_ref().map(|_| {
        let global: Vec<Option<u8>> = states
            .iter()
            .flat_map(|s| s.table_slots.as_deref().unwrap_or(&[]).iter().cloned())
            .collect();
        let n = total_n.max(1) as usize;
        debug_assert_eq!(global.len(), n, "table slots must cover every record");
        let block = n.div_ceil(new_procs).max(1);
        let lo = (rank * block).min(n);
        let hi = ((rank + 1) * block).min(n);
        global[lo..hi].to_vec()
    });
    LevelState {
        level: first.level,
        nodes: first.nodes.clone(),
        works,
        stats: first.stats.clone(),
        table_slots,
    }
}

/// New-rank `rank`'s contiguous shard of work `wi`'s list `li`, from the
/// concatenation of every old rank's segment.
fn shard_list(
    states: &[LevelState],
    wi: usize,
    li: usize,
    rank: usize,
    new_procs: usize,
) -> AttrList {
    let continuous = matches!(states[0].works[wi].lists[li], AttrList::Continuous(_));
    let bounds = |len: usize| {
        let block = len.div_ceil(new_procs).max(1);
        ((rank * block).min(len), ((rank + 1) * block).min(len))
    };
    if continuous {
        let global: Vec<ContEntry> = states
            .iter()
            .flat_map(|s| match &s.works[wi].lists[li] {
                AttrList::Continuous(e) => e.as_slice(),
                AttrList::Categorical(_) => panic!("list {li} changes kind across ranks"),
            })
            .copied()
            .collect();
        let (lo, hi) = bounds(global.len());
        AttrList::Continuous(global[lo..hi].to_vec())
    } else {
        let global: Vec<CatEntry> = states
            .iter()
            .flat_map(|s| match &s.works[wi].lists[li] {
                AttrList::Categorical(e) => e.as_slice(),
                AttrList::Continuous(_) => panic!("list {li} changes kind across ranks"),
            })
            .copied()
            .collect();
        let (lo, hi) = bounds(global.len());
        AttrList::Categorical(global[lo..hi].to_vec())
    }
}

/// Load a level snapshot written at `from_procs` ranks and re-block it for
/// new-rank `rank` of `new_procs`. Every rank reads the *whole* generation
/// (all `from_procs` files), so the returned byte count — the basis of the
/// simulated I/O charge — prices the redistribution honestly: `p'`× the
/// snapshot, versus 1× for a same-geometry restore.
pub fn load_rescaled(
    dir: &Path,
    level: u32,
    rank: usize,
    new_procs: usize,
    from_procs: usize,
    total_n: u64,
) -> Result<(LevelState, u64), CkptError> {
    let mut states = Vec::with_capacity(from_procs);
    let mut bytes = 0u64;
    for r in 0..from_procs {
        let (st, b) = load_state(dir, level, r)?;
        states.push(st);
        bytes += b;
    }
    Ok((rescale_state(&states, rank, new_procs, total_n), bytes))
}

/// Total encoded payload bytes of generation `level` (all `procs` rank
/// files) — what one full read of the snapshot costs, and the unit of
/// redistribution-byte accounting.
pub fn generation_payload_bytes(dir: &Path, level: u32, procs: usize) -> Result<u64, CkptError> {
    let mut bytes = 0u64;
    for r in 0..procs {
        let sections = ckpt::read_sections(&state_file(dir, level, r))?;
        bytes += sections.iter().map(|(_, p)| p.len() as u64).sum::<u64>();
    }
    Ok(bytes)
}

/// Damage one rank's committed state file the way `kind` describes —
/// called by the induction driver when an installed
/// [`FaultPlan`](mpsim::FaultPlan) schedules a storage fault on this
/// checkpoint commit. Host filesystem work; silent (the commit already
/// succeeded), so nothing is charged at injection time.
pub fn apply_storage_fault(dir: &Path, level: u32, rank: usize, kind: StorageFaultKind) {
    let path = state_file(dir, level, rank);
    let _ = match kind {
        StorageFaultKind::TornWrite => ckpt::damage_truncate_tail(&path),
        StorageFaultKind::BitFlip => ckpt::damage_flip_bit(&path),
        StorageFaultKind::MissingFile => ckpt::damage_remove(&path),
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> LevelState {
        let mut root = Node::leaf(0, vec![3, 5]);
        root.test = Some(SplitTest::Continuous {
            attr: 1,
            threshold: 2.5,
        });
        root.children = vec![1, 2];
        let leaf = Node::leaf(1, vec![3, 0]);
        let mut cat = Node::leaf(1, vec![0, 5]);
        cat.test = Some(SplitTest::CategoricalSubset {
            attr: 0,
            left_mask: 0b101,
        });
        LevelState {
            level: 1,
            nodes: vec![root, leaf, cat],
            works: vec![Work {
                node_id: 2,
                depth: 1,
                hist: vec![0, 5],
                lists: vec![
                    AttrList::Continuous(vec![
                        ContEntry {
                            value: 1.5,
                            rid: 4,
                            class: 1,
                        },
                        ContEntry {
                            value: f32::MIN_POSITIVE,
                            rid: 9,
                            class: 0,
                        },
                    ]),
                    AttrList::Categorical(vec![CatEntry {
                        value: 2,
                        rid: 4,
                        class: 1,
                    }]),
                ],
            }],
            stats: ParStats {
                levels: 1,
                max_active_nodes: 1,
                trace: vec![LevelInfo {
                    active_nodes: 1,
                    splits: 1,
                    records: 8,
                }],
            },
            table_slots: Some(vec![None, Some(0), Some(1)]),
        }
    }

    #[test]
    fn encode_decode_encode_is_byte_identical() {
        let st = sample_state();
        let enc1 = encode_state(
            st.level,
            3,
            &st.nodes,
            &st.works,
            &st.stats,
            st.table_slots.as_deref(),
        );
        let back = decode_state(&enc1).unwrap();
        assert_eq!(back, st);
        let enc2 = encode_state(
            back.level,
            3,
            &back.nodes,
            &back.works,
            &back.stats,
            back.table_slots.as_deref(),
        );
        assert_eq!(enc1, enc2, "save→load→save must be byte-identical");
    }

    #[test]
    fn save_load_roundtrip_on_disk() {
        let dir = std::env::temp_dir().join(format!("scalparc-state-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let st = sample_state();
        let written = save_state(
            &dir,
            st.level,
            3,
            &st.nodes,
            &st.works,
            &st.stats,
            st.table_slots.as_deref(),
        )
        .unwrap();
        let (back, read) = load_state(&dir, st.level, 3).unwrap();
        assert_eq!(back, st);
        assert_eq!(written, read);
        // On-disk byte identity too: saving the loaded state reproduces
        // the file exactly.
        let f1 = std::fs::read(state_file(&dir, st.level, 3)).unwrap();
        save_state(
            &dir,
            back.level,
            3,
            &back.nodes,
            &back.works,
            &back.stats,
            back.table_slots.as_deref(),
        )
        .unwrap();
        assert_eq!(f1, std::fs::read(state_file(&dir, st.level, 3)).unwrap());
        // Wrong level is rejected.
        assert!(load_state(&dir, 7, 3).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_verdicts_distinguish_absent_corrupt_intact() {
        let dir = std::env::temp_dir().join(format!("scalparc-manifest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(
            read_manifest(&dir, 4),
            ManifestRead::Absent,
            "no manifest yet"
        );
        let m = Manifest {
            level: 4,
            procs: 8,
            total_n: 4000,
        };
        write_manifest(&dir, m).unwrap();
        assert_eq!(read_manifest(&dir, 4), ManifestRead::Ok(m));
        assert_eq!(
            read_manifest(&dir, 3),
            ManifestRead::Absent,
            "other generation"
        );
        // Garbage is Corrupt — not Absent, and not a crash.
        std::fs::write(manifest_file(&dir, 4), b"not a checkpoint").unwrap();
        assert!(matches!(read_manifest(&dir, 4), ManifestRead::Corrupt(_)));
        write_manifest(&dir, m).unwrap();
        clear_manifests(&dir);
        assert_eq!(read_manifest(&dir, 4), ManifestRead::Absent);
        assert!(list_generations(&dir).is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Write one rank's state + manifest for a synthetic generation.
    fn commit_generation(dir: &Path, level: u32, procs: u32, total_n: u64) {
        let mut st = sample_state();
        st.level = level;
        for rank in 0..procs as usize {
            save_state(
                dir,
                level,
                rank,
                &st.nodes,
                &st.works,
                &st.stats,
                st.table_slots.as_deref(),
            )
            .unwrap();
        }
        write_manifest(
            dir,
            Manifest {
                level,
                procs,
                total_n,
            },
        )
        .unwrap();
    }

    #[test]
    fn scan_walks_past_corrupt_generations_to_newest_intact() {
        let dir = std::env::temp_dir().join(format!("scalparc-scan-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(scan_restore(&dir, 99), RestoreVerdict::NoCheckpoint);
        commit_generation(&dir, 0, 2, 99);
        commit_generation(&dir, 1, 2, 99);
        commit_generation(&dir, 2, 2, 99);
        let newest = Manifest {
            level: 2,
            procs: 2,
            total_n: 99,
        };
        assert_eq!(
            scan_restore(&dir, 99),
            RestoreVerdict::Usable {
                manifest: newest,
                skipped_corrupt: 0
            }
        );
        // Bit-flip a rank file of generation 2: the scan lands on 1.
        apply_storage_fault(&dir, 2, 1, StorageFaultKind::BitFlip);
        assert_eq!(
            scan_restore(&dir, 99),
            RestoreVerdict::Usable {
                manifest: Manifest { level: 1, ..newest },
                skipped_corrupt: 1
            }
        );
        // Tear generation 1's manifest too: the scan lands on 0.
        ckpt::damage_truncate_tail(&manifest_file(&dir, 1)).unwrap();
        assert_eq!(
            scan_restore(&dir, 99),
            RestoreVerdict::Usable {
                manifest: Manifest { level: 0, ..newest },
                skipped_corrupt: 2
            }
        );
        // Remove generation 0's rank file: nothing intact remains.
        apply_storage_fault(&dir, 0, 0, StorageFaultKind::MissingFile);
        assert_eq!(
            scan_restore(&dir, 99),
            RestoreVerdict::AllCorrupt { generations: 3 }
        );
        // A different record count is Foreign, not corrupt.
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        commit_generation(&dir, 0, 2, 50);
        assert_eq!(
            scan_restore(&dir, 99),
            RestoreVerdict::ForeignRun { generations: 1 }
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gc_keeps_last_k_generations() {
        let dir = std::env::temp_dir().join(format!("scalparc-gc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for level in 0..5 {
            commit_generation(&dir, level, 2, 99);
            gc_generations(&dir, level, 2);
        }
        assert_eq!(list_generations(&dir), vec![4, 3]);
        let files = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(files, 2 * (2 + 1), "2 generations × (manifest + 2 ranks)");
        assert!(!state_file(&dir, 0, 0).exists());
        // keep=1 collapses to the newest only; GC below level 0 is a no-op.
        gc_generations(&dir, 4, 1);
        assert_eq!(list_generations(&dir), vec![4]);
        gc_generations(&dir, 0, 3);
        assert_eq!(list_generations(&dir), vec![4], "floor underflow is safe");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Build a two-rank synthetic level state with distinct entries, so
    /// rescaling has real segment boundaries to get right.
    fn two_rank_states() -> Vec<LevelState> {
        let base = sample_state();
        let mut a = base.clone();
        let mut b = base;
        // Rank 0 holds the lower half of the sorted continuous list and
        // table slots [0, 2); rank 1 the upper half and slot [2, 3).
        let cont = |v: f32, rid: u32| ContEntry {
            value: v,
            rid,
            class: (rid % 2) as u16,
        };
        let cat = |v: u32, rid: u32| CatEntry {
            value: v,
            rid,
            class: (rid % 2) as u16,
        };
        a.works[0].lists = vec![
            AttrList::Continuous(vec![cont(1.0, 0), cont(2.0, 1)]),
            AttrList::Categorical(vec![cat(7, 0), cat(8, 1)]),
        ];
        b.works[0].lists = vec![
            AttrList::Continuous(vec![cont(3.0, 2)]),
            AttrList::Categorical(vec![cat(9, 2)]),
        ];
        a.table_slots = Some(vec![Some(0), Some(1)]);
        b.table_slots = Some(vec![Some(2)]);
        vec![a, b]
    }

    #[test]
    fn rescale_reblocks_lists_and_reshards_table() {
        let states = two_rank_states();
        // 2 → 3 ranks: 3 global entries re-block to 1 per rank; the table's
        // 3 slots re-shard to block 1.
        let total_n = 3u64;
        for rank in 0..3 {
            let st = rescale_state(&states, rank, 3, total_n);
            assert_eq!(st.nodes, states[0].nodes);
            assert_eq!(st.stats, states[0].stats);
            let AttrList::Continuous(c) = &st.works[0].lists[0] else {
                panic!("kind must be preserved")
            };
            assert_eq!(c.len(), 1);
            let rid0 = c[0].rid;
            assert_eq!(rid0, rank as u32, "global order preserved");
            assert_eq!(st.table_slots.as_ref().unwrap().len(), 1);
            assert_eq!(st.table_slots.unwrap()[0], Some(rank as u8));
        }
        // 2 → 1 rank: everything concatenates onto the single survivor.
        let st = rescale_state(&states, 0, 1, total_n);
        let AttrList::Continuous(c) = &st.works[0].lists[0] else {
            panic!()
        };
        assert_eq!(
            c.iter().map(|e| e.rid).collect::<Vec<_>>(),
            vec![0, 1, 2],
            "concatenation in old rank order"
        );
        let AttrList::Categorical(k) = &st.works[0].lists[1] else {
            panic!()
        };
        assert_eq!(k.iter().map(|e| e.value).collect::<Vec<_>>(), vec![7, 8, 9]);
        assert_eq!(
            st.table_slots.unwrap(),
            vec![Some(0), Some(1), Some(2)],
            "global table array reassembled"
        );
        // Identity rescale (2 → 2) reproduces each rank's own shard for
        // the block-geometry table; lists re-block to ⌈3/2⌉ = 2 + 1.
        let st0 = rescale_state(&states, 0, 2, total_n);
        let AttrList::Continuous(c0) = &st0.works[0].lists[0] else {
            panic!()
        };
        assert_eq!(c0.len(), 2);
        assert_eq!(st0.table_slots.unwrap(), vec![Some(0), Some(1)]);
    }

    #[test]
    fn load_rescaled_reads_whole_generation_and_charges_it() {
        let dir = std::env::temp_dir().join(format!("scalparc-rescale-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let states = two_rank_states();
        for (rank, st) in states.iter().enumerate() {
            save_state(
                &dir,
                st.level,
                rank,
                &st.nodes,
                &st.works,
                &st.stats,
                st.table_slots.as_deref(),
            )
            .unwrap();
        }
        let level = states[0].level;
        let total = generation_payload_bytes(&dir, level, 2).unwrap();
        let (st, bytes) = load_rescaled(&dir, level, 0, 1, 2, 3).unwrap();
        assert_eq!(bytes, total, "a rescaled restore reads every rank file");
        assert_eq!(st, rescale_state(&states, 0, 1, 3));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn io_charge_is_monotone_and_deterministic() {
        assert_eq!(io_charge_ns(0), 100_000);
        assert_eq!(io_charge_ns(2_000_000), 100_000 + 1_000_000);
        assert!(io_charge_ns(10) < io_charge_ns(1 << 20));
    }
}
