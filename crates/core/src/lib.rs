//! `scalparc` — a Rust reproduction of **ScalParC** (Joshi, Karypis &
//! Kumar, *ScalParC: A New Scalable and Efficient Parallel Classification
//! Algorithm for Mining Large Datasets*, IPPS 1998).
//!
//! ScalParC is a parallel formulation of SPRINT-style decision-tree
//! induction that is scalable in both runtime and memory: instead of
//! replicating the per-level record-to-child hash table on every processor
//! (parallel SPRINT, `O(N)` communication and memory per processor), it
//! keeps a **distributed node table** updated and enquired with the parallel
//! hashing paradigm (`O(N/p)` per processor, `O(N)` total per level).
//!
//! # Quick start
//!
//! ```
//! use datagen::{generate, GenConfig};
//! use scalparc::{induce, ParConfig};
//!
//! let data = generate(&GenConfig::paper(2_000, 42));
//! let result = induce(&data, &ParConfig::new(4)); // 4 virtual processors
//! assert!(result.tree.accuracy(&data) > 0.99);
//! println!("tree: {} nodes, {} levels, simulated time {:.3}s",
//!          result.tree.nodes.len(), result.levels, result.stats.time_s());
//! ```
//!
//! The machine is simulated by [`mpsim`] (virtual processors + a calibrated
//! communication cost model), so scalability experiments up to `p = 128` run
//! on a laptop; see that crate's documentation for the timing and memory
//! models. Every classifier in this workspace — [`dtree::sprint`] (serial),
//! [`dtree::cart`] (re-sorting baseline), [`Algorithm::SprintReplicated`]
//! (parallel baseline), and ScalParC itself — induces the **identical
//! tree** on identical data.

pub mod checkpoint;
pub mod config;
pub mod dist;
pub mod forest;
pub mod induce;
pub mod ooc;
pub mod phases;
pub mod stream;

pub mod analysis;

pub use checkpoint::{CheckpointCtx, RestoreVerdict};
pub use config::{Algorithm, InduceConfig, ParConfig};
pub use forest::{
    train_forest, train_forest_with_recovery, ForestCheckpointCtx, ForestConfig, ForestFaultPlan,
    ForestPlan, ForestRecoveryOutcome, ForestRecoveryPolicy, ForestRecoveryReport, ForestResult,
    ForestSchedule, ForestVerdict, RescheduleEvent, TreeStat, TreeVerdict,
};
pub use induce::{induce_on_comm, induce_on_comm_ckpt, LevelInfo, ParStats};
pub use ooc::{induce_on_comm_ooc, OocOptions};
pub use stream::{
    run_stream, stream_on_comm, BlockSource, StreamConfig, StreamOutcome, StreamReport, Trigger,
};

use std::path::Path;
use std::sync::Arc;

use dtree::data::Dataset;
use dtree::tree::DecisionTree;
use mpsim::{Crash, FaultPlan, MachineCfg, RunStats, TimingMode};

/// Outcome of a simulated parallel induction run.
#[derive(Debug)]
pub struct ParResult {
    /// The induced tree (identical on every rank; rank 0's copy).
    pub tree: DecisionTree,
    /// Number of tree levels processed.
    pub levels: u32,
    /// Largest number of simultaneously active nodes at any level.
    pub max_active_nodes: usize,
    /// Per-level global trace (active nodes, splits, records).
    pub trace: Vec<induce::LevelInfo>,
    /// Per-rank machine statistics: simulated time, communication volume,
    /// memory peaks.
    pub stats: RunStats,
}

/// Induce a decision tree from `data` on a simulated `cfg.procs`-processor
/// machine. The training set is fragmented horizontally into `⌈N/p⌉` blocks
/// (paper §3.1) and each virtual processor runs the SPMD algorithm.
pub fn induce(data: &Dataset, cfg: &ParConfig) -> ParResult {
    induce_with_replay(data, cfg, None)
}

/// [`induce`] with out-of-core attribute lists: every rank keeps its list
/// segments on disk under `opts.dir` and streams them in `opts.chunk`-record
/// chunks, so per-rank resident list memory is O(chunk) instead of O(N/p).
/// The induced tree is identical to [`induce`]'s at the same `cfg.procs`.
pub fn induce_ooc(data: &Dataset, cfg: &ParConfig, opts: &ooc::OocOptions) -> ParResult {
    assert!(cfg.procs >= 1);
    let n = data.len();
    let block = n.div_ceil(cfg.procs).max(1);
    let mcfg = MachineCfg {
        procs: cfg.procs,
        cost: cfg.cost,
        timing: cfg.timing,
        compute_tokens: 0,
        replay: None,
        trace: cfg.trace,
        fault: None,
    };
    let induce_cfg = cfg.induce;
    let result = mpsim::run(&mcfg, |comm| {
        let lo = (comm.rank() * block).min(n);
        let hi = ((comm.rank() + 1) * block).min(n);
        let local = data.slice(lo, hi);
        induce_on_comm_ooc(comm, local, lo as u32, n as u64, &induce_cfg, opts)
    });
    let mut outputs = result.outputs;
    let (tree, ps) = outputs.swap_remove(0);
    ParResult {
        tree,
        levels: ps.levels,
        max_active_nodes: ps.max_active_nodes,
        trace: ps.trace,
        stats: result.stats,
    }
}

/// Like [`induce()`] in [`TimingMode::Measured`], with host-noise filtering:
/// the deterministic induction is measured `reps` times and the elementwise
/// **minimum** of each rank's per-segment durations is replayed through the
/// clock arithmetic. This removes CPU-steal and preemption spikes — which
/// the per-collective max-over-ranks clock synchronization would otherwise
/// amplify — while preserving the honest per-segment costs (including real
/// load imbalance). Use this for any timing experiment.
pub fn induce_measured(data: &Dataset, cfg: &ParConfig, reps: usize) -> ParResult {
    assert!(reps >= 1);
    let cfg = ParConfig {
        timing: TimingMode::Measured,
        ..*cfg
    };
    let mut floor: Option<Vec<Vec<u64>>> = None;
    for _ in 0..reps {
        let r = induce_with_replay(data, &cfg, None);
        match &mut floor {
            None => {
                floor = Some(r.stats.ranks.iter().map(|x| x.segments.clone()).collect());
            }
            Some(f) => {
                for (fr, rr) in f.iter_mut().zip(&r.stats.ranks) {
                    for (a, b) in fr.iter_mut().zip(&rr.segments) {
                        *a = (*a).min(*b);
                    }
                }
            }
        }
    }
    induce_with_replay(data, &cfg, floor.map(Arc::new))
}

fn induce_with_replay(
    data: &Dataset,
    cfg: &ParConfig,
    replay: Option<Arc<Vec<Vec<u64>>>>,
) -> ParResult {
    match induce_attempt(data, cfg, replay, None, None) {
        Ok(r) => r,
        Err(_) => unreachable!("no fault plan installed, so no crash can fire"),
    }
}

/// One machine run: the common body of [`induce`], [`try_induce`], and the
/// recovery driver. A crash can only surface when `fault` carries one.
fn induce_attempt(
    data: &Dataset,
    cfg: &ParConfig,
    replay: Option<Arc<Vec<Vec<u64>>>>,
    fault: Option<Arc<FaultPlan>>,
    ckpt: Option<&CheckpointCtx>,
) -> Result<ParResult, Crash> {
    assert!(cfg.procs >= 1);
    let n = data.len();
    let block = n.div_ceil(cfg.procs).max(1);
    let mcfg = MachineCfg {
        procs: cfg.procs,
        cost: cfg.cost,
        timing: cfg.timing,
        compute_tokens: 0,
        replay,
        trace: cfg.trace,
        fault,
    };
    let induce_cfg = cfg.induce;
    let result = mpsim::try_run(&mcfg, |comm| {
        let lo = (comm.rank() * block).min(n);
        let hi = ((comm.rank() + 1) * block).min(n);
        let local = data.slice(lo, hi);
        induce_on_comm_ckpt(comm, local, lo as u32, n as u64, &induce_cfg, ckpt)
    })?;
    let mut outputs = result.outputs;
    let (tree, ps) = outputs.swap_remove(0);
    Ok(ParResult {
        tree,
        levels: ps.levels,
        max_active_nodes: ps.max_active_nodes,
        trace: ps.trace,
        stats: result.stats,
    })
}

/// Like [`induce`], but under an optional fault plan and with optional
/// per-level checkpointing. An injected crash surfaces as `Err` carrying
/// the crash site and the aborted attempt's partial statistics; drop,
/// corrupt, and straggler faults are absorbed by the simulated transport
/// (they cost time, never correctness) and the run completes normally.
pub fn try_induce(
    data: &Dataset,
    cfg: &ParConfig,
    fault: Option<Arc<FaultPlan>>,
    ckpt: Option<&CheckpointCtx>,
) -> Result<ParResult, Crash> {
    induce_attempt(data, cfg, None, fault, ckpt)
}

/// One observed crash-and-restart cycle of [`induce_with_recovery`].
#[derive(Clone, Copy, Debug)]
pub struct CrashEvent {
    /// The rank the fault plan killed.
    pub rank: usize,
    /// Collective sequence number of the crash site.
    pub coll_seq: u64,
    /// Name of the collective the rank died entering.
    pub coll: &'static str,
    /// Tree level at the crash (`u32::MAX` = during setup/presort).
    pub level: u32,
    /// Rank count of the attempt that crashed.
    pub procs: u32,
    /// Checkpoint level the retry resumed from (`None` = fresh start).
    pub resumed_from: Option<u32>,
    /// What the post-crash restore scan found in the checkpoint directory
    /// — intact generation, nothing committed, foreign run, or every
    /// generation corrupt.
    pub restore: RestoreVerdict,
}

/// One geometry change under [`RecoveryPolicy::Shrink`]: the retry ran on
/// fewer ranks than the attempt that crashed.
#[derive(Clone, Copy, Debug)]
pub struct RescaleEvent {
    /// Rank count of the crashed attempt.
    pub from_procs: u32,
    /// Rank count of the retry (the survivors).
    pub to_procs: u32,
    /// Checkpoint level the shrunk retry restored from (`None` = fresh
    /// start at the new geometry).
    pub level: Option<u32>,
    /// Extra checkpoint bytes the rescaled restore reads beyond a
    /// same-geometry restore: every surviving rank reads the *whole*
    /// generation to re-block it, so the surplus is
    /// `(to_procs − 1) × generation size`.
    pub redistribution_bytes: u64,
}

/// What recovery cost, over and above the final successful attempt.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Machine runs launched (successful attempt included), so `1` means
    /// no crash fired.
    pub attempts: u32,
    /// Every crash observed, in order.
    pub crashes: Vec<CrashEvent>,
    /// Every shrink the policy performed, in order.
    pub rescales: Vec<RescaleEvent>,
    /// Tree levels executed more than once because a crash rolled the run
    /// back to an earlier checkpoint.
    pub reexecuted_levels: u32,
    /// Communication volume of the aborted attempts (re-paid work).
    pub wasted_bytes: u64,
    /// Simulated time of the aborted attempts (the recovery overhead a
    /// real cluster would observe as lost wall-clock).
    pub wasted_time_ns: u64,
    /// Total surplus restore I/O of rescaled restores (the sum over
    /// [`RescaleEvent::redistribution_bytes`]).
    pub redistribution_bytes: u64,
    /// Corrupt checkpoint generations restore scans walked past, summed
    /// over all restarts.
    pub generations_walked: u32,
    /// Rank count of the attempt that completed.
    pub final_procs: u32,
}

/// How [`induce_with_recovery_policy`] reacts to an injected crash.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Retry at the full original rank count (the failed node is assumed
    /// replaced). This is [`induce_with_recovery`]'s behaviour.
    #[default]
    Retry,
    /// Continue on the `p − 1` survivors: each crash shrinks the machine
    /// by one rank, re-blocking the restored checkpoint onto the new
    /// geometry, down to (and never below) `min_procs`. Once at the
    /// floor, further crashes retry at the floor.
    Shrink {
        /// Smallest rank count to shrink to (clamped to at least 1).
        min_procs: usize,
    },
}

/// A recovered induction run: the (fault-free-identical) result plus what
/// the crashes cost.
#[derive(Debug)]
pub struct RecoveryResult {
    /// The final successful run — byte-identical tree to a fault-free run.
    pub result: ParResult,
    /// Recovery accounting across all attempts.
    pub report: RecoveryReport,
}

/// Induce under a fault plan with per-level checkpoints in `ckpt_dir`,
/// restarting after every injected crash until an attempt completes.
///
/// Each restart resumes from the newest complete checkpoint (the rank-0
/// manifest), so only the levels at or after the crash are re-executed.
/// The crash spec that fired is disarmed before the retry — mirroring a
/// real cluster, where the faulty node is replaced rather than allowed to
/// kill every subsequent attempt at the same instruction — so the loop
/// terminates after at most `plan.crashes.len() + 1` attempts. Determinism
/// guarantee: the returned tree is byte-identical (via `model_io`
/// serialization) to a fault-free run's, and repeated calls with the same
/// seed and plan reproduce the same report.
///
/// Any stale manifests in `ckpt_dir` are cleared first: this drives a
/// fresh run, not a resume of an earlier one.
pub fn induce_with_recovery(
    data: &Dataset,
    cfg: &ParConfig,
    fault: Option<Arc<FaultPlan>>,
    ckpt_dir: &Path,
) -> RecoveryResult {
    induce_with_recovery_policy(
        data,
        cfg,
        fault,
        &CheckpointCtx::new(ckpt_dir),
        RecoveryPolicy::Retry,
    )
}

/// [`induce_with_recovery`] with an explicit [`RecoveryPolicy`] and
/// checkpoint context (retention knob included). Under
/// [`RecoveryPolicy::Shrink`] each crash drops one rank: the retry builds
/// a new machine at the shrunk geometry and its restore re-blocks the last
/// intact checkpoint generation onto the survivors, with the surplus
/// restore I/O accounted as [`RescaleEvent::redistribution_bytes`]. The
/// final tree is byte-identical to a fault-free run at whatever rank count
/// finished — tree shape is geometry-independent by construction.
pub fn induce_with_recovery_policy(
    data: &Dataset,
    cfg: &ParConfig,
    fault: Option<Arc<FaultPlan>>,
    ckpt: &CheckpointCtx,
    policy: RecoveryPolicy,
) -> RecoveryResult {
    checkpoint::clear_manifests(&ckpt.dir);
    let total_n = data.len() as u64;
    let mut plan = fault;
    let mut report = RecoveryReport::default();
    let mut cur = *cfg;
    loop {
        report.attempts += 1;
        match induce_attempt(data, &cur, None, plan.clone(), Some(ckpt)) {
            Ok(result) => {
                report.final_procs = cur.procs as u32;
                return RecoveryResult { result, report };
            }
            Err(crash) => {
                let sig = crash.signal;
                report.wasted_bytes += crash.stats.total_bytes_sent();
                report.wasted_time_ns += crash.stats.time_ns();
                // The same scan the retry's rank 0 will perform: what is
                // on disk now decides where the next attempt resumes.
                let restore = checkpoint::scan_restore(&ckpt.dir, total_n);
                let resumed_from = restore.resume_level();
                report.generations_walked += restore.generations_walked();
                if sig.level != u32::MAX {
                    // Levels `resumed_from..=crash level` run again; a
                    // setup/presort crash re-executes no *levels*.
                    report.reexecuted_levels +=
                        sig.level.saturating_sub(resumed_from.unwrap_or(0)) + 1;
                }
                report.crashes.push(CrashEvent {
                    rank: sig.rank,
                    coll_seq: sig.coll_seq,
                    coll: sig.coll,
                    level: sig.level,
                    procs: cur.procs as u32,
                    resumed_from,
                    restore,
                });
                plan = plan.map(|p| Arc::new(p.without_crash(sig.spec)));
                if let RecoveryPolicy::Shrink { min_procs } = policy {
                    let floor = min_procs.max(1);
                    if cur.procs > floor {
                        let to = cur.procs - 1;
                        let redistribution_bytes = match restore {
                            // A same-geometry restore reads the generation
                            // once in total; a rescaled one reads it once
                            // *per surviving rank*.
                            RestoreVerdict::Usable { manifest, .. }
                                if manifest.procs as usize != to =>
                            {
                                checkpoint::generation_payload_bytes(
                                    &ckpt.dir,
                                    manifest.level,
                                    manifest.procs as usize,
                                )
                                .map(|total| total.saturating_mul(to as u64 - 1))
                                .unwrap_or(0)
                            }
                            _ => 0,
                        };
                        report.rescales.push(RescaleEvent {
                            from_procs: cur.procs as u32,
                            to_procs: to as u32,
                            level: resumed_from,
                            redistribution_bytes,
                        });
                        report.redistribution_bytes += redistribution_bytes;
                        cur.procs = to;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, ClassFunc, GenConfig, Profile};
    use dtree::sprint::{self, SprintConfig};
    use dtree::{AttrDef, Column, Schema, StopRules};

    fn quest(n: usize, func: ClassFunc, seed: u64) -> Dataset {
        generate(&GenConfig {
            n,
            func,
            noise: 0.0,
            seed,
            profile: Profile::Paper7,
        })
    }

    fn serial_tree(data: &Dataset) -> dtree::DecisionTree {
        sprint::induce(data, &SprintConfig::default())
    }

    #[test]
    fn p1_matches_serial_sprint() {
        let data = quest(300, ClassFunc::F2, 1);
        let par = induce(&data, &ParConfig::new(1));
        assert_eq!(par.tree, serial_tree(&data));
    }

    #[test]
    fn all_p_match_serial_sprint_f2() {
        let data = quest(240, ClassFunc::F2, 2);
        let want = serial_tree(&data);
        for p in [2, 3, 4, 7] {
            let par = induce(&data, &ParConfig::new(p));
            assert_eq!(par.tree, want, "p={p}");
            par.tree.validate();
        }
    }

    #[test]
    fn all_p_match_serial_sprint_f3_categorical() {
        // F3 uses elevel → exercises categorical splits.
        let data = quest(300, ClassFunc::F3, 3);
        let want = serial_tree(&data);
        for p in [2, 5] {
            let par = induce(&data, &ParConfig::new(p));
            assert_eq!(par.tree, want, "p={p}");
        }
    }

    #[test]
    fn sprint_replicated_baseline_matches_too() {
        let data = quest(240, ClassFunc::F2, 4);
        let want = serial_tree(&data);
        for p in [2, 4] {
            let par = induce(&data, &ParConfig::new(p).sprint_baseline());
            assert_eq!(par.tree, want, "p={p}");
        }
    }

    #[test]
    fn unblocked_updates_match_blocked() {
        let data = quest(200, ClassFunc::F1, 5);
        let mut cfg = ParConfig::new(3);
        cfg.induce.blocked_updates = false;
        let a = induce(&data, &cfg);
        let b = induce(&data, &ParConfig::new(3));
        assert_eq!(a.tree, b.tree);
    }

    #[test]
    fn more_procs_than_records() {
        let data = quest(5, ClassFunc::F1, 6);
        let par = induce(&data, &ParConfig::new(8));
        assert_eq!(par.tree, serial_tree(&data));
    }

    #[test]
    fn empty_dataset_single_leaf() {
        let schema = Schema::new(vec![AttrDef::continuous("x")], 2);
        let data = Dataset::new(schema, vec![Column::Continuous(vec![])], vec![]);
        let par = induce(&data, &ParConfig::new(2));
        assert_eq!(par.tree.nodes.len(), 1);
        assert_eq!(par.levels, 0);
    }

    #[test]
    fn stop_rules_respected() {
        let data = quest(400, ClassFunc::F2, 7);
        let mut cfg = ParConfig::new(2);
        cfg.induce.stop = StopRules {
            max_depth: 2,
            ..StopRules::default()
        };
        let par = induce(&data, &cfg);
        assert!(par.tree.depth() <= 2);
        let serial = sprint::induce(
            &data,
            &SprintConfig {
                stop: cfg.induce.stop,
                ..SprintConfig::default()
            },
        );
        assert_eq!(par.tree, serial);
    }

    #[test]
    fn accuracy_high_on_noiseless_concepts() {
        for (func, seed) in [(ClassFunc::F1, 8), (ClassFunc::F2, 9), (ClassFunc::F7, 10)] {
            let data = quest(500, func, seed);
            let par = induce(&data, &ParConfig::new(4));
            assert!(
                par.tree.accuracy(&data) > 0.99,
                "{func:?}: {}",
                par.tree.accuracy(&data)
            );
        }
    }

    #[test]
    fn memory_per_proc_shrinks_with_p() {
        let data = quest(2_000, ClassFunc::F2, 11);
        let m1 = induce(&data, &ParConfig::new(1)).stats.peak_mem_per_proc();
        let m4 = induce(&data, &ParConfig::new(4)).stats.peak_mem_per_proc();
        assert!(
            (m4 as f64) < 0.45 * m1 as f64,
            "p=4 peak {m4} vs p=1 peak {m1}"
        );
    }

    #[test]
    fn sprint_baseline_comm_does_not_scale() {
        // The paper's §3.2 claim: parallel SPRINT's splitting phase receives
        // the whole O(N) mapping on every processor, so its per-processor
        // communication volume does not shrink with p; ScalParC's O(N/p)
        // volume does.
        let data = quest(4_000, ClassFunc::F2, 12);
        let scal4 = induce(&data, &ParConfig::new(4));
        let scal32 = induce(&data, &ParConfig::new(32));
        let spr4 = induce(&data, &ParConfig::new(4).sprint_baseline());
        let spr32 = induce(&data, &ParConfig::new(32).sprint_baseline());
        let (sv4, sv32) = (
            scal4.stats.max_comm_volume_per_proc(),
            scal32.stats.max_comm_volume_per_proc(),
        );
        let (rv4, rv32) = (
            spr4.stats.max_comm_volume_per_proc(),
            spr32.stats.max_comm_volume_per_proc(),
        );
        // The shrink is sublinear in p because the FindSplit reductions
        // (count matrices, candidates) are p-independent per rank; the
        // alltoall traffic itself scales ~1/p.
        assert!(
            (sv32 as f64) < 0.45 * sv4 as f64,
            "ScalParC volume should shrink with p: {sv4} → {sv32}"
        );
        assert!(
            (rv32 as f64) > 0.6 * rv4 as f64,
            "SPRINT volume floors at O(N) (replication): {rv4} → {rv32}"
        );
        assert!(
            rv32 > 2 * sv32,
            "at p=32 SPRINT should clearly exceed ScalParC: {rv32} vs {sv32}"
        );
        // Memory: ScalParC's per-processor peak keeps halving; SPRINT's
        // floors at the replicated O(N) table.
        let (sm4, sm32) = (
            scal4.stats.peak_mem_per_proc(),
            scal32.stats.peak_mem_per_proc(),
        );
        let (rm4, rm32) = (
            spr4.stats.peak_mem_per_proc(),
            spr32.stats.peak_mem_per_proc(),
        );
        assert!(
            (sm32 as f64) < 0.2 * sm4 as f64,
            "ScalParC memory should shrink ~1/p: {sm4} → {sm32}"
        );
        assert!(
            (rm32 as f64) > 0.4 * rm4 as f64,
            "SPRINT memory floors at O(N): {rm4} → {rm32}"
        );
        assert!(rm32 > 3 * sm32, "sprint {rm32} vs scalparc {sm32}");
    }

    #[test]
    fn batched_enquiry_matches_per_attribute() {
        let data = quest(400, ClassFunc::F2, 15);
        let mut cfg = ParConfig::new(4);
        cfg.induce.batched_enquiry = true;
        let batched = induce(&data, &cfg);
        let plain = induce(&data, &ParConfig::new(4));
        assert_eq!(batched.tree, plain.tree);
        // Fewer collective rounds → fewer messages per rank.
        let mb = batched.stats.ranks[0].msgs_sent;
        let mp = plain.stats.ranks[0].msgs_sent;
        assert!(mb < mp, "batched {mb} vs per-attribute {mp}");
    }

    #[test]
    fn binary_subset_mode_matches_serial() {
        use dtree::{CatSplitMode, SplitOptions};
        let opts = SplitOptions {
            cat_mode: CatSplitMode::BinarySubset,
            ..SplitOptions::default()
        };
        let data = quest(300, ClassFunc::F3, 14);
        let serial = sprint::induce(
            &data,
            &SprintConfig {
                split: opts,
                ..SprintConfig::default()
            },
        );
        let mut cfg = ParConfig::new(4);
        cfg.induce.split = opts;
        let par = induce(&data, &cfg);
        assert_eq!(par.tree, serial);
        par.tree.validate();
    }

    #[test]
    fn entropy_criterion_matches_serial_and_differs_from_gini() {
        use dtree::{Criterion, SplitOptions};
        let opts = SplitOptions {
            criterion: Criterion::Entropy,
            ..SplitOptions::default()
        };
        let data = quest(400, ClassFunc::F4, 16);
        let serial = sprint::induce(
            &data,
            &SprintConfig {
                split: opts,
                ..SprintConfig::default()
            },
        );
        let mut cfg = ParConfig::new(4);
        cfg.induce.split = opts;
        let par = induce(&data, &cfg);
        assert_eq!(par.tree, serial, "entropy trees must agree serial/parallel");
        par.tree.validate();
        assert!(par.tree.accuracy(&data) > 0.99);
        // Entropy and gini generally choose different thresholds somewhere.
        let gini_tree = induce(&data, &ParConfig::new(4)).tree;
        assert_ne!(par.tree, gini_tree, "criteria should differ on this data");
    }

    #[test]
    fn recovery_after_crash_matches_fault_free() {
        use mpsim::{CrashPoint, FaultPlan};
        let data = quest(240, ClassFunc::F2, 21);
        let want = induce(&data, &ParConfig::new(4)).tree;
        let dir = std::env::temp_dir().join(format!("scalparc-rec-{}", std::process::id()));
        let plan = FaultPlan::new().with_crash(2, CrashPoint::Level(1));
        let rec = induce_with_recovery(&data, &ParConfig::new(4), Some(Arc::new(plan)), &dir);
        assert_eq!(rec.result.tree, want, "recovered tree must be identical");
        assert_eq!(rec.report.attempts, 2);
        assert_eq!(rec.report.crashes.len(), 1);
        let ev = rec.report.crashes[0];
        assert_eq!(ev.rank, 2);
        assert_eq!(ev.level, 1);
        assert_eq!(
            ev.resumed_from,
            Some(1),
            "level-1 checkpoint committed before the crash"
        );
        assert_eq!(rec.report.reexecuted_levels, 1);
        assert!(rec.report.wasted_time_ns > 0 || rec.report.wasted_bytes > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpointed_run_without_faults_matches_plain() {
        let data = quest(300, ClassFunc::F3, 22);
        let want = induce(&data, &ParConfig::new(3));
        let dir = std::env::temp_dir().join(format!("scalparc-ckpt-plain-{}", std::process::id()));
        let ctx = CheckpointCtx::new(&dir);
        let got = try_induce(&data, &ParConfig::new(3), None, Some(&ctx)).unwrap();
        assert_eq!(got.tree, want.tree);
        assert_eq!(got.trace, want.trace);
        // The run left one generation per level, the newest intact.
        assert_eq!(
            checkpoint::list_generations(&dir),
            (0..want.levels).rev().collect::<Vec<_>>()
        );
        match checkpoint::scan_restore(&dir, data.len() as u64) {
            RestoreVerdict::Usable { manifest, .. } => {
                assert_eq!(manifest.level, want.levels - 1)
            }
            v => panic!("expected a usable checkpoint, got {v:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn all_ranks_return_identical_trees() {
        let data = quest(150, ClassFunc::F4, 13);
        let n = data.len();
        let p = 3;
        let block = n.div_ceil(p);
        let cfg = InduceConfig::default();
        let outs = mpsim::run_simple(p, |comm| {
            let lo = (comm.rank() * block).min(n);
            let hi = ((comm.rank() + 1) * block).min(n);
            let local = data.slice(lo, hi);
            induce_on_comm(comm, local, lo as u32, n as u64, &cfg).0
        });
        assert_eq!(outs[0], outs[1]);
        assert_eq!(outs[0], outs[2]);
    }
}
