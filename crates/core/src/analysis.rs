//! Analytic performance model of ScalParC, in the style of the
//! isoefficiency analysis the paper builds on (Kumar et al., *Introduction
//! to Parallel Computing*, which the paper cites for its scalability
//! framework).
//!
//! The model predicts the parallel runtime from
//!
//! * the measured **serial computation time** divided by `p` (perfect
//!   division — the paper's `T_s/p` term), and
//! * the per-level **communication costs** computed in closed form from the
//!   [`CostModel`] and the level trace (active nodes, records): one prefix
//!   scan and three reductions for FindSplit, one all-to-all update and
//!   `n_attrs` two-step enquiries for PerformSplit, plus the Presort's
//!   sample sort.
//!
//! The gap between prediction and measurement is the part the closed form
//! cannot see — load imbalance across ranks and residual measurement noise
//! — and the `model_check` harness reports it per (N, p). The paper's
//! runtime-scalability argument (§3: overhead per processor O(N/p) per
//! level) is exactly this model's communication term; validating it against
//! the simulator closes the loop between the analysis and the measured
//! figures.

use dtree::data::{AttrKind, Schema};
use mpsim::CostModel;

use crate::induce::LevelInfo;

/// Closed-form ScalParC runtime predictor.
#[derive(Clone, Debug)]
pub struct AnalyticModel {
    /// Serial computation time, nanoseconds (measured at `p = 1`).
    pub serial_compute_ns: u64,
    /// Communication cost model of the target machine.
    pub cost: CostModel,
}

impl AnalyticModel {
    /// Predicted parallel runtime (seconds) on `p` processors for a run
    /// with the given level trace and schema, training-set size `n`.
    pub fn predict_s(&self, trace: &[LevelInfo], schema: &Schema, n: u64, p: usize) -> f64 {
        let compute_ns = self.serial_compute_ns as f64 / p as f64;
        let comm_ns = self.comm_ns(trace, schema, n, p);
        (compute_ns + comm_ns) / 1e9
    }

    /// Predicted communication time (nanoseconds) — the `T_o/p` overhead
    /// term of the paper's analysis.
    pub fn comm_ns(&self, trace: &[LevelInfo], schema: &Schema, n: u64, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let classes = schema.num_classes as usize;
        let n_attrs = schema.num_attrs();
        let n_cont = schema.continuous_attrs().len();
        let cat_matrix_u64s: usize = schema
            .attrs
            .iter()
            .filter_map(|a| match a.kind {
                AttrKind::Categorical { cardinality } => Some(cardinality as usize * classes),
                AttrKind::Continuous => None,
            })
            .sum();

        let mut total = 0u64;

        // Presort: per continuous attribute, one sample allgather
        // (p−1 samples each), one all-to-all of the full list, and the
        // parallel shift's scan + allreduce + all-to-all.
        let entry = dtree::list::PACKED_ENTRY_BYTES as u64; // ContEntry payload
        for _ in 0..n_cont {
            total += self.cost.allgather(p, (p as u64 - 1) * entry);
            total += self.cost.alltoall(p, (n / p as u64) * entry);
            total += self.cost.tree(p, 8) * 2;
            total += self.cost.alltoall(p, (n / p as u64) * entry);
        }

        for l in trace {
            let per_rank = l.records / p as u64; // entries of one attribute
            let actives = l.active_nodes as u64;

            // FindSplitI: prefix scan of (hist, last) per (node, cont attr)
            // + allreduce of categorical count matrices.
            let scan_bytes = actives * n_cont as u64 * (classes as u64 * 8 + 8);
            total += self.cost.tree(p, scan_bytes);
            total += self.cost.tree(p, actives * cat_matrix_u64s as u64 * 8);
            // FindSplitII: allreduce of candidates.
            total += self.cost.tree(p, actives * 24);
            // PerformSplitI: node-table update (one all-to-all of
            // (idx, child) pairs) + the blocked-update round count
            // allreduce + the child-histogram allreduce.
            total += self.cost.alltoall(p, per_rank * 8);
            total += self.cost.tree(p, 8);
            total += self.cost.tree(p, l.splits as u64 * 2 * classes as u64 * 8);
            // PerformSplitII: per attribute, enquiry indices out (u32) and
            // Option<u8> verdicts back.
            for _ in 0..n_attrs {
                total += self.cost.alltoall(p, per_rank * 4);
                total += self.cost.alltoall(p, per_rank * 2);
            }
        }
        total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtree::data::AttrDef;

    fn schema() -> Schema {
        Schema::new(
            vec![
                AttrDef::continuous("x"),
                AttrDef::continuous("y"),
                AttrDef::categorical("g", 5),
            ],
            2,
        )
    }

    fn trace() -> Vec<LevelInfo> {
        vec![
            LevelInfo {
                active_nodes: 1,
                splits: 1,
                records: 10_000,
            },
            LevelInfo {
                active_nodes: 2,
                splits: 2,
                records: 10_000,
            },
            LevelInfo {
                active_nodes: 4,
                splits: 3,
                records: 6_000,
            },
        ]
    }

    #[test]
    fn serial_prediction_is_compute_only() {
        let m = AnalyticModel {
            serial_compute_ns: 2_000_000_000,
            cost: CostModel::t3d(),
        };
        assert_eq!(m.predict_s(&trace(), &schema(), 10_000, 1), 2.0);
    }

    #[test]
    fn prediction_decreases_then_flattens() {
        let m = AnalyticModel {
            serial_compute_ns: 2_000_000_000,
            cost: CostModel::t3d(),
        };
        let t: Vec<f64> = [2usize, 4, 8, 16, 32, 64]
            .iter()
            .map(|&p| m.predict_s(&trace(), &schema(), 10_000, p))
            .collect();
        // Strictly better through the compute-bound regime…
        assert!(t[1] < t[0] && t[2] < t[1]);
        // …and the marginal gain shrinks as latency terms take over.
        let g1 = t[0] - t[1];
        let g4 = t[4] - t[5];
        assert!(g4 < g1);
    }

    #[test]
    fn comm_grows_with_levels_and_records() {
        let m = AnalyticModel {
            serial_compute_ns: 0,
            cost: CostModel::t3d(),
        };
        let small = m.comm_ns(&trace()[..1], &schema(), 10_000, 8);
        let full = m.comm_ns(&trace(), &schema(), 10_000, 8);
        assert!(full > small);
        let big_records: Vec<LevelInfo> = trace()
            .iter()
            .map(|l| LevelInfo {
                records: l.records * 10,
                ..*l
            })
            .collect();
        assert!(m.comm_ns(&big_records, &schema(), 100_000, 8) > full);
    }

    #[test]
    fn free_cost_model_predicts_ideal_speedup() {
        let m = AnalyticModel {
            serial_compute_ns: 1_000_000_000,
            cost: CostModel::free(),
        };
        let t1 = m.predict_s(&trace(), &schema(), 10_000, 1);
        let t8 = m.predict_s(&trace(), &schema(), 10_000, 8);
        assert!((t1 / t8 - 8.0).abs() < 1e-9);
    }
}
