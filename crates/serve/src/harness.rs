//! The concurrent scoring harness: a std-only thread-pool server loop with
//! a bounded request queue, per-request batching, backpressure, graceful
//! shutdown, and latency/throughput statistics.
//!
//! A [`Server`] owns one compiled [`FlatTree`] replica shared by all
//! workers. Clients [`Server::submit`] a [`Request`] naming a record range
//! of a shared dataset; the request is scored as **one batch** through
//! [`FlatTree::predict_range`] and answered on a per-request channel.
//! When the pending queue holds `queue_depth` requests, further submissions
//! are **rejected** (`SubmitError::QueueFull`) instead of queued — the
//! overload answer of a serving system is load-shedding, not unbounded
//! buffering. [`Server::shutdown`] stops intake, lets the workers drain
//! every queued request, joins them, and returns the final
//! [`StatsReport`].
//!
//! Latency is measured enqueue → completion (it includes queue wait — the
//! figure a client observes), and throughput is records scored over the
//! span from first enqueue to last completion.

use std::collections::VecDeque;
use std::fmt;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dtree::data::Dataset;
use dtree::flat::FlatTree;

/// Serving-harness configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker threads scoring batches (at least 1).
    pub workers: usize,
    /// Maximum pending (accepted, not yet started) requests; submissions
    /// beyond this are rejected with [`SubmitError::QueueFull`].
    pub queue_depth: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_depth: 64,
        }
    }
}

/// One scoring request: records `[lo, hi)` of a shared dataset.
#[derive(Clone, Debug)]
pub struct Request {
    /// The dataset holding the records (shared, not copied per request).
    pub data: Arc<Dataset>,
    /// First record of the batch.
    pub lo: usize,
    /// One past the last record of the batch.
    pub hi: usize,
}

/// Answer to one [`Request`].
#[derive(Clone, Debug)]
pub struct Response {
    /// Echo of the request's record range.
    pub lo: usize,
    /// Echo of the request's record range.
    pub hi: usize,
    /// Predicted class per record of the range.
    pub predictions: Vec<u8>,
    /// Enqueue-to-completion latency of this request.
    pub latency: Duration,
}

/// Why a submission was not accepted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The pending queue is at `queue_depth`; shed load and retry later.
    QueueFull,
    /// [`Server::shutdown`] has begun; no new work is accepted.
    ShuttingDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "request queue full"),
            SubmitError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

enum Job {
    Score {
        req: Request,
        enqueued: Instant,
        reply: Sender<Response>,
    },
    /// Test-only: announce pickup on the first gate, then park the worker
    /// until the second opens, so queue-full and drain behavior can be
    /// exercised deterministically.
    #[cfg(test)]
    Block {
        entered: Arc<Gate>,
        release: Arc<Gate>,
    },
}

#[cfg(test)]
struct Gate {
    open: Mutex<bool>,
    bell: Condvar,
}

#[cfg(test)]
impl Gate {
    fn new() -> Arc<Gate> {
        Arc::new(Gate {
            open: Mutex::new(false),
            bell: Condvar::new(),
        })
    }

    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.bell.notify_all();
    }

    fn wait(&self) {
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.bell.wait(open).unwrap();
        }
    }
}

struct State {
    queue: VecDeque<Job>,
    shutting_down: bool,
}

#[derive(Default)]
struct StatsInner {
    latencies_ns: Vec<u64>,
    records: u64,
    rejected: u64,
    first_enqueue: Option<Instant>,
    last_completion: Option<Instant>,
}

struct Shared {
    tree: FlatTree,
    state: Mutex<State>,
    job_ready: Condvar,
    stats: Mutex<StatsInner>,
    queue_depth: usize,
}

/// The serving harness; see the module docs for the lifecycle.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Start `cfg.workers` scoring threads over one compiled tree.
    pub fn start(tree: FlatTree, cfg: ServeConfig) -> Server {
        let shared = Arc::new(Shared {
            tree,
            state: Mutex::new(State {
                queue: VecDeque::new(),
                shutting_down: false,
            }),
            job_ready: Condvar::new(),
            stats: Mutex::new(StatsInner::default()),
            queue_depth: cfg.queue_depth.max(1),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Server { shared, workers }
    }

    /// Submit a batch for scoring. On acceptance, returns the channel the
    /// [`Response`] will arrive on; on overload or during shutdown, the
    /// request is rejected immediately.
    pub fn submit(&self, req: Request) -> Result<Receiver<Response>, SubmitError> {
        assert!(
            req.lo <= req.hi && req.hi <= req.data.len(),
            "request range out of bounds"
        );
        let (reply, rx) = channel();
        let job = Job::Score {
            req,
            enqueued: Instant::now(),
            reply,
        };
        self.enqueue(job)?;
        Ok(rx)
    }

    fn enqueue(&self, job: Job) -> Result<(), SubmitError> {
        let mut state = self.shared.state.lock().unwrap();
        if state.shutting_down {
            return Err(SubmitError::ShuttingDown);
        }
        if state.queue.len() >= self.shared.queue_depth {
            drop(state);
            self.shared.stats.lock().unwrap().rejected += 1;
            return Err(SubmitError::QueueFull);
        }
        state.queue.push_back(job);
        drop(state);
        let mut stats = self.shared.stats.lock().unwrap();
        stats.first_enqueue.get_or_insert_with(Instant::now);
        drop(stats);
        self.shared.job_ready.notify_one();
        Ok(())
    }

    /// Submit and wait for the response (convenience for callers without
    /// their own pipelining).
    pub fn score_blocking(&self, req: Request) -> Result<Response, SubmitError> {
        let rx = self.submit(req)?;
        Ok(rx.recv().expect("worker dropped a pending reply"))
    }

    /// Snapshot of the statistics so far.
    pub fn stats(&self) -> StatsReport {
        StatsReport::from_inner(&self.shared.stats.lock().unwrap())
    }

    /// Stop accepting work, drain every queued request, join the workers,
    /// and return the final report. Responses to already-accepted requests
    /// are all delivered before this returns.
    pub fn shutdown(mut self) -> StatsReport {
        self.begin_shutdown();
        for w in self.workers.drain(..) {
            w.join().expect("serve worker panicked");
        }
        self.stats()
    }

    fn begin_shutdown(&self) {
        self.shared.state.lock().unwrap().shutting_down = true;
        self.shared.job_ready.notify_all();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // A dropped (not shut down) server must not leave workers parked on
        // the condvar forever.
        self.begin_shutdown();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break job;
                }
                if state.shutting_down {
                    return;
                }
                state = shared.job_ready.wait(state).unwrap();
            }
        };
        match job {
            Job::Score {
                req,
                enqueued,
                reply,
            } => {
                let mut predictions = vec![0u8; req.hi - req.lo];
                shared
                    .tree
                    .predict_range(&req.data, req.lo, req.hi, &mut predictions);
                let latency = enqueued.elapsed();
                {
                    let mut stats = shared.stats.lock().unwrap();
                    stats.latencies_ns.push(latency.as_nanos() as u64);
                    stats.records += (req.hi - req.lo) as u64;
                    stats.last_completion = Some(Instant::now());
                }
                // A client that dropped its receiver just loses the answer.
                let _ = reply.send(Response {
                    lo: req.lo,
                    hi: req.hi,
                    predictions,
                    latency,
                });
            }
            #[cfg(test)]
            Job::Block { entered, release } => {
                entered.open();
                release.wait();
            }
        }
    }
}

/// Latency/throughput summary of a serving run.
#[derive(Clone, Debug)]
pub struct StatsReport {
    /// Completed requests.
    pub requests: u64,
    /// Records scored across completed requests.
    pub records: u64,
    /// Submissions rejected by backpressure.
    pub rejected: u64,
    /// Median enqueue-to-completion latency.
    pub p50: Duration,
    /// 99th-percentile enqueue-to-completion latency.
    pub p99: Duration,
    /// First-enqueue to last-completion span.
    pub elapsed: Duration,
    /// Records per second over `elapsed`.
    pub records_per_sec: f64,
}

impl StatsReport {
    fn from_inner(inner: &StatsInner) -> StatsReport {
        let mut sorted = inner.latencies_ns.clone();
        sorted.sort_unstable();
        let pct = |q: f64| -> Duration {
            if sorted.is_empty() {
                return Duration::ZERO;
            }
            let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
            Duration::from_nanos(sorted[idx])
        };
        let elapsed = match (inner.first_enqueue, inner.last_completion) {
            (Some(t0), Some(t1)) => t1.duration_since(t0),
            _ => Duration::ZERO,
        };
        let records_per_sec = if elapsed.is_zero() {
            0.0
        } else {
            inner.records as f64 / elapsed.as_secs_f64()
        };
        StatsReport {
            requests: inner.latencies_ns.len() as u64,
            records: inner.records,
            rejected: inner.rejected,
            p50: pct(0.50),
            p99: pct(0.99),
            elapsed,
            records_per_sec,
        }
    }
}

impl fmt::Display for StatsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "serve: {} requests, {} records ({} rejected) | latency p50 {:.1}µs p99 {:.1}µs | {:.0} records/s",
            self.requests,
            self.records,
            self.rejected,
            self.p50.as_secs_f64() * 1e6,
            self.p99.as_secs_f64() * 1e6,
            self.records_per_sec,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtree::testgen::{self, TestRng};

    fn compiled_fixture(seed: u64, n: usize) -> (FlatTree, Arc<Dataset>) {
        let mut rng = TestRng::new(seed);
        let schema = testgen::random_schema(&mut rng);
        let tree = testgen::random_tree(&schema, &mut rng, 7, 200);
        let data = Arc::new(testgen::random_dataset(&schema, &mut rng, n));
        (FlatTree::compile(&tree), data)
    }

    #[test]
    fn serves_correct_predictions() {
        let (flat, data) = compiled_fixture(11, 1000);
        let mut expect = vec![0u8; data.len()];
        flat.predict_batch(&data, &mut expect);

        let server = Server::start(flat, ServeConfig::default());
        let rxs: Vec<_> = (0..10)
            .map(|i| {
                let (lo, hi) = (i * 100, (i + 1) * 100);
                server
                    .submit(Request {
                        data: Arc::clone(&data),
                        lo,
                        hi,
                    })
                    .unwrap()
            })
            .collect();
        for (i, rx) in rxs.into_iter().enumerate() {
            let resp = rx.recv().unwrap();
            assert_eq!(resp.lo, i * 100);
            assert_eq!(&resp.predictions[..], &expect[resp.lo..resp.hi]);
        }
        let report = server.shutdown();
        assert_eq!(report.requests, 10);
        assert_eq!(report.records, 1000);
        assert_eq!(report.rejected, 0);
        assert!(report.records_per_sec > 0.0);
        assert!(report.p99 >= report.p50);
    }

    #[test]
    fn queue_full_rejects_and_recovers() {
        let (flat, data) = compiled_fixture(13, 64);
        let server = Server::start(
            flat,
            ServeConfig {
                workers: 1,
                queue_depth: 2,
            },
        );
        // Park the only worker so the queue cannot drain.
        let entered = Gate::new();
        let release = Gate::new();
        server
            .enqueue(Job::Block {
                entered: Arc::clone(&entered),
                release: Arc::clone(&release),
            })
            .unwrap();
        entered.wait(); // the worker holds the job, the queue is empty

        let req = || Request {
            data: Arc::clone(&data),
            lo: 0,
            hi: 64,
        };
        let rx1 = server.submit(req()).unwrap();
        let rx2 = server.submit(req()).unwrap();
        // Queue holds 2 pending score requests: depth reached.
        assert_eq!(server.submit(req()).unwrap_err(), SubmitError::QueueFull);
        assert_eq!(server.submit(req()).unwrap_err(), SubmitError::QueueFull);

        release.open();
        // The parked worker drains the queue; both accepted requests answer.
        assert_eq!(rx1.recv().unwrap().predictions.len(), 64);
        assert_eq!(rx2.recv().unwrap().predictions.len(), 64);
        // Capacity is available again.
        let rx3 = server.submit(req()).unwrap();
        rx3.recv().unwrap();

        let report = server.shutdown();
        assert_eq!(report.rejected, 2);
        assert_eq!(report.requests, 3);
    }

    #[test]
    fn graceful_shutdown_drains_inflight_requests() {
        let (flat, data) = compiled_fixture(17, 512);
        let mut expect = vec![0u8; data.len()];
        flat.predict_batch(&data, &mut expect);
        let server = Server::start(
            flat,
            ServeConfig {
                workers: 2,
                queue_depth: 64,
            },
        );
        // Park both workers, fill the queue, then shut down: every accepted
        // request must still be answered.
        let release = Gate::new();
        for _ in 0..2 {
            let entered = Gate::new();
            server
                .enqueue(Job::Block {
                    entered: Arc::clone(&entered),
                    release: Arc::clone(&release),
                })
                .unwrap();
            entered.wait();
        }
        let rxs: Vec<_> = (0..8)
            .map(|i| {
                server
                    .submit(Request {
                        data: Arc::clone(&data),
                        lo: i * 64,
                        hi: (i + 1) * 64,
                    })
                    .unwrap()
            })
            .collect();
        release.open();
        let report = server.shutdown();
        assert_eq!(report.requests, 8);
        assert_eq!(report.records, 512);
        for (i, rx) in rxs.into_iter().enumerate() {
            let resp = rx.recv().unwrap();
            assert_eq!(&resp.predictions[..], &expect[i * 64..(i + 1) * 64]);
        }
    }

    #[test]
    fn shutdown_rejects_new_work() {
        let (flat, data) = compiled_fixture(19, 16);
        let server = Server::start(flat, ServeConfig::default());
        server.begin_shutdown();
        assert_eq!(
            server
                .submit(Request {
                    data: Arc::clone(&data),
                    lo: 0,
                    hi: 16
                })
                .unwrap_err(),
            SubmitError::ShuttingDown
        );
        let report = server.shutdown();
        assert_eq!(report.requests, 0);
        assert_eq!(report.records_per_sec, 0.0);
    }

    #[test]
    fn report_renders() {
        let (flat, data) = compiled_fixture(23, 128);
        let server = Server::start(flat, ServeConfig::default());
        server
            .score_blocking(Request {
                data: Arc::clone(&data),
                lo: 0,
                hi: 128,
            })
            .unwrap();
        let text = server.shutdown().to_string();
        assert!(text.contains("1 requests"), "{text}");
        assert!(text.contains("records/s"), "{text}");
    }
}
