//! The concurrent scoring harness: a std-only thread-pool server loop with
//! a bounded request queue, per-request batching, backpressure, graceful
//! shutdown, and latency/throughput statistics.
//!
//! A [`Server`] owns one compiled [`FlatTree`] replica shared by all
//! workers. Clients [`Server::submit`] a [`Request`] naming a record range
//! of a shared dataset; the request is scored as **one batch** through
//! [`FlatTree::predict_range`] and answered on a per-request channel.
//! When the pending queue holds `queue_depth` requests, further submissions
//! are **rejected** (`SubmitError::QueueFull`) instead of queued — the
//! overload answer of a serving system is load-shedding, not unbounded
//! buffering. [`Server::shutdown`] stops intake, lets the workers drain
//! every queued request, joins them, and returns the final
//! [`StatsReport`].
//!
//! Latency is measured enqueue → completion (it includes queue wait — the
//! figure a client observes), and throughput is records scored over the
//! span from first enqueue to last completion.
//!
//! # Degradation under faults and overload
//!
//! Three hardening layers keep an unhealthy server answering instead of
//! collapsing, each surfaced as a counter in [`StatsReport`]:
//!
//! * **Deadlines** — with [`ServeConfig::deadline`] set, a request whose
//!   queue wait has already blown the deadline when a worker picks it up is
//!   answered immediately with [`ResponseStatus::TimedOut`] (no scoring):
//!   under overload, stale work is discarded rather than allowed to delay
//!   fresh work further.
//! * **Bounded retry** — a transiently failing scoring attempt (injected
//!   via [`Server::inject_failures`]; real deployments would map I/O or
//!   accelerator hiccups here) is retried up to
//!   [`ServeConfig::max_retries`] times with exponential backoff, then
//!   answered [`ResponseStatus::Failed`] — an error is a response, not a
//!   hang.
//! * **Degraded mode** — when the queue reaches
//!   [`ServeConfig::shed_high`], the server sheds *all* new submissions
//!   ([`SubmitError::Degraded`]) until the queue drains to
//!   [`ServeConfig::shed_low`]; the hysteresis gap prevents flapping at
//!   the boundary.
//!
//! # Panic isolation
//!
//! A panicking scoring attempt (a poisoned model, an injected chaos
//! fault) must cost exactly one answer, never the process:
//!
//! * each request is scored under `catch_unwind`, so a panic answers that
//!   one request [`ResponseStatus::Failed`] and the worker keeps draining;
//! * every shared structure is locked through the poison-recovering
//!   helpers in [`crate::sync`], so a thread that *does* die while holding
//!   a lock cannot cascade into every other thread;
//! * a worker thread that dies outright is counted
//!   ([`StatsReport::worker_panics`]) and [`Server::shutdown`] still joins
//!   the survivors, drains the queue (answering `Failed` itself if no
//!   worker is left), and returns the report — it never panics on a
//!   panicked worker;
//! * the resulting [`Health`] (`Healthy` → `Degraded` → `Failed`) is part
//!   of every [`StatsReport`].

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dtree::data::Dataset;
use dtree::flat::FlatTree;
use dtree::flat_forest::FlatForest;

use crate::slot::{ModelGeneration, ModelSlot};
use crate::sync;

/// Liveness of a supervised component, coarsened to what an operator (or
/// a supervising runtime) acts on. Shared by the serving harness and the
/// live stream supervisor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Health {
    /// Every thread alive, no panic observed.
    Healthy,
    /// Still answering, but something died, stalled, or leaked — `reason`
    /// says what.
    Degraded {
        /// Human-readable cause of the degradation.
        reason: String,
    },
    /// No longer able to make progress (every worker dead, or a restart
    /// budget exhausted).
    Failed,
}

impl Health {
    /// Whether this state still answers requests.
    pub fn is_serving(&self) -> bool {
        !matches!(self, Health::Failed)
    }
}

impl fmt::Display for Health {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Health::Healthy => write!(f, "healthy"),
            Health::Degraded { reason } => write!(f, "degraded ({reason})"),
            Health::Failed => write!(f, "failed"),
        }
    }
}

/// What a [`Server`] scores with: one compiled tree or a whole compiled
/// forest. Both expose the same batched range kernel, so the worker loop,
/// queueing, and degradation machinery are model-agnostic.
#[derive(Clone, Debug)]
pub enum ServeModel {
    /// A single compiled decision tree.
    Tree(FlatTree),
    /// A compiled forest answering with its vote reduce.
    Forest(FlatForest),
}

impl ServeModel {
    /// Score records `[lo, hi)` of `data` into `out` (one class per record).
    pub fn predict_range(&self, data: &Dataset, lo: usize, hi: usize, out: &mut [u8]) {
        match self {
            ServeModel::Tree(t) => t.predict_range(data, lo, hi, out),
            ServeModel::Forest(f) => f.predict_range(data, lo, hi, out),
        }
    }

    /// Heap bytes of the replica (memory-ledger accounting).
    pub fn heap_bytes(&self) -> u64 {
        match self {
            ServeModel::Tree(t) => t.heap_bytes(),
            ServeModel::Forest(f) => f.heap_bytes(),
        }
    }

    /// Health contributed by the *model* itself: a forest serving fewer
    /// member trees than its quorum floor is `Degraded` (it still
    /// answers, with bounded accuracy loss); everything else is `Healthy`.
    pub fn health(&self) -> Health {
        match self {
            ServeModel::Tree(_) => Health::Healthy,
            ServeModel::Forest(f) if f.below_quorum() => Health::Degraded {
                reason: format!(
                    "forest below quorum: {} of {} trees serving (quorum {})",
                    f.n_trees(),
                    f.planned(),
                    f.quorum_min()
                ),
            },
            ServeModel::Forest(_) => Health::Healthy,
        }
    }
}

impl From<FlatTree> for ServeModel {
    fn from(tree: FlatTree) -> Self {
        ServeModel::Tree(tree)
    }
}

impl From<FlatForest> for ServeModel {
    fn from(forest: FlatForest) -> Self {
        ServeModel::Forest(forest)
    }
}

/// Serving-harness configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker threads scoring batches (at least 1).
    pub workers: usize,
    /// Maximum pending (accepted, not yet started) requests; submissions
    /// beyond this are rejected with [`SubmitError::QueueFull`].
    pub queue_depth: usize,
    /// Per-request deadline, measured from enqueue. A request picked up
    /// after its deadline is answered [`ResponseStatus::TimedOut`] without
    /// being scored. `None` (the default) disables deadlines.
    pub deadline: Option<Duration>,
    /// Retries per request on transient scoring failure before answering
    /// [`ResponseStatus::Failed`].
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub retry_backoff: Duration,
    /// Queue length at which the server enters degraded mode and sheds all
    /// new submissions ([`SubmitError::Degraded`]). `None` (the default)
    /// disables degraded mode.
    pub shed_high: Option<usize>,
    /// Queue length the degraded server must drain to before accepting
    /// again. Keep below `shed_high` — the hysteresis gap stops the mode
    /// from flapping at the boundary.
    pub shed_low: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_depth: 64,
            deadline: None,
            max_retries: 2,
            retry_backoff: Duration::from_micros(50),
            shed_high: None,
            shed_low: 0,
        }
    }
}

/// One scoring request: records `[lo, hi)` of a shared dataset.
#[derive(Clone, Debug)]
pub struct Request {
    /// The dataset holding the records (shared, not copied per request).
    pub data: Arc<Dataset>,
    /// First record of the batch.
    pub lo: usize,
    /// One past the last record of the batch.
    pub hi: usize,
}

/// How a [`Request`] ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResponseStatus {
    /// Scored; `predictions` holds one class per record.
    Ok,
    /// Deadline expired in the queue; the batch was never scored.
    TimedOut,
    /// Every retry hit a transient failure; the batch was not scored.
    Failed,
}

/// Answer to one [`Request`].
#[derive(Clone, Debug)]
pub struct Response {
    /// Echo of the request's record range.
    pub lo: usize,
    /// Echo of the request's record range.
    pub hi: usize,
    /// How the request ended; `predictions` is empty unless `Ok`.
    pub status: ResponseStatus,
    /// Predicted class per record of the range.
    pub predictions: Vec<u8>,
    /// Enqueue-to-completion latency of this request.
    pub latency: Duration,
    /// Model generation that answered (for `Ok`, the generation whose
    /// model scored every record of the batch; for `TimedOut`/`Failed`,
    /// the generation current when the request was dispatched).
    pub generation: u64,
}

/// Why a submission was not accepted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The pending queue is at `queue_depth`; shed load and retry later.
    QueueFull,
    /// Degraded mode: the queue crossed [`ServeConfig::shed_high`] and has
    /// not yet drained to [`ServeConfig::shed_low`].
    Degraded,
    /// [`Server::shutdown`] has begun; no new work is accepted.
    ShuttingDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "request queue full"),
            SubmitError::Degraded => write!(f, "server degraded, shedding load"),
            SubmitError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

enum Job {
    Score {
        req: Request,
        enqueued: Instant,
        reply: Sender<Response>,
    },
    /// Test-only: announce pickup on the first gate, then park the worker
    /// until the second opens, so queue-full and drain behavior can be
    /// exercised deterministically.
    #[cfg(test)]
    Block {
        entered: Arc<Gate>,
        release: Arc<Gate>,
    },
    /// Test-only: kill the worker thread outright (the panic escapes the
    /// per-job isolation), so worker-death accounting and survivor drain
    /// can be exercised.
    #[cfg(test)]
    Die,
}

#[cfg(test)]
struct Gate {
    open: Mutex<bool>,
    bell: Condvar,
}

#[cfg(test)]
impl Gate {
    fn new() -> Arc<Gate> {
        Arc::new(Gate {
            open: Mutex::new(false),
            bell: Condvar::new(),
        })
    }

    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.bell.notify_all();
    }

    fn wait(&self) {
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.bell.wait(open).unwrap();
        }
    }
}

struct State {
    queue: VecDeque<Job>,
    shutting_down: bool,
    degraded: bool,
}

#[derive(Default)]
struct StatsInner {
    latencies_ns: Vec<u64>,
    records: u64,
    rejected: u64,
    timeouts: u64,
    retries: u64,
    shed: u64,
    failed: u64,
    /// Panics observed in workers: per-request scoring panics (isolated,
    /// answered `Failed`) plus worker threads that died outright.
    worker_panics: u64,
    /// Worker threads that exited by panic (the loop itself died).
    workers_dead: u64,
    first_enqueue: Option<Instant>,
    last_completion: Option<Instant>,
    /// Completed-request windows in completion order, one entry per
    /// maximal run of consecutive completions served by the same model
    /// generation.
    gen_windows: Vec<GenerationWindow>,
}

impl StatsInner {
    fn note_served(&mut self, generation: u64, records: u64) {
        match self.gen_windows.last_mut() {
            Some(w) if w.generation == generation => {
                w.requests += 1;
                w.records += records;
            }
            _ => self.gen_windows.push(GenerationWindow {
                generation,
                requests: 1,
                records,
            }),
        }
    }
}

struct Shared {
    slot: Arc<ModelSlot>,
    state: Mutex<State>,
    job_ready: Condvar,
    stats: Mutex<StatsInner>,
    queue_depth: usize,
    cfg: ServeConfig,
    /// Worker threads actually spawned (for the all-dead health check).
    worker_count: usize,
    /// Pending injected transient failures: each scoring attempt that
    /// successfully decrements this fails once (chaos/test hook).
    fail_budget: AtomicU64,
    /// Pending injected scoring *panics*: each scoring attempt that
    /// successfully decrements this panics once inside the per-job
    /// isolation (chaos/test hook for panic containment).
    panic_budget: AtomicU64,
}

/// The serving harness; see the module docs for the lifecycle.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Start `cfg.workers` scoring threads over one compiled tree.
    pub fn start(tree: FlatTree, cfg: ServeConfig) -> Server {
        Server::start_model(ServeModel::Tree(tree), cfg)
    }

    /// Start `cfg.workers` scoring threads over one compiled forest: every
    /// request is answered with the forest's vote reduce.
    pub fn start_forest(forest: FlatForest, cfg: ServeConfig) -> Server {
        Server::start_model(ServeModel::Forest(forest), cfg)
    }

    /// Start the harness over any [`ServeModel`], served as generation 0
    /// of a fresh slot.
    pub fn start_model(model: ServeModel, cfg: ServeConfig) -> Server {
        Server::start_slot(ModelSlot::new(0, model), cfg)
    }

    /// Start the harness over an existing [`ModelSlot`] — the hot-swap
    /// entry point. The caller (typically a streaming trainer) keeps its
    /// own `Arc` and publishes new generations through it while the
    /// server runs.
    pub fn start_slot(slot: Arc<ModelSlot>, cfg: ServeConfig) -> Server {
        let worker_count = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            slot,
            state: Mutex::new(State {
                queue: VecDeque::new(),
                shutting_down: false,
                degraded: false,
            }),
            job_ready: Condvar::new(),
            stats: Mutex::new(StatsInner::default()),
            queue_depth: cfg.queue_depth.max(1),
            cfg,
            worker_count,
            fail_budget: AtomicU64::new(0),
            panic_budget: AtomicU64::new(0),
        });
        let workers = (0..worker_count)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    // Last line of defense: a panic that escapes the
                    // per-job isolation kills only this worker, and the
                    // death is accounted rather than propagated.
                    if catch_unwind(AssertUnwindSafe(|| worker_loop(&shared))).is_err() {
                        let mut stats = sync::lock(&shared.stats);
                        stats.worker_panics += 1;
                        stats.workers_dead += 1;
                    }
                })
            })
            .collect();
        Server { shared, workers }
    }

    /// Submit a batch for scoring. On acceptance, returns the channel the
    /// [`Response`] will arrive on; on overload or during shutdown, the
    /// request is rejected immediately.
    pub fn submit(&self, req: Request) -> Result<Receiver<Response>, SubmitError> {
        assert!(
            req.lo <= req.hi && req.hi <= req.data.len(),
            "request range out of bounds"
        );
        let (reply, rx) = channel();
        let job = Job::Score {
            req,
            enqueued: Instant::now(),
            reply,
        };
        self.enqueue(job)?;
        Ok(rx)
    }

    /// The slot this server scores through; publish new generations here.
    pub fn slot(&self) -> Arc<ModelSlot> {
        Arc::clone(&self.shared.slot)
    }

    /// Hot-swap the served model (see [`ModelSlot::publish`]): in-flight
    /// batches finish on the old generation, later pickups see the new.
    pub fn publish(&self, generation: u64, model: ServeModel) {
        self.shared.slot.publish(generation, model);
    }

    /// Make the next `n` scoring attempts fail transiently (chaos/test
    /// hook: the stand-in for I/O or accelerator hiccups). Each failed
    /// attempt consumes one unit, so a request retried to success drains
    /// several.
    pub fn inject_failures(&self, n: u64) {
        self.shared.fail_budget.fetch_add(n, Ordering::SeqCst);
    }

    /// Make the next `n` scoring attempts *panic* (chaos/test hook for
    /// panic containment): each panics inside the per-job isolation, so
    /// it costs one `Failed` answer and one `worker_panics` count — never
    /// the worker, never the process.
    pub fn inject_panics(&self, n: u64) {
        self.shared.panic_budget.fetch_add(n, Ordering::SeqCst);
    }

    fn enqueue(&self, job: Job) -> Result<(), SubmitError> {
        let mut state = sync::lock(&self.shared.state);
        if state.shutting_down {
            return Err(SubmitError::ShuttingDown);
        }
        if let Some(high) = self.shared.cfg.shed_high {
            // Hysteresis: trip at `high`, re-arm only once drained to
            // `shed_low`.
            if state.degraded {
                if state.queue.len() <= self.shared.cfg.shed_low {
                    state.degraded = false;
                }
            } else if state.queue.len() >= high {
                state.degraded = true;
            }
            if state.degraded {
                drop(state);
                sync::lock(&self.shared.stats).shed += 1;
                return Err(SubmitError::Degraded);
            }
        }
        if state.queue.len() >= self.shared.queue_depth {
            drop(state);
            sync::lock(&self.shared.stats).rejected += 1;
            return Err(SubmitError::QueueFull);
        }
        state.queue.push_back(job);
        drop(state);
        let mut stats = sync::lock(&self.shared.stats);
        stats.first_enqueue.get_or_insert_with(Instant::now);
        drop(stats);
        self.shared.job_ready.notify_one();
        Ok(())
    }

    /// Submit and wait for the response (convenience for callers without
    /// their own pipelining). If the worker holding the reply died before
    /// answering, a synthesized [`ResponseStatus::Failed`] response is
    /// returned — a dead worker is an error answer, not a hang or a
    /// panic in the client.
    pub fn score_blocking(&self, req: Request) -> Result<Response, SubmitError> {
        let (lo, hi) = (req.lo, req.hi);
        let submitted = Instant::now();
        let rx = self.submit(req)?;
        match rx.recv() {
            Ok(resp) => Ok(resp),
            Err(_) => {
                sync::lock(&self.shared.stats).failed += 1;
                Ok(Response {
                    lo,
                    hi,
                    status: ResponseStatus::Failed,
                    predictions: Vec::new(),
                    latency: submitted.elapsed(),
                    generation: self.shared.slot.generation(),
                })
            }
        }
    }

    /// Snapshot of the statistics so far. The health verdict folds in the
    /// *currently published* model: a below-quorum forest degrades the
    /// report even when every worker is alive.
    pub fn stats(&self) -> StatsReport {
        let model_health = self.shared.slot.current().model.health();
        StatsReport::from_inner(
            &sync::lock(&self.shared.stats),
            self.shared.worker_count,
            model_health,
        )
    }

    /// Stop accepting work, drain every queued request, join the workers,
    /// and return the final report. Responses to already-accepted requests
    /// are all delivered before this returns — by the surviving workers,
    /// or by this thread itself (as `Failed`) when every worker died. A
    /// panicked worker is counted in [`StatsReport::worker_panics`], never
    /// re-thrown.
    pub fn shutdown(mut self) -> StatsReport {
        self.begin_shutdown();
        for w in self.workers.drain(..) {
            // Worker-loop panics are already caught and counted inside the
            // thread; a join error would mean the counting itself died, so
            // count it here too rather than propagate.
            if w.join().is_err() {
                let mut stats = sync::lock(&self.shared.stats);
                stats.worker_panics += 1;
                stats.workers_dead += 1;
            }
        }
        // With every worker dead, accepted requests may still sit in the
        // queue; answer them Failed so no client hangs on a reply channel.
        loop {
            let job = sync::lock(&self.shared.state).queue.pop_front();
            let Some(job) = job else { break };
            match job {
                Job::Score {
                    req,
                    enqueued,
                    reply,
                } => {
                    sync::lock(&self.shared.stats).failed += 1;
                    let generation = self.shared.slot.generation();
                    let _ = reply.send(Response {
                        lo: req.lo,
                        hi: req.hi,
                        status: ResponseStatus::Failed,
                        predictions: Vec::new(),
                        latency: enqueued.elapsed(),
                        generation,
                    });
                }
                #[cfg(test)]
                _ => {}
            }
        }
        self.stats()
    }

    fn begin_shutdown(&self) {
        sync::lock(&self.shared.state).shutting_down = true;
        self.shared.job_ready.notify_all();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // A dropped (not shut down) server must not leave workers parked on
        // the condvar forever.
        self.begin_shutdown();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = sync::lock(&shared.state);
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break job;
                }
                if state.shutting_down {
                    return;
                }
                state = sync::wait(&shared.job_ready, state);
            }
        };
        match job {
            Job::Score {
                req,
                enqueued,
                reply,
            } => {
                // Per-job panic isolation: a panic while scoring (a
                // poisoned model, an injected fault) costs this one
                // request a Failed answer, never the worker.
                let generation = shared.slot.generation();
                if catch_unwind(AssertUnwindSafe(|| {
                    handle_score(shared, &req, enqueued, &reply)
                }))
                .is_err()
                {
                    let mut stats = sync::lock(&shared.stats);
                    stats.worker_panics += 1;
                    stats.failed += 1;
                    drop(stats);
                    let _ = reply.send(Response {
                        lo: req.lo,
                        hi: req.hi,
                        status: ResponseStatus::Failed,
                        predictions: Vec::new(),
                        latency: enqueued.elapsed(),
                        generation,
                    });
                }
            }
            #[cfg(test)]
            Job::Block { entered, release } => {
                entered.open();
                release.wait();
            }
            #[cfg(test)]
            Job::Die => panic!("[injected] worker killed by Job::Die"),
        }
    }
}

/// Score one request (deadline check, bounded retry, batch kernel, stats).
/// Runs under the per-job `catch_unwind` in [`worker_loop`].
fn handle_score(shared: &Shared, req: &Request, enqueued: Instant, reply: &Sender<Response>) {
    // Pin the model generation for this whole request: the batch is scored
    // entirely by `pinned.model` even if a new generation is published
    // mid-batch, and the generation id in the response names exactly the
    // model that answered.
    let pinned: Arc<ModelGeneration> = shared.slot.current();

    // A request that already blew its deadline in the queue is answered
    // without scoring: under overload, stale work is dropped rather than
    // allowed to delay fresh work.
    if let Some(deadline) = shared.cfg.deadline {
        if enqueued.elapsed() > deadline {
            sync::lock(&shared.stats).timeouts += 1;
            let _ = reply.send(Response {
                lo: req.lo,
                hi: req.hi,
                status: ResponseStatus::TimedOut,
                predictions: Vec::new(),
                latency: enqueued.elapsed(),
                generation: pinned.generation,
            });
            return;
        }
    }

    if take_injected_panic(shared) {
        panic!("[injected] scoring panic");
    }

    // Transient failures are retried with exponential backoff; exhausting
    // the budget yields a Failed *response*, never a hang or a dead
    // worker.
    let mut attempt: u32 = 0;
    let failed = loop {
        if take_injected_failure(shared) {
            if attempt >= shared.cfg.max_retries {
                break true;
            }
            let backoff = shared
                .cfg
                .retry_backoff
                .saturating_mul(1u32 << attempt.min(16));
            attempt += 1;
            sync::lock(&shared.stats).retries += 1;
            if !backoff.is_zero() {
                std::thread::sleep(backoff);
            }
            continue;
        }
        break false;
    };
    if failed {
        sync::lock(&shared.stats).failed += 1;
        let _ = reply.send(Response {
            lo: req.lo,
            hi: req.hi,
            status: ResponseStatus::Failed,
            predictions: Vec::new(),
            latency: enqueued.elapsed(),
            generation: pinned.generation,
        });
        return;
    }

    let mut predictions = vec![0u8; req.hi - req.lo];
    pinned
        .model
        .predict_range(&req.data, req.lo, req.hi, &mut predictions);
    let latency = enqueued.elapsed();
    {
        let mut stats = sync::lock(&shared.stats);
        stats.latencies_ns.push(latency.as_nanos() as u64);
        stats.records += (req.hi - req.lo) as u64;
        stats.last_completion = Some(Instant::now());
        stats.note_served(pinned.generation, (req.hi - req.lo) as u64);
    }
    // A client that dropped its receiver just loses the answer.
    let _ = reply.send(Response {
        lo: req.lo,
        hi: req.hi,
        status: ResponseStatus::Ok,
        predictions,
        latency,
        generation: pinned.generation,
    });
}

/// One scoring attempt consumes one unit of the injected-failure budget.
fn take_injected_failure(shared: &Shared) -> bool {
    shared
        .fail_budget
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
        .is_ok()
}

/// One scoring attempt consumes one unit of the injected-panic budget.
fn take_injected_panic(shared: &Shared) -> bool {
    shared
        .panic_budget
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
        .is_ok()
}

/// One maximal run of consecutive completed requests all served by the
/// same model generation. The sequence of windows is the observable trace
/// of hot-swaps: a well-behaved run shows monotonically increasing
/// generation ids, and the sum of window `requests`/`records` equals the
/// report totals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GenerationWindow {
    /// Generation id that served the window.
    pub generation: u64,
    /// Completed requests in the window.
    pub requests: u64,
    /// Records scored in the window.
    pub records: u64,
}

/// Latency/throughput summary of a serving run.
#[derive(Clone, Debug)]
pub struct StatsReport {
    /// Completed (successfully scored) requests.
    pub requests: u64,
    /// Records scored across completed requests.
    pub records: u64,
    /// Submissions rejected by backpressure.
    pub rejected: u64,
    /// Submissions shed in degraded mode.
    pub shed: u64,
    /// Accepted requests answered `TimedOut` (deadline blown in queue).
    pub timeouts: u64,
    /// Scoring retries after transient failures (attempts, not requests).
    pub retries: u64,
    /// Accepted requests answered `Failed` (retry budget exhausted).
    pub failed: u64,
    /// Median enqueue-to-completion latency.
    pub p50: Duration,
    /// 99th-percentile enqueue-to-completion latency.
    pub p99: Duration,
    /// First-enqueue to last-completion span.
    pub elapsed: Duration,
    /// Records per second over `elapsed`.
    pub records_per_sec: f64,
    /// Panics observed in workers: isolated per-request scoring panics
    /// (each answered `Failed`) plus worker threads that died outright.
    pub worker_panics: u64,
    /// Worker threads that exited by panic and are no longer serving.
    pub workers_dead: u64,
    /// Liveness verdict: `Failed` only when *every* worker died;
    /// `Degraded` when any panic was observed **or** the published model
    /// is itself degraded (a forest serving below its quorum floor);
    /// `Healthy` otherwise.
    pub health: Health,
    /// Completed requests grouped into per-generation windows, in
    /// completion order — which model generation served each stretch of
    /// traffic (empty when nothing completed).
    pub generations: Vec<GenerationWindow>,
}

impl StatsReport {
    fn from_inner(inner: &StatsInner, worker_count: usize, model_health: Health) -> StatsReport {
        let health = if inner.workers_dead >= worker_count as u64 && worker_count > 0 {
            Health::Failed
        } else if inner.workers_dead > 0 {
            Health::Degraded {
                reason: format!("{} of {} workers dead", inner.workers_dead, worker_count),
            }
        } else if inner.worker_panics > 0 {
            Health::Degraded {
                reason: format!("{} scoring panic(s) isolated", inner.worker_panics),
            }
        } else {
            // Workers are fine; the model itself may still be degraded.
            model_health
        };
        let mut sorted = inner.latencies_ns.clone();
        sorted.sort_unstable();
        let pct = |q: f64| -> Duration {
            if sorted.is_empty() {
                return Duration::ZERO;
            }
            let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
            Duration::from_nanos(sorted[idx])
        };
        let elapsed = match (inner.first_enqueue, inner.last_completion) {
            (Some(t0), Some(t1)) => t1.duration_since(t0),
            _ => Duration::ZERO,
        };
        let records_per_sec = if elapsed.is_zero() {
            0.0
        } else {
            inner.records as f64 / elapsed.as_secs_f64()
        };
        StatsReport {
            requests: inner.latencies_ns.len() as u64,
            records: inner.records,
            rejected: inner.rejected,
            shed: inner.shed,
            timeouts: inner.timeouts,
            retries: inner.retries,
            failed: inner.failed,
            p50: pct(0.50),
            p99: pct(0.99),
            elapsed,
            records_per_sec,
            worker_panics: inner.worker_panics,
            workers_dead: inner.workers_dead,
            health,
            generations: inner.gen_windows.clone(),
        }
    }

    /// Distinct model generations that served at least one completed
    /// request.
    pub fn generations_served(&self) -> u64 {
        let mut gens: Vec<u64> = self.generations.iter().map(|w| w.generation).collect();
        gens.sort_unstable();
        gens.dedup();
        gens.len() as u64
    }
}

impl fmt::Display for StatsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "serve: {} requests, {} records ({} rejected, {} shed, {} timed out, {} failed, {} retries) | latency p50 {:.1}µs p99 {:.1}µs | {:.0} records/s",
            self.requests,
            self.records,
            self.rejected,
            self.shed,
            self.timeouts,
            self.failed,
            self.retries,
            self.p50.as_secs_f64() * 1e6,
            self.p99.as_secs_f64() * 1e6,
            self.records_per_sec,
        )?;
        if !self.generations.is_empty() {
            write!(f, " | {} model generation(s)", self.generations_served())?;
        }
        if self.health != Health::Healthy {
            write!(f, " | {} ({} panic(s))", self.health, self.worker_panics)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtree::testgen::{self, TestRng};

    fn compiled_fixture(seed: u64, n: usize) -> (FlatTree, Arc<Dataset>) {
        let mut rng = TestRng::new(seed);
        let schema = testgen::random_schema(&mut rng);
        let tree = testgen::random_tree(&schema, &mut rng, 7, 200);
        let data = Arc::new(testgen::random_dataset(&schema, &mut rng, n));
        (FlatTree::compile(&tree), data)
    }

    #[test]
    fn serves_correct_predictions() {
        let (flat, data) = compiled_fixture(11, 1000);
        let mut expect = vec![0u8; data.len()];
        flat.predict_batch(&data, &mut expect);

        let server = Server::start(flat, ServeConfig::default());
        let rxs: Vec<_> = (0..10)
            .map(|i| {
                let (lo, hi) = (i * 100, (i + 1) * 100);
                server
                    .submit(Request {
                        data: Arc::clone(&data),
                        lo,
                        hi,
                    })
                    .unwrap()
            })
            .collect();
        for (i, rx) in rxs.into_iter().enumerate() {
            let resp = rx.recv().unwrap();
            assert_eq!(resp.lo, i * 100);
            assert_eq!(&resp.predictions[..], &expect[resp.lo..resp.hi]);
        }
        let report = server.shutdown();
        assert_eq!(report.requests, 10);
        assert_eq!(report.records, 1000);
        assert_eq!(report.rejected, 0);
        assert!(report.records_per_sec > 0.0);
        assert!(report.p99 >= report.p50);
    }

    #[test]
    fn forest_server_matches_batch_kernel() {
        use dtree::flat_forest::{FlatForest, VoteReduce};
        let mut rng = TestRng::new(47);
        let schema = testgen::random_schema(&mut rng);
        let trees = testgen::random_forest(&schema, &mut rng, 5, 5, 60);
        let data = Arc::new(testgen::random_dataset(&schema, &mut rng, 600));
        let forest = FlatForest::compile(&trees, VoteReduce::Majority);
        let mut expect = vec![0u8; data.len()];
        forest.predict_batch(&data, &mut expect);

        let server = Server::start_forest(forest, ServeConfig::default());
        let rxs: Vec<_> = (0..6)
            .map(|i| {
                server
                    .submit(Request {
                        data: Arc::clone(&data),
                        lo: i * 100,
                        hi: (i + 1) * 100,
                    })
                    .unwrap()
            })
            .collect();
        for rx in rxs {
            let resp = rx.recv().unwrap();
            assert_eq!(resp.status, ResponseStatus::Ok);
            assert_eq!(&resp.predictions[..], &expect[resp.lo..resp.hi]);
        }
        let report = server.shutdown();
        assert_eq!(report.records, 600);
    }

    #[test]
    fn below_quorum_forest_serves_degraded() {
        use dtree::flat_forest::{FlatForest, VoteReduce};
        let mut rng = TestRng::new(53);
        let schema = testgen::random_schema(&mut rng);
        let trees = testgen::random_forest(&schema, &mut rng, 4, 5, 60);
        let data = Arc::new(testgen::random_dataset(&schema, &mut rng, 200));
        let full = FlatForest::compile(&trees, VoteReduce::Majority).with_quorum_min(3);

        // At quorum: healthy.
        let server = Server::start_forest(full.clone(), ServeConfig::default());
        assert_eq!(server.stats().health, Health::Healthy);
        server.shutdown();

        // Two of four trees lost: below the quorum floor of 3, so the
        // server *answers* but reports itself degraded.
        let partial = full.with_missing(&[false, true, true, false]);
        let mut expect = vec![0u8; data.len()];
        partial.predict_batch(&data, &mut expect);
        let server = Server::start_forest(partial, ServeConfig::default());
        let rx = server
            .submit(Request {
                data: Arc::clone(&data),
                lo: 0,
                hi: data.len(),
            })
            .unwrap();
        let resp = rx.recv().unwrap();
        assert_eq!(resp.status, ResponseStatus::Ok);
        assert_eq!(resp.predictions, expect);
        let report = server.shutdown();
        assert!(
            matches!(&report.health, Health::Degraded { reason } if reason.contains("quorum")),
            "health: {:?}",
            report.health
        );
        assert!(report.health.is_serving());
    }

    #[test]
    fn queue_full_rejects_and_recovers() {
        let (flat, data) = compiled_fixture(13, 64);
        let server = Server::start(
            flat,
            ServeConfig {
                workers: 1,
                queue_depth: 2,
                ..ServeConfig::default()
            },
        );
        // Park the only worker so the queue cannot drain.
        let entered = Gate::new();
        let release = Gate::new();
        server
            .enqueue(Job::Block {
                entered: Arc::clone(&entered),
                release: Arc::clone(&release),
            })
            .unwrap();
        entered.wait(); // the worker holds the job, the queue is empty

        let req = || Request {
            data: Arc::clone(&data),
            lo: 0,
            hi: 64,
        };
        let rx1 = server.submit(req()).unwrap();
        let rx2 = server.submit(req()).unwrap();
        // Queue holds 2 pending score requests: depth reached.
        assert_eq!(server.submit(req()).unwrap_err(), SubmitError::QueueFull);
        assert_eq!(server.submit(req()).unwrap_err(), SubmitError::QueueFull);

        release.open();
        // The parked worker drains the queue; both accepted requests answer.
        assert_eq!(rx1.recv().unwrap().predictions.len(), 64);
        assert_eq!(rx2.recv().unwrap().predictions.len(), 64);
        // Capacity is available again.
        let rx3 = server.submit(req()).unwrap();
        rx3.recv().unwrap();

        let report = server.shutdown();
        assert_eq!(report.rejected, 2);
        assert_eq!(report.requests, 3);
    }

    #[test]
    fn graceful_shutdown_drains_inflight_requests() {
        let (flat, data) = compiled_fixture(17, 512);
        let mut expect = vec![0u8; data.len()];
        flat.predict_batch(&data, &mut expect);
        let server = Server::start(
            flat,
            ServeConfig {
                workers: 2,
                queue_depth: 64,
                ..ServeConfig::default()
            },
        );
        // Park both workers, fill the queue, then shut down: every accepted
        // request must still be answered.
        let release = Gate::new();
        for _ in 0..2 {
            let entered = Gate::new();
            server
                .enqueue(Job::Block {
                    entered: Arc::clone(&entered),
                    release: Arc::clone(&release),
                })
                .unwrap();
            entered.wait();
        }
        let rxs: Vec<_> = (0..8)
            .map(|i| {
                server
                    .submit(Request {
                        data: Arc::clone(&data),
                        lo: i * 64,
                        hi: (i + 1) * 64,
                    })
                    .unwrap()
            })
            .collect();
        release.open();
        let report = server.shutdown();
        assert_eq!(report.requests, 8);
        assert_eq!(report.records, 512);
        for (i, rx) in rxs.into_iter().enumerate() {
            let resp = rx.recv().unwrap();
            assert_eq!(&resp.predictions[..], &expect[i * 64..(i + 1) * 64]);
        }
    }

    #[test]
    fn shutdown_rejects_new_work() {
        let (flat, data) = compiled_fixture(19, 16);
        let server = Server::start(flat, ServeConfig::default());
        server.begin_shutdown();
        assert_eq!(
            server
                .submit(Request {
                    data: Arc::clone(&data),
                    lo: 0,
                    hi: 16
                })
                .unwrap_err(),
            SubmitError::ShuttingDown
        );
        let report = server.shutdown();
        assert_eq!(report.requests, 0);
        assert_eq!(report.records_per_sec, 0.0);
    }

    #[test]
    fn deadline_blown_in_queue_times_out_without_scoring() {
        let (flat, data) = compiled_fixture(29, 64);
        let server = Server::start(
            flat,
            ServeConfig {
                workers: 1,
                deadline: Some(Duration::from_millis(1)),
                ..ServeConfig::default()
            },
        );
        // Park the only worker past the deadline, then submit.
        let entered = Gate::new();
        let release = Gate::new();
        server
            .enqueue(Job::Block {
                entered: Arc::clone(&entered),
                release: Arc::clone(&release),
            })
            .unwrap();
        entered.wait();
        let rx = server
            .submit(Request {
                data: Arc::clone(&data),
                lo: 0,
                hi: 64,
            })
            .unwrap();
        std::thread::sleep(Duration::from_millis(5));
        release.open();
        let resp = rx.recv().unwrap();
        assert_eq!(resp.status, ResponseStatus::TimedOut);
        assert!(resp.predictions.is_empty());
        assert!(resp.latency >= Duration::from_millis(1));
        let report = server.shutdown();
        assert_eq!(report.timeouts, 1);
        assert_eq!(report.requests, 0, "timed-out requests are not completions");
        assert_eq!(report.records, 0);
    }

    #[test]
    fn transient_failures_are_retried_to_success() {
        let (flat, data) = compiled_fixture(31, 64);
        let mut expect = vec![0u8; data.len()];
        flat.predict_batch(&data, &mut expect);
        let server = Server::start(
            flat,
            ServeConfig {
                workers: 1,
                max_retries: 3,
                retry_backoff: Duration::from_micros(10),
                ..ServeConfig::default()
            },
        );
        server.inject_failures(2);
        let resp = server
            .score_blocking(Request {
                data: Arc::clone(&data),
                lo: 0,
                hi: 64,
            })
            .unwrap();
        assert_eq!(resp.status, ResponseStatus::Ok);
        assert_eq!(&resp.predictions[..], &expect[..64]);
        let report = server.shutdown();
        assert_eq!(report.retries, 2);
        assert_eq!(report.failed, 0);
        assert_eq!(report.requests, 1);
    }

    #[test]
    fn exhausted_retries_answer_failed() {
        let (flat, data) = compiled_fixture(37, 64);
        let server = Server::start(
            flat,
            ServeConfig {
                workers: 1,
                max_retries: 1,
                retry_backoff: Duration::ZERO,
                ..ServeConfig::default()
            },
        );
        server.inject_failures(10);
        let resp = server
            .score_blocking(Request {
                data: Arc::clone(&data),
                lo: 0,
                hi: 64,
            })
            .unwrap();
        assert_eq!(resp.status, ResponseStatus::Failed);
        assert!(resp.predictions.is_empty());
        let report = server.shutdown();
        assert_eq!(report.failed, 1);
        assert_eq!(report.retries, 1, "one retry, then the budget is spent");
        assert_eq!(report.requests, 0);
    }

    #[test]
    fn degraded_mode_sheds_until_drained() {
        let (flat, data) = compiled_fixture(41, 64);
        let server = Server::start(
            flat,
            ServeConfig {
                workers: 1,
                queue_depth: 64,
                shed_high: Some(2),
                shed_low: 0,
                ..ServeConfig::default()
            },
        );
        let entered = Gate::new();
        let release = Gate::new();
        server
            .enqueue(Job::Block {
                entered: Arc::clone(&entered),
                release: Arc::clone(&release),
            })
            .unwrap();
        entered.wait();
        let req = || Request {
            data: Arc::clone(&data),
            lo: 0,
            hi: 64,
        };
        let rx1 = server.submit(req()).unwrap();
        let rx2 = server.submit(req()).unwrap();
        // Queue length hit shed_high: degraded mode trips and holds even
        // though queue_depth is far away.
        assert_eq!(server.submit(req()).unwrap_err(), SubmitError::Degraded);
        assert_eq!(server.submit(req()).unwrap_err(), SubmitError::Degraded);
        release.open();
        rx1.recv().unwrap();
        rx2.recv().unwrap();
        // Drained to shed_low: accepting again.
        let rx3 = server.submit(req()).unwrap();
        assert_eq!(rx3.recv().unwrap().status, ResponseStatus::Ok);
        let report = server.shutdown();
        assert_eq!(report.shed, 2);
        assert_eq!(report.rejected, 0, "degraded sheds are counted separately");
        assert_eq!(report.requests, 3);
    }

    #[test]
    fn hot_swap_pins_inflight_batch_to_old_generation() {
        let (old, data) = compiled_fixture(51, 128);
        let (new, _) = compiled_fixture(53, 1);
        let mut expect_old = vec![0u8; data.len()];
        old.predict_batch(&data, &mut expect_old);
        let mut expect_new = vec![0u8; data.len()];
        new.predict_batch(&data, &mut expect_new);

        let server = Server::start(
            old,
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
        );
        // Park the worker with a request already picked up... not possible
        // with Block (it pins no generation), so instead: park the worker,
        // queue a request, publish, then release — the queued request must
        // be served entirely by the *new* generation (it pins at pickup),
        // while a request completed before the swap reports the old one.
        let first = server
            .score_blocking(Request {
                data: Arc::clone(&data),
                lo: 0,
                hi: 64,
            })
            .unwrap();
        assert_eq!(first.generation, 0);
        assert_eq!(&first.predictions[..], &expect_old[..64]);

        let entered = Gate::new();
        let release = Gate::new();
        server
            .enqueue(Job::Block {
                entered: Arc::clone(&entered),
                release: Arc::clone(&release),
            })
            .unwrap();
        entered.wait();
        let rx = server
            .submit(Request {
                data: Arc::clone(&data),
                lo: 64,
                hi: 128,
            })
            .unwrap();
        server.publish(1, ServeModel::Tree(new));
        release.open();
        let resp = rx.recv().unwrap();
        assert_eq!(resp.status, ResponseStatus::Ok);
        assert_eq!(resp.generation, 1, "picked up after the swap");
        assert_eq!(&resp.predictions[..], &expect_new[64..128]);

        let report = server.shutdown();
        assert_eq!(report.requests, 2);
        assert_eq!(report.generations_served(), 2);
        assert_eq!(
            report.generations,
            vec![
                GenerationWindow {
                    generation: 0,
                    requests: 1,
                    records: 64,
                },
                GenerationWindow {
                    generation: 1,
                    requests: 1,
                    records: 64,
                },
            ]
        );
    }

    #[test]
    fn swap_under_load_drops_no_requests_and_windows_account_all() {
        let (old, data) = compiled_fixture(57, 1024);
        let server = Server::start(
            old,
            ServeConfig {
                workers: 4,
                queue_depth: 1024,
                ..ServeConfig::default()
            },
        );
        let mut rxs = Vec::new();
        for round in 0..8 {
            for i in 0..16 {
                rxs.push(
                    server
                        .submit(Request {
                            data: Arc::clone(&data),
                            lo: i * 64,
                            hi: (i + 1) * 64,
                        })
                        .unwrap(),
                );
            }
            let (next, _) = compiled_fixture(100 + round, 1);
            server.publish(round + 1, ServeModel::Tree(next));
        }
        let mut last_gen = 0;
        for rx in rxs {
            let resp = rx.recv().unwrap();
            assert_eq!(resp.status, ResponseStatus::Ok, "no request dropped");
            assert!(resp.generation <= 8);
            last_gen = last_gen.max(resp.generation);
        }
        let report = server.shutdown();
        assert_eq!(report.requests, 128, "every accepted request completed");
        assert_eq!(report.records, 128 * 64);
        // The windows partition the completions exactly.
        let win_requests: u64 = report.generations.iter().map(|w| w.requests).sum();
        let win_records: u64 = report.generations.iter().map(|w| w.records).sum();
        assert_eq!(win_requests, report.requests);
        assert_eq!(win_records, report.records);
        assert!(report.generations_served() >= 1);
    }

    #[test]
    fn empty_report_has_zero_percentiles() {
        let (flat, _) = compiled_fixture(43, 8);
        let server = Server::start(flat, ServeConfig::default());
        let report = server.shutdown();
        assert_eq!(report.requests, 0);
        assert_eq!(report.p50, Duration::ZERO);
        assert_eq!(report.p99, Duration::ZERO);
        assert_eq!(report.records_per_sec, 0.0);
        assert_eq!(report.elapsed, Duration::ZERO);
    }

    #[test]
    fn injected_scoring_panic_is_isolated_to_one_answer() {
        sync::hush_injected_panics();
        let (flat, data) = compiled_fixture(61, 64);
        let mut expect = vec![0u8; data.len()];
        flat.predict_batch(&data, &mut expect);
        let server = Server::start(
            flat,
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
        );
        server.inject_panics(1);
        let req = || Request {
            data: Arc::clone(&data),
            lo: 0,
            hi: 64,
        };
        // The panicking request answers Failed; the *same* worker then
        // answers the next request normally.
        let resp = server.score_blocking(req()).unwrap();
        assert_eq!(resp.status, ResponseStatus::Failed);
        let resp = server.score_blocking(req()).unwrap();
        assert_eq!(resp.status, ResponseStatus::Ok);
        assert_eq!(&resp.predictions[..], &expect[..64]);
        let report = server.shutdown();
        assert_eq!(report.worker_panics, 1);
        assert_eq!(report.workers_dead, 0, "the worker survived its panic");
        assert_eq!(
            report.health,
            Health::Degraded {
                reason: "1 scoring panic(s) isolated".into()
            }
        );
        assert!(report.health.is_serving());
    }

    #[test]
    fn dead_worker_is_counted_and_survivor_serves() {
        sync::hush_injected_panics();
        let (flat, data) = compiled_fixture(67, 64);
        let server = Server::start(
            flat,
            ServeConfig {
                workers: 2,
                ..ServeConfig::default()
            },
        );
        server.enqueue(Job::Die).unwrap();
        // Wait for the death to be accounted, then keep serving on the
        // survivor.
        while server.stats().workers_dead == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let resp = server
            .score_blocking(Request {
                data: Arc::clone(&data),
                lo: 0,
                hi: 64,
            })
            .unwrap();
        assert_eq!(resp.status, ResponseStatus::Ok);
        let report = server.shutdown();
        assert_eq!(report.workers_dead, 1);
        assert_eq!(report.worker_panics, 1);
        assert!(matches!(report.health, Health::Degraded { .. }));
        assert!(report.health.is_serving());
    }

    #[test]
    fn all_workers_dead_still_answers_failed_on_shutdown() {
        sync::hush_injected_panics();
        let (flat, data) = compiled_fixture(71, 64);
        let server = Server::start(
            flat,
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
        );
        server.enqueue(Job::Die).unwrap();
        while server.stats().workers_dead == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Accepted with no worker left: shutdown itself must answer these
        // (Failed), not hang the clients or panic the caller.
        let rx1 = server
            .submit(Request {
                data: Arc::clone(&data),
                lo: 0,
                hi: 64,
            })
            .unwrap();
        let rx2 = server
            .submit(Request {
                data: Arc::clone(&data),
                lo: 0,
                hi: 32,
            })
            .unwrap();
        let report = server.shutdown();
        assert_eq!(rx1.recv().unwrap().status, ResponseStatus::Failed);
        assert_eq!(rx2.recv().unwrap().status, ResponseStatus::Failed);
        assert_eq!(report.workers_dead, 1);
        assert_eq!(report.health, Health::Failed);
        assert!(!report.health.is_serving());
        assert_eq!(report.failed, 2, "drained jobs are counted failed");
    }

    #[test]
    fn report_renders() {
        let (flat, data) = compiled_fixture(23, 128);
        let server = Server::start(flat, ServeConfig::default());
        server
            .score_blocking(Request {
                data: Arc::clone(&data),
                lo: 0,
                hi: 128,
            })
            .unwrap();
        let text = server.shutdown().to_string();
        assert!(text.contains("1 requests"), "{text}");
        assert!(text.contains("records/s"), "{text}");
    }
}
