//! `serve` — batched inference for induced decision trees.
//!
//! Induction produces a [`dtree::DecisionTree`]; this crate is the path
//! from that model to scoring traffic:
//!
//! * **Compiled flat trees** ([`dtree::flat::FlatTree`], re-exported here):
//!   a breadth-first struct-of-arrays layout whose batched kernel steps a
//!   whole batch level-synchronously — cache-friendly (node arrays stream
//!   in breadth-first order) and branch-friendly (one kind dispatch per
//!   node group, not per record).
//! * **A concurrent scoring harness** ([`harness::Server`]): a std-only
//!   thread pool behind a bounded request queue with backpressure
//!   (reject-when-full), per-request batching, graceful shutdown that
//!   drains in-flight work, and a latency/throughput report
//!   ([`harness::StatsReport`]).
//! * **Generational hot-swap** ([`slot::ModelSlot`]): the server scores
//!   through a slot that a trainer can atomically repoint at a new model
//!   generation under load — in-flight batches finish on the generation
//!   they pinned, no request is dropped, and every [`harness::Response`]
//!   names the generation that answered it (aggregated per window in
//!   [`harness::StatsReport::generations`]).
//! * **Distributed scoring** ([`dist::score_distributed`],
//!   [`dist::score_forest_distributed`]): one model replica per `mpsim`
//!   rank — a flat tree or a whole [`dtree::FlatForest`] — scores a block
//!   partition of the records and the per-rank confusion matrices are
//!   all-reduced, so scoring carries the same communication cost accounting
//!   and per-rank memory accounting as induction.
//!
//! The kernel is pinned record-for-record to the per-record oracle
//! `DecisionTree::predict` by a workspace proptest over random trees and
//! Quest datasets.

pub mod dist;
pub mod harness;
pub mod slot;
pub mod sync;

pub use dist::{
    score_distributed, score_forest_distributed, score_forest_distributed_partial, DistScore,
};
pub use dtree::flat::FlatTree;
pub use dtree::flat_forest::{FlatForest, VoteReduce};
pub use harness::{
    GenerationWindow, Health, Request, Response, ResponseStatus, ServeConfig, ServeModel, Server,
    StatsReport, SubmitError,
};
pub use slot::{ModelGeneration, ModelSlot};
