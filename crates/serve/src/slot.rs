//! `ModelSlot` — the atomic hot-swap point between training and serving.
//!
//! A slot holds the *current* committed model generation behind a
//! read/write lock over an [`Arc`]. Scoring workers take the read lock
//! only long enough to clone the `Arc` — the batch itself is scored
//! lock-free against that pinned generation — while a trainer publishing
//! generation `g+1` takes the write lock only long enough to swap the
//! pointer. The consequences are exactly the hot-swap invariants the
//! streaming subsystem needs:
//!
//! * **Zero dropped requests.** A swap never interrupts scoring: requests
//!   in flight at swap time finish on the generation they pinned, and the
//!   next pickup observes the new one.
//! * **Exactly one generation per request.** A request pins one
//!   `Arc<ModelGeneration>` for its whole batch; there is no torn state in
//!   which half a batch is scored by the old model and half by the new.
//! * **Monotonic visibility.** Generations are published in increasing
//!   order (enforced by [`ModelSlot::publish`]), so the generation id in a
//!   [`crate::Response`] is a monotone function of pickup time.
//!
//! The old generation is freed when its last in-flight batch drops its
//! `Arc` — the swap itself never blocks on stragglers.
//!
//! The slot is **panic-proof**: a client thread that panics while holding
//! the lock poisons the `RwLock`, but every access goes through the
//! poison-recovering helpers in [`crate::sync`], so readers keep pinning
//! the last successfully published generation and later publishers keep
//! swapping. A dead trainer degrades freshness, never availability.

use std::sync::{Arc, RwLock};

use crate::harness::ServeModel;
use crate::sync;

/// One committed model generation: an id (assigned by the trainer's
/// commit protocol) and the compiled model that serves it.
#[derive(Clone, Debug)]
pub struct ModelGeneration {
    /// Generation id; strictly increasing across publishes to one slot.
    pub generation: u64,
    /// The compiled model answering requests of this generation.
    pub model: ServeModel,
}

/// The swap point: holds the current [`ModelGeneration`]; see the module
/// docs for the invariants.
#[derive(Debug)]
pub struct ModelSlot {
    current: RwLock<Arc<ModelGeneration>>,
}

impl ModelSlot {
    /// A slot initially serving `model` as generation `generation`.
    pub fn new(generation: u64, model: ServeModel) -> Arc<ModelSlot> {
        Arc::new(ModelSlot {
            current: RwLock::new(Arc::new(ModelGeneration { generation, model })),
        })
    }

    /// Pin the current generation. The returned `Arc` stays valid (and the
    /// model it holds immutable) across any number of subsequent swaps.
    pub fn current(&self) -> Arc<ModelGeneration> {
        Arc::clone(&sync::read(&self.current))
    }

    /// Generation id currently being served.
    pub fn generation(&self) -> u64 {
        sync::read(&self.current).generation
    }

    /// Atomically replace the served model. Requests already holding the
    /// old generation finish on it; every later pickup sees the new one.
    ///
    /// # Panics
    ///
    /// If `generation` does not increase — committing an old generation is
    /// a protocol error, not a race to be silently tolerated. The panic
    /// poisons nothing observable: the slot keeps serving (see the module
    /// docs).
    pub fn publish(&self, generation: u64, model: ServeModel) {
        assert!(
            self.publish_if_newer(generation, model),
            "generation must increase: publishing {generation} over {}",
            self.generation(),
        );
    }

    /// Replace the served model iff `generation` is strictly newer than
    /// the one currently served; returns whether the swap happened. The
    /// idempotent entry point for crash-resume paths, where republishing
    /// an already-current generation is a no-op, not a protocol error.
    pub fn publish_if_newer(&self, generation: u64, model: ServeModel) -> bool {
        let next = Arc::new(ModelGeneration { generation, model });
        let mut cur = sync::write(&self.current);
        if next.generation <= cur.generation {
            return false;
        }
        *cur = next;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtree::flat::FlatTree;
    use dtree::testgen::{self, TestRng};

    fn tree(seed: u64) -> FlatTree {
        let mut rng = TestRng::new(seed);
        let schema = testgen::random_schema(&mut rng);
        FlatTree::compile(&testgen::random_tree(&schema, &mut rng, 6, 80))
    }

    #[test]
    fn publish_swaps_and_old_pin_survives() {
        let slot = ModelSlot::new(1, ServeModel::Tree(tree(5)));
        let pinned = slot.current();
        assert_eq!(pinned.generation, 1);
        slot.publish(2, ServeModel::Tree(tree(6)));
        assert_eq!(slot.generation(), 2);
        // The pre-swap pin still answers for generation 1.
        assert_eq!(pinned.generation, 1);
        assert_eq!(slot.current().generation, 2);
    }

    #[test]
    #[should_panic(expected = "generation must increase")]
    fn stale_publish_is_a_protocol_error() {
        let slot = ModelSlot::new(3, ServeModel::Tree(tree(7)));
        slot.publish(3, ServeModel::Tree(tree(8)));
    }

    #[test]
    fn stale_publish_if_newer_is_a_tolerated_no_op() {
        let slot = ModelSlot::new(3, ServeModel::Tree(tree(7)));
        assert!(!slot.publish_if_newer(3, ServeModel::Tree(tree(8))));
        assert!(!slot.publish_if_newer(2, ServeModel::Tree(tree(8))));
        assert_eq!(slot.generation(), 3, "slot untouched");
        assert!(slot.publish_if_newer(4, ServeModel::Tree(tree(8))));
        assert_eq!(slot.generation(), 4);
    }

    #[test]
    fn poisoned_slot_still_serves_reads_and_publishes() {
        crate::sync::hush_injected_panics();
        let slot = ModelSlot::new(1, ServeModel::Tree(tree(11)));
        // A client thread dies while holding the write lock: the slot's
        // lock is poisoned, the served generation untouched.
        let _ = std::thread::scope(|s| {
            s.spawn(|| {
                let _g = slot.current.write().unwrap();
                panic!("[injected] publisher dies mid-swap");
            })
            .join()
        });
        assert!(slot.current.is_poisoned());
        // Readers keep answering on the last published generation...
        assert_eq!(slot.generation(), 1);
        assert_eq!(slot.current().generation, 1);
        // ...and a healthy publisher keeps swapping.
        slot.publish(2, ServeModel::Tree(tree(12)));
        assert_eq!(slot.current().generation, 2);
    }

    #[test]
    fn concurrent_readers_see_a_clean_sequence() {
        let slot = ModelSlot::new(0, ServeModel::Tree(tree(9)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let slot = Arc::clone(&slot);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    let mut seen = 0u64;
                    loop {
                        let gen = slot.current().generation;
                        assert!(gen >= last, "generation went backwards");
                        last = gen;
                        seen += 1;
                        if stop.load(std::sync::atomic::Ordering::Relaxed) {
                            break;
                        }
                    }
                    seen
                })
            })
            .collect();
        for g in 1..50 {
            slot.publish(g, ServeModel::Tree(tree(g)));
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for r in readers {
            assert!(r.join().unwrap() > 0);
        }
        assert_eq!(slot.generation(), 49);
    }
}
