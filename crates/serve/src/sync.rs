//! Poison-tolerant lock helpers.
//!
//! `std` poisons a `Mutex`/`RwLock` when a thread panics while holding it.
//! For the serving and streaming stacks that is exactly the wrong cascade:
//! one panicking worker would turn every subsequent `lock().unwrap()` in
//! every *other* thread into a second panic, taking the whole process down
//! with it. The data these locks guard (queues, counters, the model slot)
//! stays structurally valid across any panic point we have — every
//! critical section either completes its invariant or leaves it untouched
//! — so the right recovery is to strip the poison and keep serving.
//!
//! Every lock acquisition in `serve` (and the live `stream` runtime built
//! on it) goes through these helpers instead of bare `unwrap()`.

use std::sync::{
    Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Lock `m`, recovering (not panicking) if a previous holder panicked.
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Read-lock `l`, recovering from poison.
pub fn read<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-lock `l`, recovering from poison.
pub fn write<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

/// Wait on `cv` with `guard`, recovering the guard from poison on wake.
pub fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// Install (once per process) a panic hook that silences panics whose
/// message contains `"[injected]"` — the marker every scripted chaos fault
/// carries. Injected panics are the *point* of a chaos run; their default
/// stderr reports would drown the output without adding information. All
/// other panics still report normally.
pub fn hush_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<&str>()
                .copied()
                .map(String::from)
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if !msg.contains("[injected]") {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn poisoned_mutex_still_locks() {
        hush_injected_panics();
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("[injected] poison the lock");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock(&m), 7, "data survives the poisoned holder");
        *lock(&m) = 8;
        assert_eq!(*lock(&m), 8);
    }

    #[test]
    fn poisoned_rwlock_still_reads_and_writes() {
        hush_injected_panics();
        let l = Arc::new(RwLock::new(1u32));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write().unwrap();
            panic!("[injected] poison the rwlock");
        })
        .join();
        assert!(l.is_poisoned());
        assert_eq!(*read(&l), 1);
        *write(&l) = 2;
        assert_eq!(*read(&l), 2);
    }
}
