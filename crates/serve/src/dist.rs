//! Distributed scoring over `mpsim`: one flat-tree replica per rank scores
//! a block partition of the records; the per-rank confusion matrices are
//! all-reduced so every rank (and the caller) holds the global matrix.
//!
//! This is the scoring analogue of the paper's induction phase and follows
//! the replicated-model / partitioned-data shape of distributed forest
//! systems: the model is small and read-only (replicate it), the records
//! are large (partition them, never move them). The only communication is
//! one `classes × classes` all-reduce per scoring pass, charged through the
//! same tree-collective cost model and byte accounting as induction — so a
//! scoring sweep reports simulated time, per-rank communication volume, and
//! per-rank peak memory exactly like a training sweep does. The replica and
//! the prediction buffer are registered with each rank's [`mpsim::MemTracker`],
//! making the `O(model + N/p)` per-rank memory footprint visible in the
//! same ledger.

use dtree::data::Dataset;
use dtree::flat::FlatTree;
use dtree::flat_forest::{FlatForest, VoteReduce};
use dtree::gini::CountMatrix;
use dtree::tree::DecisionTree;
use mpsim::{MachineCfg, RunStats};

/// Result of a distributed scoring pass.
#[derive(Clone, Debug)]
pub struct DistScore {
    /// Global confusion matrix (row = true class, column = predicted).
    pub confusion: CountMatrix,
    /// Fraction of records predicted correctly.
    pub accuracy: f64,
    /// Machine statistics of the pass (simulated time, communication
    /// volume, per-rank peak memory).
    pub stats: RunStats,
}

/// Memory-tracker category of the per-rank model replica.
pub const MEM_REPLICA: &str = "serve-replica";
/// Memory-tracker category of the per-rank prediction buffer.
pub const MEM_PREDICTIONS: &str = "serve-predictions";

/// Score `data` against `tree` on `cfg.procs` ranks: rank `r` compiles a
/// local replica and scores records `[r·N/p, (r+1)·N/p)` as one batch, then
/// the confusion matrices are summed with an all-reduce.
pub fn score_distributed(tree: &DecisionTree, data: &Dataset, cfg: &MachineCfg) -> DistScore {
    let classes = data.schema.num_classes as usize;
    let n = data.len();
    let result = mpsim::run(cfg, |comm| {
        let (rank, p) = (comm.rank(), comm.size());
        let (lo, hi) = (n * rank / p, n * (rank + 1) / p);

        // Per-rank replica: compilation is rank-local compute, no exchange.
        comm.phase_begin("serve_compile", 0);
        let flat = FlatTree::compile(tree);
        comm.tracker().alloc(MEM_REPLICA, flat.heap_bytes());
        comm.phase_end(); // serve_compile

        comm.phase_begin("serve_predict", 0);
        let mut predictions = vec![0u8; hi - lo];
        comm.tracker()
            .alloc(MEM_PREDICTIONS, predictions.len() as u64);
        flat.predict_range(data, lo, hi, &mut predictions);

        let mut local = vec![0u64; classes * classes];
        for (truth, pred) in data.labels[lo..hi].iter().zip(&predictions) {
            local[*truth as usize * classes + *pred as usize] += 1;
        }
        comm.tracker()
            .free(MEM_PREDICTIONS, predictions.len() as u64);
        drop(predictions);
        comm.phase_end(); // serve_predict

        // One borrowed-fold all-reduce of the flat matrix; cost and byte
        // accounting identical to induction's count-matrix reductions.
        comm.phase_begin("serve_confusion_reduce", 0);
        let mut global = vec![0u64; classes * classes];
        let bytes = (classes * classes * std::mem::size_of::<u64>()) as u64;
        comm.allreduce_with(&local, bytes, |_src, other: &Vec<u64>| {
            for (g, o) in global.iter_mut().zip(other) {
                *g += o;
            }
        });
        comm.tracker().free(MEM_REPLICA, flat.heap_bytes());
        comm.phase_end(); // serve_confusion_reduce
        global
    });

    let confusion = CountMatrix::from_slice(classes, classes, &result.outputs[0]);
    debug_assert!(result.outputs.iter().all(|o| *o == result.outputs[0]));
    let hits: u64 = (0..classes).map(|c| confusion.get(c, c)).sum();
    let accuracy = if n == 0 { 1.0 } else { hits as f64 / n as f64 };
    DistScore {
        confusion,
        accuracy,
        stats: result.stats,
    }
}

/// Score `data` against a whole forest on `cfg.procs` ranks: rank `r`
/// compiles a local [`FlatForest`] replica (every tree — the model is small
/// and read-only, so the forest is replicated just like a single tree) and
/// scores its block with the vote reduce; the per-rank confusion matrices
/// are summed with one all-reduce, exactly as in [`score_distributed`].
/// Communication is therefore independent of the tree count — only the
/// per-rank replica memory grows with the forest.
pub fn score_forest_distributed(
    trees: &[DecisionTree],
    reduce: VoteReduce,
    data: &Dataset,
    cfg: &MachineCfg,
) -> DistScore {
    let classes = data.schema.num_classes as usize;
    let n = data.len();
    let result = mpsim::run(cfg, |comm| {
        let (rank, p) = (comm.rank(), comm.size());
        let (lo, hi) = (n * rank / p, n * (rank + 1) / p);

        comm.phase_begin("serve_compile", 0);
        let forest = FlatForest::compile(trees, reduce);
        comm.tracker().alloc(MEM_REPLICA, forest.heap_bytes());
        comm.phase_end(); // serve_compile

        comm.phase_begin("serve_predict", 0);
        let mut predictions = vec![0u8; hi - lo];
        comm.tracker()
            .alloc(MEM_PREDICTIONS, predictions.len() as u64);
        forest.predict_range(data, lo, hi, &mut predictions);

        let mut local = vec![0u64; classes * classes];
        for (truth, pred) in data.labels[lo..hi].iter().zip(&predictions) {
            local[*truth as usize * classes + *pred as usize] += 1;
        }
        comm.tracker()
            .free(MEM_PREDICTIONS, predictions.len() as u64);
        drop(predictions);
        comm.phase_end(); // serve_predict

        comm.phase_begin("serve_confusion_reduce", 0);
        let mut global = vec![0u64; classes * classes];
        let bytes = (classes * classes * std::mem::size_of::<u64>()) as u64;
        comm.allreduce_with(&local, bytes, |_src, other: &Vec<u64>| {
            for (g, o) in global.iter_mut().zip(other) {
                *g += o;
            }
        });
        comm.tracker().free(MEM_REPLICA, forest.heap_bytes());
        comm.phase_end(); // serve_confusion_reduce
        global
    });

    let confusion = CountMatrix::from_slice(classes, classes, &result.outputs[0]);
    debug_assert!(result.outputs.iter().all(|o| *o == result.outputs[0]));
    let hits: u64 = (0..classes).map(|c| confusion.get(c, c)).sum();
    let accuracy = if n == 0 { 1.0 } else { hits as f64 / n as f64 };
    DistScore {
        confusion,
        accuracy,
        stats: result.stats,
    }
}

/// [`score_forest_distributed`] tolerating replica ranks that hold only a
/// **partial** forest: `masks[r]` is rank `r`'s missing mask (`true` =
/// that rank's replica lost the tree — e.g. its local container section
/// was damaged), and each rank votes over whatever subset it holds. Ranks
/// with an empty mask serve the full forest. The confusion all-reduce is
/// unchanged, so the pass completes with every rank contributing its
/// block — scored by its own surviving subset — instead of failing on the
/// first degraded replica.
///
/// Panics if a rank's non-empty mask does not cover every tree or drops
/// them all (a rank with *no* trees cannot answer; that is a dead rank,
/// which is [`mpsim::FaultPlan`] territory, not a degraded replica).
pub fn score_forest_distributed_partial(
    trees: &[DecisionTree],
    reduce: VoteReduce,
    data: &Dataset,
    cfg: &MachineCfg,
    masks: &[Vec<bool>],
) -> DistScore {
    assert!(
        masks.len() == cfg.procs,
        "need one missing mask per rank (empty = full forest)"
    );
    let classes = data.schema.num_classes as usize;
    let n = data.len();
    let result = mpsim::run(cfg, |comm| {
        let (rank, p) = (comm.rank(), comm.size());
        let (lo, hi) = (n * rank / p, n * (rank + 1) / p);

        comm.phase_begin("serve_compile", 0);
        let full = FlatForest::compile(trees, reduce);
        let forest = if masks[rank].is_empty() {
            full
        } else {
            full.with_missing(&masks[rank])
        };
        comm.tracker().alloc(MEM_REPLICA, forest.heap_bytes());
        comm.phase_end(); // serve_compile

        comm.phase_begin("serve_predict", 0);
        let mut predictions = vec![0u8; hi - lo];
        comm.tracker()
            .alloc(MEM_PREDICTIONS, predictions.len() as u64);
        forest.predict_range(data, lo, hi, &mut predictions);

        let mut local = vec![0u64; classes * classes];
        for (truth, pred) in data.labels[lo..hi].iter().zip(&predictions) {
            local[*truth as usize * classes + *pred as usize] += 1;
        }
        comm.tracker()
            .free(MEM_PREDICTIONS, predictions.len() as u64);
        drop(predictions);
        comm.phase_end(); // serve_predict

        comm.phase_begin("serve_confusion_reduce", 0);
        let mut global = vec![0u64; classes * classes];
        let bytes = (classes * classes * std::mem::size_of::<u64>()) as u64;
        comm.allreduce_with(&local, bytes, |_src, other: &Vec<u64>| {
            for (g, o) in global.iter_mut().zip(other) {
                *g += o;
            }
        });
        comm.tracker().free(MEM_REPLICA, forest.heap_bytes());
        comm.phase_end(); // serve_confusion_reduce
        global
    });

    let confusion = CountMatrix::from_slice(classes, classes, &result.outputs[0]);
    debug_assert!(result.outputs.iter().all(|o| *o == result.outputs[0]));
    let hits: u64 = (0..classes).map(|c| confusion.get(c, c)).sum();
    let accuracy = if n == 0 { 1.0 } else { hits as f64 / n as f64 };
    DistScore {
        confusion,
        accuracy,
        stats: result.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtree::eval;
    use dtree::testgen::{self, TestRng};

    fn fixture(seed: u64, n: usize) -> (DecisionTree, Dataset) {
        let mut rng = TestRng::new(seed);
        let schema = testgen::random_schema(&mut rng);
        let tree = testgen::random_tree(&schema, &mut rng, 6, 150);
        let data = testgen::random_dataset(&schema, &mut rng, n);
        (tree, data)
    }

    #[test]
    fn matches_serial_confusion_for_every_p() {
        let (tree, data) = fixture(3, 500);
        let serial = eval::confusion_matrix(&tree, &data);
        for p in [1, 2, 3, 8] {
            let d = score_distributed(&tree, &data, &MachineCfg::new(p));
            assert_eq!(d.confusion, serial, "p={p}");
            assert_eq!(d.accuracy, tree.accuracy(&data));
        }
    }

    #[test]
    fn charges_communication_and_memory() {
        let (tree, data) = fixture(5, 400);
        let d = score_distributed(&tree, &data, &MachineCfg::new(4));
        // The all-reduce moved bytes and took simulated time.
        assert!(d.stats.total_bytes_sent() > 0);
        assert!(d.stats.time_ns() > 0);
        // Each rank's peak memory saw replica + predictions.
        for rank in &d.stats.ranks {
            assert!(rank.peak_mem > 0);
            assert!(rank
                .mem_categories
                .iter()
                .any(|(cat, _)| *cat == MEM_REPLICA));
        }
    }

    #[test]
    fn forest_matches_serial_confusion_for_every_p() {
        let mut rng = TestRng::new(9);
        let schema = testgen::random_schema(&mut rng);
        let trees = testgen::random_forest(&schema, &mut rng, 4, 5, 80);
        let data = testgen::random_dataset(&schema, &mut rng, 450);
        for reduce in [VoteReduce::Majority, VoteReduce::ProbAverage] {
            let forest = FlatForest::compile(&trees, reduce);
            let mut serial = vec![0u8; data.len()];
            forest.predict_batch(&data, &mut serial);
            let classes = data.schema.num_classes as usize;
            let mut want = vec![0u64; classes * classes];
            for (t, p) in data.labels.iter().zip(&serial) {
                want[*t as usize * classes + *p as usize] += 1;
            }
            let want = CountMatrix::from_slice(classes, classes, &want);
            for p in [1, 3, 8] {
                let d = score_forest_distributed(&trees, reduce, &data, &MachineCfg::new(p));
                assert_eq!(d.confusion, want, "{reduce:?} p={p}");
                assert_eq!(d.accuracy, forest.accuracy(&data));
                assert!(d.stats.total_bytes_sent() > 0 || p == 1);
            }
        }
    }

    #[test]
    fn partial_replicas_score_with_their_surviving_subsets() {
        let mut rng = TestRng::new(13);
        let schema = testgen::random_schema(&mut rng);
        let trees = testgen::random_forest(&schema, &mut rng, 4, 5, 80);
        let data = testgen::random_dataset(&schema, &mut rng, 300);
        let reduce = VoteReduce::Majority;

        // All-empty masks are exactly the full distributed pass.
        let p = 3;
        let full = score_forest_distributed(&trees, reduce, &data, &MachineCfg::new(p));
        let noop = score_forest_distributed_partial(
            &trees,
            reduce,
            &data,
            &MachineCfg::new(p),
            &vec![Vec::new(); p],
        );
        assert_eq!(noop.confusion, full.confusion);

        // Rank 1 lost trees 1 and 3: its block must score like the
        // surviving pair, the other ranks like the full forest.
        let mask = vec![false, true, false, true];
        let masks = vec![Vec::new(), mask.clone(), Vec::new()];
        let d =
            score_forest_distributed_partial(&trees, reduce, &data, &MachineCfg::new(p), &masks);
        let n = data.len();
        let full_forest = FlatForest::compile(&trees, reduce);
        let part_forest = full_forest.with_missing(&mask);
        let classes = data.schema.num_classes as usize;
        let mut want = vec![0u64; classes * classes];
        let mut out = vec![0u8; n];
        full_forest.predict_batch(&data, &mut out);
        for r in 0..p {
            let (lo, hi) = (n * r / p, n * (r + 1) / p);
            let model = if r == 1 { &part_forest } else { &full_forest };
            model.predict_range(&data, lo, hi, &mut out[lo..hi]);
            for (t, pr) in data.labels[lo..hi].iter().zip(&out[lo..hi]) {
                want[*t as usize * classes + *pr as usize] += 1;
            }
        }
        assert_eq!(
            d.confusion,
            CountMatrix::from_slice(classes, classes, &want)
        );
    }

    #[test]
    fn empty_dataset_scores_cleanly() {
        let (tree, data) = fixture(7, 0);
        let d = score_distributed(&tree, &data, &MachineCfg::new(2));
        assert_eq!(d.confusion.total(), 0);
        assert_eq!(d.accuracy, 1.0);
    }
}
