//! `datagen` — Quest-style synthetic training-set generator.
//!
//! Reimplements the IBM Quest classification data generator (Agrawal et al.,
//! IEEE TKDE 1993) that SPRINT and ScalParC use for their evaluations:
//! records describing hypothetical loan applicants, labelled by one of ten
//! classification functions ([`quest::ClassFunc`]), with optional label
//! noise.
//!
//! Two schema profiles are provided:
//!
//! * [`Profile::Full9`] — all nine Quest attributes;
//! * [`Profile::Paper7`] — the seven-attribute configuration matching the
//!   paper's experiments ("training sets containing up to 6.4 million
//!   records, each containing seven attributes. There were two possible
//!   class labels"): `car` and `zipcode` are dropped (zipcode is still drawn
//!   internally so `hvalue`'s distribution is unchanged).

pub mod csv;
pub mod drift;
pub mod quest;

use dtree::{AttrDef, Column, Dataset, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub use csv::CsvError;
pub use drift::{DriftGen, DriftKind};
pub use quest::{ClassFunc, QuestRecord};

/// Which attributes the generated dataset exposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Profile {
    /// All nine Quest attributes.
    Full9,
    /// The paper's seven attributes (drops `car`, `zipcode`).
    #[default]
    Paper7,
}

impl Profile {
    /// The schema of this profile: 2 classes; continuous and categorical
    /// attributes as in the Quest model.
    pub fn schema(&self) -> Schema {
        let mut attrs = vec![
            AttrDef::continuous("salary"),
            AttrDef::continuous("commission"),
            AttrDef::continuous("age"),
            AttrDef::categorical("elevel", 5),
        ];
        if *self == Profile::Full9 {
            attrs.push(AttrDef::categorical("car", 20));
            attrs.push(AttrDef::categorical("zipcode", 9));
        }
        attrs.push(AttrDef::continuous("hvalue"));
        attrs.push(AttrDef::continuous("hyears"));
        attrs.push(AttrDef::continuous("loan"));
        Schema::new(attrs, 2)
    }
}

/// Generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Number of records (`N`).
    pub n: usize,
    /// Classification function labelling the records.
    pub func: ClassFunc,
    /// Probability of flipping each label (the original generator's
    /// perturbation factor). `0.0` gives a noiseless concept.
    pub noise: f64,
    /// RNG seed; equal configs generate identical datasets.
    pub seed: u64,
    /// Attribute profile.
    pub profile: Profile,
}

impl GenConfig {
    /// Noiseless F2 data in the paper's 7-attribute profile — the default
    /// workload of the benchmark harnesses.
    pub fn paper(n: usize, seed: u64) -> Self {
        GenConfig {
            n,
            func: ClassFunc::F2,
            noise: 0.0,
            seed,
            profile: Profile::Paper7,
        }
    }
}

/// Index-addressable Quest generator: record `i` is sampled from its own
/// RNG stream derived from `(seed, i)`, so any block `[lo, hi)` of the
/// virtual dataset can be produced independently, in any order, without
/// materializing the rest. Concatenating blocks reproduces the whole
/// dataset exactly regardless of the block boundaries — the property the
/// out-of-core scale experiments rely on to give each simulated processor
/// its `⌈N/p⌉` fragment without ever holding all `N` records in memory.
///
/// The per-index derivation necessarily differs from [`generate`]'s single
/// sequential stream, so `StreamingGen::new(cfg).block(0, cfg.n)` is a
/// *different* (equally distributed) dataset than `generate(&cfg)`; within
/// the streaming family, equal configs are bit-identical.
#[derive(Clone, Copy, Debug)]
pub struct StreamingGen {
    cfg: GenConfig,
}

/// SplitMix64 finalizer: decorrelates consecutive indices into
/// independent-looking per-record seeds.
pub(crate) fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Salt of the per-record label-noise stream, shared by every generator
/// family so noisy variants differ from clean ones in labels only.
pub(crate) const NOISE_SALT: u64 = 0xA5A5_5A5A_DEAD_BEEF;

/// Sample the attribute draw of record `i` of the per-index stream family
/// (shared by [`StreamingGen`] and [`drift::DriftGen`], so a drifting
/// stream differs from the stable one in labels only, never attributes).
pub(crate) fn sample_indexed(seed: u64, i: usize) -> QuestRecord {
    let mut rng = StdRng::seed_from_u64(mix(seed, i as u64));
    QuestRecord::sample(&mut rng)
}

/// Whether record `i`'s label is noise-flipped (per-index stream family).
pub(crate) fn noise_flip(cfg: &GenConfig, i: usize) -> bool {
    if cfg.noise > 0.0 {
        let mut noise_rng = StdRng::seed_from_u64(mix(cfg.seed ^ NOISE_SALT, i as u64));
        noise_rng.gen_bool(cfg.noise)
    } else {
        false
    }
}

/// Materialize an iterator of sampled records into a column-oriented
/// dataset under `profile`'s schema.
pub(crate) fn collect_block(
    profile: Profile,
    cap: usize,
    rows: impl Iterator<Item = (QuestRecord, u8)>,
) -> Dataset {
    let mut salary = Vec::with_capacity(cap);
    let mut commission = Vec::with_capacity(cap);
    let mut age = Vec::with_capacity(cap);
    let mut elevel = Vec::with_capacity(cap);
    let mut car = Vec::with_capacity(cap);
    let mut zipcode = Vec::with_capacity(cap);
    let mut hvalue = Vec::with_capacity(cap);
    let mut hyears = Vec::with_capacity(cap);
    let mut loan = Vec::with_capacity(cap);
    let mut labels = Vec::with_capacity(cap);
    for (r, class) in rows {
        salary.push(r.salary);
        commission.push(r.commission);
        age.push(r.age);
        elevel.push(r.elevel);
        car.push(r.car);
        zipcode.push(r.zipcode);
        hvalue.push(r.hvalue);
        hyears.push(r.hyears);
        loan.push(r.loan);
        labels.push(class);
    }
    let mut columns = vec![
        Column::Continuous(salary),
        Column::Continuous(commission),
        Column::Continuous(age),
        Column::Categorical(elevel),
    ];
    if profile == Profile::Full9 {
        columns.push(Column::Categorical(car));
        columns.push(Column::Categorical(zipcode));
    }
    columns.push(Column::Continuous(hvalue));
    columns.push(Column::Continuous(hyears));
    columns.push(Column::Continuous(loan));
    Dataset::new(profile.schema(), columns, labels)
}

impl StreamingGen {
    /// A generator over the virtual dataset described by `cfg`.
    pub fn new(cfg: GenConfig) -> Self {
        StreamingGen { cfg }
    }

    /// Total number of records in the virtual dataset.
    pub fn len(&self) -> usize {
        self.cfg.n
    }

    /// True when the virtual dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.cfg.n == 0
    }

    /// The schema of every produced block.
    pub fn schema(&self) -> Schema {
        self.cfg.profile.schema()
    }

    /// Sample record `i` and its (possibly noise-flipped) label.
    pub fn record(&self, i: usize) -> (QuestRecord, u8) {
        debug_assert!(i < self.cfg.n, "index {i} out of {}", self.cfg.n);
        let r = sample_indexed(self.cfg.seed, i);
        let mut class = u8::from(!self.cfg.func.classify(&r));
        // Separate per-record stream: noise flips labels only and never
        // shifts the attribute draws (mirrors `generate`).
        if noise_flip(&self.cfg, i) {
            class ^= 1;
        }
        (r, class)
    }

    /// Materialize records `[lo, hi)` as a dataset (clamped to the end).
    pub fn block(&self, lo: usize, hi: usize) -> Dataset {
        let lo = lo.min(self.cfg.n);
        let hi = hi.min(self.cfg.n).max(lo);
        collect_block(self.cfg.profile, hi - lo, (lo..hi).map(|i| self.record(i)))
    }

    /// Iterate the virtual dataset as consecutive blocks of up to `chunk`
    /// records — at most one block is materialized at a time.
    pub fn chunks(&self, chunk: usize) -> impl Iterator<Item = Dataset> + '_ {
        assert!(chunk > 0, "chunk must be positive");
        let n = self.cfg.n;
        (0..n.div_ceil(chunk)).map(move |b| self.block(b * chunk, (b + 1) * chunk))
    }
}

/// Generate a dataset.
pub fn generate(cfg: &GenConfig) -> Dataset {
    let schema = cfg.profile.schema();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Noise uses its own stream so a noisy dataset differs from the clean
    // one with the same seed in labels only, never in attributes.
    let mut noise_rng = StdRng::seed_from_u64(cfg.seed ^ 0xA5A5_5A5A_DEAD_BEEF);

    let mut salary = Vec::with_capacity(cfg.n);
    let mut commission = Vec::with_capacity(cfg.n);
    let mut age = Vec::with_capacity(cfg.n);
    let mut elevel = Vec::with_capacity(cfg.n);
    let mut car = Vec::with_capacity(cfg.n);
    let mut zipcode = Vec::with_capacity(cfg.n);
    let mut hvalue = Vec::with_capacity(cfg.n);
    let mut hyears = Vec::with_capacity(cfg.n);
    let mut loan = Vec::with_capacity(cfg.n);
    let mut labels = Vec::with_capacity(cfg.n);

    for _ in 0..cfg.n {
        let r = QuestRecord::sample(&mut rng);
        let mut class = u8::from(!cfg.func.classify(&r)); // group A → 0
        if cfg.noise > 0.0 && noise_rng.gen_bool(cfg.noise) {
            class ^= 1;
        }
        salary.push(r.salary);
        commission.push(r.commission);
        age.push(r.age);
        elevel.push(r.elevel);
        car.push(r.car);
        zipcode.push(r.zipcode);
        hvalue.push(r.hvalue);
        hyears.push(r.hyears);
        loan.push(r.loan);
        labels.push(class);
    }

    let mut columns = vec![
        Column::Continuous(salary),
        Column::Continuous(commission),
        Column::Continuous(age),
        Column::Categorical(elevel),
    ];
    if cfg.profile == Profile::Full9 {
        columns.push(Column::Categorical(car));
        columns.push(Column::Categorical(zipcode));
    }
    columns.push(Column::Continuous(hvalue));
    columns.push(Column::Continuous(hyears));
    columns.push(Column::Continuous(loan));

    Dataset::new(schema, columns, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_have_expected_shapes() {
        let s7 = Profile::Paper7.schema();
        assert_eq!(s7.num_attrs(), 7);
        assert_eq!(s7.num_classes, 2);
        assert_eq!(s7.categorical_attrs(), vec![3]); // elevel only
        let s9 = Profile::Full9.schema();
        assert_eq!(s9.num_attrs(), 9);
        assert_eq!(s9.categorical_attrs(), vec![3, 4, 5]);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::paper(500, 3);
        assert_eq!(generate(&cfg), generate(&cfg));
        let other = GenConfig { seed: 4, ..cfg };
        assert_ne!(generate(&cfg), generate(&other));
    }

    #[test]
    fn labels_match_function_when_noiseless() {
        // Re-derive the labels from the emitted attribute columns for F2
        // (which uses only age and salary — both emitted).
        let cfg = GenConfig::paper(1000, 5);
        let d = generate(&cfg);
        let sal = d.columns[0].as_continuous();
        let age = d.columns[2].as_continuous();
        for i in 0..d.len() {
            let r = QuestRecord {
                salary: sal[i],
                commission: 0.0,
                age: age[i],
                elevel: 0,
                car: 0,
                zipcode: 0,
                hvalue: 0.0,
                hyears: 0.0,
                loan: 0.0,
            };
            let want = u8::from(!ClassFunc::F2.classify(&r));
            assert_eq!(d.labels[i], want, "record {i}");
        }
    }

    #[test]
    fn noise_flips_roughly_the_requested_fraction() {
        let clean = generate(&GenConfig::paper(4000, 8));
        let noisy = generate(&GenConfig {
            noise: 0.25,
            ..GenConfig::paper(4000, 8)
        });
        let flips = clean
            .labels
            .iter()
            .zip(&noisy.labels)
            .filter(|(a, b)| a != b)
            .count();
        let frac = flips as f64 / 4000.0;
        assert!((0.2..0.3).contains(&frac), "flip fraction {frac}");
        // Attributes must be untouched by label noise.
        assert_eq!(clean.columns, noisy.columns);
    }

    #[test]
    fn both_classes_present() {
        let d = generate(&GenConfig::paper(2000, 1));
        let h = d.class_hist();
        assert!(h[0] > 100 && h[1] > 100, "{h:?}");
    }

    fn concat(parts: Vec<Dataset>) -> Dataset {
        let schema = parts[0].schema.clone();
        let attrs = schema.num_attrs();
        let mut columns: Vec<Column> = (0..attrs)
            .map(|a| match &parts[0].columns[a] {
                Column::Continuous(_) => Column::Continuous(Vec::new()),
                Column::Categorical(_) => Column::Categorical(Vec::new()),
            })
            .collect();
        let mut labels = Vec::new();
        for p in parts {
            for (dst, src) in columns.iter_mut().zip(&p.columns) {
                match (dst, src) {
                    (Column::Continuous(d), Column::Continuous(s)) => d.extend_from_slice(s),
                    (Column::Categorical(d), Column::Categorical(s)) => d.extend_from_slice(s),
                    _ => unreachable!("schema fixed"),
                }
            }
            labels.extend_from_slice(&p.labels);
        }
        Dataset::new(schema, columns, labels)
    }

    #[test]
    fn streaming_blocks_concatenate_identically() {
        let cfg = GenConfig::paper(1000, 17);
        let gen = StreamingGen::new(cfg);
        let whole = gen.block(0, 1000);
        assert_eq!(whole.len(), 1000);
        // Any chunking reproduces the whole dataset bit-for-bit.
        for chunk in [1, 7, 128, 999, 1000, 4096] {
            let parts: Vec<Dataset> = gen.chunks(chunk).collect();
            assert_eq!(concat(parts), whole, "chunk={chunk}");
        }
        // Arbitrary block boundaries too.
        let split = concat(vec![
            gen.block(0, 333),
            gen.block(333, 700),
            gen.block(700, 1000),
        ]);
        assert_eq!(split, whole);
    }

    #[test]
    fn streaming_odd_interleaved_blocks_are_boundary_invariant() {
        // Regression: block materialization must be a pure function of the
        // requested range — odd sizes, interleaved and out-of-order
        // requests, and re-requests of overlapping ranges all agree with
        // the whole stream. (Earlier coverage only exercised even/pow2
        // splits in increasing order.)
        let gen = StreamingGen::new(GenConfig::paper(977, 23));
        let whole = gen.block(0, 977);
        // Odd-sized cover requested out of order, then reassembled in
        // stream order.
        let bounds = [(613usize, 977usize), (0, 1), (1, 8), (131, 613), (8, 131)];
        let mut parts: Vec<(usize, Dataset)> = bounds
            .iter()
            .map(|&(lo, hi)| (lo, gen.block(lo, hi)))
            .collect();
        parts.sort_by_key(|(lo, _)| *lo);
        let reassembled = concat(parts.into_iter().map(|(_, d)| d).collect());
        assert_eq!(reassembled, whole);
        // Overlapping re-requests match the corresponding slice of the
        // whole, independent of any earlier request.
        for (lo, hi) in [(0, 977), (976, 977), (100, 101), (5, 900), (131, 614)] {
            assert_eq!(gen.block(lo, hi), whole.slice(lo, hi), "block [{lo}, {hi})");
        }
        // Past-the-end requests clamp instead of panicking.
        assert_eq!(gen.block(970, 2000), whole.slice(970, 977));
        assert_eq!(gen.block(2000, 3000).len(), 0);
    }

    #[test]
    fn streaming_is_deterministic_and_seed_sensitive() {
        let a = StreamingGen::new(GenConfig::paper(200, 1)).block(0, 200);
        let b = StreamingGen::new(GenConfig::paper(200, 1)).block(0, 200);
        let c = StreamingGen::new(GenConfig::paper(200, 2)).block(0, 200);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn streaming_labels_match_function() {
        let gen = StreamingGen::new(GenConfig::paper(500, 19));
        for i in (0..500).step_by(13) {
            let (r, class) = gen.record(i);
            assert_eq!(class, u8::from(!ClassFunc::F2.classify(&r)), "record {i}");
        }
    }

    #[test]
    fn streaming_noise_flips_labels_only() {
        let clean = StreamingGen::new(GenConfig::paper(2000, 21)).block(0, 2000);
        let noisy = StreamingGen::new(GenConfig {
            noise: 0.25,
            ..GenConfig::paper(2000, 21)
        })
        .block(0, 2000);
        assert_eq!(clean.columns, noisy.columns);
        let flips = clean
            .labels
            .iter()
            .zip(&noisy.labels)
            .filter(|(a, b)| a != b)
            .count();
        let frac = flips as f64 / 2000.0;
        assert!((0.18..0.32).contains(&frac), "flip fraction {frac}");
    }

    #[test]
    fn streaming_concept_is_learnable() {
        use dtree::sprint::{self, SprintConfig};
        let gen = StreamingGen::new(GenConfig::paper(2000, 23));
        let d = gen.block(0, 2000);
        let h = d.class_hist();
        assert!(h[0] > 100 && h[1] > 100, "{h:?}");
        let tree = sprint::induce(&d, &SprintConfig::default());
        assert!(tree.accuracy(&d) > 0.99);
    }

    #[test]
    fn streaming_clamps_out_of_range_blocks() {
        let gen = StreamingGen::new(GenConfig::paper(10, 25));
        assert_eq!(gen.block(8, 200).len(), 2);
        assert_eq!(gen.block(50, 60).len(), 0);
        assert_eq!(gen.len(), 10);
    }

    #[test]
    fn full9_roundtrips_through_dataset_validation() {
        let d = generate(&GenConfig {
            profile: Profile::Full9,
            ..GenConfig::paper(300, 2)
        });
        assert_eq!(d.len(), 300);
        assert_eq!(d.schema.num_attrs(), 9);
    }
}

/// Perturb every continuous attribute of `data` by a uniform jitter of up
/// to `±frac` of that column's value range — the attribute-noise
/// counterpart of the label noise in [`GenConfig::noise`], mirroring the
/// original Quest generator's perturbation factor. Labels and categorical
/// columns are untouched; equal `(frac, seed)` give identical output.
pub fn perturb_continuous(data: &Dataset, frac: f64, seed: u64) -> Dataset {
    assert!((0.0..=1.0).contains(&frac), "fraction in [0,1]");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x05EE_D0FA_77E2);
    let columns = data
        .columns
        .iter()
        .map(|c| match c {
            Column::Continuous(v) => {
                let (lo, hi) = v
                    .iter()
                    .fold((f32::INFINITY, f32::NEG_INFINITY), |(l, h), &x| {
                        (l.min(x), h.max(x))
                    });
                let span = (hi - lo).max(f32::MIN_POSITIVE) as f64;
                Column::Continuous(
                    v.iter()
                        .map(|&x| {
                            let jitter = rng.gen_range(-frac..=frac) * span;
                            x + jitter as f32
                        })
                        .collect(),
                )
            }
            Column::Categorical(v) => Column::Categorical(v.clone()),
        })
        .collect();
    Dataset::new(data.schema.clone(), columns, data.labels.clone())
}

#[cfg(test)]
mod perturb_tests {
    use super::*;

    #[test]
    fn perturbation_moves_continuous_only() {
        let clean = generate(&GenConfig::paper(500, 4));
        let noisy = perturb_continuous(&clean, 0.05, 9);
        assert_eq!(noisy.labels, clean.labels);
        // elevel (index 3) is categorical and must be untouched.
        assert_eq!(noisy.columns[3], clean.columns[3]);
        // salary must have moved, but stay within 5% of its range.
        let a = clean.columns[0].as_continuous();
        let b = noisy.columns[0].as_continuous();
        assert_ne!(a, b);
        let span = 150_000.0f32 - 20_000.0;
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() <= 0.051 * span, "{x} vs {y}");
        }
    }

    #[test]
    fn perturbation_is_deterministic() {
        let clean = generate(&GenConfig::paper(100, 5));
        assert_eq!(
            perturb_continuous(&clean, 0.1, 1),
            perturb_continuous(&clean, 0.1, 1)
        );
        assert_ne!(
            perturb_continuous(&clean, 0.1, 1),
            perturb_continuous(&clean, 0.1, 2)
        );
    }

    #[test]
    fn zero_fraction_is_identity() {
        let clean = generate(&GenConfig::paper(100, 6));
        assert_eq!(perturb_continuous(&clean, 0.0, 1), clean);
    }

    #[test]
    fn perturbed_concept_remains_learnable() {
        use dtree::sprint::{self, SprintConfig};
        let clean = generate(&GenConfig::paper(3_000, 7));
        let noisy = perturb_continuous(&clean, 0.02, 8);
        let tree = sprint::induce(&noisy, &SprintConfig::default());
        // Mild attribute jitter blurs the boundary but the concept holds.
        assert!(tree.accuracy(&noisy) > 0.99); // trees split to purity
        let fresh = generate(&GenConfig::paper(1_000, 99));
        assert!(tree.accuracy(&fresh) > 0.9, "{}", tree.accuracy(&fresh));
    }
}
