//! `datagen` — Quest-style synthetic training-set generator.
//!
//! Reimplements the IBM Quest classification data generator (Agrawal et al.,
//! IEEE TKDE 1993) that SPRINT and ScalParC use for their evaluations:
//! records describing hypothetical loan applicants, labelled by one of ten
//! classification functions ([`quest::ClassFunc`]), with optional label
//! noise.
//!
//! Two schema profiles are provided:
//!
//! * [`Profile::Full9`] — all nine Quest attributes;
//! * [`Profile::Paper7`] — the seven-attribute configuration matching the
//!   paper's experiments ("training sets containing up to 6.4 million
//!   records, each containing seven attributes. There were two possible
//!   class labels"): `car` and `zipcode` are dropped (zipcode is still drawn
//!   internally so `hvalue`'s distribution is unchanged).

pub mod csv;
pub mod quest;

use dtree::{AttrDef, Column, Dataset, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub use csv::CsvError;
pub use quest::{ClassFunc, QuestRecord};

/// Which attributes the generated dataset exposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Profile {
    /// All nine Quest attributes.
    Full9,
    /// The paper's seven attributes (drops `car`, `zipcode`).
    #[default]
    Paper7,
}

impl Profile {
    /// The schema of this profile: 2 classes; continuous and categorical
    /// attributes as in the Quest model.
    pub fn schema(&self) -> Schema {
        let mut attrs = vec![
            AttrDef::continuous("salary"),
            AttrDef::continuous("commission"),
            AttrDef::continuous("age"),
            AttrDef::categorical("elevel", 5),
        ];
        if *self == Profile::Full9 {
            attrs.push(AttrDef::categorical("car", 20));
            attrs.push(AttrDef::categorical("zipcode", 9));
        }
        attrs.push(AttrDef::continuous("hvalue"));
        attrs.push(AttrDef::continuous("hyears"));
        attrs.push(AttrDef::continuous("loan"));
        Schema::new(attrs, 2)
    }
}

/// Generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Number of records (`N`).
    pub n: usize,
    /// Classification function labelling the records.
    pub func: ClassFunc,
    /// Probability of flipping each label (the original generator's
    /// perturbation factor). `0.0` gives a noiseless concept.
    pub noise: f64,
    /// RNG seed; equal configs generate identical datasets.
    pub seed: u64,
    /// Attribute profile.
    pub profile: Profile,
}

impl GenConfig {
    /// Noiseless F2 data in the paper's 7-attribute profile — the default
    /// workload of the benchmark harnesses.
    pub fn paper(n: usize, seed: u64) -> Self {
        GenConfig {
            n,
            func: ClassFunc::F2,
            noise: 0.0,
            seed,
            profile: Profile::Paper7,
        }
    }
}

/// Generate a dataset.
pub fn generate(cfg: &GenConfig) -> Dataset {
    let schema = cfg.profile.schema();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Noise uses its own stream so a noisy dataset differs from the clean
    // one with the same seed in labels only, never in attributes.
    let mut noise_rng = StdRng::seed_from_u64(cfg.seed ^ 0xA5A5_5A5A_DEAD_BEEF);

    let mut salary = Vec::with_capacity(cfg.n);
    let mut commission = Vec::with_capacity(cfg.n);
    let mut age = Vec::with_capacity(cfg.n);
    let mut elevel = Vec::with_capacity(cfg.n);
    let mut car = Vec::with_capacity(cfg.n);
    let mut zipcode = Vec::with_capacity(cfg.n);
    let mut hvalue = Vec::with_capacity(cfg.n);
    let mut hyears = Vec::with_capacity(cfg.n);
    let mut loan = Vec::with_capacity(cfg.n);
    let mut labels = Vec::with_capacity(cfg.n);

    for _ in 0..cfg.n {
        let r = QuestRecord::sample(&mut rng);
        let mut class = u8::from(!cfg.func.classify(&r)); // group A → 0
        if cfg.noise > 0.0 && noise_rng.gen_bool(cfg.noise) {
            class ^= 1;
        }
        salary.push(r.salary);
        commission.push(r.commission);
        age.push(r.age);
        elevel.push(r.elevel);
        car.push(r.car);
        zipcode.push(r.zipcode);
        hvalue.push(r.hvalue);
        hyears.push(r.hyears);
        loan.push(r.loan);
        labels.push(class);
    }

    let mut columns = vec![
        Column::Continuous(salary),
        Column::Continuous(commission),
        Column::Continuous(age),
        Column::Categorical(elevel),
    ];
    if cfg.profile == Profile::Full9 {
        columns.push(Column::Categorical(car));
        columns.push(Column::Categorical(zipcode));
    }
    columns.push(Column::Continuous(hvalue));
    columns.push(Column::Continuous(hyears));
    columns.push(Column::Continuous(loan));

    Dataset::new(schema, columns, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_have_expected_shapes() {
        let s7 = Profile::Paper7.schema();
        assert_eq!(s7.num_attrs(), 7);
        assert_eq!(s7.num_classes, 2);
        assert_eq!(s7.categorical_attrs(), vec![3]); // elevel only
        let s9 = Profile::Full9.schema();
        assert_eq!(s9.num_attrs(), 9);
        assert_eq!(s9.categorical_attrs(), vec![3, 4, 5]);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::paper(500, 3);
        assert_eq!(generate(&cfg), generate(&cfg));
        let other = GenConfig { seed: 4, ..cfg };
        assert_ne!(generate(&cfg), generate(&other));
    }

    #[test]
    fn labels_match_function_when_noiseless() {
        // Re-derive the labels from the emitted attribute columns for F2
        // (which uses only age and salary — both emitted).
        let cfg = GenConfig::paper(1000, 5);
        let d = generate(&cfg);
        let sal = d.columns[0].as_continuous();
        let age = d.columns[2].as_continuous();
        for i in 0..d.len() {
            let r = QuestRecord {
                salary: sal[i],
                commission: 0.0,
                age: age[i],
                elevel: 0,
                car: 0,
                zipcode: 0,
                hvalue: 0.0,
                hyears: 0.0,
                loan: 0.0,
            };
            let want = u8::from(!ClassFunc::F2.classify(&r));
            assert_eq!(d.labels[i], want, "record {i}");
        }
    }

    #[test]
    fn noise_flips_roughly_the_requested_fraction() {
        let clean = generate(&GenConfig::paper(4000, 8));
        let noisy = generate(&GenConfig {
            noise: 0.25,
            ..GenConfig::paper(4000, 8)
        });
        let flips = clean
            .labels
            .iter()
            .zip(&noisy.labels)
            .filter(|(a, b)| a != b)
            .count();
        let frac = flips as f64 / 4000.0;
        assert!((0.2..0.3).contains(&frac), "flip fraction {frac}");
        // Attributes must be untouched by label noise.
        assert_eq!(clean.columns, noisy.columns);
    }

    #[test]
    fn both_classes_present() {
        let d = generate(&GenConfig::paper(2000, 1));
        let h = d.class_hist();
        assert!(h[0] > 100 && h[1] > 100, "{h:?}");
    }

    #[test]
    fn full9_roundtrips_through_dataset_validation() {
        let d = generate(&GenConfig {
            profile: Profile::Full9,
            ..GenConfig::paper(300, 2)
        });
        assert_eq!(d.len(), 300);
        assert_eq!(d.schema.num_attrs(), 9);
    }
}

/// Perturb every continuous attribute of `data` by a uniform jitter of up
/// to `±frac` of that column's value range — the attribute-noise
/// counterpart of the label noise in [`GenConfig::noise`], mirroring the
/// original Quest generator's perturbation factor. Labels and categorical
/// columns are untouched; equal `(frac, seed)` give identical output.
pub fn perturb_continuous(data: &Dataset, frac: f64, seed: u64) -> Dataset {
    assert!((0.0..=1.0).contains(&frac), "fraction in [0,1]");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x05EE_D0FA_77E2);
    let columns = data
        .columns
        .iter()
        .map(|c| match c {
            Column::Continuous(v) => {
                let (lo, hi) = v
                    .iter()
                    .fold((f32::INFINITY, f32::NEG_INFINITY), |(l, h), &x| {
                        (l.min(x), h.max(x))
                    });
                let span = (hi - lo).max(f32::MIN_POSITIVE) as f64;
                Column::Continuous(
                    v.iter()
                        .map(|&x| {
                            let jitter = rng.gen_range(-frac..=frac) * span;
                            x + jitter as f32
                        })
                        .collect(),
                )
            }
            Column::Categorical(v) => Column::Categorical(v.clone()),
        })
        .collect();
    Dataset::new(data.schema.clone(), columns, data.labels.clone())
}

#[cfg(test)]
mod perturb_tests {
    use super::*;

    #[test]
    fn perturbation_moves_continuous_only() {
        let clean = generate(&GenConfig::paper(500, 4));
        let noisy = perturb_continuous(&clean, 0.05, 9);
        assert_eq!(noisy.labels, clean.labels);
        // elevel (index 3) is categorical and must be untouched.
        assert_eq!(noisy.columns[3], clean.columns[3]);
        // salary must have moved, but stay within 5% of its range.
        let a = clean.columns[0].as_continuous();
        let b = noisy.columns[0].as_continuous();
        assert_ne!(a, b);
        let span = 150_000.0f32 - 20_000.0;
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() <= 0.051 * span, "{x} vs {y}");
        }
    }

    #[test]
    fn perturbation_is_deterministic() {
        let clean = generate(&GenConfig::paper(100, 5));
        assert_eq!(
            perturb_continuous(&clean, 0.1, 1),
            perturb_continuous(&clean, 0.1, 1)
        );
        assert_ne!(
            perturb_continuous(&clean, 0.1, 1),
            perturb_continuous(&clean, 0.1, 2)
        );
    }

    #[test]
    fn zero_fraction_is_identity() {
        let clean = generate(&GenConfig::paper(100, 6));
        assert_eq!(perturb_continuous(&clean, 0.0, 1), clean);
    }

    #[test]
    fn perturbed_concept_remains_learnable() {
        use dtree::sprint::{self, SprintConfig};
        let clean = generate(&GenConfig::paper(3_000, 7));
        let noisy = perturb_continuous(&clean, 0.02, 8);
        let tree = sprint::induce(&noisy, &SprintConfig::default());
        // Mild attribute jitter blurs the boundary but the concept holds.
        assert!(tree.accuracy(&noisy) > 0.99); // trees split to purity
        let fresh = generate(&GenConfig::paper(1_000, 99));
        assert!(tree.accuracy(&fresh) > 0.9, "{}", tree.accuracy(&fresh));
    }
}
